"""Tables I / V: the property-verification battery as a bench.

Times the empirical Table I verification (misreport search + sybil
attack search across mechanisms) and writes the verdict table.
"""

from conftest import write_artifact

from repro.gametheory.properties import render_verdicts, verify_properties


def test_table1_property_battery(benchmark):
    verdicts = benchmark.pedantic(
        lambda: verify_properties(
            num_instances=2, num_queries=40, users_per_instance=6,
            attack_attempts=8, seed=0),
        rounds=1, iterations=1)
    write_artifact("table1_properties.txt", render_verdicts(verdicts))
    assert all(v.consistent for v in verdicts)
