"""Churn timeline bench: cumulative revenue per mechanism over weeks
of daily auctions (the Section II business loop at steady state)."""

from conftest import write_artifact

from repro.experiments.timeline import ChurnConfig, run_timeline


def test_churn_timeline(benchmark, scale):
    config = ChurnConfig(periods=15, arrivals_per_period=10,
                         catalogue_size=30, capacity=50.0)
    result = benchmark.pedantic(
        lambda: run_timeline(("CAF", "CAT", "Two-price"), config,
                             seed=scale.seed),
        rounds=1, iterations=1)
    write_artifact("timeline.txt", result.render())
    for name in ("CAF", "CAT", "Two-price"):
        assert result.cumulative_revenue(name) > 0
