"""Cluster scaling: admission throughput vs. shard count.

Drives a fixed synthetic workload through federations of increasing
shard counts and measures end-to-end period throughput (queries
auctioned per second) plus the business aggregates, on both the
sequential (``run_period``) and batch (``run_period_all``) paths.
Unlike the paper-figure benchmarks (which are pytest modules), this is
a standalone script so CI can exercise the scaling path without
pytest-benchmark:

    python benchmarks/bench_cluster_scaling.py            # full sweep
    python benchmarks/bench_cluster_scaling.py --smoke    # CI-sized

The rendered table is printed and written to
``benchmarks/out/cluster_scaling.txt``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.cluster import FederatedAdmissionService  # noqa: E402
from repro.dsms.operators import SelectOperator  # noqa: E402
from repro.dsms.plan import ContinuousQuery  # noqa: E402
from repro.dsms.streams import SyntheticStream  # noqa: E402
from repro.utils.tables import format_table  # noqa: E402

OUT_DIR = Path(__file__).parent / "out"


def _pass_all(_tuple) -> bool:
    return True


def build_cluster(num_shards: int, args) -> FederatedAdmissionService:
    return FederatedAdmissionService.build(
        num_shards=num_shards,
        sources=[SyntheticStream("s", rate=args.rate, seed=args.seed,
                                 poisson=False)],
        capacity=args.capacity,
        mechanism=args.mechanism,
        ticks_per_period=args.ticks,
        placement=f"consistent-hash:seed={args.seed}",
    )


def submissions(period: int, args) -> list[ContinuousQuery]:
    rng = np.random.default_rng([args.seed, period])
    queries = []
    for index in range(args.queries_per_period):
        qid = f"p{period}_q{index}"
        op = SelectOperator(
            f"sel_{qid}", "s", _pass_all,
            cost_per_tuple=float(np.round(rng.uniform(0.5, 2.0), 2)),
            selectivity_estimate=1.0)
        queries.append(ContinuousQuery(
            qid, (op,), sink_id=op.op_id,
            bid=float(np.round(rng.uniform(5, 100), 2)),
            owner=f"user_{index % args.clients}"))
    return queries


def run_one(num_shards: int, batch: bool, args) -> dict:
    cluster = build_cluster(num_shards, args)
    auctioned = 0
    started = time.perf_counter()
    for period in range(1, args.periods + 1):
        for query in submissions(period, args):
            cluster.submit(query)
        report = (cluster.run_period_all() if batch
                  else cluster.run_period())
        auctioned += len(report.admitted) + len(report.rejected)
    elapsed = time.perf_counter() - started
    last = cluster.reports[-1]
    return {
        "shards": num_shards,
        "path": "batch" if batch else "sequential",
        "seconds": elapsed,
        "queries_per_s": auctioned / elapsed if elapsed else float("inf"),
        "revenue": cluster.total_revenue(),
        "migrated": sum(len(r.migrations) for r in cluster.reports),
        "utilization": (0.0 if last.utilization is None
                        else last.utilization),
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="throughput vs. shard count for the federation layer")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (small counts, fast exit)")
    parser.add_argument("--shard-counts", default=None,
                        help="comma-separated shard counts "
                             "(default 1,2,4,8; smoke 1,2)")
    parser.add_argument("--periods", type=int, default=None)
    parser.add_argument("--queries-per-period", type=int, default=None)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--capacity", type=float, default=40.0)
    parser.add_argument("--rate", type=float, default=5.0)
    parser.add_argument("--ticks", type=int, default=None)
    parser.add_argument("--mechanism", default="CAT")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.shard_counts is None:
        args.shard_counts = "1,2" if args.smoke else "1,2,4,8"
    counts = [int(c) for c in args.shard_counts.split(",")]
    if args.periods is None:
        args.periods = 2 if args.smoke else 8
    if args.queries_per_period is None:
        args.queries_per_period = 12 if args.smoke else 48
    if args.ticks is None:
        args.ticks = 5 if args.smoke else 20

    rows = []
    for num_shards in counts:
        for batch in (False, True):
            result = run_one(num_shards, batch, args)
            rows.append([
                result["shards"], result["path"],
                result["seconds"], result["queries_per_s"],
                result["revenue"], result["migrated"],
                result["utilization"],
            ])
    table = format_table(
        ["shards", "path", "seconds", "queries/s", "revenue",
         "migrated", "last util"],
        rows, precision=2,
        title=(f"Cluster scaling — {args.periods} periods × "
               f"{args.queries_per_period} queries, "
               f"{args.mechanism}, capacity {args.capacity:g}/shard"))
    print(table)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "cluster_scaling.txt").write_text(table + "\n")

    # Sanity, not speed assertions: the sweep must do real work on
    # every configuration and both paths must agree economically.
    by_key = {(r[0], r[1]): r for r in rows}
    for num_shards in counts:
        sequential = by_key[(num_shards, "sequential")]
        batch = by_key[(num_shards, "batch")]
        assert sequential[4] == batch[4], (
            f"sequential/batch revenue diverged at {num_shards} shards")
        assert sequential[3] > 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
