"""Serving-layer throughput, latency, scaling, and equivalence bench.

Stands up the serving layer over a multi-shard
:class:`~repro.cluster.FederatedAdmissionService` on real loopback
sockets and measures it with the seeded load generator
(:mod:`repro.serve.loadgen`):

* **equivalence** — the same seeded submissions driven through the
  gateway and driven in-process must settle to *byte-identical*
  period reports (the gateway adds transport, never semantics); the
  same check runs against a multi-process front-end, whose
  shard-affinity routing and coordinator settle must preserve
  per-shard submission order exactly;
* **throughput** — sustained requests/s and p50/p95/p99 request
  latency for a concurrent seeded load with periodic auction settles;
* **scaling** — the same load against ``repro serve --workers N``
  pre-fork front-ends (1/2/4/8 by default), with one forked load
  generator process per worker so the measurement is not bound by the
  client's GIL.

Standalone so CI can smoke it without pytest:

    python benchmarks/bench_serve.py                  # full-sized
    python benchmarks/bench_serve.py --smoke          # CI-sized
    python benchmarks/bench_serve.py --smoke --workers 2

Results are printed, written to ``benchmarks/out/serve.txt``, and
seeded into ``BENCH_serve.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cluster import FederatedAdmissionService  # noqa: E402
from repro.dsms.streams import SyntheticStream  # noqa: E402
from repro.io import cluster_report_to_dict  # noqa: E402
from repro.serve import (  # noqa: E402
    AdmissionGateway,
    FrontendConfig,
    GatewayClient,
    GatewayConfig,
    GatewaySupervisor,
    run_load,
)
from repro.serve.loadgen import materialize  # noqa: E402
from repro.sim.arrivals import as_continuous_query  # noqa: E402
from repro.utils.tables import format_table  # noqa: E402

OUT_DIR = Path(__file__).parent / "out"
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_serve.json"


def build_cluster(args) -> FederatedAdmissionService:
    return FederatedAdmissionService.build(
        num_shards=args.shards,
        sources=[SyntheticStream("s", rate=2.0, seed=args.seed)],
        capacity=args.capacity,
        mechanism=args.mechanism,
        ticks_per_period=args.ticks,
        placement="consistent-hash",
    )


def loadgen_config() -> GatewayConfig:
    """Rate limits out of the way: the bench measures the server."""
    return GatewayConfig(quiet=True, client_rate=100_000.0,
                         client_burst=100_000.0, peer_rate=1e9,
                         peer_burst=1e9)


def report_bytes(report) -> str:
    return json.dumps(cluster_report_to_dict(report), sort_keys=True)


async def check_equivalence(args) -> dict:
    """Gateway-mediated vs in-process: byte-identical period reports.

    The same seeded arrivals are submitted in the same order to two
    identically built federations — one over the wire (sequentially,
    so the submission order on the wire is the list order), one by
    direct calls — and both settle one period.
    """
    arrivals = materialize(args.arrivals_spec, args.equivalence_queries)

    served = build_cluster(args)
    gateway = AdmissionGateway(served, loadgen_config())
    await gateway.start()
    host, port = gateway.address
    async with GatewayClient(host, port, client_id="equiv") as client:
        for arrival in arrivals:
            status, _body = await client.submit(arrival.query)
            assert status == 200, f"submit failed with {status}"
        status, body = await client.tick()
        assert status == 200, f"tick failed with {status}"
    await gateway.stop()
    gateway_bytes = report_bytes(served.reports[-1])

    local = build_cluster(args)
    for arrival in arrivals:
        # The wire path materializes lazy SelectPlans; the in-process
        # reference must submit the same materialized plans.
        local.submit(as_continuous_query(arrival.query))
    local_bytes = report_bytes(local.run_period())

    identical = gateway_bytes == local_bytes
    assert identical, "gateway-mediated report diverged from in-process"
    return {
        "queries": len(arrivals),
        "byte_identical": identical,
        "report_bytes": len(gateway_bytes),
    }


def check_multiworker_equivalence(args, workers: int = 2) -> dict:
    """Pre-fork front-end vs in-process: byte-identical reports.

    Sequential submissions through a multi-worker supervisor (with
    shard-affinity forwarding in the path) must settle to the same
    bytes as direct in-process calls — routing and the coordinator
    drain preserve per-shard submission order exactly.
    """
    arrivals = materialize(args.arrivals_spec, args.equivalence_queries)

    async def drive(host, port):
        async with GatewayClient(host, port,
                                 client_id="equiv") as client:
            for arrival in arrivals:
                status, _body = await client.submit(arrival.query)
                assert status == 200, f"submit failed with {status}"
            status, body = await client.tick()
            assert status == 200, f"tick failed with {status}"
            return body["report"]

    config = FrontendConfig(workers=workers, gateway=loadgen_config())
    with GatewaySupervisor(lambda: build_cluster(args),
                           config) as supervisor:
        host, port = supervisor.address
        report = asyncio.run(drive(host, port))
    frontend_bytes = json.dumps(report, sort_keys=True)

    local = build_cluster(args)
    for arrival in arrivals:
        local.submit(as_continuous_query(arrival.query))
    local_bytes = report_bytes(local.run_period())

    identical = frontend_bytes == local_bytes
    assert identical, (
        f"{workers}-worker front-end report diverged from in-process")
    return {
        "workers": workers,
        "queries": len(arrivals),
        "byte_identical": identical,
    }


async def _measure_single(args) -> dict:
    """Single-process gateway baseline."""
    gateway = AdmissionGateway(build_cluster(args), loadgen_config())
    await gateway.start()
    host, port = gateway.address
    started = time.perf_counter()
    result = await run_load(
        host, port,
        arrivals=args.arrivals_spec,
        requests=args.requests,
        concurrency=args.concurrency,
        tick_every=max(1, args.requests // args.periods))
    elapsed = time.perf_counter() - started
    async with GatewayClient(host, port) as client:
        _status, metrics = await client.metrics()
    await gateway.stop()
    assert result.completed == args.requests, result.statuses
    return {
        "workers": 1,
        "requests": result.requests,
        "concurrency": args.concurrency,
        "loadgen_processes": 1,
        "ticks": result.ticks,
        "seconds": elapsed,
        "requests_per_s": result.requests_per_s,
        "latency_ms": result.latency_ms,
        "server_latency_ms": metrics["latency_ms"],
        "statuses": result.statuses,
    }


def _measure_workers(args, workers: int) -> dict:
    """Pre-fork front-end throughput at *workers* workers.

    One forked load generator process per worker (capped at 8), each
    driving a slice of the same seeded arrivals — a single Python
    client cannot saturate a multi-process server through one GIL.
    """
    processes = min(workers, 8)
    config = FrontendConfig(workers=workers, gateway=loadgen_config())
    with GatewaySupervisor(lambda: build_cluster(args),
                           config) as supervisor:
        host, port = supervisor.address
        started = time.perf_counter()
        result = asyncio.run(run_load(
            host, port,
            arrivals=args.arrivals_spec,
            requests=args.requests,
            concurrency=args.concurrency,
            # tick_every counts completions *per generator process*,
            # so the same value yields the same ~args.periods settles
            # in total as the single-process run.
            tick_every=max(1, args.requests // args.periods),
            processes=processes))
        elapsed = time.perf_counter() - started
    assert result.completed == args.requests, result.statuses
    return {
        "workers": workers,
        "requests": result.requests,
        "concurrency": args.concurrency,
        "loadgen_processes": processes,
        "ticks": result.ticks,
        "seconds": elapsed,
        "requests_per_s": result.requests_per_s,
        "latency_ms": result.latency_ms,
        "statuses": result.statuses,
    }


def measure_scaling(args) -> list[dict]:
    rows = []
    for workers in args.worker_counts:
        if workers == 1:
            rows.append(asyncio.run(_measure_single(args)))
        else:
            rows.append(_measure_workers(args, workers))
        print(f"  {workers} worker(s): "
              f"{rows[-1]['requests_per_s']:.0f} req/s")
    return rows


def parse_workers(spec: str) -> list[int]:
    counts = sorted({int(part) for part in spec.split(",") if part})
    if not counts or min(counts) < 1:
        raise SystemExit(f"bad --workers list {spec!r}")
    if 1 not in counts:
        counts.insert(0, 1)     # the curve needs its baseline
    return counts


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="gateway serving throughput, latency, worker "
                    "scaling, and gateway-vs-in-process equivalence")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (small counts, fast exit)")
    parser.add_argument("--requests", type=int, default=None,
                        help="loadgen submissions "
                             "(default 2000; smoke 300)")
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--periods", type=int, default=10,
                        help="auction settles spread over the load")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--capacity", type=float, default=40.0)
    parser.add_argument("--mechanism", default="CAT")
    parser.add_argument("--ticks", type=int, default=4)
    parser.add_argument("--equivalence-queries", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", default=None,
                        help="comma list of pre-fork worker counts "
                             "for the scaling curve (default 1,2,4,8; "
                             "smoke 1,2); 1 is always included as "
                             "the baseline")
    args = parser.parse_args(argv)

    if args.requests is None:
        args.requests = 300 if args.smoke else 2_000
    if args.workers is None:
        args.workers = "1,2" if args.smoke else "1,2,4,8"
    args.worker_counts = parse_workers(args.workers)
    args.arrivals_spec = f"poisson:rate=5,seed={args.seed}"

    equivalence = asyncio.run(check_equivalence(args))
    multi_equivalence = check_multiworker_equivalence(
        args, workers=min(max(args.worker_counts), 2) if
        max(args.worker_counts) > 1 else 2)
    print("scaling curve:")
    scaling = measure_scaling(args)
    throughput = scaling[0]
    single_rps = throughput["requests_per_s"]
    cores = os.cpu_count() or 1
    multi = [row for row in scaling if row["workers"] > 1]
    if multi:
        best = max(row["requests_per_s"] for row in multi)
        if cores >= 2:
            assert best >= single_rps, (
                f"multi-worker throughput ({best:.0f} req/s) fell "
                f"below the single-process baseline "
                f"({single_rps:.0f} req/s) on {cores} cores")
        else:
            # One core cannot run two workers at once: the curve
            # degenerates to a measurement of routing overhead.
            print(f"note: {cores} CPU core — pre-fork workers "
                  f"time-slice it, so the scaling curve measures "
                  f"forwarding overhead, not parallel speedup "
                  f"(best multi {best:.0f} vs single "
                  f"{single_rps:.0f} req/s)")

    result = {
        "workload": {
            "arrivals": args.arrivals_spec,
            "requests": args.requests,
            "concurrency": args.concurrency,
            "shards": args.shards,
            "capacity": args.capacity,
            "mechanism": args.mechanism,
            "ticks_per_period": args.ticks,
            "seed": args.seed,
            "cpu_count": cores,
        },
        "equivalence": equivalence,
        "multiworker_equivalence": multi_equivalence,
        "throughput": throughput,
        "scaling": [
            {**row,
             "speedup": round(row["requests_per_s"] / single_rps, 3)}
            for row in scaling],
        "smoke": bool(args.smoke),
    }

    latency = throughput["latency_ms"]
    rows = [
        ["requests", throughput["requests"]],
        ["concurrency", throughput["concurrency"]],
        ["settles", throughput["ticks"]],
        ["seconds", throughput["seconds"]],
        ["requests/s", throughput["requests_per_s"]],
        ["latency p50 (ms)", latency["p50"]],
        ["latency p95 (ms)", latency["p95"]],
        ["latency p99 (ms)", latency["p99"]],
        ["equivalence queries", equivalence["queries"]],
        ["byte-identical report", equivalence["byte_identical"]],
        ["multi-worker identical",
         multi_equivalence["byte_identical"]],
    ]
    for row in scaling:
        rows.append([f"req/s @ {row['workers']} worker(s)",
                     row["requests_per_s"]])
    table = format_table(
        ["metric", "value"], rows, precision=2,
        title=(f"Serving gateway — {args.shards} shards, "
               f"{args.mechanism}, {args.requests} requests over "
               f"loopback HTTP"))
    print(table)

    # Smoke runs go to the out dir (like the sibling benchmarks), so
    # CI never clobbers the seeded full-run BENCH_serve.json.
    bench_json = (OUT_DIR / "BENCH_serve_smoke.json" if args.smoke
                  else BENCH_JSON)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "serve.txt").write_text(table + "\n")
    bench_json.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {bench_json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
