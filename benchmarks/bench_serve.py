"""Serving-layer throughput, latency, and equivalence benchmark.

Stands up the :class:`~repro.serve.AdmissionGateway` over a
multi-shard :class:`~repro.cluster.FederatedAdmissionService` on a
real loopback socket and measures it with the seeded load generator
(:mod:`repro.serve.loadgen`):

* **equivalence** — the same seeded submissions driven through the
  gateway and driven in-process must settle to *byte-identical*
  period reports (the gateway adds transport, never semantics);
* **throughput** — sustained requests/s and p50/p95/p99 request
  latency for a concurrent seeded load with periodic auction settles.

Standalone so CI can smoke it without pytest:

    python benchmarks/bench_serve.py            # full-sized
    python benchmarks/bench_serve.py --smoke    # CI-sized

Results are printed, written to ``benchmarks/out/serve.txt``, and
seeded into ``BENCH_serve.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cluster import FederatedAdmissionService  # noqa: E402
from repro.dsms.streams import SyntheticStream  # noqa: E402
from repro.io import cluster_report_to_dict  # noqa: E402
from repro.serve import (  # noqa: E402
    AdmissionGateway,
    GatewayClient,
    GatewayConfig,
    run_load,
)
from repro.serve.loadgen import materialize  # noqa: E402
from repro.utils.tables import format_table  # noqa: E402

OUT_DIR = Path(__file__).parent / "out"
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_serve.json"


def build_cluster(args) -> FederatedAdmissionService:
    return FederatedAdmissionService.build(
        num_shards=args.shards,
        sources=[SyntheticStream("s", rate=2.0, seed=args.seed)],
        capacity=args.capacity,
        mechanism=args.mechanism,
        ticks_per_period=args.ticks,
        placement="round-robin",
    )


def report_bytes(report) -> str:
    return json.dumps(cluster_report_to_dict(report), sort_keys=True)


async def check_equivalence(args) -> dict:
    """Gateway-mediated vs in-process: byte-identical period reports.

    The same seeded arrivals are submitted in the same order to two
    identically built federations — one over the wire (sequentially,
    so the submission order on the wire is the list order), one by
    direct calls — and both settle one period.
    """
    arrivals = materialize(args.arrivals_spec, args.equivalence_queries)

    served = build_cluster(args)
    gateway = AdmissionGateway(
        served, GatewayConfig(quiet=True, client_rate=100_000.0,
                              client_burst=100_000.0))
    await gateway.start()
    host, port = gateway.address
    async with GatewayClient(host, port, client_id="equiv") as client:
        for arrival in arrivals:
            status, _body = await client.submit(arrival.query)
            assert status == 200, f"submit failed with {status}"
        status, body = await client.tick()
        assert status == 200, f"tick failed with {status}"
    await gateway.stop()
    gateway_bytes = report_bytes(served.reports[-1])

    local = build_cluster(args)
    for arrival in arrivals:
        local.submit(arrival.query)
    local_bytes = report_bytes(local.run_period())

    identical = gateway_bytes == local_bytes
    assert identical, "gateway-mediated report diverged from in-process"
    return {
        "queries": len(arrivals),
        "byte_identical": identical,
        "report_bytes": len(gateway_bytes),
    }


async def measure_throughput(args) -> dict:
    """Sustained requests/s + latency under concurrent seeded load."""
    gateway = AdmissionGateway(
        build_cluster(args),
        GatewayConfig(quiet=True, client_rate=100_000.0,
                      client_burst=100_000.0))
    await gateway.start()
    host, port = gateway.address
    started = time.perf_counter()
    result = await run_load(
        host, port,
        arrivals=args.arrivals_spec,
        requests=args.requests,
        concurrency=args.concurrency,
        tick_every=max(1, args.requests // args.periods))
    elapsed = time.perf_counter() - started
    async with GatewayClient(host, port) as client:
        _status, metrics = await client.metrics()
    await gateway.stop()
    assert result.completed == args.requests, result.statuses
    return {
        "requests": result.requests,
        "concurrency": args.concurrency,
        "ticks": result.ticks,
        "seconds": elapsed,
        "requests_per_s": result.requests_per_s,
        "latency_ms": result.latency_ms,
        "server_latency_ms": metrics["latency_ms"],
        "statuses": result.statuses,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="gateway serving throughput, latency, and "
                    "gateway-vs-in-process equivalence")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (small counts, fast exit)")
    parser.add_argument("--requests", type=int, default=None,
                        help="loadgen submissions "
                             "(default 2000; smoke 300)")
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--periods", type=int, default=10,
                        help="auction settles spread over the load")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--capacity", type=float, default=40.0)
    parser.add_argument("--mechanism", default="CAT")
    parser.add_argument("--ticks", type=int, default=4)
    parser.add_argument("--equivalence-queries", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.requests is None:
        args.requests = 300 if args.smoke else 2_000
    args.arrivals_spec = f"poisson:rate=5,seed={args.seed}"

    equivalence = asyncio.run(check_equivalence(args))
    throughput = asyncio.run(measure_throughput(args))

    result = {
        "workload": {
            "arrivals": args.arrivals_spec,
            "requests": args.requests,
            "concurrency": args.concurrency,
            "shards": args.shards,
            "capacity": args.capacity,
            "mechanism": args.mechanism,
            "ticks_per_period": args.ticks,
            "seed": args.seed,
        },
        "equivalence": equivalence,
        "throughput": throughput,
        "smoke": bool(args.smoke),
    }

    latency = throughput["latency_ms"]
    table = format_table(
        ["metric", "value"],
        [
            ["requests", throughput["requests"]],
            ["concurrency", throughput["concurrency"]],
            ["settles", throughput["ticks"]],
            ["seconds", throughput["seconds"]],
            ["requests/s", throughput["requests_per_s"]],
            ["latency p50 (ms)", latency["p50"]],
            ["latency p95 (ms)", latency["p95"]],
            ["latency p99 (ms)", latency["p99"]],
            ["equivalence queries", equivalence["queries"]],
            ["byte-identical report", equivalence["byte_identical"]],
        ],
        precision=2,
        title=(f"Serving gateway — {args.shards} shards, "
               f"{args.mechanism}, {args.requests} requests over "
               f"loopback HTTP"))
    print(table)

    # Smoke runs go to the out dir (like the sibling benchmarks), so
    # CI never clobbers the seeded full-run BENCH_serve.json.
    bench_json = (OUT_DIR / "BENCH_serve_smoke.json" if args.smoke
                  else BENCH_JSON)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "serve.txt").write_text(table + "\n")
    bench_json.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {bench_json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
