"""Figures 4(a) and 4(b): admission rate and total user payoff.

Regenerates the capacity-15,000 sharing sweep and checks the paper's
qualitative claims while timing the sweep machinery.
"""

from conftest import write_artifact

from repro.experiments.figures import figure4a, figure4b
from repro.experiments.harness import run_sharing_sweep


def test_fig4a_admission_rate(benchmark, scale, sweep_15k):
    figure = benchmark.pedantic(
        lambda: figure4a(scale, sweep=sweep_15k),
        rounds=3, iterations=1)
    write_artifact("figure4a.txt", figure.render())
    # Paper: "All mechanisms admit more queries as the degree of
    # sharing increases" and Two-price admits the least.
    for name in ("CAF", "CAT", "Two-price"):
        series = [v for _, v in figure.series(name)]
        assert series[-1] >= series[0] - 0.05
    for degree in scale.degrees:
        tp = figure.sweep.cell("Two-price", degree).admission_rate
        assert tp <= figure.sweep.cell("CAF", degree).admission_rate + 1e-9


def test_fig4b_total_user_payoff(benchmark, scale, sweep_15k):
    figure = benchmark.pedantic(
        lambda: figure4b(scale, sweep=sweep_15k),
        rounds=3, iterations=1)
    write_artifact("figure4b.txt", figure.render())
    # Paper: density mechanisms beat Two-price on payoff; CAF+ tops.
    for degree in scale.degrees:
        tp = figure.sweep.cell("Two-price", degree).total_user_payoff
        for name in ("CAF", "CAF+", "CAT", "CAT+"):
            assert figure.sweep.cell(
                name, degree).total_user_payoff >= tp - 1e-9
        assert (figure.sweep.cell("CAF+", degree).total_user_payoff
                >= figure.sweep.cell("CAF", degree).total_user_payoff
                - 1e-6)


def test_fig4_sweep_cost(benchmark, scale):
    """Times one full sweep point set (the unit of Figure 4 work)."""
    benchmark.pedantic(
        lambda: run_sharing_sweep(
            scale, 15_000.0, mechanisms=("CAF", "CAT", "Two-price")),
        rounds=1, iterations=1)
