"""Shared fixtures for the benchmark suite.

Benchmarks default to a reduced, shape-preserving scale so the whole
suite runs in minutes; override with ``REPRO_SETS`` / ``REPRO_QUERIES``
/ ``REPRO_DEGREES`` to approach the paper's 50×2000 setup.  Every
bench writes the regenerated table/figure to ``benchmarks/out/`` so
the series survive pytest's output capture.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.harness import ExperimentScale, run_sharing_sweep

OUT_DIR = Path(__file__).parent / "out"


def default_scale() -> ExperimentScale:
    """Benchmark scale: env-overridable, small by default."""
    return ExperimentScale(
        num_sets=int(os.environ.get("REPRO_SETS", "2")),
        num_queries=int(os.environ.get("REPRO_QUERIES", "150")),
        degrees=tuple(
            int(d) for d in os.environ.get(
                "REPRO_DEGREES", "1,2,4,8,16,32,60").split(",")),
        seed=int(os.environ.get("REPRO_SEED", "2010")),
    )


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return default_scale()


@pytest.fixture(scope="session")
def sweep_15k(scale):
    """The capacity-15,000 sweep shared by Figures 4(a)/(b)/(e)."""
    return run_sharing_sweep(scale, 15_000.0)


@pytest.fixture(scope="session")
def sweep_5k(scale):
    """The capacity-5,000 sweep (Figure 4(c), persistently overloaded)."""
    return run_sharing_sweep(scale, 5_000.0)


def write_artifact(name: str, text: str) -> None:
    """Persist a rendered table under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / name).write_text(text + "\n")
