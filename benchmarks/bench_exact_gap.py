"""Price of greedy: CAF/CAT winner-set value vs. the exact optimum.

Section III argues optimal selection under sharing is densest-subgraph
hard, which is why the paper settles for greedy mechanisms.  This
bench quantifies what that costs on small instances where
branch-and-bound is affordable: the greedy winner sets typically reach
>90% of the optimal total bid value.
"""

from conftest import write_artifact

from repro.core import make_mechanism
from repro.core.exact import optimal_winner_set
from repro.utils.rng import derive_seed
from repro.utils.tables import format_table
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


def test_price_of_greedy(benchmark, scale):
    config = WorkloadConfig(num_queries=18, max_sharing=5,
                            capacity=18 * 7.5)
    instances = [
        WorkloadGenerator(
            config=config,
            seed=derive_seed(scale.seed, "exact", index),
        ).instance(max_sharing=4, capacity=60.0)
        for index in range(6)
    ]

    def run():
        rows = []
        for index, instance in enumerate(instances):
            optimum = optimal_winner_set(instance)
            row = [index, optimum.total_value]
            for name in ("CAF", "CAT", "GV"):
                winners = make_mechanism(name).run(instance).winner_ids
                value = sum(instance.query(qid).bid for qid in winners)
                row.append(value / optimum.total_value
                           if optimum.total_value else 1.0)
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_artifact("exact_gap.txt", format_table(
        ["instance", "OPT value", "CAF/OPT", "CAT/OPT", "GV/OPT"],
        rows, precision=3,
        title="Price of greedy: winner-set value vs. exact optimum"))
    for row in rows:
        for ratio in row[2:]:
            assert ratio <= 1.0 + 1e-9       # optimum is an upper bound
        assert max(row[2:4]) > 0.5           # greedy is not pathological


def test_exact_search_cost(benchmark, scale):
    """Times the branch-and-bound itself at the guard boundary."""
    config = WorkloadConfig(num_queries=20, max_sharing=5,
                            capacity=20 * 7.5)
    instance = WorkloadGenerator(
        config=config, seed=derive_seed(scale.seed, "exact-cost"),
    ).instance(max_sharing=4, capacity=70.0)
    solution = benchmark(optimal_winner_set, instance)
    assert solution.total_value > 0
