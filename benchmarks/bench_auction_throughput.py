"""Auction throughput: reference vs fast selection on one shared workload.

Generates a Table III workload instance (5k queries with operator
sharing at full scale), runs every mechanism of the paper's line-up —
CAR, CAF, CAF+, CAT, CAT+, GV, Two-price — through both selection
paths, and measures end-to-end ``Mechanism.run`` wall time.  Every
(reference, fast) pair is asserted outcome-identical (the benchmark
doubles as an at-scale differential check), the
:class:`~repro.core.fastpath.InstanceIndex` build cost is measured and
reported separately (it is cached on the instance, so a service pays
it once per auction input), and the ``Mechanism._seal`` micro-benchmark
checks the truthful fast path returns the instance unchanged.

The run prints a comparison table and writes ``BENCH_auction.json`` at
the repo root — the perf-trajectory artifact CI and later PRs diff
against:

    python benchmarks/bench_auction_throughput.py           # full
    python benchmarks/bench_auction_throughput.py --smoke   # CI-sized

Full scale asserts the fast path clears a 5x aggregate speedup on the
5k-query shared-operator workload.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import Mechanism, make_mechanism  # noqa: E402
from repro.core.fastpath import InstanceIndex  # noqa: E402
from repro.core.model import AuctionInstance, Query  # noqa: E402
from repro.utils.tables import format_table  # noqa: E402
from repro.workload.generator import (  # noqa: E402
    WorkloadConfig,
    WorkloadGenerator,
)

ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = ROOT / "BENCH_auction.json"

#: The paper's line-up (Section VI) plus CAR and GV.
MECHANISMS = ("CAR", "CAF", "CAF+", "CAT", "CAT+", "GV", "two-price")


def make(name: str):
    if name == "two-price":
        return make_mechanism(name, seed=7)
    return make_mechanism(name)


def time_run(mechanism, instance, repeats: int):
    """Best-of-*repeats* wall time of ``mechanism.run(instance)``."""
    best = float("inf")
    outcome = None
    for _ in range(repeats):
        started = time.perf_counter()
        outcome = mechanism.run(instance)
        best = min(best, time.perf_counter() - started)
    return outcome, best


def bench_seal(instance, iterations: int = 50):
    """Micro-benchmark of ``Mechanism._seal`` (the truthful fast path).

    On a truthful instance the seal must return the instance object
    itself; on one with a divergent valuation it rebuilds.  Returns
    per-call seconds for both plus the identity check.
    """
    sealed = Mechanism._seal(instance)
    identity = sealed is instance

    query = instance.queries[0]
    divergent = AuctionInstance(
        instance.operators,
        (Query(query.query_id, query.operator_ids, query.bid,
               valuation=query.bid + 1.0, owner=query.owner),
         ) + instance.queries[1:],
        instance.capacity,
    )

    started = time.perf_counter()
    for _ in range(iterations):
        Mechanism._seal(instance)
    truthful = (time.perf_counter() - started) / iterations

    started = time.perf_counter()
    for _ in range(iterations):
        Mechanism._seal(divergent)
    rebuilt = (time.perf_counter() - started) / iterations
    return {
        "truthful_is_identity": identity,
        "truthful_seconds_per_call": truthful,
        "divergent_seconds_per_call": rebuilt,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="reference vs fast auction selection throughput")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (small workload, no speedup "
                             "assertion)")
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--sharing", type=int, default=8,
                        help="maximum degree of operator sharing")
    parser.add_argument("--capacity-frac", type=float, default=0.08,
                        help="server capacity as a fraction of total "
                             "query demand")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per (mechanism, path); "
                             "best-of is recorded")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output", default=None,
                        help="JSON artifact path (default: repo-root "
                             "BENCH_auction.json; smoke runs write to "
                             "benchmarks/out/ so they never clobber "
                             "the committed full-run record)")
    args = parser.parse_args(argv)

    if args.output is None:
        if args.smoke:
            out_dir = ROOT / "benchmarks" / "out"
            out_dir.mkdir(exist_ok=True)
            args.output = str(out_dir / "BENCH_auction_smoke.json")
        else:
            args.output = str(OUT_PATH)
    if args.queries is None:
        args.queries = 300 if args.smoke else 5000
    if args.repeats is None:
        args.repeats = 1 if args.smoke else 3

    generator = WorkloadGenerator(
        config=WorkloadConfig().scaled(args.queries), seed=args.seed)
    instance = generator.instance(max_sharing=args.sharing)
    instance = instance.with_capacity(
        instance.total_demand() * args.capacity_frac)

    # The index is built once per instance and cached on it; measure
    # the build separately, then let the timed runs use the warm cache
    # (exactly what a service re-auctioning the pool would see).
    started = time.perf_counter()
    InstanceIndex.of(instance)
    index_build = time.perf_counter() - started

    results = []
    total_reference = total_fast = 0.0
    for name in MECHANISMS:
        reference, ref_seconds = time_run(
            make(name), instance, args.repeats)
        fast, fast_seconds = time_run(
            make(name).use_selection("fast:strict=true"),
            instance, args.repeats)
        # Differential sanity at benchmark scale: identical outcomes.
        assert reference.payments == fast.payments, (
            f"{name}: payments diverged")
        assert list(reference.payments) == list(fast.payments), (
            f"{name}: payment ordering diverged")
        assert reference.details == fast.details, (
            f"{name}: details diverged")
        total_reference += ref_seconds
        total_fast += fast_seconds
        results.append({
            "mechanism": reference.mechanism,
            "reference_seconds": ref_seconds,
            "fast_seconds": fast_seconds,
            "speedup": ref_seconds / fast_seconds,
            "winners": len(reference.payments),
            "reference_queries_per_sec": args.queries / ref_seconds,
            "fast_queries_per_sec": args.queries / fast_seconds,
        })

    aggregate = total_reference / total_fast
    seal = bench_seal(instance)
    assert seal["truthful_is_identity"], (
        "Mechanism._seal copied a truthful instance")

    rows = [
        [r["mechanism"], r["reference_seconds"], r["fast_seconds"],
         r["speedup"], r["winners"], r["fast_queries_per_sec"]]
        for r in results
    ]
    print(format_table(
        ["mechanism", "reference s", "fast s", "speedup", "winners",
         "fast queries/s"],
        rows, precision=4,
        title=(f"Auction throughput — {args.queries} queries, "
               f"sharing {args.sharing}, capacity "
               f"{args.capacity_frac:g}x demand")))
    print(f"index build: {index_build * 1000:.1f} ms (cached per "
          f"instance)")
    print(f"aggregate speedup: {aggregate:.2f}x "
          f"({total_reference:.3f}s -> {total_fast:.3f}s)")

    document = {
        "benchmark": "auction_throughput",
        "mode": "smoke" if args.smoke else "full",
        "workload": {
            "shape": "Table III workload, shared operators",
            "queries": args.queries,
            "operators": len(instance.operators),
            "max_sharing": args.sharing,
            "capacity": instance.capacity,
            "total_demand": instance.total_demand(),
            "capacity_frac": args.capacity_frac,
            "seed": args.seed,
            "repeats": args.repeats,
        },
        "index_build_seconds": index_build,
        "results": results,
        "aggregate": {
            "reference_seconds": total_reference,
            "fast_seconds": total_fast,
            "speedup": aggregate,
        },
        "seal": seal,
    }
    Path(args.output).write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {args.output}")

    # At full scale the fast path must clear the 5x acceptance bar.
    if not args.smoke:
        assert aggregate >= 5.0, (
            f"aggregate fast speedup {aggregate:.2f}x below the 5x bar")
    return 0


if __name__ == "__main__":
    sys.exit(main())
