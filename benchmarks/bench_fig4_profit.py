"""Figures 4(c)–(f): system profit as capacity sweeps 5K → 20K.

The reproduction target is the *shape*: density mechanisms lead at low
sharing, Two-price rises with sharing and takes over, and the
crossover point slides toward lower degrees of sharing as capacity
grows ("the picture as a whole seems to shift ... to the lower end").
"""

import pytest
from conftest import write_artifact

from repro.experiments.figures import figure4_profit
from repro.experiments.harness import run_sharing_sweep

LABELS = {5_000.0: "c", 10_000.0: "d", 15_000.0: "e", 20_000.0: "f"}


def crossover_degree(figure) -> float:
    """First sweep degree where Two-price's profit beats CAT's."""
    for degree in figure.sweep.scale.degrees:
        tp = figure.sweep.cell("Two-price", degree).profit
        cat = figure.sweep.cell("CAT", degree).profit
        if tp > cat:
            return degree
    return float("inf")


@pytest.fixture(scope="module")
def profit_figures(scale, sweep_15k, sweep_5k):
    figures = {}
    for capacity in (5_000.0, 10_000.0, 15_000.0, 20_000.0):
        if capacity == 15_000.0:
            sweep = sweep_15k
        elif capacity == 5_000.0:
            sweep = sweep_5k
        else:
            sweep = run_sharing_sweep(scale, capacity)
        figures[capacity] = figure4_profit(capacity, scale, sweep=sweep)
    return figures


@pytest.mark.parametrize("capacity", [5_000.0, 10_000.0, 15_000.0,
                                      20_000.0])
def test_fig4_profit_series(benchmark, scale, profit_figures, capacity):
    figure = profit_figures[capacity]
    benchmark.pedantic(figure.render, rounds=3, iterations=1)
    write_artifact(f"figure4{LABELS[capacity]}_profit.txt",
                   figure.render())
    # Two-price's profit improves with sharing at every capacity.
    series = [v for _, v in figure.series("Two-price")]
    assert series[-1] >= series[0] - 1e-6


def test_density_mechanisms_lead_at_low_sharing(profit_figures):
    """At degree 1 of the overloaded capacity, CAF/CAT beat Two-price."""
    figure = profit_figures[5_000.0]
    degree = figure.sweep.scale.degrees[0]
    tp = figure.sweep.cell("Two-price", degree).profit
    assert figure.sweep.cell("CAF", degree).profit > tp
    assert figure.sweep.cell("CAT", degree).profit > tp


def test_two_price_wins_at_high_sharing(profit_figures):
    figure = profit_figures[5_000.0]
    degree = figure.sweep.scale.degrees[-1]
    tp = figure.sweep.cell("Two-price", degree).profit
    assert tp >= figure.sweep.cell("CAF", degree).profit
    assert tp >= figure.sweep.cell("CAT", degree).profit


def test_crossover_shifts_left_as_capacity_grows(profit_figures):
    """Figure 4(c)→(f): the CAT/Two-price crossover degree is
    non-increasing in capacity."""
    crossovers = [crossover_degree(profit_figures[c])
                  for c in (5_000.0, 10_000.0, 15_000.0, 20_000.0)]
    assert crossovers == sorted(crossovers, reverse=True)
