"""Ablations for the design choices DESIGN.md calls out.

1. ``bid_mode``: the rank-profile reading of Table III's bid
   distribution versus the literal i.i.d. sampling — the sampled
   reading hands constant pricing (Two-price) the win everywhere,
   contradicting Figure 4.
2. Two-price Step 3: the exhaustive tie adjustment versus the
   polynomial variant that omits it (Theorem 12's weaker guarantee).
3. Movement-window payments: the skip-over mechanisms' payment step
   dominates their runtime (the Table IV gap's cause).
"""

from conftest import write_artifact

from repro.core import make_mechanism
from repro.core.two_price import TwoPrice
from repro.utils.rng import derive_seed
from repro.utils.tables import format_table
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


def _generator(scale, bid_mode):
    config = WorkloadConfig(bid_mode=bid_mode).scaled(scale.num_queries)
    return WorkloadGenerator(config=config,
                             seed=derive_seed(scale.seed, "abl", bid_mode))


def test_bid_mode_ablation(benchmark, scale):
    """Rank bids reproduce the crossover; sampled bids do not."""
    capacity = scale.scaled_capacity(5_000.0)
    degree_low, degree_high = scale.degrees[0], scale.degrees[-1]

    def run():
        rows = []
        for bid_mode in ("rank", "sampled"):
            generator = _generator(scale, bid_mode)
            for degree in (degree_low, degree_high):
                instance = generator.instance(
                    max_sharing=degree, capacity=capacity)
                cat = make_mechanism("CAT").run(instance).profit
                tp = make_mechanism(
                    "Two-price", seed=0).run(instance).profit
                rows.append([bid_mode, degree, cat, tp,
                             "CAT" if cat > tp else "Two-price"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_artifact("ablation_bid_mode.txt", format_table(
        ["bid_mode", "degree", "CAT profit", "Two-price profit",
         "winner"],
        rows, precision=1,
        title="Ablation: Table III bid-distribution reading"))
    by_key = {(r[0], r[1]): r[4] for r in rows}
    # Rank reading: CAT wins at low sharing (the paper's shape).
    assert by_key[("rank", degree_low)] == "CAT"
    # Sampled reading: Two-price wins even at low sharing.
    assert by_key[("sampled", degree_low)] == "Two-price"


def test_two_price_step3_ablation(benchmark, scale):
    """Step 3 only matters when valuations tie across the H boundary;
    with it, profit (in expectation) never drops."""
    from repro.core.model import AuctionInstance, Operator, Query

    operators = {f"o{i}": Operator(f"o{i}", 3.0) for i in range(8)}
    queries = tuple(
        Query(f"q{i}", (f"o{i}",), bid=bid)
        for i, bid in enumerate([90, 80, 20, 20, 20, 20, 20, 20]))
    instance = AuctionInstance(operators, queries, capacity=12.0)

    def run():
        results = {}
        for adjust in (True, False):
            total = 0.0
            for seed in range(60):
                total += TwoPrice(
                    seed=seed, adjust_ties=adjust).run(instance).profit
            results[adjust] = total / 60
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    write_artifact("ablation_step3.txt", format_table(
        ["variant", "mean profit"],
        [["with Step 3", results[True]],
         ["without Step 3 (poly)", results[False]]],
        precision=2, title="Ablation: Two-price Step 3"))
    assert results[True] >= results[False] - 1e-6


def test_movement_window_cost_ablation(benchmark, scale):
    """CAT vs CAT+ runtime on the same instance: the movement-window
    payment step is the whole gap (Table IV's cause)."""
    import time

    generator = scale.generators()[0]
    instance = generator.instance(
        max_sharing=8, capacity=scale.scaled_capacity(15_000.0))

    def run():
        timings = {}
        for name in ("CAT", "CAT+"):
            started = time.perf_counter()
            make_mechanism(name).run(instance)
            timings[name] = (time.perf_counter() - started) * 1e3
        return timings

    timings = benchmark.pedantic(run, rounds=3, iterations=1)
    write_artifact("ablation_movement_window.txt", format_table(
        ["mechanism", "runtime ms"],
        [[k, v] for k, v in timings.items()],
        precision=2, title="Ablation: movement-window payment cost"))
    assert timings["CAT+"] > timings["CAT"]
