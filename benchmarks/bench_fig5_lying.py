"""Figure 5: CAR under strategic lying vs. the strategyproof trio.

Regenerated at the paper's capacity (15,000) and at the persistently
overloaded 5,000 point, where — with Table III's demand curve — the
lying population is actually non-empty at the sharing degrees where
profit is at stake (EXPERIMENTS.md discusses the discrepancy).
"""

from conftest import write_artifact

from repro.experiments.lying import figure5


def test_fig5_paper_capacity(benchmark, scale):
    result = benchmark.pedantic(
        lambda: figure5(scale, paper_capacity=15_000.0),
        rounds=1, iterations=1)
    write_artifact("figure5_cap15k.txt", result.render())


def test_fig5_overloaded_capacity(benchmark, scale):
    result = benchmark.pedantic(
        lambda: figure5(scale, paper_capacity=5_000.0),
        rounds=1, iterations=1)
    write_artifact("figure5_cap5k.txt", result.render())
    # Aggregated over the sweep, aggressive lying costs CAR profit.
    car = sum(v for _, v in result.profit_series("CAR"))
    car_al = sum(v for _, v in result.profit_series("CAR-AL"))
    assert car_al < car
    # The strategyproof mechanisms' profit is "dependable" (identical
    # whatever the lying workload, since liars only exist under CAR).
    assert all(v >= 0 for _, v in result.profit_series("CAT"))
