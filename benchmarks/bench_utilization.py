"""The Section VI utilization claim.

Paper: every density mechanism utilizes more than 98% of capacity;
Two-price 96–98%.  With Table III's own demand curve the claim can
only bind where demand exceeds capacity, so the bench asserts it on
the overloaded sweep points and records both restrictions in the
artifact (see EXPERIMENTS.md for the discussion).
"""

from conftest import write_artifact

from repro.experiments.figures import utilization_summary


def test_utilization_summary(benchmark, scale, sweep_15k):
    summary = benchmark.pedantic(
        lambda: utilization_summary(scale, sweep=sweep_15k),
        rounds=1, iterations=1)
    write_artifact("utilization.txt", summary.render())
    if summary.overloaded_degrees:
        for name in ("CAF", "CAF+", "CAT", "CAT+"):
            assert summary.mean_utilization(name) > 0.95, name
        # Two-price utilizes less than the density mechanisms.
        tp = summary.mean_utilization("Two-price")
        assert tp <= summary.mean_utilization("CAF+") + 1e-9
