"""Table IV: mechanism runtimes.

Times each mechanism on one representative instance with
pytest-benchmark (the statistically careful measurement) and also
regenerates the paper-style mean table for the artifact directory.
The assertion targets are the paper's gap structure, not its absolute
Java-on-Xeon milliseconds.
"""

import pytest
from conftest import write_artifact

from repro.experiments.harness import TABLE4_MECHANISMS, mechanism_factory
from repro.experiments.runtime import table4_runtime


@pytest.fixture(scope="module")
def instance(scale):
    generator = scale.generators()[0]
    return generator.instance(
        max_sharing=8, capacity=scale.scaled_capacity(15_000.0))


@pytest.mark.parametrize("name", TABLE4_MECHANISMS)
def test_mechanism_runtime(benchmark, name, instance):
    mechanism = mechanism_factory(name, 0)
    outcome = benchmark(mechanism.run, instance)
    assert outcome.used_capacity <= instance.capacity + 1e-6


def test_table4_regeneration(scale):
    table = table4_runtime(scale, degrees=(1, 8), repetitions=1)
    write_artifact("table4_runtime.txt", table.render())
    # The skip-over mechanisms are the slow group, as in the paper.
    assert table.mean_ms["CAF+"] > 10 * table.mean_ms["CAF"]
    assert table.mean_ms["CAT+"] > 10 * table.mean_ms["CAT"]
