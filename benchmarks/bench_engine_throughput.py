"""Engine throughput: scalar vs columnar on a select-join workload.

Pre-generates a stock-quotes + news workload (10k tuples/tick at full
scale), replays the *identical* arrivals through two otherwise equal
engines — one per execution backend — and measures end-to-end
``StreamEngine.run`` wall time.  Source-tuple generation happens once,
outside the timed region (via ``ReplayStream``), so the numbers are
operator-execution throughput, not RNG throughput.

The run asserts that both backends produced identical reports, result
logs and measured loads (the benchmark doubles as an at-scale
differential check), prints a comparison table, and writes
``BENCH_engine.json`` at the repo root — the perf-trajectory artifact
CI and later PRs diff against:

    python benchmarks/bench_engine_throughput.py           # full
    python benchmarks/bench_engine_throughput.py --smoke   # CI-sized

Full scale asserts the columnar backend clears a 5× speedup on the
10k-tuples/tick select-join workload.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.dsms import (  # noqa: E402
    ContinuousQuery,
    JoinOperator,
    ReplayStream,
    SelectOperator,
    StreamEngine,
    col,
)
from repro.dsms.tuples import StreamTuple  # noqa: E402
from repro.utils.tables import format_table  # noqa: E402

ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = ROOT / "BENCH_engine.json"


def generate_batches(name, rate, ticks, seed, payload_of):
    """Per-tick StreamTuple batches, generated vectorized up front."""
    rng = np.random.default_rng(seed)
    batches = {}
    for tick in range(1, ticks + 1):
        rows = payload_of(rng, rate)
        batches[tick] = [
            StreamTuple(stream=name, tick=tick, payload=payload,
                        origin=(f"{name}@{tick}#{i}",))
            for i, payload in enumerate(rows)
        ]
    return batches


def quotes_rows(rng, n, symbols):
    symbol = rng.integers(0, symbols, size=n)
    price = np.round(rng.lognormal(3.0, 0.5, size=n), 2)
    volume = rng.integers(1, 10_000, size=n)
    return [
        {"symbol": f"S{symbol[i]}", "price": float(price[i]),
         "volume": int(volume[i])}
        for i in range(n)
    ]


def news_rows(rng, n, symbols):
    company = rng.integers(0, symbols, size=n)
    sentiment = np.round(rng.uniform(-1, 1, size=n), 3)
    return [
        {"company": f"S{company[i]}", "sentiment": float(sentiment[i])}
        for i in range(n)
    ]


def build_engine(backend, quote_batches, news_batches, thresholds):
    price_cut, hot_cut = thresholds
    engine = StreamEngine(
        [ReplayStream("quotes", quote_batches),
         ReplayStream("news", news_batches)],
        backend=backend)
    sel_q = SelectOperator("sel_q", "quotes", col("price").gt(price_cut),
                           selectivity_estimate=0.5)
    sel_n = SelectOperator("sel_n", "news", col("sentiment").gt(0.0),
                           selectivity_estimate=0.5)
    join = JoinOperator("join", "sel_q", "sel_n",
                        col("symbol"), col("company"), window=2)
    hot = SelectOperator("hot", "join", col("price").gt(hot_cut),
                         selectivity_estimate=0.01)
    surge = SelectOperator(
        "surge", "join",
        col("price").gt(hot_cut) & col("sentiment").gt(0.8),
        selectivity_estimate=0.005)
    engine.admit(ContinuousQuery(
        "q_hot", (sel_q, sel_n, join, hot), sink_id="hot", bid=10.0))
    engine.admit(ContinuousQuery(
        "q_surge", (sel_q, sel_n, join, surge), sink_id="surge",
        bid=8.0))
    return engine


def run_backend(backend, quote_batches, news_batches, thresholds,
                ticks):
    engine = build_engine(backend, quote_batches, news_batches,
                          thresholds)
    started = time.perf_counter()
    report = engine.run(ticks)
    seconds = time.perf_counter() - started
    return engine, {
        "backend": backend,
        "seconds": seconds,
        "ticks": ticks,
        "source_tuples": report.source_tuples,
        "tuples_per_sec": (report.source_tuples / seconds
                           if seconds else float("inf")),
        "work_per_tick": report.work_per_tick,
        "delivered": dict(report.delivered_tuples),
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="scalar vs columnar engine throughput")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (small batches, no speedup "
                             "assertion)")
    parser.add_argument("--ticks", type=int, default=None)
    parser.add_argument("--quote-rate", type=int, default=None,
                        help="quotes tuples per tick")
    parser.add_argument("--news-rate", type=int, default=None,
                        help="news tuples per tick")
    parser.add_argument("--symbols", type=int, default=None,
                        help="distinct join keys")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default=None,
                        help="JSON artifact path (default: repo-root "
                             "BENCH_engine.json; smoke runs write to "
                             "benchmarks/out/ so they never clobber "
                             "the committed full-run record)")
    args = parser.parse_args(argv)

    if args.output is None:
        if args.smoke:
            out_dir = ROOT / "benchmarks" / "out"
            out_dir.mkdir(exist_ok=True)
            args.output = str(out_dir / "BENCH_engine_smoke.json")
        else:
            args.output = str(OUT_PATH)

    if args.ticks is None:
        args.ticks = 5 if args.smoke else 15
    if args.quote_rate is None:
        args.quote_rate = 600 if args.smoke else 7000
    if args.news_rate is None:
        args.news_rate = 200 if args.smoke else 3000
    if args.symbols is None:
        args.symbols = 30 if args.smoke else 300

    quote_batches = generate_batches(
        "quotes", args.quote_rate, args.ticks, args.seed,
        lambda rng, n: quotes_rows(rng, n, args.symbols))
    news_batches = generate_batches(
        "news", args.news_rate, args.ticks, args.seed + 1,
        lambda rng, n: news_rows(rng, n, args.symbols))
    # Median price as the select cut (~0.5 selectivity), p99 for the
    # post-join "hot" filter (sinks stay selective).
    prices = np.array([t.payload["price"]
                       for batch in quote_batches.values()
                       for t in batch])
    thresholds = (float(np.median(prices)),
                  float(np.percentile(prices, 99)))

    engines, results = {}, {}
    for backend in ("scalar", "columnar"):
        engines[backend], results[backend] = run_backend(
            backend, quote_batches, news_batches, thresholds,
            args.ticks)

    # Differential sanity at benchmark scale: identical semantics.
    scalar, columnar = engines["scalar"], engines["columnar"]
    assert scalar.report == columnar.report, "reports diverged"
    assert scalar.measured_loads() == columnar.measured_loads(), (
        "measured loads diverged")
    for query_id in scalar.results:
        assert (scalar.results[query_id]
                == columnar.results[query_id]), (
            f"result log of {query_id} diverged")

    speedup = (results["scalar"]["seconds"]
               / results["columnar"]["seconds"])
    rows = [
        [r["backend"], r["seconds"], r["tuples_per_sec"],
         r["work_per_tick"], sum(r["delivered"].values())]
        for r in results.values()
    ]
    per_tick = args.quote_rate + args.news_rate
    print(format_table(
        ["backend", "seconds", "tuples/s", "work/tick", "delivered"],
        rows, precision=2,
        title=(f"Engine throughput — {per_tick} tuples/tick × "
               f"{args.ticks} ticks, select-join, "
               f"{args.symbols} join keys")))
    print(f"columnar speedup: {speedup:.2f}×")

    document = {
        "benchmark": "engine_throughput",
        "mode": "smoke" if args.smoke else "full",
        "workload": {
            "shape": "select-join (shared subgraph, 2 queries)",
            "tuples_per_tick": per_tick,
            "ticks": args.ticks,
            "join_keys": args.symbols,
            "join_window": 2,
            "seed": args.seed,
        },
        "results": list(results.values()),
        "speedup": speedup,
    }
    Path(args.output).write_text(
        json.dumps(document, indent=2) + "\n")
    print(f"wrote {args.output}")

    # Both backends must do real, identical work; at full scale the
    # columnar backend must clear the 5x acceptance bar.
    assert results["scalar"]["source_tuples"] == per_tick * args.ticks
    if not args.smoke:
        assert speedup >= 5.0, (
            f"columnar speedup {speedup:.2f}x below the 5x bar")
    return 0


if __name__ == "__main__":
    sys.exit(main())
