"""Open-system simulation throughput and SLA latency.

Drives a 50k-arrival Poisson workload through the event-driven
:class:`~repro.sim.SimulationDriver` — subscription lifecycles on,
latency probe attached — and measures event-loop throughput
(events/sec, arrivals/sec) plus end-to-end delivery-latency
percentiles from the probe's bounded-work engine.  Standalone so CI
can smoke it without pytest:

    python benchmarks/bench_open_system.py            # 50k arrivals
    python benchmarks/bench_open_system.py --smoke    # CI-sized

Results are printed, written to ``benchmarks/out/open_system.txt``,
and seeded into ``BENCH_sim.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.dsms.streams import SyntheticStream  # noqa: E402
from repro.service import ServiceBuilder  # noqa: E402
from repro.sim import SimulationDriver, SubscriptionOptions  # noqa: E402
from repro.utils.tables import format_table  # noqa: E402

OUT_DIR = Path(__file__).parent / "out"
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_sim.json"


def build_driver(args, batch_arrivals: bool = True,
                 pump: bool = False) -> SimulationDriver:
    service = (ServiceBuilder()
               .with_sources(SyntheticStream("s", rate=args.stream_rate,
                                             seed=args.seed))
               .with_capacity(args.capacity)
               .with_mechanism(args.mechanism)
               .with_ticks_per_period(args.ticks)
               .with_selection("fast")
               .build())
    return SimulationDriver(
        service,
        arrivals=(f"poisson:rate={args.arrival_rate},"
                  f"limit={args.arrivals},seed={args.seed}"),
        subscriptions=SubscriptionOptions(seed=args.seed),
        probe="fifo",
        batch_arrivals=batch_arrivals,
        pump=pump,
    )


def compare_dispatch(args, periods: int) -> int:
    """Batched vs per-event dispatch: same results, batched faster.

    Runs the identical workload through both dispatch paths and
    asserts (a) equivalence — identical revenue, admissions and event
    counts — and (b) that the batched fast path actually wins on
    throughput, so a regression that quietly disables batching fails
    CI instead of shipping.
    """
    results = {}
    for label, batch in (("batched", True), ("per-event", False)):
        driver = build_driver(args, batch_arrivals=batch)
        started = time.perf_counter()
        reports = driver.run(periods)
        elapsed = time.perf_counter() - started
        results[label] = {
            "seconds": elapsed,
            "events_per_sec": driver.events_processed / elapsed,
            "events_processed": driver.events_processed,
            "admitted": sum(len(r.admitted) for r in reports),
            "revenue": driver.total_revenue(),
        }
    batched, legacy = results["batched"], results["per-event"]
    speedup = batched["events_per_sec"] / legacy["events_per_sec"]
    table = format_table(
        ["metric", "batched", "per-event"],
        [
            ["seconds", batched["seconds"], legacy["seconds"]],
            ["events/s", batched["events_per_sec"],
             legacy["events_per_sec"]],
            ["events", batched["events_processed"],
             legacy["events_processed"]],
            ["admitted", batched["admitted"], legacy["admitted"]],
            ["revenue", batched["revenue"], legacy["revenue"]],
        ],
        precision=2,
        title=(f"Dispatch comparison — {args.arrivals} arrivals, "
               f"speedup {speedup:.2f}x"))
    print(table)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "dispatch_compare.json").write_text(json.dumps({
        "results": results, "speedup": speedup}, indent=2) + "\n")

    # Equivalence is exact; the speed assertion is deliberately just
    # "faster", not a ratio, to stay robust on noisy CI runners.
    assert batched["revenue"] == legacy["revenue"]
    assert batched["admitted"] == legacy["admitted"]
    assert batched["events_processed"] == legacy["events_processed"]
    assert speedup > 1.0, (
        f"batched dispatch is not faster than per-event "
        f"({speedup:.2f}x)")
    return 0


def compare_pump(args, periods: int) -> int:
    """Columnar pump vs batched dispatch: same results, pump faster.

    The pump's admissibility contract, executed: identical period
    reports (dataclass reprs, which recurse through every admitted /
    rejected / expired entry and every revenue float), identical event
    counts, and at least parity on throughput.  A regression that
    breaks row accounting, or quietly drops the columnar boundary,
    fails here instead of shipping.
    """
    results = {}
    reports_by_label = {}
    for label, pump in (("pump", True), ("batched", False)):
        driver = build_driver(args, pump=pump)
        started = time.perf_counter()
        reports = driver.run(periods)
        elapsed = time.perf_counter() - started
        reports_by_label[label] = repr(reports)
        results[label] = {
            "seconds": elapsed,
            "events_per_sec": driver.events_processed / elapsed,
            "events_processed": driver.events_processed,
            "admitted": sum(len(r.admitted) for r in reports),
            "revenue": driver.total_revenue(),
        }
        if pump:
            results[label]["pump"] = driver.metrics_snapshot()["pump"]
    pumped, batched = results["pump"], results["batched"]
    speedup = pumped["events_per_sec"] / batched["events_per_sec"]
    table = format_table(
        ["metric", "pump", "batched"],
        [
            ["seconds", pumped["seconds"], batched["seconds"]],
            ["events/s", pumped["events_per_sec"],
             batched["events_per_sec"]],
            ["events", pumped["events_processed"],
             batched["events_processed"]],
            ["admitted", pumped["admitted"], batched["admitted"]],
            ["revenue", pumped["revenue"], batched["revenue"]],
        ],
        precision=2,
        title=(f"Pump comparison — {args.arrivals} arrivals, "
               f"speedup {speedup:.2f}x"))
    print(table)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "pump_compare.json").write_text(json.dumps({
        "results": results, "speedup": speedup}, indent=2) + "\n")

    assert reports_by_label["pump"] == reports_by_label["batched"], (
        "pump reports diverge from batched dispatch")
    assert (pumped["events_processed"]
            == batched["events_processed"])
    assert speedup > 1.0, (
        f"columnar pump is not faster than batched dispatch "
        f"({speedup:.2f}x)")
    return 0


def compare_wal(args, periods: int) -> int:
    """WAL on vs off: identical results, bounded overhead.

    Durability's admissibility contract, executed: a run logging every
    settle window to a write-ahead log (``--wal-fsync`` policy,
    compaction every 64 periods) must produce byte-identical period
    reports and revenue, and stay within 15% of the bare event loop's
    events/s — the budget ISSUE'd for the batched-fsync default.  The
    result lands in the ``wal`` section of ``BENCH_sim.json``.
    """
    import shutil
    import tempfile

    results = {}
    reports_by_label = {}
    drivers_by_label = {}
    samples_by_label = {"no-wal": [], "wal": []}
    wal_stats = None
    compaction = None
    repeats = max(1, int(args.repeats))
    # Repeats are interleaved (no-wal, wal, no-wal, wal, ...) and the
    # verdict uses the median of each label, so neither one-off
    # scheduling noise nor slow frequency drift across the whole
    # comparison can set the overhead number.
    for repeat in range(repeats):
        for label in ("no-wal", "wal"):
            driver = build_driver(args)
            log = None
            wal_dir = None
            if label == "wal":
                from repro.wal import WriteAheadLog

                wal_dir = tempfile.mkdtemp(prefix="bench-wal-")
                log = WriteAheadLog.create(
                    wal_dir, driver.snapshot(), fsync=args.wal_fsync,
                    compact_every=0)
                driver.attach_wal(log)
            started = time.perf_counter()
            reports = driver.run(periods)
            samples_by_label[label].append(time.perf_counter() - started)
            if log is not None:
                log.sync()
                wal_stats = log.stats_snapshot()
                if repeat == repeats - 1:
                    # Compaction is timed separately, once: its cost
                    # is a full state snapshot (O(run history) today —
                    # see the ROADMAP durability follow-ons), so
                    # folding it into the per-event throughput figure
                    # would report a number that depends on the
                    # compaction cadence rather than on the log.
                    from repro.wal import list_snapshots

                    snapshot = driver.snapshot()
                    compact_started = time.perf_counter()
                    log.compact(snapshot, driver.period)
                    compact_elapsed = (time.perf_counter()
                                       - compact_started)
                    _, ckpt = list_snapshots(wal_dir)[-1]
                    compaction = {
                        "seconds": compact_elapsed,
                        "period": driver.period,
                        "snapshot_bytes": ckpt.stat().st_size,
                    }
                log.close()
                shutil.rmtree(wal_dir, ignore_errors=True)
            reports_by_label[label] = repr(reports)
            drivers_by_label[label] = driver
    for label in ("no-wal", "wal"):
        driver = drivers_by_label[label]
        samples = samples_by_label[label]
        elapsed = statistics.median(samples)
        results[label] = {
            "seconds": elapsed,
            "seconds_samples": samples,
            "events_per_sec": driver.events_processed / elapsed,
            "events_processed": driver.events_processed,
            "admitted": sum(
                len(r.admitted) for r in driver.reports),
            "revenue": driver.total_revenue(),
        }
    bare, logged = results["no-wal"], results["wal"]
    overhead = (bare["events_per_sec"] / logged["events_per_sec"]) - 1.0
    table = format_table(
        ["metric", "no-wal", "wal"],
        [
            ["seconds", bare["seconds"], logged["seconds"]],
            ["events/s", bare["events_per_sec"],
             logged["events_per_sec"]],
            ["events", bare["events_processed"],
             logged["events_processed"]],
            ["revenue", bare["revenue"], logged["revenue"]],
            ["wal records", "-", wal_stats["records"]],
            ["wal fsyncs", "-", wal_stats["fsyncs"]],
            ["wal MiB", "-",
             wal_stats["appended_bytes"] / (1024 * 1024)],
            ["compaction s", "-", compaction["seconds"]],
            ["snapshot MiB", "-",
             compaction["snapshot_bytes"] / (1024 * 1024)],
        ],
        precision=2,
        title=(f"WAL comparison — {args.arrivals} arrivals, "
               f"fsync {args.wal_fsync}, overhead "
               f"{overhead * 100.0:.1f}%"))
    print(table)
    document = {
        "arrivals": args.arrivals,
        "fsync": args.wal_fsync,
        "results": results,
        "overhead": overhead,
        "wal_stats": wal_stats,
        "compaction": compaction,
    }
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "wal_compare.json").write_text(
        json.dumps(document, indent=2) + "\n")
    if not args.smoke and BENCH_JSON.is_file():
        # Merge, don't clobber: the wal section rides the seeded
        # full-run BENCH_sim.json next to the headline numbers.
        seeded = json.loads(BENCH_JSON.read_text())
        seeded["wal"] = document
        BENCH_JSON.write_text(json.dumps(seeded, indent=2) + "\n")
        print(f"merged wal section into {BENCH_JSON}")

    assert reports_by_label["wal"] == reports_by_label["no-wal"], (
        "WAL-attached run diverges from the bare run")
    assert logged["revenue"] == bare["revenue"]
    # The 15% budget is judged on the full-size run, where fixed
    # costs (genesis snapshot, file creation) amortize and a shared
    # runner's scheduling noise stops dominating the seconds column;
    # smoke runs get a loose sanity bound only.
    budget = 0.40 if args.smoke else 0.15
    assert overhead <= budget, (
        f"WAL overhead {overhead * 100.0:.1f}% exceeds the "
        f"{budget * 100.0:.0f}% budget")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="event throughput + SLA latency of the open-system "
                    "simulation runtime")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (small counts, fast exit)")
    parser.add_argument("--arrivals", type=int, default=None,
                        help="total Poisson arrivals "
                             "(default 50000; smoke 2000)")
    parser.add_argument("--arrival-rate", type=float, default=50.0,
                        help="mean arrivals per engine tick")
    parser.add_argument("--capacity", type=float, default=150.0)
    parser.add_argument("--stream-rate", type=float, default=2.0,
                        help="data-stream tuples per tick")
    parser.add_argument("--ticks", type=int, default=20,
                        help="engine ticks per subscription period")
    parser.add_argument("--mechanism", default="GV")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--compare-dispatch", action="store_true",
                        help="run batched vs per-event dispatch, "
                             "assert equivalence and speedup")
    parser.add_argument("--compare-pump", action="store_true",
                        help="run columnar pump vs batched dispatch, "
                             "assert equivalence and speedup")
    parser.add_argument("--pump", action="store_true",
                        help="consume arrivals through the columnar "
                             "pump (numpy row blocks)")
    parser.add_argument("--compare-wal", action="store_true",
                        help="run WAL-attached vs bare, assert "
                             "equivalence and <=15%% overhead")
    parser.add_argument("--wal-fsync", default="batch:256",
                        help="fsync policy for --compare-wal "
                             "(default batch:256)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions; every sample is "
                             "recorded, the median is the headline")
    args = parser.parse_args(argv)

    if args.arrivals is None:
        args.arrivals = 20_000 if (
            args.compare_dispatch or args.compare_pump
            or args.compare_wal) else (
            2_000 if args.smoke else 50_000)
    # Enough boundaries to consume every arrival, plus one spare so
    # the tail of the stream still gets auctioned.
    periods = int(args.arrivals / (args.arrival_rate * args.ticks)) + 2

    if args.compare_dispatch:
        return compare_dispatch(args, periods)
    if args.compare_pump:
        return compare_pump(args, periods)
    if args.compare_wal:
        return compare_wal(args, periods)

    # Every repeat runs the identical (deterministic) workload on a
    # fresh driver; all samples are recorded, the median is the
    # headline number — a single lucky (or unlucky) run cannot set it.
    repeats = max(1, int(args.repeats))
    samples = []
    for _ in range(repeats):
        driver = build_driver(args, pump=args.pump)
        started = time.perf_counter()
        reports = driver.run(periods)
        samples.append(time.perf_counter() - started)
    elapsed = statistics.median(samples)

    snapshot = driver.metrics_snapshot()
    percentiles = snapshot["latency"]
    admitted = sum(len(r.admitted) for r in reports)
    rejected = sum(len(r.rejected) for r in reports)
    expired = sum(len(r.expired) for r in reports)
    result = {
        "workload": {
            "arrivals": args.arrivals,
            "arrival_rate": args.arrival_rate,
            "periods": periods,
            "ticks_per_period": args.ticks,
            "capacity": args.capacity,
            "mechanism": args.mechanism,
            "subscriptions": "day/week/month",
            "seed": args.seed,
        },
        "seconds": elapsed,
        "samples": {
            "seconds": samples,
            "events_per_sec": [driver.events_processed / sample
                               for sample in samples],
        },
        "repeats": repeats,
        "pump": bool(args.pump),
        "events_processed": driver.events_processed,
        "events_per_sec": driver.events_processed / elapsed,
        "arrivals_per_sec": args.arrivals / elapsed,
        "admitted": admitted,
        "rejected": rejected,
        "expired": expired,
        "revenue": driver.total_revenue(),
        "latency_ticks": dict(percentiles),
        "max_queue": snapshot["max_queue"],
        "smoke": bool(args.smoke),
    }
    if args.pump:
        result["pump_counters"] = snapshot["pump"]

    # Smoke runs go to the out dir (like the sibling benchmarks), so
    # CI never clobbers the seeded full-run BENCH_sim.json.
    bench_json = (OUT_DIR / "BENCH_sim_smoke.json" if args.smoke
                  else BENCH_JSON)

    table = format_table(
        ["metric", "value"],
        [
            ["arrivals", args.arrivals],
            ["periods", periods],
            ["seconds (median)", elapsed],
            ["samples (s)", " ".join(f"{s:.2f}" for s in samples)],
            ["events/s", result["events_per_sec"]],
            ["arrivals/s", result["arrivals_per_sec"]],
            ["admitted", admitted],
            ["rejected", rejected],
            ["expired", expired],
            ["revenue", result["revenue"]],
            ["latency p50 (ticks)", percentiles["p50"]],
            ["latency p95 (ticks)", percentiles["p95"]],
            ["latency p99 (ticks)", percentiles["p99"]],
            ["max probe queue", result["max_queue"]],
        ],
        precision=2,
        title=(f"Open-system simulation — {args.arrivals} Poisson "
               f"arrivals, {args.mechanism}, capacity "
               f"{args.capacity:g}"))
    print(table)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "open_system.txt").write_text(table + "\n")
    bench_json.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {bench_json}")

    # Sanity, not speed, assertions: the run must have consumed the
    # whole arrival stream, admitted real work, and measured latency.
    assert driver.events_processed > args.arrivals
    assert admitted > 0 and expired > 0
    assert result["revenue"] > 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
