"""Multi-period subscription auctions (Section VII).

Offers day / week / month subscription categories, partitions capacity
across them, and runs an independent CAT auction per category each
day, reclaiming the capacity of expiring subscriptions — the paper's
proposed extension to heterogeneous subscription lengths.

Run:  python examples/subscriptions_demo.py
"""

import numpy as np

from repro.cloud import (
    DEFAULT_CATEGORIES,
    SubscriptionRequest,
    SubscriptionScheduler,
)
from repro.core import make_mechanism
from repro.core.model import Operator, Query
from repro.utils.tables import format_table


def main() -> None:
    rng = np.random.default_rng(3)
    # A catalogue of twelve operators; queries draw 1–3 each, so hot
    # operators get shared across subscribers.
    operators = {
        f"op{i}": Operator(f"op{i}", float(rng.integers(1, 6)))
        for i in range(12)
    }
    scheduler = SubscriptionScheduler(
        operators,
        total_capacity=30.0,
        mechanism_factory=lambda name: make_mechanism("CAT"),
        categories=DEFAULT_CATEGORIES,
    )

    categories = [c.name for c in DEFAULT_CATEGORIES]
    next_id = 0
    rows = []
    for day in range(1, 15):
        requests = []
        for _ in range(int(rng.integers(2, 6))):
            count = int(rng.integers(1, 4))
            picks = rng.choice(12, size=count, replace=False)
            query = Query(
                query_id=f"s{next_id}",
                operator_ids=tuple(f"op{int(i)}" for i in picks),
                bid=float(np.round(rng.uniform(5, 60), 2)),
                owner=f"client{next_id}",
            )
            category = categories[int(rng.integers(0, len(categories)))]
            requests.append(SubscriptionRequest(query, category))
            next_id += 1
        result = scheduler.run_day(requests)
        rows.append([
            day,
            len(requests),
            len(result.admitted),
            len(result.expired),
            result.revenue,
            scheduler.occupied_capacity(),
            len(scheduler.active),
        ])

    print(format_table(
        ["day", "requests", "admitted", "expired", "revenue",
         "occupied", "active subs"],
        rows, precision=2,
        title="Two weeks of day/week/month subscription auctions "
              "(capacity 30, CAT per category)"))
    print()
    print(f"total revenue over the fortnight: "
          f"${scheduler.total_revenue():.2f}")
    print("Each category's auction is independently strategyproof, so")
    print("the composed scheme remains bid-strategyproof (Section VII);")
    print("gaming *category choice* across periods stays open, as the")
    print("paper notes.")


if __name__ == "__main__":
    main()
