"""Quickstart: the paper's Example 1 under every mechanism.

Builds the three-query instance of Figures 1–2 (operators A–E, one
shared operator, server capacity 10) and runs every admission
mechanism on it, printing winners, payments, and the Section VI
metrics.  The CAR/CAF/CAT rows reproduce the worked payments of
Sections IV-A/B/C ($10+$60, $30+$40, $50+$60).

Run:  python examples/quickstart.py
"""

from repro import make_mechanism
from repro.utils.tables import format_table
from repro.workload import example1


def main() -> None:
    instance = example1()
    print("Example 1: queries q1={A,B} q2={A,C} q3={D,E}, "
          f"capacity {instance.capacity:g}")
    print(f"bids: " + ", ".join(
        f"{q.query_id}=${q.bid:g}" for q in instance.queries))
    print()

    rows = []
    for name in ("CAR", "CAF", "CAF+", "CAT", "CAT+", "GV",
                 "Two-price", "OPT_C"):
        kwargs = {"seed": 0} if name == "Two-price" else {}
        outcome = make_mechanism(name, **kwargs).run(instance)
        payments = ", ".join(
            f"{qid}=${outcome.payment(qid):.2f}"
            for qid in sorted(outcome.winner_ids)) or "(nobody)"
        rows.append([
            name,
            ",".join(sorted(outcome.winner_ids)) or "-",
            payments,
            outcome.profit,
            f"{100 * outcome.utilization:.0f}%",
        ])
    print(format_table(
        ["mechanism", "winners", "payments", "profit", "util"],
        rows, precision=2))

    print()
    print("Note how CAT extracts the most profit here while remaining")
    print("strategyproof AND sybil-immune — the paper's recommendation.")


if __name__ == "__main__":
    main()
