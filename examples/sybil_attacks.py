"""The paper's sybil attacks, demonstrated end to end (Section V).

1. The fair-share attack (Theorem 15): fake low-value queries sharing
   the attacker's operators deflate her CAF fair-share load and her
   payment.  The same attack buys nothing against CAT.
2. The Table II attack (Theorem 17): a fake high-density sliver of
   load flips CAT+'s outcome in the attacker's favour.
3. The Two-price payment-reduction attack (Section V-C) against the
   coin-partition variant.

Run:  python examples/sybil_attacks.py
"""

from repro.core import make_mechanism
from repro.core.two_price import TwoPrice
from repro.gametheory import (
    assess_attack,
    cat_plus_table2_attack,
    fair_share_attack,
    search_sybil_attack,
    two_price_coin_attack,
)
from repro.workload import example1


def demo_fair_share_attack() -> None:
    print("=" * 64)
    print("1. Fair-share attack on CAF (Theorem 15)")
    instance = example1()
    attack = fair_share_attack(instance, "q3", num_fakes=6)
    for mechanism_name in ("CAF", "CAT"):
        assessment = assess_attack(
            make_mechanism(mechanism_name), instance, attack)
        print(f"  vs {mechanism_name:4s}: payoff "
              f"{assessment.baseline_payoff:8.2f} -> "
              f"{assessment.attacked_payoff:8.2f}   "
              f"{'ATTACK PROFITS' if assessment.profitable else 'immune'}")


def demo_table2_attack() -> None:
    print("=" * 64)
    print("2. Table II attack on CAT+ (Theorem 17)")
    scenario = cat_plus_table2_attack(epsilon=1e-3)
    honest = make_mechanism("CAT+").run(scenario.honest_instance)
    print(f"  honest run: winners {sorted(honest.winner_ids)} "
          f"(user 2 loses, payoff 0)")
    attacked = make_mechanism("CAT+").run(
        scenario.attack.apply(scenario.honest_instance))
    print(f"  with fake 'user 3': winners {sorted(attacked.winner_ids)}, "
          f"user2 pays ${attacked.payment('u2'):.3f}, "
          f"fake pays ${attacked.payment('u3'):.3f}")
    assessment = assess_attack(
        make_mechanism("CAT+"), scenario.honest_instance, scenario.attack)
    print(f"  user 2's payoff: {assessment.baseline_payoff:.2f} -> "
          f"{assessment.attacked_payoff:.2f}  (gain "
          f"{assessment.gain:+.2f})")
    cat_assessment = assess_attack(
        make_mechanism("CAT"), scenario.honest_instance, scenario.attack)
    print(f"  same attack vs CAT: gain {cat_assessment.gain:+.2f} "
          f"(immune, Theorem 19)")


def demo_two_price_attack() -> None:
    print("=" * 64)
    print("3. Payment reduction vs coin-partition Two-price (Sec. V-C)")
    scenario = two_price_coin_attack(num_low=6, epsilon=0.01)
    runs = 2000
    before = after = fake = 0.0
    for seed in range(runs):
        mech = TwoPrice(seed=seed, partition_mode="coin")
        before += mech.run(scenario.honest_instance).payment("u1")
        outcome = mech.run(
            scenario.attack.apply(scenario.honest_instance))
        after += outcome.payment("u1")
        fake += outcome.payment("fake")
    print(f"  attacker's expected payment: {before / runs:.3f} -> "
          f"{after / runs:.3f} (analytic "
          f"{scenario.expected_payment_before:.3f} -> "
          f"{scenario.expected_payment_after:.3f})")
    print(f"  fakes' expected charges: {fake / runs:.4f} — the payment "
          f"drop is uncovered (characterization property 2 violated)")


def demo_cat_immunity_search() -> None:
    print("=" * 64)
    print("4. Randomized attack search against CAT (Theorem 19)")
    instance = example1()
    for attacker in ("q1", "q2", "q3"):
        found = search_sybil_attack(
            make_mechanism("CAT"), instance, attacker,
            attempts=100, seed=13)
        verdict = "no profitable attack found" if found is None else found
        print(f"  attacker {attacker}: {verdict}")


if __name__ == "__main__":
    demo_fair_share_attack()
    demo_table2_attack()
    demo_two_price_attack()
    demo_cat_immunity_search()
