"""Regenerate every table and figure of the paper's Section VI.

Equivalent to ``python -m repro.experiments``; scale is configurable
with environment variables:

    REPRO_SETS=5 REPRO_QUERIES=500 python examples/reproduce_figures.py

The committed reference numbers in EXPERIMENTS.md were produced with
REPRO_SETS=3 REPRO_QUERIES=300 (see DESIGN.md for the scaling
argument: capacities shrink proportionally so the capacity-to-demand
ratios match the paper's).

Run:  python examples/reproduce_figures.py
"""

from repro.experiments import full_report

if __name__ == "__main__":
    print(full_report().render())
