"""Open-system simulation: arrivals, subscriptions, SLA metrics.

The closed-loop examples submit batches in lockstep; this one runs the
*open system*: a Poisson arrival process feeds queries continuously, a
day/week/month subscription mix is auctioned per category at every
period boundary, expiring subscriptions release capacity and renew,
and a latency probe executes the admitted plans on a bounded work
budget to measure queue depth and delivery latency.  The run is
recorded into a ``repro/sim-trace`` document and replayed — the replay
reproduces the original byte-for-byte.

Run:  python examples/open_system.py
"""

import json
import tempfile
from pathlib import Path

from repro.cloud.subscriptions import SubscriptionCategory
from repro.dsms.streams import SyntheticStream
from repro.service import ServiceBuilder
from repro.sim import SimulationDriver, SubscriptionOptions
from repro.utils.tables import format_table


def build_driver(record: bool, arrivals: object) -> SimulationDriver:
    """An open-system driver over a freshly built service."""
    return (ServiceBuilder()
            .with_sources(SyntheticStream("s", rate=4.0, seed=11))
            .with_capacity(45.0)
            .with_mechanism("CAT")
            .with_ticks_per_period(15)
            .with_scheduler("fifo")          # latency probe policy
            .with_arrivals(arrivals)
            .with_subscriptions(SubscriptionOptions(
                categories=(
                    SubscriptionCategory("day", 1, 0.45),
                    SubscriptionCategory("week", 4, 0.35),
                    SubscriptionCategory("month", 12, 0.20),
                ),
                seed=11,
            ))
            .build_simulation(record=record))


def main() -> None:
    driver = build_driver(record=True, arrivals="poisson:rate=1.2,seed=11")
    reports = driver.run(10)

    rows = [
        [r.period, len(r.admitted), len(r.rejected), len(r.expired),
         len(r.renewed), r.revenue,
         0.0 if r.engine_utilization is None else r.engine_utilization]
        for r in reports
    ]
    print(format_table(
        ["period", "admitted", "rejected", "expired", "renewed",
         "revenue", "util"],
        rows, precision=2,
        title="Open system — Poisson arrivals, day/week/month "
              "subscriptions"))
    print(f"total revenue: {driver.total_revenue():.2f}")

    # SLA view from the latency probe (admitted plans on a bounded
    # ScheduledEngine work budget).
    percentiles = driver.latency_percentiles((50.0, 95.0, 99.0))
    metrics = driver.tick_metrics()
    print(f"probe: {len(metrics)} ticks, max queue "
          f"{max(m.queued for m in metrics)}, latency "
          f"p50 {percentiles[50.0]:.1f} / p95 {percentiles[95.0]:.1f} "
          f"/ p99 {percentiles[99.0]:.1f} ticks")

    # Record → replay: the trace is the run's whole workload.
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "run.trace.json"
        from repro.io import save_sim_trace

        save_sim_trace(driver.trace(), trace_path)
        document = json.loads(trace_path.read_text())
        print(f"\nrecorded {len(document['arrivals'])} arrivals "
              f"(schema {document['schema']} v{document['version']})")

        replay = build_driver(record=False,
                              arrivals=f"trace:path={trace_path}")
        replayed = replay.run(10)
        identical = all(
            (a.period, a.admitted, a.rejected, a.expired, a.renewed,
             a.revenue) ==
            (b.period, b.admitted, b.rejected, b.expired, b.renewed,
             b.revenue)
            for a, b in zip(reports, replayed)
        )
        print(f"replayed run identical to live run: {identical}")


if __name__ == "__main__":
    main()
