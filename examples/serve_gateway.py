"""The serving layer: an HTTP gateway in front of the auctions.

Demonstrates ``repro.serve`` end to end, all on a loopback socket:

1. stand up an :class:`AdmissionGateway` over a 2-shard federation —
   submissions, withdrawals, period settles, and reports all go over
   real HTTP/1.1 JSON;
2. drive it with the seeded load generator
   (:func:`repro.serve.run_load`) and read the measured client-side
   latency percentiles next to the server's own ``/metrics``;
3. trip the backpressure on purpose: a client past its token-bucket
   rate is answered ``429`` with a precise ``Retry-After``;
4. shut down gracefully — pending submissions are settled in one
   final auction before the socket closes, so nothing accepted is
   silently dropped.

Run:  python examples/serve_gateway.py
"""

import asyncio

from repro.cluster import FederatedAdmissionService
from repro.dsms import ContinuousQuery, SelectOperator, SyntheticStream
from repro.serve import (
    AdmissionGateway,
    GatewayClient,
    GatewayConfig,
    run_load,
)
from repro.sim.arrivals import pass_all


def client_query(qid: str, owner: str, bid: float,
                 cost: float) -> ContinuousQuery:
    # pass_all plans ride the compact 'select' wire codec — the only
    # plan shape a gateway accepts without the pickle opt-in.
    op = SelectOperator(f"sel_{qid}", "events", pass_all,
                        cost_per_tuple=cost, selectivity_estimate=1.0)
    return ContinuousQuery(qid, (op,), sink_id=op.op_id, bid=bid,
                           owner=owner)


def build_cluster() -> FederatedAdmissionService:
    return FederatedAdmissionService.build(
        num_shards=2,
        sources=[SyntheticStream("events", rate=4, seed=3)],
        capacity=25.0,
        mechanism="CAT",
        ticks_per_period=10,
        placement="round-robin",
    )


async def main() -> None:
    gateway = AdmissionGateway(
        build_cluster(),
        GatewayConfig(quiet=True, client_rate=500.0, client_burst=100))
    await gateway.start()
    host, port = gateway.address
    print(f"gateway listening on http://{host}:{port}")

    # -- 1. the request/response surface -------------------------------
    async with GatewayClient(host, port, client_id="alice") as client:
        for index, (bid, cost) in enumerate(
                [(80.0, 2.0), (55.0, 1.5), (30.0, 1.0)]):
            status, body = await client.submit(
                client_query(f"alice_q{index}", "alice", bid, cost))
            print(f"  submit {body['query_id']:<9} -> "
                  f"{status} shard={body['shard']}")
        status, body = await client.withdraw("alice_q2")
        print(f"  withdraw alice_q2 -> {status} "
              f"(pending now {body['pending']})")
        status, body = await client.tick()
        admitted = [qid for shard in body["report"]["shards"]
                    for qid in shard["admitted"]]
        print(f"  tick -> period {body['period']}, "
              f"admitted {sorted(admitted)}")

    # -- 2. seeded load + metrics ---------------------------------------
    result = await run_load(
        host, port, arrivals="poisson:rate=5,seed=9,stream=events",
        requests=60, concurrency=4, tick_every=20)
    print(f"\nloadgen: {result.completed}/{result.requests} ok at "
          f"{result.requests_per_s:.0f} req/s, "
          f"p50={result.latency_ms['p50']:.2f}ms "
          f"p99={result.latency_ms['p99']:.2f}ms")
    async with GatewayClient(host, port) as client:
        _status, metrics = await client.metrics()
    print(f"server: period={metrics['period']} "
          f"revenue={metrics['revenue']:.2f} shards="
          + str([(s['shard'], s['admitted']) for s in metrics['shards']]))

    # -- 3. backpressure on purpose -------------------------------------
    throttled = AdmissionGateway(
        build_cluster(),
        GatewayConfig(quiet=True, client_rate=1.0, client_burst=2))
    await throttled.start()
    async with GatewayClient(*throttled.address,
                             client_id="greedy") as client:
        statuses = []
        for index in range(4):
            status, _body = await client.submit(
                client_query(f"g{index}", "greedy", 20.0, 1.0))
            statuses.append(status)
        retry_after = client.last_headers.get("retry-after")
    print(f"\nburst of 4 at burst-limit 2: statuses={statuses} "
          f"(Retry-After: {retry_after}s)")
    await throttled.stop()

    # -- 4. graceful shutdown settles what's pending --------------------
    async with GatewayClient(host, port, client_id="late") as client:
        await client.submit(client_query("late_q", "late", 90.0, 1.0))
    pending = gateway.backend.pending_count()
    await gateway.stop()  # drains, then one final settle
    print(f"\nshutdown: {pending} pending settled in a final auction "
          f"(period now {gateway.backend.period}, "
          f"pending now {gateway.backend.pending_count()})")


if __name__ == "__main__":
    asyncio.run(main())
