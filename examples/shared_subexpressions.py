"""Building queries fluently and detecting shared subexpressions.

The paper's sharing premise: "many CQs are monitoring a few hot
streams, and many of the CQs are similar, but not identical."  Users
author queries independently (here, with :class:`QueryBuilder`); the
common-subexpression detector notices that their filter steps are the
same computation, rewrites them onto one operator, and the fair-share
loads — and therefore the CAF auction — change accordingly.

Run:  python examples/shared_subexpressions.py
"""

from repro.core import make_mechanism
from repro.core.loads import static_fair_share_load, total_load
from repro.dsms import QueryBuilder, QueryPlanCatalog, canonicalize
from repro.dsms.load import auction_instance_from_catalog
from repro.utils.tables import format_table

RATES = {"quotes": 10.0}


def build_queries():
    """Five analysts; three share the same 'hot volume' filter."""
    queries = []
    for index, (bid, threshold) in enumerate(
            [(60.0, 5000), (45.0, 5000), (30.0, 5000),
             (50.0, 9000), (20.0, 1000)]):
        query = (
            QueryBuilder(f"analyst{index}", bid=bid,
                         owner=f"analyst{index}")
            .source("quotes")
            .where(lambda t, th=threshold: t.value("volume") > th,
                   cost=0.8, selectivity=0.4,
                   share_key=f"volume>{threshold}")
            .sliding_aggregate("price", max, window=5, cost=0.5)
            .build())
        queries.append(query)
    return queries


def main() -> None:
    raw = build_queries()
    report = canonicalize(raw)
    print(f"common-subexpression detection merged "
          f"{report.merged_operators} operator(s)")

    raw_instance = auction_instance_from_catalog(
        QueryPlanCatalog(build_queries()), RATES, capacity=20.0)
    shared_instance = auction_instance_from_catalog(
        QueryPlanCatalog(report.queries), RATES, capacity=20.0)

    rows = []
    for query in raw_instance.queries:
        qid = query.query_id
        rows.append([
            qid,
            f"${query.bid:g}",
            total_load(raw_instance, query),
            static_fair_share_load(raw_instance, query),
            static_fair_share_load(
                shared_instance, shared_instance.query(qid)),
        ])
    print()
    print(format_table(
        ["query", "bid", "total load", "fair share (raw)",
         "fair share (shared)"],
        rows, precision=2,
        title="Loads before/after sharing detection"))

    print()
    for label, instance in (("without sharing detection", raw_instance),
                            ("with sharing detection", shared_instance)):
        outcome = make_mechanism("CAF").run(instance)
        print(f"CAF {label}: winners "
              f"{sorted(outcome.winner_ids)}, profit "
              f"${outcome.profit:.2f}, demand "
              f"{instance.total_demand():.1f}/{instance.capacity:g}")
    print()
    print("Detected sharing lowers the analysts' fair-share loads and")
    print("shrinks total demand, so more queries fit the same server.")


if __name__ == "__main__":
    main()
