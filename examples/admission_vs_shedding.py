"""Query-level admission control vs. tuple-level load shedding.

The paper's introduction positions its contribution against the
classic DSMS overload response: "most data stream admission control
(load shedding) algorithms work at the tuple level ... we believe that
focusing on the query level is equally important."  This example makes
the contrast concrete on one overloaded workload:

* **admission control** (CAT auction): the high-value queries win, get
  a complete, undegraded result stream, and the provider collects
  revenue;
* **tuple shedding** (admit everyone, drop the overload fraction):
  every query runs, every query's results are silently degraded, and
  nobody pays anything.

Run:  python examples/admission_vs_shedding.py
"""

from repro.core import make_mechanism
from repro.dsms import (
    ContinuousQuery,
    SelectOperator,
    run_shedding_comparison,
)
from repro.dsms.streams import SyntheticStream
from repro.utils.tables import format_table

TICKS = 40
RATE = 12
CAPACITY = 30.0


def make_sources():
    return [SyntheticStream("events", rate=RATE, poisson=False, seed=3)]


def make_queries():
    queries = []
    for index, bid in enumerate([80.0, 55.0, 35.0, 20.0, 10.0]):
        sel = SelectOperator(
            f"filter_{index}", "events", lambda t: True,
            cost_per_tuple=1.0, selectivity_estimate=1.0)
        queries.append(ContinuousQuery(
            f"client_{index}", (sel,), sink_id=f"filter_{index}",
            bid=bid, owner=f"client_{index}"))
    return queries


def main() -> None:
    queries = make_queries()
    demand = RATE * len(queries)
    print(f"{len(queries)} clients, per-query load {RATE}, total demand "
          f"{demand} vs. capacity {CAPACITY:g} "
          f"({demand / CAPACITY:.1f}x overloaded)")
    comparison = run_shedding_comparison(
        make_sources, queries, capacity=CAPACITY,
        mechanism=make_mechanism("CAT"), ticks=TICKS)

    full_stream = RATE * TICKS
    rows = []
    for query in queries:
        qid = query.query_id
        admitted = qid in comparison.admission_winner_ids
        rows.append([
            qid,
            f"${query.bid:g}",
            ("%d (100%%)" % full_stream) if admitted else "rejected",
            "%d (%.0f%%)" % (
                comparison.shedding_delivered[qid],
                100 * comparison.shedding_delivered[qid] / full_stream),
        ])
    print()
    print(format_table(
        ["client", "bid", "admission control delivers",
         "tuple shedding delivers"],
        rows,
        title=f"Results over {TICKS} ticks "
              f"(full stream = {full_stream} tuples)"))
    print()
    print(f"admission-control revenue: "
          f"${comparison.admission_revenue:.2f}   "
          f"(shedding collects $0.00)")
    print(f"tuples dropped by the shedder: "
          f"{comparison.shedding_dropped}")
    print()
    print("Query-level admission gives paying clients a complete result")
    print("stream and the provider a revenue stream; tuple-level")
    print("shedding silently degrades every client equally, for free.")


if __name__ == "__main__":
    main()
