"""Energy-aware capacity planning (Section VII).

"It might be more profitable not to fully utilize the available
capacity": sweeps candidate capacities for a stock-monitoring tenant
mix, prices each with an energy model, and reports the most beneficial
capacity per mechanism — cheap energy favours big servers, pricey
energy favours smaller, better-priced ones.

Run:  python examples/capacity_planning.py
"""

from repro.cloud import EnergyModel, evaluate_capacities
from repro.core import make_mechanism
from repro.utils.tables import format_table
from repro.workload import stock_monitoring


def main() -> None:
    instance = stock_monitoring(num_traders=40, capacity=120.0, seed=7)
    candidates = [40, 60, 80, 100, 120, 150, 180]
    print(f"tenant mix: {instance.num_queries} trader queries, total "
          f"demand {instance.total_demand():.0f} units")

    for label, model in [
        ("cheap energy (idle 0.05/u, dynamic 0.10/u)", EnergyModel()),
        ("pricey energy (idle 1.50/u, dynamic 0.50/u)",
         EnergyModel(idle_cost_per_unit=1.5, dynamic_cost_per_unit=0.5)),
    ]:
        print()
        print(label)
        rows = []
        for name in ("CAT", "CAF", "GV"):
            choices = evaluate_capacities(
                make_mechanism(name), instance, candidates, model)
            best = max(choices, key=lambda c: c.net_profit)
            rows.append([
                name, best.capacity, best.profit, best.energy_cost,
                best.net_profit,
            ])
        print(format_table(
            ["mechanism", "best capacity", "revenue", "energy",
             "net profit"],
            rows, precision=2))

    print()
    print("full CAT sweep under pricey energy:")
    model = EnergyModel(idle_cost_per_unit=1.5, dynamic_cost_per_unit=0.5)
    rows = [
        [c.capacity, c.profit, c.energy_cost, c.net_profit]
        for c in evaluate_capacities(
            make_mechanism("CAT"), instance, candidates, model)
    ]
    print(format_table(
        ["capacity", "revenue", "energy", "net profit"], rows,
        precision=2))


if __name__ == "__main__":
    main()
