"""Stock-market monitoring: the full admission-service loop.

The paper's motivating application (Section II): traders submit
continuous queries over a stock-quote stream and a news stream.  Hot
operators — the high-value-trade filter and the public-company news
filter — are shared by many traders; each trader adds a private join.
The service runs a CAT admission auction at the start of each
subscription period, transitions the engine (holding tuples at the
connection points), executes the admitted queries, and bills winners.

Built on the composable ``repro.service`` API: the service is
assembled by a ``ServiceBuilder``, and the revenue audit trail is an
``on_billing`` lifecycle hook rather than post-hoc inspection.

Run:  python examples/stock_monitoring.py
"""

import numpy as np

from repro.dsms import (
    ContinuousQuery,
    JoinOperator,
    SelectOperator,
    news_stories,
    stock_quotes,
)
from repro.service import ServiceBuilder
from repro.utils.tables import format_table


def shared_filters():
    """The hot shared subnetwork (fresh objects per query; the engine
    merges them by operator id)."""
    high_value = SelectOperator(
        "sel_high_value", "quotes",
        lambda t: t.value("volume") > 5_000,
        cost_per_tuple=0.3, selectivity_estimate=0.5)
    public_news = SelectOperator(
        "sel_public_news", "news",
        lambda t: t.value("public"),
        cost_per_tuple=0.4, selectivity_estimate=0.8)
    return high_value, public_news


def trader_query(index: int, bid: float) -> ContinuousQuery:
    """A trader's CQ: shared filters + a private symbol/company join."""
    high_value, public_news = shared_filters()
    join = JoinOperator(
        f"join_trader_{index}",
        "sel_high_value", "sel_public_news",
        left_key=lambda t: t.value("symbol"),
        right_key=lambda t: t.value("company"),
        window=4, cost_per_tuple=0.5, selectivity_estimate=0.2)
    return ContinuousQuery(
        query_id=f"trader_{index}",
        operators=(high_value, public_news, join),
        sink_id=join.op_id,
        bid=bid,
        owner=f"trader_{index}",
    )


def main() -> None:
    rng = np.random.default_rng(7)
    audit: list[str] = []

    service = (ServiceBuilder()
               .with_sources(stock_quotes(rate=20, seed=1),
                             news_stories(rate=6, seed=2))
               .with_capacity(30.0)
               .with_mechanism("CAT")
               .with_ticks_per_period(40)
               .on_billing(lambda _svc, period, revenue, outcome: audit.append(
                   f"  period {period}: billed {len(outcome.winner_ids)} "
                   f"winners, ${revenue:.2f} ({outcome.mechanism})"))
               .build())

    rows = []
    next_trader = 0
    for period in range(1, 4):
        arrivals = int(rng.integers(4, 8))
        for _ in range(arrivals):
            bid = float(np.round(rng.uniform(5, 100), 2))
            service.submit(trader_query(next_trader, bid))
            next_trader += 1
        report = service.run_period()
        rows.append([
            period,
            arrivals,
            len(report.admitted),
            len(report.rejected),
            report.revenue,
            f"{100 * (report.engine_utilization or 0):.0f}%",
        ])

    print(format_table(
        ["period", "new submissions", "admitted", "rejected",
         "revenue", "engine util"],
        rows, precision=2,
        title="Stock-monitoring admission service, CAT auction"))
    print()
    print(f"total revenue: ${service.total_revenue():.2f}")
    print("billing hook audit trail:")
    print("\n".join(audit))

    print()
    loads = service.measured_loads()
    shared = {op: round(load, 2) for op, load in loads.items()
              if op.startswith("sel_")}
    print(f"measured shared-operator loads (work/tick): {shared}")
    alerts = sum(len(r) for r in service.engine.results.values())
    print(f"alerts delivered across all traders: {alerts}")


if __name__ == "__main__":
    main()
