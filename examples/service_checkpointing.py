"""Checkpoint/restore and lifecycle hooks on the AdmissionService.

Demonstrates the composable ``repro.service`` API end to end:

1. assemble a service from a mechanism *spec string*
   (``"two-price:seed=7"`` — parsed and validated against the
   registry);
2. attach a ``pre_auction`` hook implementing a *lying client* who
   inflates one query's bid — a scenario that previously required
   forking the center;
3. run two subscription periods, write a checkpoint to disk, run a
   third period;
4. restore the checkpoint (a fresh service, same state) and replay
   period 3 — the period report is byte-identical, RNG state and all.

Run:  python examples/service_checkpointing.py
"""

import json
import tempfile
from pathlib import Path

from repro.dsms import ContinuousQuery, SelectOperator, SyntheticStream
from repro.io import report_to_dict
from repro.service import AdmissionService, HookRegistry, ServiceBuilder


def accept_every_tuple(_tuple) -> bool:
    """Module-level predicate: checkpoint files require picklable plans."""
    return True


def subscriber_query(qid: str, bid: float, cost: float) -> ContinuousQuery:
    op = SelectOperator(f"sel_{qid}", "events", accept_every_tuple,
                       cost_per_tuple=cost, selectivity_estimate=1.0)
    return ContinuousQuery(qid, (op,), sink_id=op.op_id, bid=bid,
                           owner=f"owner_{qid}")


def inflate_alice(service, instance):
    """pre_auction hook: alice always bids 50% over her submission."""
    from repro.core import AuctionInstance, Query

    queries = tuple(
        Query(q.query_id, q.operator_ids, bid=q.bid * 1.5,
              valuation=q.valuation, owner=q.owner)
        if q.owner_id == "owner_alice" else q
        for q in instance.queries
    )
    return AuctionInstance(instance.operators, queries, instance.capacity)


def submissions_for(period: int) -> list[ContinuousQuery]:
    base = [("alice", 20.0, 1.0), ("bob", 35.0, 1.5),
            ("carol", 50.0, 2.0), ("dave", 15.0, 0.5)]
    return [subscriber_query(f"{name}_p{period}", bid + period, cost)
            for name, bid, cost in base]


def report_bytes(report) -> bytes:
    return json.dumps(report_to_dict(report), sort_keys=True).encode()


def main() -> None:
    hooks = HookRegistry()
    hooks.add("pre_auction", inflate_alice)

    service = (ServiceBuilder()
               .with_sources(SyntheticStream("events", rate=6, seed=11))
               .with_capacity(25.0)
               .with_mechanism("two-price:seed=7")
               .with_ticks_per_period(15)
               .pre_auction(inflate_alice)
               .build())

    for period in (1, 2):
        for query in submissions_for(period):
            service.submit(query)
        report = service.run_period()
        print(f"period {report.period}: admitted={report.admitted} "
              f"revenue=${report.revenue:.2f}")

    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = Path(tmp) / "service.ckpt"
        service.save_checkpoint(checkpoint)
        print(f"\ncheckpoint written after period 2 "
              f"({checkpoint.stat().st_size} bytes)")

        for query in submissions_for(3):
            service.submit(query)
        original = service.run_period()

        resumed = AdmissionService.load_checkpoint(checkpoint, hooks=hooks)
        for query in submissions_for(3):
            resumed.submit(query)
        replayed = resumed.run_period()

    identical = report_bytes(original) == report_bytes(replayed)
    print(f"period 3 original:  admitted={original.admitted} "
          f"revenue=${original.revenue:.2f}")
    print(f"period 3 replayed:  admitted={replayed.admitted} "
          f"revenue=${replayed.revenue:.2f}")
    print(f"byte-identical after restore: {identical}")
    assert identical, "checkpoint restore diverged from the live run"


if __name__ == "__main__":
    main()
