"""Sharded federation: placement, rebalancing, cluster checkpoints.

Demonstrates the ``repro.cluster`` scale-out layer end to end:

1. build a 3-shard :class:`FederatedAdmissionService` where every
   shard is a full admission service (own engine, ledger, CAT
   mechanism), routed by a seeded consistent-hash on the client id;
2. submit three clients' query portfolios — the hash ring co-locates
   each client's queries on one shard;
3. run two cluster periods and watch the rebalancer migrate rejected
   queries onto shards with spare capacity (they run free for the
   rest of the period, then compete in their new shard's auction);
4. checkpoint the whole cluster to one file, resume it, and replay a
   period — the resumed :class:`ClusterReport` is byte-identical.

Run:  python examples/cluster_federation.py
"""

import json
import tempfile
from pathlib import Path

from repro.cluster import FederatedAdmissionService
from repro.dsms import ContinuousQuery, SelectOperator, SyntheticStream
from repro.io import cluster_report_to_dict


def accept_every_tuple(_tuple) -> bool:
    """Module-level predicate: checkpoint files require picklable plans."""
    return True


def client_query(client: str, index: int, period: int,
                 bid: float, cost: float) -> ContinuousQuery:
    qid = f"{client}_p{period}_q{index}"
    op = SelectOperator(f"sel_{qid}", "events", accept_every_tuple,
                        cost_per_tuple=cost, selectivity_estimate=1.0)
    return ContinuousQuery(qid, (op,), sink_id=op.op_id, bid=bid,
                           owner=client)


def submissions_for(period: int) -> list[ContinuousQuery]:
    portfolios = {
        "alice": [(55.0, 2.0), (40.0, 1.5), (30.0, 1.0)],
        "bob": [(80.0, 2.5), (25.0, 1.0)],
        "carol": [(60.0, 2.0), (45.0, 1.5), (35.0, 1.0), (20.0, 0.5)],
    }
    return [
        client_query(client, index, period, bid + period, cost)
        for client, portfolio in portfolios.items()
        for index, (bid, cost) in enumerate(portfolio)
    ]


def report_line(report) -> str:
    return (f"period {report.period}: revenue={report.total_revenue:.2f} "
            f"admitted={len(report.admitted)} "
            f"rejected={len(report.rejected)} "
            f"migrated={list(report.migrated)} "
            f"util={0.0 if report.utilization is None else report.utilization:.2f}")


def main() -> None:
    cluster = FederatedAdmissionService.build(
        num_shards=3,
        sources=[SyntheticStream("events", rate=6, seed=11)],
        capacity=25.0,
        mechanism="CAT",
        ticks_per_period=15,
        placement="consistent-hash:seed=7",
    )

    print("placement (consistent-hash on client id):")
    for query in submissions_for(1):
        shard = cluster.submit(query)
        print(f"  {query.query_id:<16} owner={query.owner:<6} -> shard {shard}")
    print()

    print(report_line(cluster.run_period()))
    for query in submissions_for(2):
        cluster.submit(query)
    print(report_line(cluster.run_period_all()), "(batch auction path)")
    print()

    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = Path(tmp) / "cluster.ckpt"
        cluster.save_checkpoint(checkpoint)
        print(f"checkpoint: {checkpoint.stat().st_size} bytes, "
              f"{cluster.num_shards} shard envelopes composed")

        resumed = FederatedAdmissionService.load_checkpoint(checkpoint)
        for target in (cluster, resumed):
            for query in submissions_for(3):
                target.submit(query)
        original = cluster.run_period()
        replayed = resumed.run_period()
        identical = (
            json.dumps(cluster_report_to_dict(original), sort_keys=True)
            == json.dumps(cluster_report_to_dict(replayed), sort_keys=True))
        print(report_line(original))
        print(f"resumed replay byte-identical: {identical}")
        assert identical

    print(f"\ncluster revenue over 3 periods: {cluster.total_revenue():.2f}")


if __name__ == "__main__":
    main()
