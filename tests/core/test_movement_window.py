"""Movement-window payments (Definitions 5–6) and their subtleties."""

import pytest

from repro.core.greedy import priority_order
from repro.core.loads import total_load
from repro.core.model import AuctionInstance, Operator, Query
from repro.core.movement_window import find_last, movement_window_payment


def chain(loads, bids, capacity):
    operators = {f"o{i}": Operator(f"o{i}", load)
                 for i, load in enumerate(loads)}
    queries = tuple(Query(f"q{i}", (f"o{i}",), bid=bid)
                    for i, bid in enumerate(bids))
    return AuctionInstance(operators, queries, capacity)


class TestFindLast:
    def test_window_closed_by_capacity(self):
        # Densities: q0=10, q1=9, q2=8.  Capacity 10, loads 5/5/5:
        # q0 and q1 win; sliding q0 below q1 still wins (q2 then q0?
        # no: after q1 and q2 are considered, q2 also fits? q1=5,
        # q2=5 fill capacity, so q0 repositioned after q2 loses).
        instance = chain([5, 5, 5], [50, 45, 40], capacity=10)
        order = priority_order(instance, total_load)
        last = find_last(instance, order, instance.query("q0"))
        assert last is not None and last.query_id == "q2"

    def test_window_spans_rest_of_list(self):
        # Everyone fits; every winner can slide to the bottom.
        instance = chain([1, 1, 1], [30, 20, 10], capacity=10)
        order = priority_order(instance, total_load)
        for query in instance.queries:
            assert find_last(instance, order, query) is None

    def test_payment_matches_last_density(self):
        instance = chain([5, 5, 5], [50, 45, 40], capacity=10)
        order = priority_order(instance, total_load)
        payment, last = movement_window_payment(
            instance, order, instance.query("q0"), total_load)
        # q2's density is 8 per unit; q0's load is 5 → pays 40.
        assert last.query_id == "q2"
        assert payment == pytest.approx(40.0)

    def test_first_failure_is_unique_transition(self):
        """``used + marginal(winner)`` is monotone along the replay:
        once a winner fails at a position, she fails at every later
        one.  This makes ``last(i)`` the unique window boundary."""
        import numpy as np

        from repro.core.loads import LoadTracker
        from repro.workload import WorkloadConfig, WorkloadGenerator

        generator = WorkloadGenerator(
            config=WorkloadConfig(num_queries=40, max_sharing=6,
                                  capacity=220.0),
            seed=9)
        instance = generator.instance(max_sharing=5)
        order = priority_order(instance, total_load)
        rng = np.random.default_rng(1)
        for winner in rng.choice(order, size=8, replace=False):
            position = next(i for i, q in enumerate(order)
                            if q.query_id == winner.query_id)
            tracker = LoadTracker(instance)
            for query in order[:position]:
                tracker.try_admit(query)
            fits_sequence = []
            for query in order[position + 1:]:
                tracker.try_admit(query)
                fits_sequence.append(tracker.fits(winner))
            # Once False, never True again.
            if False in fits_sequence:
                first_false = fits_sequence.index(False)
                assert not any(fits_sequence[first_false:])

    def test_zero_load_winner_pays_nothing(self):
        operators = {"z": Operator("z", 0.0), "a": Operator("a", 5.0),
                     "b": Operator("b", 6.0)}
        queries = (
            Query("qz", ("z",), bid=5.0),
            Query("qa", ("a",), bid=50.0),
            Query("qb", ("b",), bid=30.0),
        )
        instance = AuctionInstance(operators, queries, capacity=5.0)
        order = priority_order(instance, total_load)
        payment, _last = movement_window_payment(
            instance, order, instance.query("qz"), total_load)
        assert payment == 0.0
