"""Differential suite: fast selection == reference, outcome for outcome.

Every mechanism of the paper runs each random shared-DAG instance
through both selection paths; winners, payments (values *and* dict
ordering) and the full details dictionaries must be identical — the
fast path trades representation, never semantics.  The fast mechanisms
run with ``strict=true`` so a silently missing kernel cannot pass as
equivalence.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import make_mechanism
from repro.core.density import DensityMechanism
from repro.core.loads import total_load
from repro.core.mechanism import Mechanism
from repro.core.selection import FastSelection
from repro.utils.validation import ValidationError

from tests.strategies import auction_instances

#: (registry name, factory kwargs) for the seven paper mechanisms.
FAST_MECHANISMS = [
    ("CAR", {}),
    ("CAF", {}),
    ("CAF+", {}),
    ("CAT", {}),
    ("CAT+", {}),
    ("GV", {}),
    ("two-price", {"seed": 11}),
]

#: Registry mechanisms without a fast kernel (fallback path).  The
#: special-case auctions (k-unit, knapsack) reject general shared
#: instances by design, so the fallback check runs on the two that
#: accept arbitrary inputs.
FALLBACK_MECHANISMS = [
    ("Random", {"seed": 3}),
    ("OPT_C", {}),
]


def assert_identical(reference, fast):
    assert reference.winner_ids == fast.winner_ids
    assert reference.payments == fast.payments
    assert list(reference.payments) == list(fast.payments)
    assert reference.details == fast.details
    assert list(reference.details) == list(fast.details)
    assert reference.mechanism == fast.mechanism


@pytest.mark.parametrize("name,kwargs", FAST_MECHANISMS,
                         ids=[name for name, _ in FAST_MECHANISMS])
@given(instance=auction_instances(max_queries=10, max_operators=12))
@settings(max_examples=100, deadline=None)
def test_fast_equals_reference(name, kwargs, instance):
    reference = make_mechanism(name, **kwargs).run(instance)
    fast = make_mechanism(name, **kwargs).use_selection(
        "fast:strict=true").run(instance)
    assert_identical(reference, fast)


@pytest.mark.parametrize(
    "mode", ["even", "coin", "hash"])
@given(instance=auction_instances(max_queries=10),
       seed=st.integers(0, 2**16))
@settings(max_examples=50, deadline=None)
def test_two_price_partition_modes(mode, instance, seed):
    reference = make_mechanism(
        "two-price", seed=seed, partition_mode=mode).run(instance)
    fast = make_mechanism(
        "two-price", seed=seed, partition_mode=mode).use_selection(
        "fast:strict=true").run(instance)
    assert_identical(reference, fast)


@given(instance=auction_instances(max_queries=8))
@settings(max_examples=30, deadline=None)
def test_two_price_rng_streams_stay_interchangeable(instance):
    """Alternating paths on one mechanism draws one RNG stream."""
    mixed = make_mechanism("two-price", seed=5)
    outcomes = []
    for turn in range(4):
        selection = "fast:strict=true" if turn % 2 else "reference"
        outcomes.append(mixed.run(instance, selection=selection))
    pure = make_mechanism("two-price", seed=5)
    for turn, outcome in enumerate(outcomes):
        assert_identical(pure.run(instance), outcome)


@pytest.mark.parametrize("name,kwargs", FALLBACK_MECHANISMS,
                         ids=[name for name, _ in FALLBACK_MECHANISMS])
@given(instance=auction_instances(max_queries=6, max_operators=6))
@settings(max_examples=20, deadline=None)
def test_fallback_mechanisms_unchanged_under_fast(name, kwargs,
                                                  instance):
    reference = make_mechanism(name, **kwargs).run(instance)
    fast = make_mechanism(name, **kwargs).use_selection("fast").run(
        instance)
    assert_identical(reference, fast)


def test_car_denormal_residue_does_not_reselect_admitted():
    """Regression: a float residue can drive a pending query's
    remaining load tiny-*negative*, overflowing its priority to -inf —
    which must not collide with the admitted-query mask sentinel."""
    from repro.core.model import AuctionInstance

    instance = AuctionInstance.build(
        {"a": 1.0, "b": 5e-324},
        {"q0": ["a", "b"], "q1": ["a", "b"]},
        {"q0": 1e308, "q1": 2.0},
        capacity=1.0,
    )
    reference = make_mechanism("CAR").run(instance)
    fast = make_mechanism("CAR").use_selection(
        "fast:strict=true").run(instance)
    assert_identical(reference, fast)
    assert reference.details["admission_order"] == ["q0", "q1"]


def test_strict_fast_rejects_kernel_less_mechanisms():
    from repro.core.model import AuctionInstance

    instance = AuctionInstance.build(
        {"a": 1.0}, {"q0": ["a"]}, {"q0": 5.0}, capacity=10.0)
    mechanism = make_mechanism("Random", seed=0).use_selection(
        "fast:strict=true")
    with pytest.raises(ValidationError, match="no fast selection"):
        mechanism.run(instance)


def test_overridden_select_is_not_hijacked():
    """A subclass with its own ``_select`` keeps its semantics."""

    class EveryoneFree(DensityMechanism):
        name = "free"
        load_measure = staticmethod(total_load)

        def _select(self, instance):
            return ({q.query_id: 0.0 for q in instance.queries[:1]},
                    {"marker": True})

    from repro.core.model import AuctionInstance

    instance = AuctionInstance.build(
        {"a": 1.0}, {"q0": ["a"]}, {"q0": 5.0}, capacity=10.0)
    outcome = EveryoneFree().use_selection("fast").run(instance)
    assert outcome.details == {"marker": True}


def test_seal_returns_truthful_instance_unchanged():
    """Satellite: no rebuilt copy when every valuation equals the bid."""
    from repro.core.model import AuctionInstance, Query

    truthful = AuctionInstance.build(
        {"a": 1.0}, {"q0": ["a"], "q1": ["a"]},
        {"q0": 5.0, "q1": 3.0}, capacity=10.0)
    assert Mechanism._seal(truthful) is truthful

    explicit = AuctionInstance(
        truthful.operators,
        tuple(Query(q.query_id, q.operator_ids, q.bid, valuation=q.bid)
              for q in truthful.queries),
        truthful.capacity)
    assert Mechanism._seal(explicit) is explicit

    divergent = AuctionInstance(
        truthful.operators,
        (Query("q0", ("a",), 5.0, valuation=9.0),) + truthful.queries[1:],
        truthful.capacity)
    sealed = Mechanism._seal(divergent)
    assert sealed is not divergent
    assert sealed.query("q0").valuation == 5.0
    assert divergent.query("q0").valuation == 9.0


def test_fast_selection_defaults_are_not_strict():
    assert FastSelection()._strict is False
    assert FastSelection(strict=True)._strict is True
