"""The paper's worked Example 1, mechanism by mechanism.

Sections IV-A/B/C hand-compute the winners and payments of CAR, CAF
and CAT on the three-query instance of Figures 1–2.  These tests pin
our implementations to those exact numbers.
"""

import pytest

from repro.core import make_mechanism
from repro.workload import example1


@pytest.fixture
def instance():
    return example1()


class TestCARWorkedExample:
    """Section IV-A: winners {q1, q2}, $10/unit, payments $10 and $60."""

    def test_outcome(self, instance):
        outcome = make_mechanism("CAR").run(instance)
        assert outcome.winner_ids == {"q1", "q2"}
        assert outcome.payment("q1") == pytest.approx(10.0)
        assert outcome.payment("q2") == pytest.approx(60.0)
        assert outcome.payment("q3") == 0.0
        assert outcome.profit == pytest.approx(70.0)

    def test_admission_order(self, instance):
        # q2 first (priority 12), then q1 (remaining load 1 → priority 55).
        outcome = make_mechanism("CAR").run(instance)
        assert outcome.details["admission_order"] == ["q2", "q1"]
        assert outcome.details["first_loser"] == "q3"

    def test_price_per_unit(self, instance):
        outcome = make_mechanism("CAR").run(instance)
        assert outcome.details["price_per_unit_load"] == pytest.approx(10.0)


class TestCAFWorkedExample:
    """Section IV-B: priorities 18.34/18/10; payments $30 and $40."""

    def test_outcome(self, instance):
        outcome = make_mechanism("CAF").run(instance)
        assert outcome.winner_ids == {"q1", "q2"}
        assert outcome.payment("q1") == pytest.approx(30.0)
        assert outcome.payment("q2") == pytest.approx(40.0)
        assert outcome.profit == pytest.approx(70.0)

    def test_priority_order(self, instance):
        outcome = make_mechanism("CAF").run(instance)
        assert outcome.details["priority_order"] == ["q1", "q2", "q3"]
        assert outcome.details["first_loser"] == "q3"


class TestCATWorkedExample:
    """Section IV-C: priorities 11/12/10; payments $50 and $60."""

    def test_outcome(self, instance):
        outcome = make_mechanism("CAT").run(instance)
        assert outcome.winner_ids == {"q1", "q2"}
        assert outcome.payment("q1") == pytest.approx(50.0)
        assert outcome.payment("q2") == pytest.approx(60.0)
        assert outcome.profit == pytest.approx(110.0)

    def test_priority_order(self, instance):
        outcome = make_mechanism("CAT").run(instance)
        assert outcome.details["priority_order"] == ["q2", "q1", "q3"]


class TestPlusVariantsOnExample1:
    """CAF+/CAT+ admit the same set; q3 never fits even with skipping,
    and both winners can slide to the bottom of the priority list and
    still win, so their movement windows are unbounded and payments 0."""

    @pytest.mark.parametrize("name", ["CAF+", "CAT+"])
    def test_outcome(self, instance, name):
        outcome = make_mechanism(name).run(instance)
        assert outcome.winner_ids == {"q1", "q2"}
        assert outcome.payment("q1") == 0.0
        assert outcome.payment("q2") == 0.0
        assert outcome.details["last"] == {"q1": None, "q2": None}


class TestGVOnExample1:
    """GV admits q3 alone (highest bid, exactly fills the server) and
    charges it the first loser's bid."""

    def test_outcome(self, instance):
        outcome = make_mechanism("GV").run(instance)
        assert outcome.winner_ids == {"q3"}
        assert outcome.payment("q3") == pytest.approx(72.0)


class TestMetricsOnExample1:
    def test_admission_rate(self, instance):
        outcome = make_mechanism("CAT").run(instance)
        assert outcome.admission_rate == pytest.approx(2 / 3)

    def test_utilization(self, instance):
        outcome = make_mechanism("CAT").run(instance)
        # q1 ∪ q2 = A+B+C = 7 of 10.
        assert outcome.used_capacity == pytest.approx(7.0)
        assert outcome.utilization == pytest.approx(0.7)

    def test_total_user_payoff(self, instance):
        outcome = make_mechanism("CAT").run(instance)
        # (55-50) + (72-60) = 17.
        assert outcome.total_user_payoff == pytest.approx(17.0)
