"""Mechanism base-class behavior: sealing, registry extension."""

import pytest

from repro.core.mechanism import Mechanism, make_mechanism, register_mechanism
from repro.core.model import AuctionInstance, Operator, Query


class PeekingMechanism(Mechanism):
    """Admits exactly the queries whose *valuation* exceeds 10 — if it
    could see valuations, which sealing prevents."""

    name = "peeker"

    def _select(self, instance):
        payments = {
            q.query_id: 0.0
            for q in instance.queries
            if q.true_value > 10.0 and instance.fits([q.query_id])
        }
        return payments, {}


class TestSealing:
    def test_mechanism_sees_bids_not_valuations(self):
        operators = {"a": Operator("a", 1.0)}
        queries = (
            # valuation 99, bid 1: a peeker would admit it if it could
            # read the truth; sealed, it sees true_value == bid == 1.
            Query("hidden", ("a",), bid=1.0, valuation=99.0),
        )
        instance = AuctionInstance(operators, queries, capacity=10.0)
        outcome = PeekingMechanism().run(instance)
        assert not outcome.is_winner("hidden")

    def test_outcome_still_uses_real_valuations(self):
        """Sealing is internal: payoffs on the outcome use the truth."""
        operators = {"a": Operator("a", 1.0)}
        queries = (Query("q", ("a",), bid=20.0, valuation=30.0),)
        instance = AuctionInstance(operators, queries, capacity=10.0)
        outcome = PeekingMechanism().run(instance)
        assert outcome.is_winner("q")
        assert outcome.payoff("q") == pytest.approx(30.0)


class TestRegistryExtension:
    def test_register_custom_mechanism(self):
        register_mechanism("peeker-test", PeekingMechanism)
        mechanism = make_mechanism("PEEKER-TEST")
        assert isinstance(mechanism, PeekingMechanism)

    def test_factory_kwargs_forwarded(self):
        class Configurable(Mechanism):
            name = "configurable"

            def __init__(self, threshold=5.0):
                self.threshold = threshold

            def _select(self, instance):
                return {}, {}

        register_mechanism("configurable-test", Configurable)
        mechanism = make_mechanism("configurable-test", threshold=9.0)
        assert mechanism.threshold == 9.0


class TestCapacityEnforcement:
    def test_over_admitting_mechanism_rejected(self):
        class Greedy(Mechanism):
            name = "overfull"

            def _select(self, instance):
                return {q.query_id: 0.0 for q in instance.queries}, {}

        operators = {"a": Operator("a", 5.0), "b": Operator("b", 5.0)}
        queries = (Query("q1", ("a",), bid=1.0),
                   Query("q2", ("b",), bid=1.0))
        instance = AuctionInstance(operators, queries, capacity=6.0)
        from repro.utils.validation import ValidationError
        with pytest.raises(ValidationError):
            Greedy().run(instance)
