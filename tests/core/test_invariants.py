"""Property-based invariants over all mechanisms (hypothesis).

DESIGN.md's invariant list, checked on randomly drawn instances:

1. admitted sets never exceed capacity;
2. individual rationality: truthful winners pay at most their bid
   (strategyproof mechanisms only — CAR can overcharge, OPT_C is a
   benchmark that charges exactly the bid at most);
3. losers pay zero (implicit in the outcome representation);
4. density mechanisms fill greedily: the top-priority query that fits
   alone is always admitted.
"""

import pytest
from hypothesis import given, settings

from repro.core import make_mechanism
from tests.conftest import ALL_MECHANISMS, build_mechanism
from tests.strategies import auction_instances

STRATEGYPROOF = ("CAF", "CAF+", "CAT", "CAT+", "GV", "Two-price")


@settings(max_examples=60, deadline=None)
@given(instance=auction_instances())
@pytest.mark.parametrize("name", sorted(ALL_MECHANISMS))
def test_capacity_never_exceeded(name, instance):
    outcome = build_mechanism(name).run(instance)
    assert outcome.used_capacity <= instance.capacity + 1e-6


@settings(max_examples=60, deadline=None)
@given(instance=auction_instances())
@pytest.mark.parametrize("name", STRATEGYPROOF)
def test_individual_rationality(name, instance):
    """Truthful winners never pay more than their bid."""
    outcome = build_mechanism(name).run(instance)
    for qid in outcome.winner_ids:
        assert outcome.payment(qid) <= instance.query(qid).bid + 1e-6


@settings(max_examples=60, deadline=None)
@given(instance=auction_instances())
@pytest.mark.parametrize("name", STRATEGYPROOF)
def test_truthful_payoffs_non_negative(name, instance):
    outcome = build_mechanism(name).run(instance)
    for query in instance.queries:
        assert outcome.payoff(query.query_id) >= -1e-6


@settings(max_examples=40, deadline=None)
@given(instance=auction_instances(min_queries=2))
@pytest.mark.parametrize("name", ("CAF", "CAT", "CAF+", "CAT+"))
def test_top_density_query_admitted(name, instance):
    """The first query of the priority order wins whenever it fits an
    empty server (greedy admission starts with it)."""
    mechanism = build_mechanism(name)
    outcome = mechanism.run(instance)
    order = outcome.details["priority_order"]
    first = instance.query(order[0])
    if instance.union_load([first.query_id]) <= instance.capacity:
        assert outcome.is_winner(first.query_id)


@settings(max_examples=40, deadline=None)
@given(instance=auction_instances(min_queries=2))
def test_caf_cat_agree_without_sharing(instance):
    """With no shared operators, C^SF == C^T, so CAF ≡ CAT."""
    if instance.max_sharing_degree() > 1:
        return
    caf = make_mechanism("CAF").run(instance)
    cat = make_mechanism("CAT").run(instance)
    assert caf.winner_ids == cat.winner_ids
    for qid in caf.winner_ids:
        assert caf.payment(qid) == pytest.approx(cat.payment(qid))


@settings(max_examples=40, deadline=None)
@given(instance=auction_instances(min_queries=2))
def test_plus_variants_admit_supersets(instance):
    """Skip-over admission can only add winners relative to
    stop-at-first (same priority order, same prefix behavior)."""
    for base, plus in (("CAF", "CAF+"), ("CAT", "CAT+")):
        stop = make_mechanism(base).run(instance)
        skip = make_mechanism(plus).run(instance)
        assert stop.winner_ids <= skip.winner_ids
