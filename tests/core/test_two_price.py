"""Unit tests for the Two-price mechanism (Algorithm 3)."""

import pytest

from repro.core.model import AuctionInstance, Operator, Query
from repro.core.optc import optimal_constant_pricing
from repro.core.two_price import (
    TwoPrice,
    largest_fitting_subset,
    optimal_single_price,
)


def chain(loads, bids, capacity):
    operators = {f"o{i}": Operator(f"o{i}", load)
                 for i, load in enumerate(loads)}
    queries = tuple(Query(f"q{i}", (f"o{i}",), bid=bid)
                    for i, bid in enumerate(bids))
    return AuctionInstance(operators, queries, capacity)


class TestOptimalSinglePrice:
    def test_simple(self):
        # Prices tried: 10*1=10, 6*2=12, 5*3=15, 1*4=4 → price 5.
        price, revenue = optimal_single_price([10, 6, 5, 1])
        assert price == 5
        assert revenue == 15

    def test_empty(self):
        price, revenue = optimal_single_price([])
        assert price == float("inf")
        assert revenue == 0.0

    def test_single_value(self):
        assert optimal_single_price([7.0]) == (7.0, 7.0)

    def test_equal_revenue_profile(self):
        # v_i = 100/i: every price gives revenue 100.
        values = [100.0 / i for i in range(1, 11)]
        _price, revenue = optimal_single_price(values)
        assert revenue == pytest.approx(100.0)


class TestLargestFittingSubset:
    def test_exhaustive_finds_maximum(self):
        instance = chain([4, 3, 3, 5], [1, 1, 1, 1], capacity=6)
        chosen = largest_fitting_subset(
            instance, set(), list(instance.queries), exhaustive_limit=10)
        assert len(chosen) == 2  # 3 + 3 fits; no triple fits

    def test_respects_base_load(self):
        instance = chain([4, 3, 3], [1, 1, 1], capacity=7)
        chosen = largest_fitting_subset(
            instance, {"q0"}, [instance.query("q1"), instance.query("q2")],
            exhaustive_limit=10)
        assert len(chosen) == 1  # only 3 units left after q0

    def test_greedy_fallback(self):
        instance = chain([1] * 6, [1] * 6, capacity=3)
        chosen = largest_fitting_subset(
            instance, set(), list(instance.queries), exhaustive_limit=2)
        assert len(chosen) == 3

    def test_sharing_aware(self):
        operators = {"s": Operator("s", 5.0), "a": Operator("a", 1.0),
                     "b": Operator("b", 1.0)}
        queries = (
            Query("q0", ("s", "a"), bid=1.0),
            Query("q1", ("s", "b"), bid=1.0),
        )
        instance = AuctionInstance(operators, queries, capacity=7.0)
        chosen = largest_fitting_subset(
            instance, set(), list(queries), exhaustive_limit=10)
        assert len(chosen) == 2  # union load 7, not 12


class TestTwoPriceMechanism:
    def test_no_winners_on_single_query(self):
        instance = chain([1], [10], capacity=5)
        outcome = TwoPrice(seed=0).run(instance)
        assert outcome.winner_ids == set()

    def test_winners_pay_opposite_price(self):
        instance = chain([1] * 6, [60, 50, 40, 30, 20, 10], capacity=10)
        outcome = TwoPrice(seed=3).run(instance)
        price_a = outcome.details["price_A"]
        price_b = outcome.details["price_B"]
        for qid in outcome.winner_ids:
            paid = outcome.payment(qid)
            assert paid in (price_a, price_b)
            assert instance.query(qid).bid > paid

    def test_winners_subset_of_h(self):
        instance = chain([3] * 5, [50, 40, 30, 20, 10], capacity=9)
        outcome = TwoPrice(seed=1).run(instance)
        assert outcome.winner_ids <= set(outcome.details["H"])
        # H is the top-3 fitting prefix.
        assert set(outcome.details["H"]) == {"q0", "q1", "q2"}

    def test_step3_tie_adjustment(self):
        # Boundary tie: bids 50, 20, 20, 20 with room for 2 queries.
        instance = chain([3, 3, 3, 3], [50, 20, 20, 20], capacity=6)
        outcome = TwoPrice(seed=0, adjust_ties=True).run(instance)
        assert outcome.details["adjusted"] is True
        assert outcome.details["tied_block_size"] == 3
        assert len(outcome.details["H"]) == 2

    def test_polynomial_variant_skips_step3(self):
        instance = chain([3, 3, 3, 3], [50, 20, 20, 20], capacity=6)
        outcome = TwoPrice(seed=0, adjust_ties=False).run(instance)
        assert outcome.details["adjusted"] is False

    def test_partition_modes(self):
        instance = chain([1] * 8, [80, 70, 60, 50, 40, 30, 20, 10],
                         capacity=20)
        for mode in ("even", "coin", "hash"):
            outcome = TwoPrice(seed=5, partition_mode=mode).run(instance)
            sides = set(outcome.details["A"]) | set(outcome.details["B"])
            assert sides == {q.query_id for q in instance.queries}
        with pytest.raises(ValueError):
            TwoPrice(partition_mode="bogus")

    def test_even_partition_halves(self):
        instance = chain([1] * 8, [80, 70, 60, 50, 40, 30, 20, 10],
                         capacity=20)
        outcome = TwoPrice(seed=5, partition_mode="even").run(instance)
        assert len(outcome.details["A"]) == 4
        assert len(outcome.details["B"]) == 4

    def test_hash_partition_stable_across_bids(self):
        instance = chain([1] * 6, [60, 50, 40, 30, 20, 10], capacity=20)
        mech = TwoPrice(seed=7, partition_mode="hash")
        out1 = mech.run(instance)
        out2 = TwoPrice(seed=7, partition_mode="hash").run(
            instance.with_bid("q0", 55))
        assert set(out1.details["A"]) == set(out2.details["A"])

    def test_profit_guarantee_in_expectation(self):
        """Theorem 11: E[profit] >= OPT_C - 2h (distinct valuations)."""
        instance = chain([2] * 10,
                         [100, 91, 83, 76, 70, 64, 59, 54, 50, 46],
                         capacity=14)
        opt = optimal_constant_pricing(instance).profit
        h = instance.max_valuation()
        runs = 400
        total = 0.0
        for seed in range(runs):
            total += TwoPrice(seed=seed).run(instance).profit
        expected = total / runs
        assert expected >= opt - 2 * h - 1e-9
