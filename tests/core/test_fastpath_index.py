"""Unit and property tests for the fastpath index and kernels.

The satellite Hypothesis property lives here: the incremental
admitted-operator *bitmask* accounting (:class:`FastTracker`) must
equal the set-based remaining-load definition
(:func:`repro.core.loads.remaining_load` / :class:`LoadTracker`)
under adversarial sharing — operators shared by every query,
zero-load operators, empty winner sets.
"""

import copy
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fastpath import (
    FastTracker,
    InstanceIndex,
    bid_order_indices,
    density_order,
    find_last,
    greedy_walk,
    movement_window_lasts,
    optimal_single_price_array,
)
from repro.core.greedy import greedy_admit, priority_order
from repro.core.gv import bid_order
from repro.core.loads import (
    LoadTracker,
    remaining_load,
    static_fair_share_load,
    total_load,
)
from repro.core.model import AuctionInstance, Operator, Query

from tests.strategies import auction_instances


def build(operator_loads, query_specs, bids, capacity):
    return AuctionInstance.build(operator_loads, query_specs, bids,
                                 capacity)


SHARED_BY_ALL = build(
    {"shared": 4.0, "zero": 0.0, "own0": 1.0, "own1": 2.0},
    {"q0": ["shared", "zero", "own0"],
     "q1": ["shared", "zero", "own1"],
     "q2": ["shared", "zero"]},
    {"q0": 10.0, "q1": 8.0, "q2": 5.0},
    capacity=6.0,
)


class TestIndexStructure:
    def test_arrays_match_model(self):
        index = InstanceIndex.of(SHARED_BY_ALL)
        assert index.num_queries == 3
        assert index.num_operators == 4
        assert index.capacity == 6.0
        by_op = dict(zip(index.op_ids, index.op_loads.tolist()))
        assert by_op == {"shared": 4.0, "zero": 0.0, "own0": 1.0,
                         "own1": 2.0}
        sharing = dict(zip(index.op_ids, index.sharing.tolist()))
        assert sharing == {"shared": 3, "zero": 3, "own0": 1, "own1": 1}
        # CSR rows follow each query's declared operator order.
        for qi, query in enumerate(SHARED_BY_ALL.queries):
            row = index.indices[index.indptr[qi]:index.indptr[qi + 1]]
            assert [index.op_ids[o] for o in row] == list(
                query.operator_ids)
            assert index.query_ops[qi] == row.tolist()

    def test_cached_on_instance(self):
        instance = SHARED_BY_ALL.with_capacity(9.0)
        assert InstanceIndex.of(instance) is InstanceIndex.of(instance)

    def test_cache_excluded_from_pickle_and_deepcopy(self):
        instance = SHARED_BY_ALL.with_capacity(9.0)
        InstanceIndex.of(instance)
        assert "_fastpath_cache" in instance.__dict__
        for clone in (pickle.loads(pickle.dumps(instance)),
                      copy.deepcopy(instance)):
            assert "_fastpath_cache" not in clone.__dict__
            assert clone == instance

    @given(auction_instances())
    @settings(max_examples=60, deadline=None)
    def test_load_measures_match_reference_exactly(self, instance):
        index = InstanceIndex.of(instance)
        for qi, query in enumerate(instance.queries):
            assert index.total_loads_list[qi] == total_load(
                instance, query)
            assert index.fair_share_loads_list[qi] == (
                static_fair_share_load(instance, query))
            assert index.total_loads[qi] == index.total_loads_list[qi]

    @given(auction_instances())
    @settings(max_examples=40, deadline=None)
    def test_simple_query_flags(self, instance):
        index = InstanceIndex.of(instance)
        for qi, query in enumerate(instance.queries):
            expected = all(instance.sharing_degree(op_id) == 1
                           for op_id in query.operator_ids)
            assert index.simple_queries[qi] == expected


class TestBitmaskAccounting:
    """Satellite: incremental bitmask == set-based remaining load."""

    @given(auction_instances(max_queries=10), st.data())
    @settings(max_examples=100, deadline=None)
    def test_tracker_equals_set_based_accounting(self, instance, data):
        index = InstanceIndex.of(instance)
        fast = FastTracker(index)
        reference = LoadTracker(instance)
        admitted: list[int] = []
        order = data.draw(st.permutations(range(instance.num_queries)))
        for qi in order:
            query = instance.queries[qi]
            # The bitmask marginal equals the set-based Definition 2,
            # computed from scratch against the running operator set.
            assert fast.marginal(qi) == remaining_load(
                instance, query, reference.running_operator_ids)
            assert fast.marginal(qi) == reference.marginal_load(query)
            assert fast.fits(qi) == reference.fits(query)
            if data.draw(st.booleans()):
                assert fast.try_admit(qi) == reference.try_admit(query)
                admitted.append(qi)
            assert fast.used == reference.used_capacity
            assert (fast.running_operator_ids()
                    == reference.running_operator_ids)

    def test_empty_winner_set_is_full_load(self):
        index = InstanceIndex.of(SHARED_BY_ALL)
        tracker = FastTracker(index)
        for qi, query in enumerate(SHARED_BY_ALL.queries):
            assert tracker.marginal(qi) == remaining_load(
                SHARED_BY_ALL, query, ())
            assert tracker.marginal(qi) == total_load(
                SHARED_BY_ALL, query)

    def test_operator_shared_by_all_charged_once(self):
        index = InstanceIndex.of(SHARED_BY_ALL)
        tracker = FastTracker(index)
        assert tracker.admit(0) == 5.0  # shared + zero + own0
        # shared/zero already running: only private operators remain.
        assert tracker.marginal(1) == 2.0
        assert tracker.marginal(2) == 0.0
        assert tracker.used == 5.0

    def test_zero_load_operators_never_block(self):
        instance = build(
            {"z0": 0.0, "z1": 0.0},
            {"q0": ["z0", "z1"], "q1": ["z1"]},
            {"q0": 1.0, "q1": 2.0},
            capacity=1.0,
        )
        tracker = FastTracker(InstanceIndex.of(instance))
        assert tracker.marginal(0) == 0.0
        assert tracker.try_admit(0)
        assert tracker.try_admit(1)
        assert tracker.used == 0.0


class TestOrdersAndWalk:
    @given(auction_instances())
    @settings(max_examples=60, deadline=None)
    def test_orders_match_reference(self, instance):
        index = InstanceIndex.of(instance)
        ids = index.query_ids
        for measure, loads in (
                (total_load, index.total_loads),
                (static_fair_share_load, index.fair_share_loads)):
            expected = [q.query_id
                        for q in priority_order(instance, measure)]
            assert [ids[qi] for qi in density_order(index, loads)] == (
                expected)
        assert [ids[qi] for qi in bid_order_indices(index)] == [
            q.query_id for q in bid_order(instance)]

    @given(auction_instances(), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_walk_matches_reference(self, instance, skip_over):
        index = InstanceIndex.of(instance)
        order = density_order(index, index.total_loads)
        reference = greedy_admit(
            instance,
            [instance.queries[qi] for qi in order],
            skip_over=skip_over)
        winners, first_loser, tracker = greedy_walk(
            index, order, skip_over=skip_over)
        ids = index.query_ids
        assert [ids[qi] for qi in winners] == [
            q.query_id for q in reference.winners]
        expected_loser = (None if reference.first_loser is None
                          else reference.first_loser.query_id)
        assert (None if first_loser is None
                else ids[first_loser]) == expected_loser
        assert tracker.used == reference.tracker.used_capacity


class TestMovementWindow:
    @given(auction_instances(max_queries=10))
    @settings(max_examples=100, deadline=None)
    def test_batched_lasts_equal_single_replays(self, instance):
        from repro.core.movement_window import find_last as ref_find_last

        index = InstanceIndex.of(instance)
        order = density_order(index, index.fair_share_loads)
        winners, _, _ = greedy_walk(index, order, skip_over=True)
        lasts = movement_window_lasts(index, order, winners)
        assert set(lasts) == set(winners)
        order_queries = [instance.queries[qi] for qi in order]
        for qi in winners:
            single = find_last(index, order, order.index(qi))
            assert lasts[qi] == single
            expected = ref_find_last(
                instance, order_queries, instance.queries[qi])
            got = (None if lasts[qi] is None
                   else index.query_ids[lasts[qi]])
            assert got == (None if expected is None
                           else expected.query_id)


class TestOptimalSinglePrice:
    @given(st.lists(st.floats(0, 1000, allow_nan=False), max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_matches_reference(self, values):
        from repro.core.two_price import optimal_single_price

        expected = optimal_single_price(values)
        assert optimal_single_price_array(
            np.asarray(values, dtype=np.float64)) == expected
        # Satellite: the presorted path skips the re-sort but must
        # agree with the sorting path.
        ordered = sorted(values, reverse=True)
        assert optimal_single_price(ordered, presorted=True) == expected

    def test_empty_and_all_zero(self):
        assert optimal_single_price_array(
            np.asarray([], dtype=np.float64)) == (float("inf"), 0.0)
        assert optimal_single_price_array(
            np.zeros(3)) == (float("inf"), 0.0)

    def test_prefers_earliest_maximum(self):
        # ranks 1*4 and 2*2 both yield 4: the reference keeps the
        # earliest (highest price).
        assert optimal_single_price_array(
            np.asarray([4.0, 2.0])) == (4.0, 4.0)


class TestEmptyInstance:
    def test_kernels_handle_zero_queries(self):
        instance = AuctionInstance({}, (), capacity=5.0)
        index = InstanceIndex.of(instance)
        assert density_order(index, index.total_loads) == []
        winners, lost, tracker = greedy_walk(index, [], skip_over=False)
        assert winners == [] and lost is None and tracker.used == 0.0


def test_operator_load_validation_unchanged():
    from repro.utils.validation import ValidationError

    with pytest.raises(ValidationError):
        Operator("x", -1.0)
    with pytest.raises(ValidationError):
        Query("q", (), 1.0)
