"""Unit tests for the OPT_C constant-pricing benchmark."""

import pytest

from repro.core import make_mechanism
from repro.core.model import AuctionInstance, Operator, Query
from repro.core.optc import optimal_constant_pricing


def chain(loads, bids, capacity):
    operators = {f"o{i}": Operator(f"o{i}", load)
                 for i, load in enumerate(loads)}
    queries = tuple(Query(f"q{i}", (f"o{i}",), bid=bid)
                    for i, bid in enumerate(bids))
    return AuctionInstance(operators, queries, capacity)


class TestOptimalConstantPricing:
    def test_unconstrained_optimum(self):
        pricing = optimal_constant_pricing(
            chain([1, 1, 1, 1], [10, 6, 5, 1], capacity=100))
        assert pricing.price == 5
        assert pricing.profit == 15
        assert set(pricing.winner_ids) == {"q0", "q1", "q2"}

    def test_capacity_invalidates_low_prices(self):
        # Price 5 needs 3 queries (3 units); capacity 2 forbids it.
        pricing = optimal_constant_pricing(
            chain([1, 1, 1, 1], [10, 6, 5, 1], capacity=2))
        assert pricing.price == 6
        assert pricing.profit == 12

    def test_tie_packing_at_price(self):
        # All bid 10; capacity fits two of three.
        pricing = optimal_constant_pricing(
            chain([1, 1, 1], [10, 10, 10], capacity=2))
        assert pricing.price == 10
        assert pricing.profit == 20
        assert len(pricing.winner_ids) == 2

    def test_empty_instance_degenerate(self):
        instance = chain([5], [0.0], capacity=3)
        pricing = optimal_constant_pricing(instance)
        assert pricing.profit == 0.0

    def test_sharing_lets_more_winners_fit(self):
        operators = {"s": Operator("s", 4.0), "a": Operator("a", 1.0),
                     "b": Operator("b", 1.0)}
        queries = (
            Query("q0", ("s", "a"), bid=10.0),
            Query("q1", ("s", "b"), bid=10.0),
        )
        shared = AuctionInstance(operators, queries, capacity=6.0)
        pricing = optimal_constant_pricing(shared)
        # Union load 6 fits both; without sharing 10 would not.
        assert pricing.profit == 20.0

    def test_mechanism_wrapper(self):
        outcome = make_mechanism("OPT_C").run(
            chain([1, 1, 1, 1], [10, 6, 5, 1], capacity=100))
        assert outcome.profit == 15
        assert outcome.details["price"] == 5

    def test_dominates_gv_and_two_price(self):
        """OPT_C is an upper bound for uniform-price mechanisms."""
        from repro.core.two_price import TwoPrice

        instance = chain([2] * 8, [40, 35, 30, 25, 20, 15, 10, 5],
                         capacity=10)
        opt = optimal_constant_pricing(instance).profit
        gv = make_mechanism("GV").run(instance).profit
        assert opt >= gv - 1e-9
        for seed in range(10):
            tp = TwoPrice(seed=seed).run(instance).profit
            assert opt >= tp - 1e-9
