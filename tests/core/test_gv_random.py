"""Unit tests for GV and the random-admission baseline."""

import pytest

from repro.core import make_mechanism
from repro.core.model import AuctionInstance, Operator, Query


def chain(loads, bids, capacity):
    operators = {f"o{i}": Operator(f"o{i}", load)
                 for i, load in enumerate(loads)}
    queries = tuple(Query(f"q{i}", (f"o{i}",), bid=bid)
                    for i, bid in enumerate(bids))
    return AuctionInstance(operators, queries, capacity)


class TestGV:
    def test_admits_by_bid_charges_first_loser(self):
        instance = chain([2, 2, 2, 2], [40, 30, 20, 10], capacity=6)
        outcome = make_mechanism("GV").run(instance)
        assert outcome.winner_ids == {"q0", "q1", "q2"}
        assert all(outcome.payment(q) == 10 for q in outcome.winner_ids)
        assert outcome.details["first_loser"] == "q3"

    def test_no_loser_free(self):
        instance = chain([1, 1], [5, 4], capacity=10)
        outcome = make_mechanism("GV").run(instance)
        assert outcome.profit == 0.0

    def test_stops_at_first_too_big(self):
        # Highest bid doesn't fit: nobody is admitted even though
        # smaller queries would fit (stop-at-first semantics).
        instance = chain([20, 1], [100, 50], capacity=10)
        outcome = make_mechanism("GV").run(instance)
        assert outcome.winner_ids == set()

    def test_payment_below_winner_bids(self):
        instance = chain([2, 2, 2, 2], [40, 30, 20, 10], capacity=6)
        outcome = make_mechanism("GV").run(instance)
        for qid in outcome.winner_ids:
            assert outcome.payment(qid) <= instance.query(qid).bid


class TestRandomAdmission:
    def test_charges_nothing(self, medium_instance):
        outcome = make_mechanism("Random", seed=1).run(medium_instance)
        assert outcome.profit == 0.0
        assert len(outcome.winner_ids) > 0

    def test_seeded_reproducibility(self, medium_instance):
        first = make_mechanism("Random", seed=9).run(medium_instance)
        second = make_mechanism("Random", seed=9).run(medium_instance)
        assert first.winner_ids == second.winner_ids

    def test_different_seeds_differ(self, medium_instance):
        # Tighten capacity so the admitted prefix actually varies.
        tight = medium_instance.with_capacity(
            medium_instance.total_demand() * 0.3)
        outcomes = {
            frozenset(make_mechanism("Random", seed=s)
                      .run(tight).winner_ids)
            for s in range(6)
        }
        assert len(outcomes) > 1

    def test_respects_capacity(self, medium_instance):
        for seed in range(5):
            outcome = make_mechanism("Random", seed=seed).run(
                medium_instance)
            assert outcome.used_capacity <= medium_instance.capacity + 1e-6


class TestRegistry:
    def test_unknown_mechanism(self):
        with pytest.raises(KeyError):
            make_mechanism("nope")

    def test_case_insensitive(self):
        assert make_mechanism("cat").name == "CAT"
        assert make_mechanism("Caf+").name == "CAF+"

    def test_all_registered(self):
        from repro.core import registered_mechanisms
        names = set(registered_mechanisms())
        assert {"car", "caf", "caf+", "cat", "cat+", "gv",
                "two-price", "random", "opt_c"} <= names

    def test_properties_rows(self):
        assert make_mechanism("CAT").properties() == {
            "strategyproof": True, "sybil_immune": True,
            "profit_guarantee": False}
        assert make_mechanism("Two-price").properties() == {
            "strategyproof": True, "sybil_immune": False,
            "profit_guarantee": True}
        assert make_mechanism("CAR").properties()["strategyproof"] is False
