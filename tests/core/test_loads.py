"""Unit tests for the three load measures and the tracker."""

import pytest

from repro.core.loads import (
    LoadTracker,
    remaining_load,
    static_fair_share_load,
    total_load,
)
from repro.workload import example1


@pytest.fixture
def instance():
    return example1()


class TestTotalLoad:
    def test_example1_values(self, instance):
        # C^T: q1 = A+B = 5, q2 = A+C = 6, q3 = D+E = 10 (Section IV-C).
        assert total_load(instance, instance.query("q1")) == 5.0
        assert total_load(instance, instance.query("q2")) == 6.0
        assert total_load(instance, instance.query("q3")) == 10.0


class TestStaticFairShare:
    def test_example1_values(self, instance):
        # C^SF: A shared by 2 → q1 = 4/2+1 = 3, q2 = 4/2+2 = 4
        # (Section IV-B's worked numbers).
        assert static_fair_share_load(
            instance, instance.query("q1")) == pytest.approx(3.0)
        assert static_fair_share_load(
            instance, instance.query("q2")) == pytest.approx(4.0)
        assert static_fair_share_load(
            instance, instance.query("q3")) == pytest.approx(10.0)

    def test_fair_share_never_exceeds_total(self, instance):
        for query in instance.queries:
            assert (static_fair_share_load(instance, query)
                    <= total_load(instance, query) + 1e-12)


class TestRemainingLoad:
    def test_nothing_admitted_equals_total(self, instance):
        q1 = instance.query("q1")
        assert remaining_load(instance, q1, set()) == total_load(
            instance, q1)

    def test_shared_operator_excluded(self, instance):
        # With q2's operators (A, C) running, q1 only adds B = 1.
        q1 = instance.query("q1")
        assert remaining_load(instance, q1, {"A", "C"}) == 1.0

    def test_fully_covered_query_is_free(self, instance):
        q1 = instance.query("q1")
        assert remaining_load(instance, q1, {"A", "B"}) == 0.0


class TestLoadTracker:
    def test_admission_accumulates_union(self, instance):
        tracker = LoadTracker(instance)
        assert tracker.used_capacity == 0.0
        added = tracker.admit(instance.query("q2"))
        assert added == 6.0
        added = tracker.admit(instance.query("q1"))
        assert added == 1.0  # A already running
        assert tracker.used_capacity == 7.0

    def test_fits_respects_marginal(self, instance):
        tracker = LoadTracker(instance)
        tracker.admit(instance.query("q2"))
        assert tracker.fits(instance.query("q1"))       # +1 → 7
        assert not tracker.fits(instance.query("q3"))   # +10 → 16

    def test_try_admit(self, instance):
        tracker = LoadTracker(instance)
        assert tracker.try_admit(instance.query("q3"))   # 10 = capacity
        assert not tracker.try_admit(instance.query("q1"))
        assert tracker.used_capacity == 10.0

    def test_running_operator_ids(self, instance):
        tracker = LoadTracker(instance)
        tracker.admit(instance.query("q1"))
        assert tracker.running_operator_ids == frozenset({"A", "B"})
