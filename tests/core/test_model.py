"""Unit tests for the auction data model."""

import pytest

from repro.core.model import AuctionInstance, Operator, Query
from repro.utils.validation import ValidationError


def make_instance(**overrides):
    defaults = dict(
        operator_loads={"a": 2.0, "b": 3.0, "c": 1.0},
        query_specs={"q1": ["a", "b"], "q2": ["b", "c"], "q3": ["c"]},
        bids={"q1": 10.0, "q2": 20.0, "q3": 5.0},
        capacity=6.0,
    )
    defaults.update(overrides)
    return AuctionInstance.build(**defaults)


class TestOperator:
    def test_valid_construction(self):
        op = Operator("sel1", 2.5)
        assert op.op_id == "sel1"
        assert op.load == 2.5

    def test_zero_load_allowed(self):
        assert Operator("free", 0.0).load == 0.0

    def test_negative_load_rejected(self):
        with pytest.raises(ValidationError):
            Operator("bad", -1.0)

    def test_empty_id_rejected(self):
        with pytest.raises(ValidationError):
            Operator("", 1.0)


class TestQuery:
    def test_true_value_defaults_to_bid(self):
        query = Query("q", ("a",), bid=7.0)
        assert query.true_value == 7.0

    def test_explicit_valuation(self):
        query = Query("q", ("a",), bid=5.0, valuation=9.0)
        assert query.true_value == 9.0
        assert query.bid == 5.0

    def test_owner_defaults_to_query_id(self):
        assert Query("q7", ("a",), bid=1.0).owner_id == "q7"
        assert Query("q7", ("a",), bid=1.0, owner="alice").owner_id == "alice"

    def test_with_bid_preserves_valuation(self):
        query = Query("q", ("a",), bid=5.0)
        rebid = query.with_bid(2.0)
        assert rebid.bid == 2.0
        assert rebid.true_value == 5.0

    def test_requires_operator(self):
        with pytest.raises(ValidationError):
            Query("q", (), bid=1.0)

    def test_duplicate_operator_rejected(self):
        with pytest.raises(ValidationError):
            Query("q", ("a", "a"), bid=1.0)

    def test_negative_bid_rejected(self):
        with pytest.raises(ValidationError):
            Query("q", ("a",), bid=-1.0)


class TestAuctionInstance:
    def test_build_and_lookup(self):
        instance = make_instance()
        assert instance.num_queries == 3
        assert instance.query("q1").bid == 10.0
        assert instance.operator("b").load == 3.0

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValidationError):
            make_instance(query_specs={"q1": ["a", "zzz"]},
                          bids={"q1": 1.0})

    def test_duplicate_query_id_rejected(self):
        ops = {"a": Operator("a", 1.0)}
        q = Query("q1", ("a",), bid=1.0)
        with pytest.raises(ValidationError):
            AuctionInstance(ops, (q, q), capacity=5.0)

    def test_sharing_degree(self):
        instance = make_instance()
        assert instance.sharing_degree("b") == 2
        assert instance.sharing_degree("a") == 1
        assert instance.max_sharing_degree() == 2

    def test_union_load_counts_shared_once(self):
        instance = make_instance()
        # q1 ∪ q2 = {a, b, c} = 6, not 2+3 + 3+1 = 9.
        assert instance.union_load(["q1", "q2"]) == pytest.approx(6.0)

    def test_fits(self):
        instance = make_instance()
        assert instance.fits(["q1"])
        assert instance.fits(["q1", "q2"])  # exactly capacity
        assert instance.fits(["q1", "q2", "q3"])  # c shared, still 6

    def test_total_demand(self):
        assert make_instance().total_demand() == pytest.approx(6.0)

    def test_with_bid(self):
        instance = make_instance()
        rebid = instance.with_bid("q1", 99.0)
        assert rebid.query("q1").bid == 99.0
        assert rebid.query("q1").true_value == 10.0  # truth preserved
        assert instance.query("q1").bid == 10.0  # original untouched

    def test_with_bid_unknown_query(self):
        with pytest.raises(KeyError):
            make_instance().with_bid("nope", 1.0)

    def test_with_queries_adds(self):
        instance = make_instance()
        extra = Query("q4", ("a",), bid=3.0)
        grown = instance.with_queries([extra])
        assert grown.num_queries == 4
        assert grown.sharing_degree("a") == 2
        assert instance.num_queries == 3

    def test_with_queries_new_operator(self):
        instance = make_instance()
        grown = instance.with_queries(
            [Query("q4", ("new",), bid=1.0)],
            [Operator("new", 0.5)])
        assert grown.operator("new").load == 0.5

    def test_with_queries_conflicting_operator_rejected(self):
        instance = make_instance()
        with pytest.raises(ValidationError):
            instance.with_queries(
                [Query("q4", ("a",), bid=1.0)],
                [Operator("a", 99.0)])

    def test_without_queries(self):
        instance = make_instance()
        shrunk = instance.without_queries(["q2"])
        assert shrunk.num_queries == 2
        assert shrunk.sharing_degree("b") == 1

    def test_with_capacity(self):
        assert make_instance().with_capacity(100.0).capacity == 100.0

    def test_truthful_resets_bids(self):
        instance = make_instance().with_bid("q1", 2.0)
        truthful = instance.truthful()
        assert truthful.query("q1").bid == 10.0

    def test_max_valuation(self):
        assert make_instance().max_valuation() == 20.0

    def test_owners_grouping(self):
        ops = {"a": Operator("a", 1.0)}
        queries = (
            Query("q1", ("a",), bid=1.0, owner="u"),
            Query("q2", ("a",), bid=2.0, owner="u"),
            Query("q3", ("a",), bid=3.0),
        )
        instance = AuctionInstance(ops, queries, capacity=5.0)
        owners = instance.owners()
        assert {q.query_id for q in owners["u"]} == {"q1", "q2"}
        assert [q.query_id for q in owners["q3"]] == ["q3"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValidationError):
            make_instance(capacity=0.0)
