"""The selection-path registry, specs, and service/config threading."""

import pytest

from repro.core import CAT, make_mechanism
from repro.core.selection import (
    FastSelection,
    ReferenceSelection,
    SelectionPath,
    SelectionSpec,
    default_selection,
    make_selection,
    registered_selections,
    resolve_selection,
)
from repro.utils.validation import ValidationError


class TestRegistry:
    def test_ships_reference_and_fast(self):
        names = set(registered_selections())
        assert {"reference", "fast"} <= names

    def test_make_selection_is_case_insensitive(self):
        assert isinstance(make_selection("FAST"), FastSelection)
        assert isinstance(make_selection("Reference"),
                          ReferenceSelection)

    def test_unknown_name_lists_the_menu(self):
        with pytest.raises(KeyError, match="fast"):
            make_selection("bogus")

    def test_unknown_parameter_lists_the_menu(self):
        with pytest.raises(ValidationError, match="strict"):
            make_selection("fast", bogus=1)


class TestSpec:
    def test_parse_and_str_round_trip(self):
        spec = SelectionSpec.parse("fast:strict=true")
        assert spec.name == "fast"
        assert spec.params == {"strict": True}
        assert str(spec) == "fast:strict=True"
        assert str(SelectionSpec.parse("reference")) == "reference"

    def test_validate_rejects_typos(self):
        with pytest.raises(KeyError):
            SelectionSpec.parse("fastt").validate()
        with pytest.raises(ValidationError):
            SelectionSpec.parse("fast:stricct=true").validate()

    def test_create(self):
        path = SelectionSpec.parse("fast:strict=true").create()
        assert isinstance(path, FastSelection)
        assert path._strict is True


class TestResolve:
    def test_accepts_all_forms(self):
        live = FastSelection()
        assert resolve_selection(live) is live
        assert isinstance(resolve_selection("fast"), FastSelection)
        assert isinstance(
            resolve_selection(SelectionSpec("reference")),
            ReferenceSelection)

    def test_rejects_other_types(self):
        with pytest.raises(ValidationError, match="selection path"):
            resolve_selection(42)

    def test_default_is_reference(self):
        assert isinstance(default_selection(), ReferenceSelection)
        assert CAT().selection is None


class TestMechanismThreading:
    def test_use_selection_pins_and_returns_self(self):
        mechanism = CAT()
        assert mechanism.use_selection("fast") is mechanism
        assert isinstance(mechanism.selection, SelectionPath)
        assert mechanism.selection.name == "fast"

    def test_use_selection_fails_fast_on_bad_spec(self):
        with pytest.raises(KeyError):
            CAT().use_selection("warp-speed")

    def test_run_override_beats_pinned_path(self):
        from repro.core.model import AuctionInstance

        instance = AuctionInstance.build(
            {"a": 1.0}, {"q0": ["a"]}, {"q0": 5.0}, capacity=10.0)
        mechanism = make_mechanism("Random", seed=0).use_selection(
            "fast:strict=true")
        # The pinned strict path raises; the per-call override works.
        with pytest.raises(ValidationError):
            mechanism.run(instance)
        outcome = mechanism.run(instance, selection="reference")
        assert outcome.mechanism == "Random"


class TestServiceThreading:
    def make_builder(self):
        from repro.dsms.streams import SyntheticStream
        from repro.service import ServiceBuilder

        return (ServiceBuilder()
                .with_sources(SyntheticStream("s", rate=2, seed=1))
                .with_capacity(20.0)
                .with_mechanism("CAT"))

    def test_builder_with_selection_pins_the_mechanism(self):
        service = self.make_builder().with_selection("fast").build()
        assert service.mechanism.selection.name == "fast"

    def test_builder_default_leaves_mechanism_default(self):
        service = self.make_builder().build()
        assert service.mechanism.selection is None

    def test_config_carries_and_validates_selection(self):
        from repro.service import ServiceBuilder, ServiceConfig

        config = ServiceConfig(capacity=20.0, selection="fast")
        assert config.selection_spec().name == "fast"
        assert config.with_selection("reference").selection == "reference"
        with pytest.raises(KeyError):
            ServiceConfig(capacity=20.0, selection="warp")
        from repro.dsms.streams import SyntheticStream

        service = (ServiceBuilder(config)
                   .with_sources(SyntheticStream("s", rate=2, seed=1))
                   .build())
        assert service.mechanism.selection.name == "fast"

    def test_config_without_selection_leaves_live_mechanism_pinned(self):
        from repro.core import CAT
        from repro.dsms.streams import SyntheticStream
        from repro.service import ServiceBuilder, ServiceConfig

        mechanism = CAT().use_selection("fast")
        service = (ServiceBuilder(ServiceConfig(capacity=20.0))
                   .with_sources(SyntheticStream("s", rate=2, seed=1))
                   .with_mechanism(mechanism)
                   .build())
        assert service.mechanism.selection.name == "fast"

    def test_selection_survives_snapshot_restore(self):
        from repro.service import AdmissionService

        service = self.make_builder().with_selection("fast").build()
        restored = AdmissionService.restore(service.snapshot())
        assert restored.mechanism.selection.name == "fast"

    def test_federation_build_threads_selection(self):
        from repro.cluster import FederatedAdmissionService
        from repro.dsms.streams import SyntheticStream

        cluster = FederatedAdmissionService.build(
            num_shards=2,
            sources=[SyntheticStream("s", rate=2, seed=1)],
            capacity=20.0,
            mechanism="CAT",
            selection="fast",
            auction_workers=2,
        )
        assert cluster.auction_workers == 2
        for shard in cluster.shards:
            assert shard.mechanism.selection.name == "fast"
