"""Section III special-case reductions, made executable."""

import pytest

from repro.core import make_mechanism
from repro.core.model import AuctionInstance, Operator, Query


def equal_load_instance(bids, load=2.0, capacity=6.0):
    operators = {f"o{i}": Operator(f"o{i}", load)
                 for i in range(len(bids))}
    queries = tuple(Query(f"q{i}", (f"o{i}",), bid=bid)
                    for i, bid in enumerate(bids))
    return AuctionInstance(operators, queries, capacity)


def unequal_load_instance(pairs, capacity):
    operators = {f"o{i}": Operator(f"o{i}", load)
                 for i, (_bid, load) in enumerate(pairs)}
    queries = tuple(Query(f"q{i}", (f"o{i}",), bid=bid)
                    for i, (bid, _load) in enumerate(pairs))
    return AuctionInstance(operators, queries, capacity)


class TestKUnitAuction:
    def test_k_plus_one_price(self):
        # capacity 6, load 2 → k = 3; price = 4th bid.
        instance = equal_load_instance([50, 40, 30, 20, 10])
        outcome = make_mechanism("k-unit").run(instance)
        assert outcome.winner_ids == {"q0", "q1", "q2"}
        assert all(outcome.payment(q) == 20 for q in outcome.winner_ids)
        assert outcome.details["k"] == 3

    def test_vickrey_second_price_when_k_is_one(self):
        instance = equal_load_instance([50, 40], load=2.0, capacity=2.0)
        outcome = make_mechanism("k-unit").run(instance)
        assert outcome.winner_ids == {"q0"}
        assert outcome.payment("q0") == 40  # second price

    def test_fewer_bidders_than_slots(self):
        instance = equal_load_instance([50, 40], load=2.0, capacity=20.0)
        outcome = make_mechanism("k-unit").run(instance)
        assert outcome.profit == 0.0

    def test_rejects_unequal_loads(self):
        instance = unequal_load_instance([(50, 1.0), (40, 2.0)], 6.0)
        with pytest.raises(ValueError):
            make_mechanism("k-unit").run(instance)

    def test_rejects_sharing(self):
        operators = {"s": Operator("s", 2.0)}
        queries = (Query("q0", ("s",), bid=5.0),
                   Query("q1", ("s",), bid=4.0))
        instance = AuctionInstance(operators, queries, capacity=6.0)
        with pytest.raises(ValueError):
            make_mechanism("k-unit").run(instance)


class TestKnapsackAuction:
    def test_density_greedy(self):
        # densities: 25, 10, 9; capacity 4 → q0 (1) + q1 (3) = 4.
        instance = unequal_load_instance(
            [(25, 1.0), (30, 3.0), (36, 4.0)], capacity=4.0)
        outcome = make_mechanism("knapsack").run(instance)
        assert outcome.winner_ids == {"q0", "q1"}
        # Price per unit = q2's density 9 → q0 pays 9, q1 pays 27.
        assert outcome.payment("q0") == pytest.approx(9.0)
        assert outcome.payment("q1") == pytest.approx(27.0)

    def test_rejects_sharing(self):
        operators = {"s": Operator("s", 2.0)}
        queries = (Query("q0", ("s",), bid=5.0),
                   Query("q1", ("s",), bid=4.0))
        instance = AuctionInstance(operators, queries, capacity=6.0)
        with pytest.raises(ValueError):
            make_mechanism("knapsack").run(instance)


class TestReductions:
    """The Section III claims: CAT degenerates to the knapsack auction
    without sharing, and the knapsack auction degenerates to the
    (k+1)-price k-unit auction with equal loads."""

    def test_cat_equals_knapsack_without_sharing(self):
        from repro.workload import WorkloadConfig, WorkloadGenerator

        config = WorkloadConfig(num_queries=50, max_sharing=1,
                                capacity=250.0)
        instance = WorkloadGenerator(config=config, seed=6).instance(
            max_sharing=1)
        cat = make_mechanism("CAT").run(instance)
        knapsack = make_mechanism("knapsack").run(instance)
        assert cat.winner_ids == knapsack.winner_ids
        for qid in cat.winner_ids:
            assert cat.payment(qid) == pytest.approx(
                knapsack.payment(qid))

    def test_caf_also_reduces_without_sharing(self):
        from repro.workload import WorkloadConfig, WorkloadGenerator

        config = WorkloadConfig(num_queries=40, max_sharing=1,
                                capacity=200.0)
        instance = WorkloadGenerator(config=config, seed=8).instance(
            max_sharing=1)
        caf = make_mechanism("CAF").run(instance)
        knapsack = make_mechanism("knapsack").run(instance)
        assert caf.winner_ids == knapsack.winner_ids

    def test_knapsack_equals_k_unit_with_equal_loads(self):
        instance = equal_load_instance([50, 40, 30, 20, 10])
        knapsack = make_mechanism("knapsack").run(instance)
        k_unit = make_mechanism("k-unit").run(instance)
        assert knapsack.winner_ids == k_unit.winner_ids
        for qid in knapsack.winner_ids:
            assert knapsack.payment(qid) == pytest.approx(
                k_unit.payment(qid))
