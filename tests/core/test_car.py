"""Unit tests for CAR beyond the worked example."""

import pytest

from repro.core import make_mechanism
from repro.core.model import AuctionInstance, Operator, Query


class TestCARMechanics:
    def test_zero_remaining_load_admitted_free(self):
        # q1 fully contained in q0: once q0 wins, q1's remaining load
        # is 0, its priority infinite, and it is admitted at price 0.
        operators = {"a": Operator("a", 4.0), "b": Operator("b", 2.0)}
        queries = (
            Query("q0", ("a", "b"), bid=30.0),
            Query("q1", ("a",), bid=1.0),
            Query("q2", ("b",), bid=9.0),
        )
        instance = AuctionInstance(operators, queries, capacity=6.0)
        outcome = make_mechanism("CAR").run(instance)
        assert outcome.winner_ids == {"q0", "q1", "q2"}
        assert outcome.payment("q1") == 0.0
        assert outcome.payment("q2") == 0.0

    def test_no_loser_means_free_service(self):
        operators = {"a": Operator("a", 1.0), "b": Operator("b", 1.0)}
        queries = (Query("q0", ("a",), bid=5.0),
                   Query("q1", ("b",), bid=3.0))
        instance = AuctionInstance(operators, queries, capacity=10.0)
        outcome = make_mechanism("CAR").run(instance)
        assert outcome.winner_ids == {"q0", "q1"}
        assert outcome.profit == 0.0

    def test_payment_uses_remaining_load_at_admission(self, example_instance):
        outcome = make_mechanism("CAR").run(example_instance)
        loads = outcome.details["admission_remaining_loads"]
        assert loads == {"q2": 6.0, "q1": 1.0}

    def test_not_bid_strategyproof_certificate(self, example_instance):
        """The Section IV-A manipulation: q2 under-bids so it is chosen
        *after* q1, shrinking its remaining load from 6 to 2."""
        truthful = make_mechanism("CAR").run(example_instance)
        assert truthful.payment("q2") == pytest.approx(60.0)
        lying = make_mechanism("CAR").run(
            example_instance.with_bid("q2", 36.0))
        assert lying.is_winner("q2")
        # Now q1 (priority 11) precedes q2 (36/6 = 6 ... chosen later);
        # q2's remaining load drops to C = 2 units → payment 20.
        assert lying.payment("q2") < 60.0
        payoff_truthful = 72.0 - truthful.payment("q2")
        payoff_lying = 72.0 - lying.payment("q2")
        assert payoff_lying > payoff_truthful

    def test_respects_capacity(self, small_generator):
        instance = small_generator.instance(max_sharing=5)
        outcome = make_mechanism("CAR").run(instance)
        assert outcome.used_capacity <= instance.capacity + 1e-6
