"""Exact optimal winner selection tests."""

import pytest
from hypothesis import given, settings

from repro.core import make_mechanism
from repro.core.exact import greedy_value_gap, optimal_winner_set
from repro.core.model import AuctionInstance, Operator, Query
from repro.utils.validation import ValidationError
from repro.workload import example1
from tests.strategies import auction_instances


def brute_force_optimum(instance):
    """Reference: enumerate all subsets."""
    from itertools import combinations

    best = 0.0
    ids = [q.query_id for q in instance.queries]
    for size in range(len(ids) + 1):
        for subset in combinations(ids, size):
            if instance.fits(subset):
                value = sum(instance.query(qid).bid for qid in subset)
                best = max(best, value)
    return best


class TestOptimalWinnerSet:
    def test_example1(self):
        solution = optimal_winner_set(example1())
        assert solution.winner_ids == ("q1", "q2")
        assert solution.total_value == pytest.approx(127.0)

    def test_sharing_exploited(self):
        """The optimum picks the sharing pair over the single big bid
        when their combined value wins."""
        operators = {"s": Operator("s", 8.0), "a": Operator("a", 1.0),
                     "b": Operator("b", 1.0), "x": Operator("x", 10.0)}
        queries = (
            Query("q0", ("s", "a"), bid=40.0),
            Query("q1", ("s", "b"), bid=40.0),
            Query("q2", ("x",), bid=70.0),
        )
        instance = AuctionInstance(operators, queries, capacity=10.0)
        solution = optimal_winner_set(instance)
        assert set(solution.winner_ids) == {"q0", "q1"}

    def test_guard_on_large_instances(self):
        operators = {f"o{i}": Operator(f"o{i}", 1.0) for i in range(30)}
        queries = tuple(Query(f"q{i}", (f"o{i}",), bid=1.0)
                        for i in range(30))
        instance = AuctionInstance(operators, queries, capacity=10.0)
        with pytest.raises(ValidationError):
            optimal_winner_set(instance, max_queries=24)

    @settings(max_examples=30, deadline=None)
    @given(instance=auction_instances(max_queries=7))
    def test_matches_brute_force(self, instance):
        solution = optimal_winner_set(instance)
        assert solution.total_value == pytest.approx(
            brute_force_optimum(instance))
        assert instance.fits(solution.winner_ids)

    @settings(max_examples=30, deadline=None)
    @given(instance=auction_instances(max_queries=7))
    def test_upper_bounds_greedy(self, instance):
        """No mechanism's winner set can out-value the optimum."""
        for name in ("CAF", "CAT", "GV"):
            outcome = make_mechanism(name).run(instance)
            greedy, optimum = greedy_value_gap(
                instance, outcome.winner_ids)
            assert greedy <= optimum + 1e-6
