"""Unit tests for the shared greedy admission scheme."""

import math

import pytest

from repro.core.greedy import (
    greedy_admit,
    priority_of,
    priority_order,
)
from repro.core.loads import static_fair_share_load, total_load
from repro.core.model import AuctionInstance, Operator, Query


def chain_instance(loads, bids, capacity):
    """n queries with disjoint single operators."""
    operators = {f"o{i}": Operator(f"o{i}", load)
                 for i, load in enumerate(loads)}
    queries = tuple(
        Query(f"q{i}", (f"o{i}",), bid=bid)
        for i, bid in enumerate(bids))
    return AuctionInstance(operators, queries, capacity)


class TestPriorityOf:
    def test_plain_density(self):
        assert priority_of(10.0, 4.0) == 2.5

    def test_zero_load_is_infinite(self):
        assert priority_of(5.0, 0.0) == math.inf

    def test_zero_bid(self):
        assert priority_of(0.0, 4.0) == 0.0


class TestPriorityOrder:
    def test_orders_by_density_descending(self):
        instance = chain_instance([1, 2, 1], [5, 20, 7], capacity=10)
        order = priority_order(instance, total_load)
        assert [q.query_id for q in order] == ["q1", "q2", "q0"]

    def test_tie_break_by_query_id(self):
        instance = chain_instance([1, 1], [5, 5], capacity=10)
        order = priority_order(instance, total_load)
        assert [q.query_id for q in order] == ["q0", "q1"]

    def test_fair_share_changes_order(self):
        # Shared operator halves q0's fair-share load, boosting it.
        operators = {"s": Operator("s", 4.0), "p": Operator("p", 4.0),
                     "x": Operator("x", 4.0)}
        queries = (
            Query("q0", ("s",), bid=10.0),
            Query("q1", ("s",), bid=1.0),   # shares s
            Query("q2", ("p",), bid=11.0),
            Query("q3", ("x",), bid=18.0),
        )
        instance = AuctionInstance(operators, queries, capacity=12.0)
        total_order = [q.query_id for q in
                       priority_order(instance, total_load)]
        fair_order = [q.query_id for q in
                      priority_order(instance, static_fair_share_load)]
        assert total_order.index("q0") > total_order.index("q2")
        assert fair_order.index("q0") < fair_order.index("q2")


class TestGreedyAdmit:
    def test_stop_at_first(self):
        instance = chain_instance([5, 6, 1], [50, 30, 5], capacity=10)
        order = sorted(instance.queries, key=lambda q: -q.bid)
        selection = greedy_admit(instance, order, skip_over=False)
        assert [q.query_id for q in selection.winners] == ["q0"]
        assert selection.first_loser.query_id == "q1"

    def test_skip_over_finds_lighter_queries(self):
        instance = chain_instance([5, 6, 1], [50, 30, 5], capacity=10)
        order = sorted(instance.queries, key=lambda q: -q.bid)
        selection = greedy_admit(instance, order, skip_over=True)
        assert [q.query_id for q in selection.winners] == ["q0", "q2"]
        assert selection.first_loser.query_id == "q1"

    def test_everything_fits(self):
        instance = chain_instance([1, 1], [5, 4], capacity=10)
        selection = greedy_admit(
            instance, list(instance.queries), skip_over=False)
        assert len(selection.winners) == 2
        assert selection.first_loser is None

    def test_marginal_cost_admission(self):
        # Shared operator: second query adds only its private part.
        operators = {"big": Operator("big", 8.0),
                     "p1": Operator("p1", 1.0),
                     "p2": Operator("p2", 1.0)}
        queries = (
            Query("q0", ("big", "p1"), bid=20.0),
            Query("q1", ("big", "p2"), bid=10.0),
        )
        instance = AuctionInstance(operators, queries, capacity=10.0)
        selection = greedy_admit(
            instance, list(instance.queries), skip_over=False)
        # q0 uses 9; q1's marginal is only 1 thanks to sharing.
        assert {q.query_id for q in selection.winners} == {"q0", "q1"}

    def test_capacity_never_exceeded(self):
        instance = chain_instance([3, 3, 3, 3], [9, 8, 7, 6], capacity=7)
        selection = greedy_admit(
            instance, list(instance.queries), skip_over=True)
        used = instance.union_load(q.query_id for q in selection.winners)
        assert used <= instance.capacity + 1e-9
