"""Unit tests for outcome accounting and metrics."""

import pytest

from repro.core.model import AuctionInstance, Operator, Query
from repro.core.result import AuctionOutcome
from repro.utils.validation import ValidationError


@pytest.fixture
def instance():
    operators = {"a": Operator("a", 3.0), "b": Operator("b", 2.0)}
    queries = (
        Query("q1", ("a",), bid=10.0, owner="alice"),
        Query("q2", ("b",), bid=8.0, valuation=12.0, owner="alice"),
        Query("q3", ("a", "b"), bid=6.0, owner="bob"),
    )
    return AuctionInstance(operators, queries, capacity=5.0)


class TestOutcomeBasics:
    def test_winners_and_payments(self, instance):
        outcome = AuctionOutcome(instance, {"q1": 4.0, "q2": 2.0})
        assert outcome.winner_ids == {"q1", "q2"}
        assert outcome.payment("q1") == 4.0
        assert outcome.payment("q3") == 0.0
        assert outcome.is_winner("q2")
        assert not outcome.is_winner("q3")

    def test_unknown_winner_rejected(self, instance):
        with pytest.raises(ValidationError):
            AuctionOutcome(instance, {"zzz": 1.0})

    def test_negative_payment_rejected(self, instance):
        with pytest.raises(ValidationError):
            AuctionOutcome(instance, {"q1": -0.5})


class TestMetrics:
    def test_profit(self, instance):
        outcome = AuctionOutcome(instance, {"q1": 4.0, "q2": 2.0})
        assert outcome.profit == 6.0

    def test_payoff_uses_valuation(self, instance):
        outcome = AuctionOutcome(instance, {"q2": 2.0})
        # q2's valuation is 12 even though its bid is 8.
        assert outcome.payoff("q2") == pytest.approx(10.0)
        assert outcome.payoff("q1") == 0.0

    def test_owner_payoff_aggregates(self, instance):
        outcome = AuctionOutcome(instance, {"q1": 4.0, "q2": 2.0})
        assert outcome.owner_payoff("alice") == pytest.approx(
            (10 - 4) + (12 - 2))
        assert outcome.owner_payoff("bob") == 0.0

    def test_admission_rate(self, instance):
        outcome = AuctionOutcome(instance, {"q1": 0.0})
        assert outcome.admission_rate == pytest.approx(1 / 3)

    def test_utilization_shares_operators(self, instance):
        outcome = AuctionOutcome(instance, {"q1": 0.0, "q3": 0.0})
        # q1 ∪ q3 = {a, b} = 5 units of 5.
        assert outcome.utilization == pytest.approx(1.0)

    def test_total_user_payoff(self, instance):
        outcome = AuctionOutcome(instance, {"q1": 4.0, "q2": 2.0})
        assert outcome.total_user_payoff == pytest.approx(6 + 10)

    def test_validate_capacity(self, instance):
        overfull = AuctionOutcome(
            instance, {"q1": 0.0, "q2": 0.0, "q3": 0.0})
        # a+b = 5 = capacity → fine.
        overfull.validate_capacity()
        tight = instance.with_capacity(4.0)
        with pytest.raises(ValidationError):
            AuctionOutcome(tight, {"q1": 0.0, "q2": 0.0}).validate_capacity()

    def test_summary_keys(self, instance):
        summary = AuctionOutcome(instance, {"q1": 1.0}).summary()
        assert set(summary) == {"profit", "admission_rate",
                                "total_user_payoff", "utilization",
                                "winners"}
