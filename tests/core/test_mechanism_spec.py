"""MechanismSpec parsing/validation, run_many, and kwarg validation."""

import pytest

from repro.core import (
    PAPER_MECHANISMS,
    MechanismSpec,
    make_mechanism,
    mechanism_params,
    resolve_mechanism,
)
from repro.core.mechanism import Mechanism
from repro.workload import example1
from repro.utils.validation import ValidationError


class TestParsing:
    def test_bare_name(self):
        spec = MechanismSpec.parse("CAT")
        assert spec.name == "CAT"
        assert spec.params == {}
        assert str(spec) == "CAT"

    def test_typed_params(self):
        spec = MechanismSpec.parse(
            "two-price:seed=7,adjust_ties=false,partition_mode=hash")
        assert spec.params == {"seed": 7, "adjust_ties": False,
                               "partition_mode": "hash"}

    def test_round_trips_through_str(self):
        spec = MechanismSpec.parse("two-price:partition_mode=hash,seed=7")
        assert MechanismSpec.parse(str(spec)) == spec

    def test_malformed_specs_rejected(self):
        with pytest.raises(ValidationError):
            MechanismSpec.parse("")
        with pytest.raises(ValidationError, match="key=value"):
            MechanismSpec.parse("CAT:seed")
        with pytest.raises(ValidationError):
            MechanismSpec("")

    def test_whitespace_around_separators_is_stripped(self):
        spec = MechanismSpec.parse("two-price : seed=7")
        assert spec.name == "two-price"
        assert spec.validate().params == {"seed": 7}

    def test_create_runs_the_mechanism(self):
        outcome = MechanismSpec.parse("two-price:seed=7").create().run(
            example1())
        assert outcome.mechanism == "Two-price"

    def test_validate_flags_unknown_name_and_params(self):
        with pytest.raises(KeyError, match="unknown mechanism"):
            MechanismSpec.parse("nope").validate()
        with pytest.raises(ValidationError, match="accepted parameters"):
            MechanismSpec.parse("two-price:volume=11").validate()
        # A paramless factory spells out that nothing is accepted.
        with pytest.raises(ValidationError, match="none"):
            MechanismSpec.parse("CAT:seed=1").validate()

    def test_with_params_merges(self):
        spec = MechanismSpec.parse("two-price:seed=1")
        merged = spec.with_params(seed=9, partition_mode="hash")
        assert merged.params == {"seed": 9, "partition_mode": "hash"}
        assert spec.params == {"seed": 1}  # original untouched


class TestResolveMechanism:
    def test_all_accepted_forms(self):
        from repro.core import CAT

        assert resolve_mechanism("CAT").name == "CAT"
        assert resolve_mechanism("two-price:seed=7").name == "Two-price"
        assert resolve_mechanism(MechanismSpec("CAF")).name == "CAF"
        live = CAT()
        assert resolve_mechanism(live) is live

    def test_garbage_rejected(self):
        with pytest.raises(ValidationError):
            resolve_mechanism(42)


class TestMakeMechanismValidation:
    def test_bad_kwarg_names_accepted_parameters(self):
        with pytest.raises(ValidationError) as excinfo:
            make_mechanism("two-price", sed=7)
        message = str(excinfo.value)
        assert "sed" in message and "seed" in message
        assert "partition_mode" in message

    def test_paramless_factory_says_none_accepted(self):
        with pytest.raises(ValidationError, match="none"):
            make_mechanism("CAT", seed=3)

    def test_good_kwargs_still_forwarded(self):
        mechanism = make_mechanism("two-price", seed=7,
                                   partition_mode="hash")
        assert mechanism.name == "Two-price"

    def test_mechanism_params_introspection(self):
        assert "seed" in mechanism_params("two-price")
        assert mechanism_params("CAT") == ()


class TestRunMany:
    def test_batch_matches_sequential(self):
        instances = [example1() for _ in range(4)]
        batch = make_mechanism("CAT").run_many(instances)
        sequential = [make_mechanism("CAT").run(i) for i in instances]
        assert [o.winner_ids for o in batch] == \
            [o.winner_ids for o in sequential]
        assert [o.profit for o in batch] == [o.profit for o in sequential]

    def test_batch_is_seed_reproducible(self):
        instances = [example1() for _ in range(3)]
        first = make_mechanism("two-price", seed=5).run_many(instances)
        second = make_mechanism("two-price", seed=5).run_many(instances)
        assert [dict(o.payments) for o in first] == \
            [dict(o.payments) for o in second]

    def test_every_paper_mechanism_batches(self):
        for name in PAPER_MECHANISMS:
            mechanism = make_mechanism(name)
            assert isinstance(mechanism, Mechanism)
            outcomes = mechanism.run_many([example1(), example1()])
            assert len(outcomes) == 2
