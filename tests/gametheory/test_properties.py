"""Table I verification battery tests."""

from repro.gametheory.properties import (
    TABLE_I,
    render_verdicts,
    verify_properties,
)


class TestTableI:
    def test_claims_match_paper(self):
        assert TABLE_I["CAT"] == (True, True, False)
        assert TABLE_I["CAF"] == (True, False, False)
        assert TABLE_I["Two-price"] == (True, False, True)

    def test_verification_battery_consistent(self):
        verdicts = verify_properties(
            num_instances=1, num_queries=30, users_per_instance=4,
            attack_attempts=6, seed=1)
        assert len(verdicts) == len(TABLE_I)
        for verdict in verdicts:
            assert verdict.consistent, verdict
        # No strategyproof mechanism shows a misreport.
        for verdict in verdicts:
            if verdict.claimed_strategyproof:
                assert verdict.misreports_found == 0
        # CAT shows no attack.
        cat = next(v for v in verdicts if v.mechanism == "CAT")
        assert cat.attacks_found == 0

    def test_render(self):
        verdicts = verify_properties(
            num_instances=1, num_queries=20, users_per_instance=2,
            attack_attempts=3, seed=2)
        text = render_verdicts(verdicts)
        assert "Table I" in text
        assert "CAT" in text
