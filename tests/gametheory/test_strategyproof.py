"""Empirical strategyproofness tests (Theorems 4, 7, 8, 9, 10)."""

import pytest
from hypothesis import given, settings

from repro.core import make_mechanism
from repro.core.two_price import TwoPrice
from repro.gametheory.strategyproof import (
    find_profitable_misreport,
    scan_strategyproofness,
)
from repro.workload import example1
from tests.strategies import auction_instances

STRATEGYPROOF = ("CAF", "CAF+", "CAT", "CAT+", "GV")


class TestStrategyproofMechanisms:
    @pytest.mark.parametrize("name", STRATEGYPROOF)
    def test_example1_no_misreports(self, name):
        instance = example1()
        mechanism = make_mechanism(name)
        assert scan_strategyproofness(mechanism, instance) == []

    @settings(max_examples=20, deadline=None)
    @given(instance=auction_instances(min_queries=2, max_queries=6))
    def test_random_instances_no_misreports(self, instance):
        for name in STRATEGYPROOF:
            mechanism = make_mechanism(name)
            for query in instance.queries:
                misreport = find_profitable_misreport(
                    mechanism, instance, query.query_id, seed=0)
                assert misreport is None, (name, misreport)

    @settings(max_examples=10, deadline=None)
    @given(instance=auction_instances(min_queries=2, max_queries=6))
    def test_two_price_hash_mode_no_misreports(self, instance):
        """Per fixed hash partition, Two-price is exactly
        bid-strategyproof (the RSOP conditioning argument)."""
        def factory(run_seed):
            return TwoPrice(seed=run_seed, partition_mode="hash")

        for query in instance.queries:
            misreport = find_profitable_misreport(
                factory, instance, query.query_id, seed=1, runs=3)
            assert misreport is None, misreport


class TestCARManipulable:
    def test_car_misreport_exists_on_example1(self):
        """Section IV-A: CAR is not bid-strategyproof; on Example 1 the
        sharing user q2 gains by under-bidding."""
        instance = example1()
        misreport = find_profitable_misreport(
            make_mechanism("CAR"), instance, "q2", seed=0)
        assert misreport is not None
        assert misreport.strategic_bid < misreport.truthful_bid
        assert misreport.gain > 0

    def test_scan_finds_car_manipulators(self):
        instance = example1()
        found = scan_strategyproofness(make_mechanism("CAR"), instance)
        assert any(m.query_id == "q2" for m in found)
