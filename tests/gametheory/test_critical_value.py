"""Critical-value estimation tests (the payment characterization)."""

import pytest

from repro.core import make_mechanism
from repro.gametheory.critical_value import critical_value, wins_at_bid
from repro.workload import example1


class TestWinsAtBid:
    def test_transition(self):
        instance = example1()
        cat = make_mechanism("CAT")
        assert wins_at_bid(cat, instance, "q1", 55.0)
        assert not wins_at_bid(cat, instance, "q1", 1.0)


class TestCriticalValue:
    @pytest.mark.parametrize("name", ["CAF", "CAT", "GV"])
    def test_payment_equals_critical_value(self, name):
        """The Section III characterization: for the stop-at-first
        strategyproof mechanisms, every winner's payment is her
        critical value."""
        instance = example1()
        mechanism = make_mechanism(name)
        outcome = mechanism.run(instance)
        for qid in outcome.winner_ids:
            critical = critical_value(mechanism, instance, qid,
                                      tolerance=1e-7)
            assert critical == pytest.approx(
                outcome.payment(qid), abs=1e-4)

    def test_plus_variant_payment_equals_critical_value(self):
        """CAF+ payments are critical values too (Theorem 7) — checked
        on an instance where movement windows actually close."""
        from repro.core.model import AuctionInstance, Operator, Query

        operators = {f"o{i}": Operator(f"o{i}", load)
                     for i, load in enumerate([5, 5, 5, 2])}
        queries = tuple(
            Query(f"q{i}", (f"o{i}",), bid=bid)
            for i, bid in enumerate([50, 45, 40, 4]))
        instance = AuctionInstance(operators, queries, capacity=12)
        mechanism = make_mechanism("CAF+")
        outcome = mechanism.run(instance)
        for qid in outcome.winner_ids:
            critical = critical_value(mechanism, instance, qid,
                                      tolerance=1e-7)
            assert critical == pytest.approx(
                outcome.payment(qid), abs=1e-3)

    def test_loser_with_no_winning_bid(self):
        instance = example1()
        # q3 needs the whole server; with q1/q2 denser it can win by
        # outbidding... at a high enough bid it tops the list and fits
        # alone, so a critical value exists.
        cat = make_mechanism("CAT")
        critical = critical_value(cat, instance, "q3")
        assert critical is not None

    def test_always_winner_has_zero_critical_value(self):
        from repro.core.model import AuctionInstance, Operator, Query

        operators = {"a": Operator("a", 1.0)}
        instance = AuctionInstance(
            operators, (Query("q0", ("a",), bid=5.0),), capacity=10.0)
        cat = make_mechanism("CAT")
        assert critical_value(cat, instance, "q0") == 0.0
