"""Monotonicity tests over the strategyproof mechanisms."""

from hypothesis import given, settings

from repro.core import make_mechanism
from repro.gametheory.monotonicity import (
    check_bid_monotonicity,
    check_subset_monotonicity,
    scan_monotonicity,
)
from repro.workload import example1
from tests.strategies import auction_instances

STRATEGYPROOF = ("CAF", "CAF+", "CAT", "CAT+", "GV")


class TestBidMonotonicity:
    def test_example1_all_clean(self):
        instance = example1()
        for name in STRATEGYPROOF:
            mechanism = make_mechanism(name)
            assert scan_monotonicity(mechanism, instance) == []

    @settings(max_examples=25, deadline=None)
    @given(instance=auction_instances(min_queries=2, max_queries=6))
    def test_random_instances_clean(self, instance):
        for name in STRATEGYPROOF:
            mechanism = make_mechanism(name)
            for query in instance.queries:
                violation = check_bid_monotonicity(
                    mechanism, instance, query.query_id)
                assert violation is None, (name, violation)


class TestSubsetMonotonicity:
    def test_example1_smb_monotone(self):
        """Lehmann et al.'s extended monotonicity (Section III): a
        winner asking for a strict subset of her operators still wins."""
        instance = example1()
        for name in ("CAF", "CAT", "GV"):
            mechanism = make_mechanism(name)
            for query in instance.queries:
                violation = check_subset_monotonicity(
                    mechanism, instance, query.query_id)
                assert violation is None, (name, violation)

    @settings(max_examples=15, deadline=None)
    @given(instance=auction_instances(min_queries=2, max_queries=5))
    def test_random_instances_smb(self, instance):
        for name in ("CAT", "GV"):
            mechanism = make_mechanism(name)
            for query in instance.queries:
                violation = check_subset_monotonicity(
                    mechanism, instance, query.query_id, max_subsets=8)
                assert violation is None, (name, violation)
