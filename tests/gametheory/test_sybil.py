"""Sybil-attack machinery and immunity tests (Section V)."""

import pytest
from hypothesis import given, settings

from repro.core import make_mechanism
from repro.core.model import Operator, Query
from repro.gametheory.sybil import (
    SybilAttack,
    assess_attack,
    check_immunity_characterization,
    random_attack,
    search_sybil_attack,
)
from repro.utils.validation import ValidationError
from repro.workload import example1
from tests.strategies import auction_instances


class TestSybilAttackModel:
    def test_requires_attacker_ownership(self):
        fake = Query("f", ("A",), bid=1.0, valuation=0.0, owner="eve")
        with pytest.raises(ValidationError):
            SybilAttack(attacker="mallory", fake_queries=(fake,))

    def test_requires_zero_valuation(self):
        fake = Query("f", ("A",), bid=1.0, valuation=5.0, owner="eve")
        with pytest.raises(ValidationError):
            SybilAttack(attacker="eve", fake_queries=(fake,))

    def test_apply_adds_queries(self):
        instance = example1()
        fake = Query("f", ("A",), bid=0.001, valuation=0.0, owner="q1")
        attacked = SybilAttack("q1", (fake,)).apply(instance)
        assert attacked.num_queries == 4
        assert attacked.sharing_degree("A") == 3

    def test_apply_with_fresh_operator(self):
        instance = example1()
        fake = Query("f", ("X",), bid=0.001, valuation=0.0, owner="q1")
        attacked = SybilAttack(
            "q1", (fake,), (Operator("X", 0.01),)).apply(instance)
        assert attacked.operator("X").load == 0.01


class TestAssessAttack:
    def test_gain_accounting_includes_fake_payments(self):
        """If a fake wins and pays, that cost lands on the attacker."""
        instance = example1()
        # A fake that outbids everyone on a tiny op: it wins and pays.
        fake = Query("f", ("X",), bid=1000.0, valuation=0.0, owner="q3")
        attack = SybilAttack("q3", (fake,), (Operator("X", 0.5),))
        assessment = assess_attack(make_mechanism("CAT"), instance, attack)
        attacked = make_mechanism("CAT").run(attack.apply(instance))
        assert assessment.attacked_payoff == pytest.approx(
            attacked.owner_payoff("q3"))


class TestCATSybilImmunity:
    """Theorem 19: no sybil attack profits against CAT."""

    def test_example1_search_finds_nothing(self):
        instance = example1()
        for attacker in ("q1", "q2", "q3"):
            assert search_sybil_attack(
                make_mechanism("CAT"), instance, attacker,
                attempts=40, seed=3) is None

    @settings(max_examples=12, deadline=None)
    @given(instance=auction_instances(min_queries=2, max_queries=5))
    def test_random_instances_immune(self, instance):
        cat = make_mechanism("CAT")
        for query in instance.queries:
            found = search_sybil_attack(
                cat, instance, query.owner_id, attempts=8, seed=5)
            assert found is None, found

    @settings(max_examples=12, deadline=None)
    @given(instance=auction_instances(min_queries=2, max_queries=5))
    def test_characterization_holds_for_cat(self, instance):
        import numpy as np

        cat = make_mechanism("CAT")
        rng = np.random.default_rng(0)
        for index, query in enumerate(instance.queries[:3]):
            attack = random_attack(instance, query.owner_id, rng, index)
            violation = check_immunity_characterization(
                cat, instance, attack)
            assert violation is None, violation


class TestVulnerableMechanismsFindable:
    def test_caf_attack_findable_by_search(self):
        """CAF's universal vulnerability should surface in random
        search on an instance where the attacker pays something."""
        instance = example1()
        found = search_sybil_attack(
            make_mechanism("CAF"), instance, "q2", attempts=60, seed=2)
        assert found is not None
        attack, assessment = found
        assert assessment.profitable
