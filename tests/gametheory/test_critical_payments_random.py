"""Payments equal critical values on random instances (hypothesis).

The Section III characterization: a monotone mechanism is
bid-strategyproof iff each winner pays her critical value.  The paper
proves it per mechanism (Theorems 4, 7, 8, 9); here we check it
empirically on randomly drawn shared-operator instances by bisecting
each winner's win/lose threshold and comparing against the charged
payment.
"""

import pytest
from hypothesis import given, settings

from repro.core import make_mechanism
from repro.gametheory.critical_value import critical_value
from tests.strategies import auction_instances


def assert_payments_are_critical(name, instance, sample_limit=3):
    mechanism = make_mechanism(name)
    outcome = mechanism.run(instance)
    for qid in sorted(outcome.winner_ids)[:sample_limit]:
        critical = critical_value(mechanism, instance, qid,
                                  tolerance=1e-8)
        assert critical is not None
        assert critical == pytest.approx(
            outcome.payment(qid), abs=1e-4), (name, qid)


@settings(max_examples=20, deadline=None)
@given(instance=auction_instances(min_queries=2, max_queries=6))
@pytest.mark.parametrize("name", ["CAF", "CAT", "GV"])
def test_stop_at_first_payments_are_critical(name, instance):
    assert_payments_are_critical(name, instance)


@settings(max_examples=12, deadline=None)
@given(instance=auction_instances(min_queries=2, max_queries=5))
@pytest.mark.parametrize("name", ["CAF+", "CAT+"])
def test_movement_window_payments_are_critical(name, instance):
    """Definitions 5–6 encode exactly the critical value; bisection
    must agree with the movement-window computation."""
    assert_payments_are_critical(name, instance)


@settings(max_examples=15, deadline=None)
@given(instance=auction_instances(min_queries=2, max_queries=6))
def test_car_payment_not_always_critical(instance):
    """CAR charges remaining-load prices that are *not* generally
    critical values — that is its broken-ness.  We only assert the
    sanity direction here: bidding above the charged payment does not
    always secure a win or the same payment (no exception raised);
    actual counterexamples are pinned in test_car.py."""
    outcome = make_mechanism("CAR").run(instance)
    # Existence check only: the mechanism runs and charges winners.
    for qid in outcome.winner_ids:
        assert outcome.payment(qid) >= 0.0
