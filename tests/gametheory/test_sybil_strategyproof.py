"""Sybil-strategyproofness tests (Definition 18, Theorem 19).

A mechanism is sybil-strategyproof when no user profits from lying,
attacking, or doing both at once.  CAT is (Theorem 19); CAF/CAF+ fall
to the combined search just as they fall to attacks alone.
"""

from hypothesis import given, settings

from repro.core import make_mechanism
from repro.gametheory.sybil import search_combined_attack
from repro.workload import example1
from tests.strategies import auction_instances


class TestCATSybilStrategyproof:
    def test_example1_combined_search_finds_nothing(self):
        instance = example1()
        cat = make_mechanism("CAT")
        for attacker in ("q1", "q2", "q3"):
            found = search_combined_attack(
                cat, instance, attacker, attempts=20, seed=1)
            assert found is None, found

    @settings(max_examples=8, deadline=None)
    @given(instance=auction_instances(min_queries=2, max_queries=5))
    def test_random_instances_resist(self, instance):
        cat = make_mechanism("CAT")
        for query in instance.queries[:3]:
            found = search_combined_attack(
                cat, instance, query.owner_id, attempts=6, seed=2)
            assert found is None, found


class TestVulnerableUnderCombinedSearch:
    def test_caf_falls_to_combined_search(self):
        """The fair-share attack surfaces (possibly with a lie on top)."""
        instance = example1()
        caf = make_mechanism("CAF")
        found = None
        for attacker in ("q2", "q3", "q1"):
            found = search_combined_attack(
                caf, instance, attacker, attempts=60, seed=3)
            if found is not None:
                break
        assert found is not None
        _attack, _factor, assessment = found
        assert assessment.profitable

    def test_car_falls_even_without_fakes_helping(self):
        """CAR isn't even bid-strategyproof; the combined search finds
        a profitable strategy immediately."""
        instance = example1()
        car = make_mechanism("CAR")
        found = search_combined_attack(
            car, instance, "q2", attempts=20, seed=4)
        assert found is not None
