"""The paper's constructive attacks, theorem by theorem."""

import pytest

from repro.core import make_mechanism
from repro.core.two_price import TwoPrice
from repro.gametheory.attacks import (
    cat_plus_table2_attack,
    fair_share_attack,
    two_price_coin_attack,
)
from repro.gametheory.sybil import assess_attack
from repro.workload import example1


class TestFairShareAttack:
    """Theorem 15: CAF and CAF+ are universally vulnerable."""

    @pytest.mark.parametrize("target", ["q1", "q2", "q3"])
    def test_profits_against_caf_on_example1(self, target):
        instance = example1()
        attack = fair_share_attack(instance, target, num_fakes=6)
        assessment = assess_attack(make_mechanism("CAF"), instance, attack)
        assert assessment.profitable, (target, assessment)

    def test_profits_against_caf_plus_for_losers(self):
        """Under CAF+, q1/q2 already pay 0 on Example 1 (nothing left
        to gain), but the loser q3 is flipped into a winner by the
        fair-share attack."""
        instance = example1()
        attack = fair_share_attack(instance, "q3", num_fakes=6)
        assessment = assess_attack(
            make_mechanism("CAF+"), instance, attack)
        assert assessment.baseline_payoff == 0.0
        assert assessment.profitable

    @pytest.mark.parametrize("target", ["q1", "q2"])
    def test_never_hurts_against_caf_plus(self, target):
        instance = example1()
        attack = fair_share_attack(instance, target, num_fakes=6)
        assessment = assess_attack(
            make_mechanism("CAF+"), instance, attack)
        assert assessment.gain >= -1e-9

    def test_attack_reduces_fair_share_load(self):
        from repro.core.loads import static_fair_share_load

        instance = example1()
        attack = fair_share_attack(instance, "q1", num_fakes=4)
        attacked = attack.apply(instance)
        before = static_fair_share_load(instance, instance.query("q1"))
        after = static_fair_share_load(attacked, attacked.query("q1"))
        assert after < before

    def test_same_attack_fails_against_cat(self):
        """CAT ignores fair-share loads, so the attack buys nothing."""
        instance = example1()
        for target in ("q1", "q2", "q3"):
            attack = fair_share_attack(instance, target, num_fakes=6)
            assessment = assess_attack(
                make_mechanism("CAT"), instance, attack)
            assert not assessment.profitable


class TestTable2Attack:
    """Theorem 17 / Table II: the attack that defeats CAT+."""

    def test_honest_run_serves_user1(self):
        scenario = cat_plus_table2_attack()
        outcome = make_mechanism("CAT+").run(scenario.honest_instance)
        assert outcome.winner_ids == {"u1"}

    def test_attack_profits_against_cat_plus(self):
        scenario = cat_plus_table2_attack(epsilon=1e-3)
        assessment = assess_attack(
            make_mechanism("CAT+"), scenario.honest_instance,
            scenario.attack)
        assert assessment.baseline_payoff == pytest.approx(0.0)
        # Payoff 89 − 100ε (user 2 pays 0; the fake pays 100ε).
        assert assessment.attacked_payoff == pytest.approx(
            89.0 - 100.0 * scenario.epsilon)
        assert assessment.profitable

    def test_attacked_payments_match_table(self):
        scenario = cat_plus_table2_attack(epsilon=1e-3)
        outcome = make_mechanism("CAT+").run(
            scenario.attack.apply(scenario.honest_instance))
        assert outcome.winner_ids == {"u2", "u3"}
        assert outcome.payment("u2") == pytest.approx(0.0)
        assert outcome.payment("u3") == pytest.approx(0.1)  # 100ε

    def test_same_attack_fails_against_cat(self):
        scenario = cat_plus_table2_attack(epsilon=1e-3)
        assessment = assess_attack(
            make_mechanism("CAT"), scenario.honest_instance,
            scenario.attack)
        assert not assessment.profitable


class TestTwoPriceCoinAttack:
    """Section V-C: expected-payment reduction under coin partitions."""

    def test_analytic_expectations(self):
        scenario = two_price_coin_attack(num_low=6, epsilon=0.01)
        assert scenario.expected_payment_before == pytest.approx(
            10.0 * (1 - 0.5 ** 6))
        assert scenario.expected_payment_after == pytest.approx(
            10.01 / 2)
        assert (scenario.expected_payment_after
                < scenario.expected_payment_before)

    def test_measured_payment_reduction(self):
        scenario = two_price_coin_attack(num_low=6, epsilon=0.01)
        runs = 600
        before = after = fake_charges = 0.0
        for seed in range(runs):
            mech = TwoPrice(seed=seed, partition_mode="coin")
            before += mech.run(scenario.honest_instance).payment("u1")
            attacked = mech.run(
                scenario.attack.apply(scenario.honest_instance))
            after += attacked.payment("u1")
            fake_charges += attacked.payment("fake")
        before /= runs
        after /= runs
        fake_charges /= runs
        assert before == pytest.approx(
            scenario.expected_payment_before, rel=0.15)
        assert after == pytest.approx(
            scenario.expected_payment_after, rel=0.15)
        # Property-2 violation: the payment drop exceeds what the
        # fakes are charged.
        assert before - after > fake_charges + 0.5
