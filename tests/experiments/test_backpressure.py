"""The per-tick backpressure timeline export."""

import csv

from repro.experiments import (
    backpressure_rows,
    export_backpressure,
    run_backpressure,
)


class TestBackpressure:
    def test_over_admission_builds_queues_priced_regime_does_not(self):
        result = run_backpressure(factors=(0.8, 1.6), ticks=60,
                                  seed=3)
        assert result.final_queue(1.6) > 10 * max(
            1, result.final_queue(0.8))

    def test_records_cover_every_tick(self):
        result = run_backpressure(factors=(1.0,), ticks=25)
        records = result.records[1.0]
        assert [r.tick for r in records] == list(range(1, 26))
        assert all(r.work <= result.capacity + 1e-9 for r in records)

    def test_policy_is_spec_addressable(self):
        fifo = run_backpressure(factors=(1.5,), ticks=30,
                                policy="fifo", seed=1)
        lqf = run_backpressure(factors=(1.5,), ticks=30,
                               policy="longest-queue-first", seed=1)
        assert fifo.records[1.5]  # both run; policies may differ
        assert lqf.records[1.5]

    def test_rows_are_figure_ready(self):
        result = run_backpressure(factors=(0.9, 1.2), ticks=10)
        rows = backpressure_rows(result)
        assert len(rows) == 20
        assert set(rows[0]) == {"factor", "tick", "queued",
                                "delivered", "mean_latency", "work"}
        assert [r["factor"] for r in rows[:10]] == [0.9] * 10

    def test_csv_export(self, tmp_path):
        result = run_backpressure(factors=(1.1,), ticks=5)
        path = tmp_path / "backpressure.csv"
        export_backpressure(result, path)
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 5
        assert rows[0]["factor"] == "1.1"

    def test_deterministic_given_seed(self):
        a = run_backpressure(factors=(1.3,), ticks=20, seed=7)
        b = run_backpressure(factors=(1.3,), ticks=20, seed=7)
        assert a.records == b.records
