"""Table IV and Figure 5 regeneration tests."""

import pytest

from repro.experiments.harness import ExperimentScale
from repro.experiments.lying import figure5
from repro.experiments.runtime import PAPER_TABLE4_MS, table4_runtime

SCALE = ExperimentScale(num_sets=1, num_queries=150,
                        degrees=(1, 4, 10, 20), seed=5)


class TestTable4:
    @pytest.fixture(scope="class")
    def table(self):
        return table4_runtime(SCALE, degrees=(1, 4), repetitions=1)

    def test_all_mechanisms_timed(self, table):
        assert set(table.mean_ms) == {
            "Random", "GV", "Two-price", "CAF", "CAF+", "CAT", "CAT+"}
        assert all(ms > 0 for ms in table.mean_ms.values())

    def test_gap_structure_matches_paper(self, table):
        """The reproduction target: the skip-over mechanisms are an
        order of magnitude (or more) slower than their stop-at-first
        counterparts; the fast group stays within ~10× of Random."""
        assert table.mean_ms["CAF+"] > 10 * table.mean_ms["CAF"]
        assert table.mean_ms["CAT+"] > 10 * table.mean_ms["CAT"]
        fast = ("Random", "GV", "Two-price", "CAF", "CAT")
        base = table.mean_ms["Random"]
        for name in fast:
            assert table.mean_ms[name] < 60 * base

    def test_render_includes_paper_numbers(self, table):
        text = table.render()
        assert "Table IV" in text
        assert str(PAPER_TABLE4_MS["CAF+"]) in text


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        return figure5(SCALE, paper_capacity=5_000.0)

    def test_all_series_present(self, result):
        for series in ("CAF", "CAT", "Two-price", "CAR", "CAR-ML",
                       "CAR-AL"):
            points = result.profit_series(series)
            assert len(points) == len(SCALE.degrees)

    def test_aggressive_lying_reduces_car_profit(self, result):
        """The Figure 5 claim: 'when some users lie, the system profit
        decreases' — aggregated over the sweep's overloaded points."""
        car = sum(v for _, v in result.profit_series("CAR"))
        car_al = sum(v for _, v in result.profit_series("CAR-AL"))
        assert car_al < car

    def test_strategyproof_profits_unaffected_by_lying_workloads(
            self, result):
        """CAF/CAT/Two-price run on the truthful workload by
        definition; their presence anchors the comparison."""
        for series in ("CAF", "CAT", "Two-price"):
            assert any(v > 0 for _, v in result.profit_series(series))

    def test_render(self, result):
        assert "Figure 5" in result.render()
