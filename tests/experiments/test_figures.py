"""Figure regeneration tests — shape assertions, not absolute values."""

import pytest

from repro.experiments.figures import (
    figure4_profit,
    figure4a,
    figure4b,
    utilization_summary,
)
from repro.experiments.harness import (
    ExperimentScale,
    run_sharing_sweep,
)

#: Shared small-but-meaningful scale for figure shape tests.
SCALE = ExperimentScale(num_sets=2, num_queries=150,
                        degrees=(1, 2, 4, 8, 16), seed=11)


@pytest.fixture(scope="module")
def sweep_15k():
    return run_sharing_sweep(SCALE, 15_000.0)


@pytest.fixture(scope="module")
def sweep_5k():
    return run_sharing_sweep(SCALE, 5_000.0)


class TestFigure4a:
    def test_admission_increases_with_sharing(self, sweep_15k):
        figure = figure4a(SCALE, sweep=sweep_15k)
        for mechanism in ("CAF", "CAT", "Two-price"):
            series = [v for _, v in figure.series(mechanism)]
            assert series[-1] >= series[0] - 0.05, mechanism

    def test_two_price_admits_least(self, sweep_15k):
        figure = figure4a(SCALE, sweep=sweep_15k)
        for degree in SCALE.degrees:
            tp = figure.sweep.cell("Two-price", degree).admission_rate
            for name in ("CAF", "CAF+", "CAT", "CAT+"):
                assert tp <= figure.sweep.cell(
                    name, degree).admission_rate + 1e-9

    def test_render_contains_series(self, sweep_15k):
        text = figure4a(SCALE, sweep=sweep_15k).render()
        assert "Figure 4(a)" in text
        assert "Two-price" in text


class TestFigure4b:
    def test_density_mechanisms_beat_two_price_on_payoff(self, sweep_15k):
        """'the density based mechanisms always perform better than
        Two-price' for total user payoff."""
        figure = figure4b(SCALE, sweep=sweep_15k)
        for degree in SCALE.degrees:
            tp = figure.sweep.cell("Two-price", degree).total_user_payoff
            for name in ("CAF", "CAF+", "CAT", "CAT+"):
                assert figure.sweep.cell(
                    name, degree).total_user_payoff >= tp - 1e-9

    def test_caf_plus_payoff_at_least_caf(self, sweep_15k):
        """CAF+ admits a superset and charges no more than fair share."""
        figure = figure4b(SCALE, sweep=sweep_15k)
        for degree in SCALE.degrees:
            assert (figure.sweep.cell("CAF+", degree).total_user_payoff
                    >= figure.sweep.cell("CAF", degree).total_user_payoff
                    - 1e-6)


class TestFigure4Profit:
    def test_overloaded_capacity_shape(self, sweep_5k):
        """At capacity 5,000 (persistently overloaded): the density
        mechanisms beat Two-price at degree 1, and Two-price overtakes
        by the top of the sweep — the crossover of Figure 4(c)."""
        figure = figure4_profit(5_000.0, SCALE, sweep=sweep_5k)
        first = SCALE.degrees[0]
        last = SCALE.degrees[-1]
        tp_first = figure.sweep.cell("Two-price", first).profit
        tp_last = figure.sweep.cell("Two-price", last).profit
        assert figure.sweep.cell("CAF", first).profit > tp_first
        assert figure.sweep.cell("CAT", first).profit > tp_first
        assert tp_last > figure.sweep.cell("CAF", last).profit
        assert tp_last > figure.sweep.cell("CAT", last).profit

    def test_two_price_profit_increases_with_sharing(self, sweep_5k):
        figure = figure4_profit(5_000.0, SCALE, sweep=sweep_5k)
        series = [v for _, v in figure.series("Two-price")]
        assert series[-1] >= series[0]

    def test_plus_variants_profit_below_base_at_high_sharing(
            self, sweep_5k):
        """CAF+/CAT+ 'cannot charge much': their aggressive admission
        drives prices down relative to CAF/CAT as sharing grows."""
        figure = figure4_profit(5_000.0, SCALE, sweep=sweep_5k)
        degree = SCALE.degrees[-2]
        assert (figure.sweep.cell("CAF+", degree).profit
                <= figure.sweep.cell("CAF", degree).profit + 1e-6)
        assert (figure.sweep.cell("CAT+", degree).profit
                <= figure.sweep.cell("CAT", degree).profit + 1e-6)

    def test_figure_labels(self):
        scale = ExperimentScale(num_sets=1, num_queries=40,
                                degrees=(1,))
        assert figure4_profit(5_000.0, scale).figure == "Figure 4(c)"
        assert figure4_profit(20_000.0, scale).figure == "Figure 4(f)"


class TestUtilization:
    def test_overloaded_points_highly_utilized(self, sweep_15k):
        summary = utilization_summary(SCALE, sweep=sweep_15k)
        if summary.overloaded_degrees:
            for name in ("CAF", "CAT", "CAF+", "CAT+"):
                assert summary.mean_utilization(name) > 0.9

    def test_render(self, sweep_15k):
        text = utilization_summary(SCALE, sweep=sweep_15k).render()
        assert "utilization" in text
