"""Experiment harness tests."""

import pytest

from repro.experiments.harness import (
    ExperimentScale,
    SweepCell,
    mechanism_factory,
    run_sharing_sweep,
)


TINY = ExperimentScale(num_sets=1, num_queries=60, degrees=(1, 4), seed=7)


class TestExperimentScale:
    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SETS", "2")
        monkeypatch.setenv("REPRO_QUERIES", "99")
        monkeypatch.setenv("REPRO_DEGREES", "1, 5,9")
        scale = ExperimentScale.from_env()
        assert scale.num_sets == 2
        assert scale.num_queries == 99
        assert scale.degrees == (1, 5, 9)

    def test_paper_scale(self):
        paper = ExperimentScale.paper()
        assert paper.num_sets == 50
        assert paper.num_queries == 2000
        assert paper.degrees == tuple(range(1, 61))

    def test_scaled_capacity(self):
        scale = ExperimentScale(num_queries=200)
        assert scale.scaled_capacity(15_000.0) == pytest.approx(1_500.0)

    def test_generators_are_seeded_independently(self):
        scale = ExperimentScale(num_sets=3, num_queries=30)
        seeds = {g.seed for g in scale.generators()}
        assert len(seeds) == 3


class TestSweepCell:
    def test_running_mean(self):
        from repro.core import make_mechanism
        from repro.workload import example1

        cell = SweepCell("CAT", 1)
        outcome = make_mechanism("CAT").run(example1())
        cell.add(outcome, 1.0)
        cell.add(outcome, 3.0)
        assert cell.samples == 2
        assert cell.runtime_ms == pytest.approx(2.0)
        assert cell.profit == pytest.approx(outcome.profit)


class TestRunSharingSweep:
    def test_produces_all_cells(self):
        result = run_sharing_sweep(TINY, 15_000.0,
                                   mechanisms=("CAF", "CAT"))
        assert set(result.cells) == {
            ("CAF", 1), ("CAF", 4), ("CAT", 1), ("CAT", 4)}
        for cell in result.cells.values():
            assert cell.samples == TINY.num_sets

    def test_series_extraction(self):
        result = run_sharing_sweep(TINY, 15_000.0, mechanisms=("CAT",))
        series = result.series("CAT", "admission_rate")
        assert [degree for degree, _ in series] == [1, 4]
        assert all(0 <= v <= 1 for _, v in series)

    def test_instance_hook_applied(self):
        calls = []

        def hook(instance):
            calls.append(instance.num_queries)
            return instance

        run_sharing_sweep(TINY, 15_000.0, mechanisms=("CAT",),
                          instance_hook=hook)
        assert len(calls) == TINY.num_sets * len(TINY.degrees)

    def test_mechanism_factory_seeds_randomized(self):
        two_price = mechanism_factory("Two-price", 5)
        assert two_price.name == "Two-price"
        cat = mechanism_factory("CAT", 5)
        assert cat.name == "CAT"
