"""CSV export tests."""

import csv

from repro.experiments.export import (
    export_figure,
    export_figure5,
    export_sweep,
)
from repro.experiments.figures import figure4a
from repro.experiments.harness import ExperimentScale, run_sharing_sweep
from repro.experiments.lying import figure5

SCALE = ExperimentScale(num_sets=1, num_queries=50, degrees=(1, 3),
                        seed=2)


def read_csv(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


class TestExportSweep:
    def test_tidy_rows(self, tmp_path):
        sweep = run_sharing_sweep(SCALE, 15_000.0,
                                  mechanisms=("CAF", "CAT"))
        path = export_sweep(sweep, tmp_path / "sweep.csv")
        rows = read_csv(path)
        assert rows[0][:4] == ["capacity", "mechanism", "degree",
                               "samples"]
        assert len(rows) == 1 + 2 * len(SCALE.degrees)
        # std columns present for every metric.
        assert "profit_std" in rows[0]

    def test_values_match_cells(self, tmp_path):
        sweep = run_sharing_sweep(SCALE, 15_000.0, mechanisms=("CAT",))
        path = export_sweep(sweep, tmp_path / "sweep.csv")
        rows = read_csv(path)
        header = rows[0]
        record = dict(zip(header, rows[1]))
        cell = sweep.cell("CAT", int(record["degree"]))
        assert float(record["profit"]) == cell.profit


class TestExportFigure:
    def test_matrix_shape(self, tmp_path):
        sweep = run_sharing_sweep(SCALE, 15_000.0)
        figure = figure4a(SCALE, sweep=sweep)
        path = export_figure(figure, tmp_path / "fig.csv")
        rows = read_csv(path)
        assert rows[0][0] == "degree"
        assert len(rows) == 1 + len(SCALE.degrees)
        assert len(rows[1]) == 1 + len(figure.mechanisms)


class TestExportFigure5:
    def test_series_columns(self, tmp_path):
        result = figure5(SCALE, paper_capacity=5_000.0)
        path = export_figure5(result, tmp_path / "fig5.csv")
        rows = read_csv(path)
        assert rows[0][0] == "degree"
        assert "CAR-AL" in rows[0]
        assert len(rows) == 1 + len(SCALE.degrees)
