"""Churn-timeline experiment tests."""

import pytest

from repro.experiments.timeline import (
    ChurnConfig,
    run_timeline,
)

CONFIG = ChurnConfig(periods=6, arrivals_per_period=8,
                     catalogue_size=20, capacity=40.0)


@pytest.fixture(scope="module")
def timeline():
    return run_timeline(("CAF", "CAT", "Two-price"), CONFIG, seed=5)


class TestTimeline:
    def test_all_mechanisms_recorded(self, timeline):
        assert set(timeline.records) == {"CAF", "CAT", "Two-price"}
        for records in timeline.records.values():
            assert len(records) == CONFIG.periods

    def test_identical_arrival_sequences(self, timeline):
        """Period-1 candidate counts are equal across mechanisms
        (identical arrivals; divergence only comes from churn)."""
        first = {name: records[0].candidates
                 for name, records in timeline.records.items()}
        assert len(set(first.values())) == 1

    def test_revenue_non_negative_and_accumulates(self, timeline):
        for name in timeline.records:
            assert timeline.cumulative_revenue(name) >= 0.0
            for record in timeline.records[name]:
                assert record.revenue >= 0.0
                assert 0 <= record.admitted <= record.candidates

    def test_utilization_bounded(self, timeline):
        for records in timeline.records.values():
            for record in records:
                assert 0.0 <= record.utilization <= 1.0 + 1e-9

    def test_render(self, timeline):
        text = timeline.render()
        assert "Churn timeline" in text
        assert "CAT" in text

    def test_deterministic(self):
        a = run_timeline(("CAT",), CONFIG, seed=9)
        b = run_timeline(("CAT",), CONFIG, seed=9)
        assert ([r.revenue for r in a.records["CAT"]]
                == [r.revenue for r in b.records["CAT"]])

    def test_population_persists_across_periods(self, timeline):
        """Candidates exceed per-period arrivals once churn retains
        earlier clients."""
        records = timeline.records["CAT"]
        assert any(r.candidates > CONFIG.arrivals_per_period
                   for r in records[1:])
