"""Shared builders for the durability tests.

Every test in this package ultimately asserts the same contract: a
crashed-and-recovered run is indistinguishable from one that never
crashed.  These helpers build the deterministic workloads both sides
of that comparison run.
"""

from repro.dsms.streams import SyntheticStream
from repro.service import ServiceBuilder


def build_service(mechanism="CAT", ticks=10, capacity=40.0, rate=5.0,
                  seed=0):
    return (ServiceBuilder()
            .with_sources(SyntheticStream("s", rate=rate, seed=seed))
            .with_capacity(capacity)
            .with_mechanism(mechanism)
            .with_ticks_per_period(ticks)
            .build())


def build_driver(*, wal=None, record=False, seed=7, rate=3.0,
                 mechanism="CAT"):
    """A deterministic open-system driver, optionally WAL-attached."""
    from repro.sim import SimulationDriver

    driver = SimulationDriver(
        build_service(mechanism=mechanism, seed=seed),
        arrivals=f"poisson:rate={rate},seed={seed}",
        record=record)
    if wal is not None:
        driver.attach_wal(wal)
    return driver


def ledger_invoices(host):
    """Every invoice in *host*'s ledgers as comparable tuples."""
    services = getattr(host, "services", None) or [host]
    return [
        (shard, invoice.period, invoice.query_id, invoice.owner,
         invoice.amount, invoice.mechanism)
        for shard, service in enumerate(services)
        for invoice in service.ledger.invoices
    ]


def assert_no_duplicate_invoices(invoices):
    """Exactly-once billing: one invoice per (shard, period, query)."""
    keys = [(shard, period, query_id)
            for shard, period, query_id, *_ in invoices]
    assert len(keys) == len(set(keys)), (
        f"duplicate invoices after recovery: "
        f"{sorted(k for k in keys if keys.count(k) > 1)}")


def driver_fingerprint(driver):
    """Everything recovery promises to preserve, comparably.

    ``repr`` rather than the JSON codec: it is exact on floats, covers
    open-system and subscription report types alike, and any report
    field that diverges shows up in the diff.
    """
    return {
        "period": driver.period,
        "events": driver.events_processed,
        "revenue": driver.total_revenue(),
        "reports": repr(list(driver.reports)),
        "invoices": ledger_invoices(driver.host),
    }
