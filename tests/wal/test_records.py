"""The WAL frame codec: CRC framing, JSON canonicals, array packing."""

import zlib

import numpy as np
import pytest

from repro.utils.validation import ValidationError
from repro.wal import records as rec

pytestmark = pytest.mark.wal


class TestFrames:
    def test_round_trip_all_kinds(self):
        buffer = b"".join(
            rec.encode_frame(kind, bytes([kind]) * (kind * 3))
            for kind in rec.RECORD_KINDS)
        decoded = [(kind, body) for kind, body, _, _
                   in rec.iter_frames(buffer)]
        assert decoded == [(kind, bytes([kind]) * (kind * 3))
                           for kind in rec.RECORD_KINDS]

    def test_empty_body_round_trips(self):
        frame = rec.encode_frame(rec.RECORD_OP, b"")
        kind, body, end = rec.decode_frame(frame, 0)
        assert (kind, body, end) == (rec.RECORD_OP, b"", len(frame))

    def test_iter_frames_reports_physical_offsets(self):
        first = rec.encode_frame(rec.RECORD_OP, b"abc")
        second = rec.encode_frame(rec.RECORD_PERIOD, b"defgh")
        spans = [(start, end) for _, _, start, end
                 in rec.iter_frames(first + second)]
        assert spans == [(0, len(first)),
                         (len(first), len(first) + len(second))]

    def test_flipped_payload_byte_fails_crc(self):
        frame = bytearray(rec.encode_frame(rec.RECORD_OP, b"payload"))
        frame[-1] ^= 0x01
        with pytest.raises(rec.FrameError, match="CRC"):
            rec.decode_frame(bytes(frame), 0)

    def test_truncated_frame_is_detected(self):
        frame = rec.encode_frame(rec.RECORD_OP, b"payload")
        for cut in (1, rec.FRAME_HEADER - 1, rec.FRAME_HEADER + 2,
                    len(frame) - 1):
            with pytest.raises(rec.FrameError):
                rec.decode_frame(frame[:cut], 0)

    def test_iter_frames_error_carries_tear_offset(self):
        good = rec.encode_frame(rec.RECORD_OP, b"ok")
        torn = good + rec.encode_frame(rec.RECORD_OP, b"lost")[:-3]
        frames = rec.iter_frames(torn)
        assert next(frames)[1] == b"ok"
        with pytest.raises(rec.FrameError) as excinfo:
            next(frames)
        assert excinfo.value.offset == len(good)

    def test_absurd_length_prefix_rejected_without_allocating(self):
        header = rec._FRAME.pack(rec.MAX_FRAME_BYTES + 1,
                                 zlib.crc32(b""))
        with pytest.raises(rec.FrameError, match="length"):
            rec.decode_frame(header, 0)


class TestJsonRecords:
    def test_canonical_bytes_are_key_sorted_and_compact(self):
        body = rec.encode_json({"b": 2, "a": [1.5, None]})
        assert body == b'{"a":[1.5,null],"b":2}'
        assert rec.decode_json(body, "test") == {"b": 2,
                                                 "a": [1.5, None]}

    def test_garbage_body_raises_validation_error_naming_what(self):
        with pytest.raises(ValidationError, match="period"):
            rec.decode_json(b"\xff\xfe not json", "period")

    def test_non_object_body_rejected(self):
        with pytest.raises(ValidationError, match="object"):
            rec.decode_json(b"[1,2,3]", "op")


class TestArrayPacking:
    def test_round_trips_dtypes_orders_and_zero_dim(self):
        arrays = {
            "floats": np.arange(6, dtype=np.float64).reshape(2, 3),
            "ints": np.array([1, 2, 3], dtype=np.int32),
            "strings": np.array(["alpha", "b"], dtype="U5"),
            "scalar": np.array("tag"),
            "empty": np.zeros((0,), dtype=np.float32),
        }
        unpacked = rec.unpack_arrays(rec.pack_arrays(arrays))
        assert sorted(unpacked) == sorted(arrays)
        for name, array in arrays.items():
            np.testing.assert_array_equal(unpacked[name], array)
            assert unpacked[name].dtype == array.dtype
            assert unpacked[name].shape == array.shape

    def test_truncated_pack_raises_validation_error(self):
        body = rec.pack_arrays({"x": np.arange(100.0)})
        with pytest.raises(ValidationError):
            rec.unpack_arrays(body[:len(body) // 2])


class TestArrivalsCodec:
    def test_trace_round_trips_through_the_arrivals_body(self):
        from repro.sim import SimulationDriver
        from tests.wal.workloads import build_service

        driver = SimulationDriver(
            build_service(), arrivals="poisson:rate=2,seed=7",
            record=True)
        driver.run(3)
        trace = driver.trace()
        assert len(trace) > 0
        restored = rec.decode_arrivals(rec.encode_arrivals(trace))
        assert len(restored) == len(trace)
        assert ([e.query.query_id for e in restored.entries]
                == [e.query.query_id for e in trace.entries])
        assert ([e.time for e in restored.entries]
                == [e.time for e in trace.entries])
