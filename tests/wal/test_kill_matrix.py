"""The kill -9 matrix: SIGKILL a live run at every registered
crashpoint, rerun, and demand byte-identical convergence.

Two halves:

* **sim** — the child IS the CLI (``python -m repro sim --wal``).  The
  armed child dies by real SIGKILL mid-run; rerunning the identical
  command must recover and write a ``final_report.json`` byte-identical
  to the uninterrupted reference, with every invoice issued exactly
  once.
* **serve** — the child stands up a real gateway over loopback and
  drives a fixed op sequence; after the kill, the parent recovers a
  fresh gateway over the same WAL, finishes the sequence (exactly the
  acknowledged-op resume a client with retries performs), and must land
  on the reference state.

A crashpoint whose armed child exits 0 was never reached — that is a
test failure too, so the matrix doubles as a reachability check.
"""

import asyncio
import json
import os
import subprocess
import sys
import time

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
PYTHONPATH = os.pathsep.join([os.path.join(REPO, "src"), REPO])

pytestmark = pytest.mark.wal

SIM_ARGS = ["--periods", "8", "--rate", "30", "--capacity", "50",
            "--seed", "3", "--compact-every", "3",
            "--wal-fsync", "batch:4"]

#: crashpoint -> hit count placing the crash mid-run (hit 1 of the
#: append sites is the genesis checkpoint; compaction fires at periods
#: 3 and 6; settles at periods 1..8).
SIM_MATRIX = {
    "wal.append.before-frame": 9,
    "wal.append.after-frame": 9,
    "wal.compact.before-snapshot": 2,
    "wal.compact.after-snapshot": 2,
    "wal.compact.after-checkpoint": 2,
    "wal.compact.after-prune": 2,
    "driver.settle.before-period-record": 4,
    "driver.settle.after-period-record": 4,
    "io.save.after-tmp": 2,
}


def run_sim(wal_dir, crashpoint=None):
    env = {**os.environ, "PYTHONPATH": PYTHONPATH}
    env.pop("REPRO_CRASHPOINT", None)
    if crashpoint is not None:
        env["REPRO_CRASHPOINT"] = crashpoint
    return subprocess.run(
        [sys.executable, "-m", "repro", "sim", *SIM_ARGS,
         "--wal", str(wal_dir)],
        capture_output=True, text=True, env=env, cwd=REPO, timeout=120)


def final_report(wal_dir):
    return (wal_dir / "final_report.json").read_bytes()


def assert_exactly_once_invoices(report_bytes):
    document = json.loads(report_bytes)
    keys = [(entry["shard"], period, query_id)
            for entry in document["invoices"]
            for period, query_id, *_ in entry["invoices"]]
    assert len(keys) == len(set(keys)), "duplicate invoices"
    assert keys, "billing ledger is empty — workload too small"


@pytest.fixture(scope="module")
def sim_reference(tmp_path_factory):
    wal_dir = tmp_path_factory.mktemp("sim-reference") / "wal"
    proc = run_sim(wal_dir)
    assert proc.returncode == 0, proc.stderr
    return final_report(wal_dir)


class TestSimKillMatrix:
    @pytest.mark.parametrize(
        "crashpoint", sorted(SIM_MATRIX),
        ids=lambda name: name.replace(".", "-"))
    def test_kill_then_rerun_converges(self, tmp_path, sim_reference,
                                       crashpoint):
        wal_dir = tmp_path / "wal"
        armed = f"{crashpoint}:{SIM_MATRIX[crashpoint]}"
        crashed = run_sim(wal_dir, crashpoint=armed)
        assert crashed.returncode == -9, (
            f"{armed} never fired (rc={crashed.returncode}): "
            f"{crashed.stderr[-500:]}")
        assert not (wal_dir / "final_report.json").exists()

        resumed = run_sim(wal_dir)
        assert resumed.returncode == 0, resumed.stderr
        report = final_report(wal_dir)
        assert report == sim_reference
        assert_exactly_once_invoices(report)

    def test_double_crash_still_converges(self, tmp_path, sim_reference):
        # Crash, recover into another crash, recover again.
        wal_dir = tmp_path / "wal"
        first = run_sim(wal_dir,
                        crashpoint="driver.settle.after-period-record:3")
        assert first.returncode == -9
        second = run_sim(wal_dir,
                         crashpoint="driver.settle.before-period-record:3")
        assert second.returncode == -9
        final = run_sim(wal_dir)
        assert final.returncode == 0, final.stderr
        assert final_report(wal_dir) == sim_reference


SERVE_CHILD = """\
import asyncio, json, sys

from repro.cluster import FederatedAdmissionService
from repro.dsms.streams import SyntheticStream
from repro.serve import AdmissionGateway, GatewayClient, GatewayConfig
from tests.strategies import select_query
from tests.wal.test_kill_matrix import SERVE_OPS, apply_op, gateway_state


def build_cluster():
    return FederatedAdmissionService.build(
        num_shards=2,
        sources=[SyntheticStream("s", rate=2.0, seed=0)],
        capacity=20.0, mechanism="CAT", ticks_per_period=4,
        placement="round-robin")


async def main(wal_dir, result_path):
    config = GatewayConfig(quiet=True, allow_pickle_plans=True,
                           wal_dir=wal_dir, wal_fsync="always")
    gateway = AdmissionGateway(build_cluster(), config)
    await gateway.start()
    async with GatewayClient(*gateway.address) as client:
        for op in SERVE_OPS:
            await apply_op(client, op)
    state = gateway_state(gateway)
    await gateway.stop()
    with open(result_path, "w") as handle:
        json.dump(state, handle)


asyncio.run(main(sys.argv[1], sys.argv[2]))
"""

#: The op sequence every serve child runs; each op durably logs
#: exactly one WAL record, so resuming = skipping the logged prefix.
SERVE_OPS = (
    *[("submit", n) for n in range(4)],
    ("tick",),
    ("submit", 4),
    ("submit", 5),
    ("withdraw", "q5"),  # still pending: submitted after the settle
    ("tick",),
    ("tick",),
)

SERVE_MATRIX = {
    # hit 1 of the append sites is the genesis checkpoint record.
    "wal.append.before-frame": 4,
    "wal.append.after-frame": 6,
    "gateway.tick.before-period-record": 2,
    "gateway.tick.after-period-record": 2,
}


async def apply_op(client, op):
    from tests.strategies import select_query

    kind = op[0]
    if kind == "submit":
        n = op[1]
        status, body = await client.submit(
            select_query(f"q{n}", f"owner{n}", bid=4.0, cost=1.0))
    elif kind == "withdraw":
        status, body = await client.withdraw(op[1])
    else:
        status, body = await client.tick()
    assert status == 200, (op, status, body)


def gateway_state(gateway):
    return {
        "period": gateway.backend.period,
        "revenue": gateway.backend.total_revenue(),
        "pending": gateway.backend.pending_count(),
        "invoices": sorted(
            [shard, invoice.period, invoice.query_id]
            for shard, service in enumerate(gateway.backend.services)
            for invoice in service.ledger.invoices),
    }


def run_serve_child(tmp_path, wal_dir, crashpoint=None):
    script = tmp_path / "serve_child.py"
    script.write_text(SERVE_CHILD)
    result_path = tmp_path / "result.json"
    env = {**os.environ, "PYTHONPATH": PYTHONPATH}
    env.pop("REPRO_CRASHPOINT", None)
    if crashpoint is not None:
        env["REPRO_CRASHPOINT"] = crashpoint
    proc = subprocess.run(
        [sys.executable, str(script), str(wal_dir), str(result_path)],
        capture_output=True, text=True, env=env, cwd=REPO, timeout=120)
    return proc, result_path


@pytest.fixture(scope="module")
def serve_reference(tmp_path_factory):
    base = tmp_path_factory.mktemp("serve-reference")
    proc, result_path = run_serve_child(base, base / "wal")
    assert proc.returncode == 0, proc.stderr
    return json.loads(result_path.read_text())


@pytest.mark.serve
class TestServeKillMatrix:
    @pytest.mark.parametrize(
        "crashpoint", sorted(SERVE_MATRIX),
        ids=lambda name: name.replace(".", "-"))
    def test_kill_recover_finish_converges(self, tmp_path,
                                           serve_reference, crashpoint):
        import asyncio

        from repro.wal import records as rec, scan_wal
        from tests.wal.test_gateway_wal import (
            build_cluster,
            wait_clean,
        )
        from repro.serve import (
            AdmissionGateway,
            GatewayClient,
            GatewayConfig,
        )

        wal_dir = tmp_path / "wal"
        armed = f"{crashpoint}:{SERVE_MATRIX[crashpoint]}"
        proc, _ = run_serve_child(tmp_path, wal_dir,
                                  crashpoint=armed)
        assert proc.returncode == -9, (
            f"{armed} never fired (rc={proc.returncode}): "
            f"{proc.stderr[-500:]}")

        # Ops the clients hold 200s for == records in the log; the
        # resumed client continues from the first unacknowledged op.
        applied = sum(1 for record in scan_wal(wal_dir).records
                      if record.kind in (rec.RECORD_OP,
                                         rec.RECORD_PERIOD))

        async def finish():
            config = GatewayConfig(quiet=True, allow_pickle_plans=True,
                                   wal_dir=str(wal_dir),
                                   wal_fsync="always")
            gateway = AdmissionGateway(build_cluster(), config)
            await gateway.start()
            async with GatewayClient(*gateway.address) as client:
                await wait_clean(client)
                for op in SERVE_OPS[applied:]:
                    await apply_op(client, op)
            state = gateway_state(gateway)
            await gateway.stop()
            return state

        state = asyncio.run(finish())
        assert state == serve_reference
        keys = [tuple(k) for k in state["invoices"]]
        assert len(keys) == len(set(keys)), "duplicate invoices"


# ----------------------------------------------------------------------
# The multi-process front-end matrix: SIGKILL a worker at every
# frontend crashpoint, let the supervisor respawn it, and demand the
# run converges to an uninterrupted in-process reference — recovered
# twice, once live (striped reload over the coordinator's consumed
# map) and once offline (``recover_striped_gateway``).
# ----------------------------------------------------------------------

FRONTEND_MATRIX = {
    # Coordinator dies mid-settle before the period record: nothing
    # became durable; the retried tick replays every stripe op.
    "frontend.tick.before-period-record": 1,
    # Coordinator dies after the period record fsync: the settle IS
    # durable but the ack was lost; the period-aware driver must not
    # settle a second time.
    "frontend.tick.after-period-record": 1,
    # Dies right after a drain syncs its stripe (buffer swapped out):
    # first the coordinator at its own drain, then — once the
    # respawned, disarmed coordinator re-drains its peers — worker 1.
    "frontend.drain.after-sync": 1,
}


def frontend_cluster():
    from repro.cluster import FederatedAdmissionService
    from repro.dsms.streams import SyntheticStream

    return FederatedAdmissionService.build(
        num_shards=4,
        sources=[SyntheticStream("s", rate=2.0, seed=0)],
        capacity=20.0, mechanism="CAT", ticks_per_period=4,
        placement="consistent-hash")


def frontend_queries(n, start=0, worker=None, affinity=None):
    """*n* queries; with *worker* set, only keys that worker owns."""
    from tests.strategies import select_query

    from repro.cluster.affinity import affinity_key

    out, index = [], start
    while len(out) < n:
        query = select_query(f"k{index}", f"owner{index}",
                             bid=4.0 + (index % 3), cost=1.0)
        index += 1
        if worker is not None and affinity.worker_of(
                affinity_key(query)) != worker:
            continue
        out.append(query)
    return out


def coordinator_report(supervisor, timeout=2.0):
    """The coordinator's authoritative /v1/report over its control
    port (the public port may land on a worker with a stale view), or
    ``None`` while the coordinator is dead or respawning."""
    from repro.serve.frontend import COORDINATOR, _control_call

    try:
        status, body = _control_call(
            supervisor.control_ports[COORDINATOR], "/v1/report",
            timeout=timeout)
    except Exception:
        return None
    return body if status == 200 else None


async def frontend_submit(client, query, attempts=80):
    """Submit with reconnect-and-retry: survives the window where a
    killed worker's shared listening socket queues the connection."""
    from repro.serve import HttpError

    for _ in range(attempts):
        try:
            status, body = await asyncio.wait_for(
                client.submit(query), 5.0)
        except (OSError, HttpError, asyncio.TimeoutError):
            await client.close()
            await asyncio.sleep(0.1)
            continue
        if status == 200:
            return
        await asyncio.sleep(0.1)
    raise AssertionError(f"submit never acked: {query.query_id}")


def ensure_period(supervisor, target, deadline_s=60.0):
    """Drive the cluster to *target* settled periods, resiliently.

    Checks the coordinator's durable period before every tick and
    awaits each tick to completion (the coordinator's control port
    backlog survives a respawn, so a sent tick resolves once the new
    process accepts it), so a settle that became durable but lost its
    ack is never repeated — exactly the resume a period-aware client
    performs.
    """
    from repro.serve import GatewayClient, HttpError
    from repro.serve.frontend import COORDINATOR

    port = supervisor.control_ports[COORDINATOR]

    async def tick_once():
        try:
            async with GatewayClient("127.0.0.1", port,
                                     client_id="matrix") as client:
                await asyncio.wait_for(client.tick(), 25.0)
        except (OSError, HttpError, asyncio.TimeoutError):
            pass

    deadline = time.time() + deadline_s
    while True:
        report = coordinator_report(supervisor)
        if report is not None and report["period"] >= target:
            return report
        assert time.time() < deadline, (
            f"period {target} never reached")
        if report is None:
            time.sleep(0.2)
        else:
            asyncio.run(tick_once())


def wait_respawn(supervisor, index, pid=None, deadline_s=30.0):
    deadline = time.time() + deadline_s
    while (supervisor.respawns[index] == 0
           or supervisor.worker_pid(index) == pid
           or supervisor.worker_pid(index) is None):
        assert time.time() < deadline, (
            f"worker {index} never respawned")
        time.sleep(0.05)


@pytest.mark.serve
class TestFrontendKillMatrix:
    @pytest.mark.parametrize("crashpoint", sorted(FRONTEND_MATRIX))
    def test_respawn_converges_to_reference(self, tmp_path,
                                            crashpoint):
        import asyncio as _asyncio

        from repro.cluster.affinity import ShardAffinityMap
        from repro.serve import (
            GatewayClient,
            GatewayConfig,
            HostBackend,
        )
        from repro.serve.frontend import (
            COORDINATOR,
            FrontendConfig,
            GatewaySupervisor,
        )
        from repro.serve.gateway import report_document
        from repro.wal import recover_striped_gateway

        affinity = ShardAffinityMap.for_cluster(
            HostBackend(frontend_cluster()).host.cluster, 2)
        # The drain crashpoint also fells worker 1 when the respawned
        # coordinator re-drains it; keep the first settle's ops out of
        # worker 1's buffer so the skipped drain is provably empty.
        first = frontend_queries(
            10, worker=COORDINATOR if "drain" in crashpoint else None,
            affinity=affinity)
        second = frontend_queries(10, start=100)

        reference = HostBackend(frontend_cluster())
        expected = []
        for batch in (first, second):
            for query in batch:
                reference.submit(query)
            expected.append(json.dumps(
                report_document(reference.tick()), sort_keys=True))

        config = FrontendConfig(
            workers=2,
            gateway=GatewayConfig(
                quiet=True, allow_pickle_plans=True, port=0,
                wal_dir=str(tmp_path / "wal"),
                wal_group_commit=True))
        armed = f"{crashpoint}:{FRONTEND_MATRIX[crashpoint]}"
        os.environ["REPRO_CRASHPOINT"] = armed
        try:
            supervisor = GatewaySupervisor(
                frontend_cluster, config).start()
        finally:
            os.environ.pop("REPRO_CRASHPOINT", None)

        async def submit_batch(batch):
            host, port = supervisor.address
            async with GatewayClient(host, port,
                                     client_id="matrix") as client:
                for query in batch:
                    await frontend_submit(client, query)

        try:
            _asyncio.run(submit_batch(first))
            report = ensure_period(supervisor, 1)
            assert json.dumps(report["report"],
                              sort_keys=True) == expected[0]
            # The coordinator must actually have died and respawned —
            # a crashpoint that never fired is a test failure too.
            wait_respawn(supervisor, COORDINATOR)
            if "drain" in crashpoint:
                wait_respawn(supervisor, 1)
            _asyncio.run(submit_batch(second))
            report = ensure_period(supervisor, 2)
            assert json.dumps(report["report"],
                              sort_keys=True) == expected[1]
            live_revenue = report["revenue"]
        finally:
            supervisor.stop()

        recovered = HostBackend(frontend_cluster())
        log, consumed = recover_striped_gateway(
            tmp_path / "wal", recovered)
        log.close()
        assert recovered.period == 2
        assert recovered.total_revenue() == live_revenue
        assert json.dumps(report_document(recovered.last_report),
                          sort_keys=True) == expected[1]
        keys = sorted(
            (shard, invoice.period, invoice.query_id)
            for shard, service in enumerate(recovered.services)
            for invoice in service.ledger.invoices)
        assert keys, "billing ledger is empty — workload too small"
        assert len(keys) == len(set(keys)), "duplicate invoices"
