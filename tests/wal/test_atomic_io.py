"""Atomic save paths and clean failure on corrupt artifacts."""

import pytest

import repro.io as io
from repro.utils.validation import ValidationError
from repro.wal import crashpoints
from tests.wal.workloads import build_service


def sample_instance():
    from repro.core.model import AuctionInstance, Operator, Query

    return AuctionInstance(
        {"A": Operator("A", 4.0), "B": Operator("B", 1.0)},
        (Query("q1", ("A", "B"), 55.0, valuation=60.0, owner="alice"),),
        10.0)


def sample_report():
    from tests.strategies import select_query

    service = build_service()
    service.submit(select_query("q1", "alice", bid=5.0, cost=1.0))
    return service.run_period()


pytestmark = pytest.mark.wal


class TestInterruptedWrites:
    """A crash mid-save must leave the previous file byte-intact."""

    @pytest.fixture
    def crash_between_tmp_and_replace(self):
        class Interrupted(Exception):
            pass

        def interrupt(name):
            raise Interrupted(name)

        crashpoints.set_crash_handler(interrupt)
        yield Interrupted
        crashpoints.disarm()
        crashpoints.set_crash_handler(None)

    def check_save(self, tmp_path, save, first, second, interrupted):
        target = tmp_path / "artifact"
        save(first, target)
        before = target.read_bytes()
        crashpoints.arm("io.save.after-tmp")
        with pytest.raises(interrupted):
            save(second, target)
        assert target.read_bytes() == before
        assert not list(tmp_path.glob("*.tmp"))

    def test_save_instance(self, tmp_path, crash_between_tmp_and_replace):
        a = sample_instance()
        self.check_save(tmp_path, io.save_instance, a, a,
                        crash_between_tmp_and_replace)

    def test_save_report(self, tmp_path, crash_between_tmp_and_replace):
        report = sample_report()
        self.check_save(tmp_path, io.save_report, report, report,
                        crash_between_tmp_and_replace)

    def test_save_snapshot(self, tmp_path, crash_between_tmp_and_replace):
        service = build_service()
        self.check_save(tmp_path, io.save_snapshot,
                        service.snapshot(), service.snapshot(),
                        crash_between_tmp_and_replace)

    def test_save_sim_snapshot(self, tmp_path,
                               crash_between_tmp_and_replace):
        from tests.wal.workloads import build_driver

        driver = build_driver()
        driver.run(1)
        self.check_save(tmp_path, io.save_sim_snapshot,
                        driver.snapshot(), driver.snapshot(),
                        crash_between_tmp_and_replace)

    def test_save_sim_trace_binary(self, tmp_path,
                                   crash_between_tmp_and_replace):
        from tests.wal.workloads import build_driver

        driver = build_driver(record=True)
        driver.run(2)
        target = tmp_path / "trace.npz"
        io.save_sim_trace(driver.trace(), target)
        before = target.read_bytes()
        crashpoints.arm("io.save.after-tmp")
        with pytest.raises(crash_between_tmp_and_replace):
            io.save_sim_trace(driver.trace(), target)
        assert target.read_bytes() == before
        assert len(io.load_sim_trace(target)) == len(driver.trace())


class TestCorruptArtifactsFailCleanly:
    """Damaged files raise ValidationError naming the path — never a
    raw ``JSONDecodeError``/``UnpicklingError``/``BadZipFile``."""

    @pytest.mark.parametrize("loader", [
        io.load_instance, io.load_report, io.load_reports,
        io.load_cluster_report,
    ])
    def test_garbage_json(self, tmp_path, loader):
        path = tmp_path / "broken.json"
        path.write_text('{"truncated": [1, 2')
        with pytest.raises(ValidationError) as excinfo:
            loader(path)
        assert str(path) in str(excinfo.value)

    @pytest.mark.parametrize("loader", [
        io.load_snapshot, io.load_sim_snapshot,
        io.load_cluster_snapshot,
    ])
    def test_garbage_pickle(self, tmp_path, loader):
        path = tmp_path / "broken.ckpt"
        path.write_bytes(b"\x80\x05not really a pickle stream")
        with pytest.raises(ValidationError) as excinfo:
            loader(path)
        assert str(path) in str(excinfo.value)

    @pytest.mark.parametrize("loader", [
        io.load_snapshot, io.load_sim_snapshot,
        io.load_cluster_snapshot,
    ])
    def test_truncated_pickle(self, tmp_path, loader):
        source = tmp_path / "whole.ckpt"
        service = build_service()
        io.save_snapshot(service.snapshot(), source)
        path = tmp_path / "cut.ckpt"
        whole = source.read_bytes()
        path.write_bytes(whole[:len(whole) // 2])
        with pytest.raises(ValidationError) as excinfo:
            loader(path)
        assert str(path) in str(excinfo.value)

    def test_truncated_binary_trace(self, tmp_path):
        from tests.wal.workloads import build_driver

        driver = build_driver(record=True)
        driver.run(2)
        source = tmp_path / "trace.npz"
        io.save_sim_trace(driver.trace(), source)
        cut = tmp_path / "cut.npz"
        whole = source.read_bytes()
        cut.write_bytes(whole[:len(whole) - len(whole) // 3])
        with pytest.raises(ValidationError) as excinfo:
            io.load_sim_trace(cut)
        assert str(cut) in str(excinfo.value)

    def test_garbage_json_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text("{definitely not json")
        with pytest.raises(ValidationError) as excinfo:
            io.load_sim_trace(path)
        assert str(path) in str(excinfo.value)
