"""Gateway durability: WAL'd ops and settles survive an abrupt stop.

The "crash" here is closing the listening socket and dropping the
gateway object without ``stop()`` — no drain, no final sync — then
starting a fresh gateway over the same WAL directory.  Everything a
client got a ``200`` for must still be there.
"""

import asyncio

import pytest

from repro.cluster import FederatedAdmissionService
from repro.dsms.streams import SyntheticStream
from repro.serve import AdmissionGateway, GatewayClient, GatewayConfig
from tests.strategies import select_query

pytestmark = [pytest.mark.wal, pytest.mark.serve]

QUIET = {"quiet": True, "allow_pickle_plans": True}


def build_cluster(seed: int = 0):
    return FederatedAdmissionService.build(
        num_shards=2,
        sources=[SyntheticStream("s", rate=2.0, seed=seed)],
        capacity=20.0,
        mechanism="CAT",
        ticks_per_period=4,
        placement="round-robin",
    )


def query(n: int, bid: float = 4.0):
    return select_query(f"q{n}", f"owner{n}", bid=bid, cost=1.0)


async def started(wal_dir, **overrides):
    config = GatewayConfig(**{**QUIET, "wal_dir": str(wal_dir),
                              "wal_fsync": "always", **overrides})
    gateway = AdmissionGateway(build_cluster(), config)
    await gateway.start()
    return gateway


async def crash(gateway):
    gateway._server.close()
    await gateway._server.wait_closed()


async def wait_clean(client, tries: int = 100):
    for _ in range(tries):
        status, health = await client.health()
        if status == 200 and health["recovery"] == "clean":
            return health
        await asyncio.sleep(0.05)
    raise AssertionError("gateway never finished its WAL replay")


def gateway_invoices(gateway):
    return [
        (shard, invoice.period, invoice.query_id)
        for shard, service in enumerate(gateway.backend.services)
        for invoice in service.ledger.invoices
    ]


class TestGatewayRecovery:
    def test_acknowledged_state_survives_an_abrupt_stop(self, tmp_path):
        async def go():
            first = await started(tmp_path / "wal")
            async with GatewayClient(*first.address) as client:
                status, health = await client.health()
                assert health["recovered_from_wal"] is False
                for n in range(4):
                    status, _ = await client.submit(query(n))
                    assert status == 200
                status, ticked = await client.tick()
                assert status == 200
                status, _ = await client.submit(query(9))
                assert status == 200
                status, metrics = await client.metrics()
                reference = (metrics["period"], metrics["revenue"])
                assert metrics["wal"]["enabled"] is True
                assert metrics["wal"]["records"] > 0
            await crash(first)

            second = await started(tmp_path / "wal")
            async with GatewayClient(*second.address) as client:
                health = await wait_clean(client)
                assert health["status"] == "ok"
                assert health["recovered_from_wal"] is True
                assert health["replayed_records"] == 6
                status, metrics = await client.metrics()
                assert (metrics["period"], metrics["revenue"]) == \
                    reference
                assert metrics["pending"] == 1  # q9 rode the WAL
                assert metrics["wal"]["replayed"] == 6
                # The recovered gateway keeps serving.
                status, ticked = await client.tick()
                assert status == 200
                assert ticked["period"] == reference[0] + 1
            invoices = gateway_invoices(second)
            assert len(invoices) == len(set(invoices))
            await second.stop()

        asyncio.run(go())

    def test_withdraw_survives_recovery(self, tmp_path):
        async def go():
            first = await started(tmp_path / "wal")
            async with GatewayClient(*first.address) as client:
                await client.submit(query(0))
                await client.submit(query(1))
                status, _ = await client.withdraw("q0")
                assert status == 200
            await crash(first)

            second = await started(tmp_path / "wal")
            async with GatewayClient(*second.address) as client:
                await wait_clean(client)
                status, metrics = await client.metrics()
                assert metrics["pending"] == 1
                status, ticked = await client.tick()
                admitted = [qid for shard in ticked["report"]["shards"]
                            for qid in shard["admitted"]]
                assert admitted == ["q1"]
            await second.stop()

        asyncio.run(go())

    def test_compaction_bounds_the_replay(self, tmp_path):
        async def go():
            first = await started(tmp_path / "wal", compact_every=1)
            async with GatewayClient(*first.address) as client:
                for period in range(3):
                    await client.submit(query(period))
                    await client.tick()
                status, metrics = await client.metrics()
                reference = (metrics["period"], metrics["revenue"])
                assert metrics["wal"]["compactions"] == 3
            await crash(first)

            second = await started(tmp_path / "wal", compact_every=1)
            async with GatewayClient(*second.address) as client:
                await wait_clean(client)
                status, metrics = await client.metrics()
                assert (metrics["period"], metrics["revenue"]) == \
                    reference
                # Everything before the checkpoint was folded away.
                assert metrics["wal"]["replayed"] == 0
            await second.stop()

        asyncio.run(go())

    def test_requests_get_503_while_replaying(self, tmp_path):
        async def go():
            first = await started(tmp_path / "wal")
            async with GatewayClient(*first.address) as client:
                for n in range(6):
                    await client.submit(query(n))
                await client.tick()
            await crash(first)

            second = await started(tmp_path / "wal")
            # The socket is up while the replay runs in a worker —
            # mutating requests are refused with Retry-After, never
            # applied to a half-recovered backend.
            async with GatewayClient(*second.address) as client:
                status, body = await client.submit(query(7))
                if status == 503:
                    assert "replaying" in body["error"]
                else:
                    assert status == 200  # replay already finished
                await wait_clean(client)
                status, _ = await client.submit(query(8))
                assert status == 200
            await second.stop()

        asyncio.run(go())

    def test_stop_syncs_the_wal_before_closing(self, tmp_path):
        from repro.wal import records as rec, scan_wal

        async def go():
            gateway = await started(tmp_path / "wal",
                                    wal_fsync="batch:1000")
            async with GatewayClient(*gateway.address) as client:
                for n in range(3):
                    await client.submit(query(n))
            await gateway.stop()

        asyncio.run(go())
        scan = scan_wal(tmp_path / "wal")
        ops = [r for r in scan.records if r.kind == rec.RECORD_OP]
        assert len(ops) == 3

    def test_host_backend_round_trips_through_the_wal(self, tmp_path):
        from repro.service import ServiceBuilder

        def build_service():
            return (ServiceBuilder()
                    .with_sources(SyntheticStream("s", rate=2.0, seed=0))
                    .with_capacity(20.0)
                    .with_mechanism("CAT")
                    .with_ticks_per_period(4)
                    .build())

        async def go():
            config = GatewayConfig(**{**QUIET,
                                      "wal_dir": str(tmp_path / "wal"),
                                      "wal_fsync": "always"})
            first = AdmissionGateway(build_service(), config)
            await first.start()
            async with GatewayClient(*first.address) as client:
                await client.submit(query(0))
                await client.tick()
                await client.submit(query(1))
                status, metrics = await client.metrics()
                reference = (metrics["period"], metrics["revenue"])
            await crash(first)

            second = AdmissionGateway(build_service(), config)
            await second.start()
            async with GatewayClient(*second.address) as client:
                await wait_clean(client)
                status, metrics = await client.metrics()
                assert (metrics["period"], metrics["revenue"]) == \
                    reference
                assert metrics["pending"] == 1
            await second.stop()

        asyncio.run(go())
