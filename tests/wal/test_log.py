"""The segmented log: scan, torn-tail truncation, compaction, crashpoints."""

import os

import pytest

from repro.utils.validation import ValidationError
from repro.wal import (
    WriteAheadLog,
    crashpoints,
    list_segments,
    list_snapshots,
    records as rec,
    scan_wal,
    segment_name,
    wal_exists,
)
from repro.wal.log import _parse_fsync

pytestmark = pytest.mark.wal


def fresh_log(tmp_path, state="genesis-state", **kwargs):
    kwargs.setdefault("fsync", "never")
    return WriteAheadLog.create(tmp_path / "wal", state, **kwargs)


class TestLifecycle:
    def test_create_writes_genesis_snapshot_and_checkpoint(self, tmp_path):
        log = fresh_log(tmp_path)
        log.close()
        directory = tmp_path / "wal"
        assert wal_exists(directory)
        assert [seq for seq, _ in list_segments(directory)] == [0]
        assert [period for period, _ in list_snapshots(directory)] == [0]
        scan = scan_wal(directory)
        assert [r.kind for r in scan.records] == [rec.RECORD_CHECKPOINT]

    def test_create_refuses_an_existing_wal(self, tmp_path):
        fresh_log(tmp_path).close()
        with pytest.raises(ValidationError, match="resume"):
            fresh_log(tmp_path)

    def test_segment_only_directory_does_not_count_as_a_wal(self, tmp_path):
        # A crash during genesis leaves a segment but no snapshot —
        # nothing was acknowledged, so the owner starts fresh over it.
        directory = tmp_path / "wal"
        directory.mkdir()
        (directory / segment_name(0)).write_bytes(b"torn genesis")
        assert not wal_exists(directory)
        log = fresh_log(tmp_path)
        log.append_op({"op": "x"})
        log.close()
        assert len(scan_wal(directory).records) == 2

    def test_appends_scan_back_in_order(self, tmp_path):
        log = fresh_log(tmp_path)
        log.append_op({"op": "submit", "n": 1})
        log.append_period(period=1, events=10, revenue=2.5, arrivals=3)
        log.append_op({"op": "withdraw", "n": 2})
        log.close()
        scan = scan_wal(tmp_path / "wal")
        kinds = [r.kind for r in scan.records]
        assert kinds == [rec.RECORD_CHECKPOINT, rec.RECORD_OP,
                         rec.RECORD_PERIOD, rec.RECORD_OP]
        period = rec.decode_json(scan.records[2].body, "period")
        assert period["period"] == 1
        assert period["revenue"] == 2.5

    def test_segments_roll_at_the_size_cap(self, tmp_path):
        log = fresh_log(tmp_path, segment_bytes=256)
        for n in range(20):
            log.append_op({"op": "submit", "pad": "x" * 64, "n": n})
        log.close()
        directory = tmp_path / "wal"
        assert len(list_segments(directory)) > 1
        scan = scan_wal(directory)
        ops = [r for r in scan.records if r.kind == rec.RECORD_OP]
        assert [rec.decode_json(r.body, "op")["n"] for r in ops] == \
            list(range(20))


class TestTornTail:
    def append_three_ops(self, tmp_path):
        log = fresh_log(tmp_path)
        for n in range(3):
            log.append_op({"n": n})
        log.close()
        return tmp_path / "wal"

    def test_resume_discards_a_torn_trailing_write(self, tmp_path):
        directory = self.append_three_ops(tmp_path)
        segment = list_segments(directory)[-1][1]
        whole = segment.read_bytes()
        segment.write_bytes(whole[:-4])

        log, scan = WriteAheadLog.resume(
            directory, keep_kinds=(rec.RECORD_OP,), fsync="never")
        tail = scan.tail(keep_kinds=(rec.RECORD_OP,))
        assert [rec.decode_json(r.body, "op")["n"] for r in tail] == [0, 1]
        assert log.stats["torn_tail"] is True
        assert log.stats["discarded_bytes"] > 0
        # The physical file was truncated back to the last good record.
        log.append_op({"n": "post-recovery"})
        log.close()
        reread = [rec.decode_json(r.body, "op").get("n")
                  for r in scan_wal(directory).records
                  if r.kind == rec.RECORD_OP]
        assert reread == [0, 1, "post-recovery"]

    def test_resume_cuts_back_to_the_last_replayable_kind(self, tmp_path):
        # Trailing records the owner cannot replay (an ARRIVALS window
        # whose PERIOD receipt never landed) are cut with the tear.
        log = fresh_log(tmp_path)
        log.append_period(period=1, events=5, revenue=1.0, arrivals=0)
        log.append_op({"orphan": True})
        log.close()
        directory = tmp_path / "wal"
        log, scan = WriteAheadLog.resume(
            directory, keep_kinds=(rec.RECORD_PERIOD,), fsync="never")
        log.close()
        kinds = [r.kind for r in scan_wal(directory).records]
        assert kinds == [rec.RECORD_CHECKPOINT, rec.RECORD_PERIOD]

    def test_interior_corruption_is_a_hard_error(self, tmp_path):
        directory = self.append_three_ops(tmp_path)
        first = list_segments(directory)[0][1]
        # Flip a byte in the middle of the FIRST of two segments.
        second = directory / segment_name(1)
        second.write_bytes(rec.encode_frame(rec.RECORD_OP, b"{}"))
        blob = bytearray(first.read_bytes())
        blob[len(blob) // 2] ^= 0x40
        first.write_bytes(bytes(blob))
        with pytest.raises(ValidationError, match="corrupt"):
            scan_wal(directory)


class TestCompaction:
    def test_compact_prunes_segments_and_snapshots(self, tmp_path):
        log = fresh_log(tmp_path, compact_every=1)
        for period in range(1, 4):
            log.append_period(period=period, events=1, revenue=0.0,
                              arrivals=0)
            assert log.due_for_compaction(period)
            log.compact(f"state-{period}", period)
        log.close()
        directory = tmp_path / "wal"
        assert [p for p, _ in list_snapshots(directory)] == [3]
        segments = list_segments(directory)
        assert len(segments) == 1
        assert segments[0][0] == log.stats_snapshot()["segment"]
        scan = scan_wal(directory)
        assert [r.kind for r in scan.records] == [rec.RECORD_CHECKPOINT]
        assert log.stats["compactions"] == 3

    def test_compact_sweeps_orphaned_tmp_files(self, tmp_path):
        log = fresh_log(tmp_path, compact_every=1)
        stale = tmp_path / "wal" / "snapshot-00000009.ckpt.abc.tmp"
        stale.write_bytes(b"interrupted atomic save")
        log.append_period(period=1, events=1, revenue=0.0, arrivals=0)
        log.compact("state", 1)
        log.close()
        assert not stale.exists()

    def test_recovery_replays_only_past_the_checkpoint(self, tmp_path):
        log = fresh_log(tmp_path)
        log.append_period(period=1, events=1, revenue=1.0, arrivals=0)
        log.compact("state-1", 1)
        log.append_period(period=2, events=1, revenue=2.0, arrivals=0)
        log.close()
        _, scan = WriteAheadLog.resume(
            tmp_path / "wal", keep_kinds=(rec.RECORD_PERIOD,),
            fsync="never")
        tail = scan.tail(keep_kinds=(rec.RECORD_PERIOD,))
        assert [rec.decode_json(r.body, "p")["period"]
                for r in tail] == [2]


class TestFsyncPolicies:
    def test_parse(self):
        assert _parse_fsync("never") == ("never", 0)
        assert _parse_fsync("always")[0] == "always"
        assert _parse_fsync("batch:64") == ("batch", 64)

    @pytest.mark.parametrize("policy", ["sometimes", "batch:0",
                                        "batch:x", ""])
    def test_rejects_nonsense(self, policy):
        with pytest.raises(ValidationError):
            _parse_fsync(policy)

    def test_always_fsyncs_every_append(self, tmp_path):
        log = fresh_log(tmp_path, fsync="always")
        before = log.stats["fsyncs"]
        log.append_op({"n": 1})
        log.append_op({"n": 2})
        assert log.stats["fsyncs"] == before + 2
        log.close()

    def test_batch_fsyncs_every_nth_append(self, tmp_path):
        log = fresh_log(tmp_path, fsync="batch:3")
        before = log.stats["fsyncs"]
        for n in range(6):
            log.append_op({"n": n})
        assert log.stats["fsyncs"] == before + 2
        log.close()


class TestCrashpoints:
    def test_registry_lists_every_instrumented_site(self):
        import repro.io  # noqa: F401 — registers io.save.after-tmp
        import repro.serve.gateway  # noqa: F401
        import repro.sim.driver  # noqa: F401

        names = crashpoints.registered_crashpoints()
        assert set(names) >= {
            "wal.append.before-frame",
            "wal.append.after-frame",
            "wal.compact.before-snapshot",
            "wal.compact.after-snapshot",
            "wal.compact.after-checkpoint",
            "wal.compact.after-prune",
            "driver.settle.before-period-record",
            "driver.settle.after-period-record",
            "gateway.tick.before-period-record",
            "gateway.tick.after-period-record",
            "io.save.after-tmp",
        }

    def test_arm_counts_hits_before_firing(self, tmp_path):
        fired = []
        log = fresh_log(tmp_path)
        crashpoints.set_crash_handler(fired.append)
        crashpoints.arm("wal.append.after-frame", hits=3)
        try:
            log.append_op({"n": 0})   # hit 1
            log.append_op({"n": 1})   # hit 2
            assert fired == []
            log.append_op({"n": 2})   # hit 3 fires
            assert fired == ["wal.append.after-frame"]
        finally:
            crashpoints.disarm()
            crashpoints.set_crash_handler(None)

    def test_arm_from_env_parses_name_and_hits(self):
        armed = crashpoints.arm_from_env(
            {crashpoints.CRASHPOINT_ENV: "driver.settle.before-period-record:4"})
        try:
            assert armed == "driver.settle.before-period-record"
        finally:
            crashpoints.disarm()
        assert crashpoints.arm_from_env({}) is None

    def test_arming_an_unregistered_name_never_fires(self, tmp_path):
        # arm() is deliberately permissive — env arming happens at
        # import, before every site has registered — so an unknown
        # name simply never matches a crashpoint() call.
        fired = []
        crashpoints.set_crash_handler(fired.append)
        crashpoints.arm("no.such.site")
        try:
            log = fresh_log(tmp_path)
            log.append_op({"n": 0})
            log.close()
        finally:
            crashpoints.disarm()
            crashpoints.set_crash_handler(None)
        assert fired == []

    def test_default_handler_sigkills(self, tmp_path):
        import subprocess
        import sys

        code = (
            "from repro.wal import crashpoints\n"
            "crashpoints.arm('wal.append.after-frame')\n"
            "crashpoints.crashpoint('wal.append.after-frame')\n"
            "print('survived')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True,
            env={**os.environ,
                 "PYTHONPATH": os.pathsep.join(
                     [str(p) for p in sys.path if p])})
        assert proc.returncode == -9
        assert b"survived" not in proc.stdout
