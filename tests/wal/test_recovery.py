"""Crash recovery ≡ the uninterrupted run, property-tested.

The contract under test: for ANY workload and ANY crash instant, the
recovered run's observable state — period reports, cumulative revenue,
billing ledger — is identical to a run that never crashed.  Crashes
are simulated physically (truncating segment bytes, exactly what
``kill -9`` mid-``write`` leaves) and logically (abandoning a live log
mid-run without closing it).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.utils.validation import ValidationError
from repro.wal import WriteAheadLog, list_segments, records as rec
from repro.wal.recovery import recover_sim_driver
from tests.wal.workloads import (
    assert_no_duplicate_invoices,
    build_driver,
    driver_fingerprint,
)

pytestmark = pytest.mark.wal


def wal_driver(directory, *, compact_every=0, **kwargs):
    driver = build_driver(**kwargs)
    log = WriteAheadLog.create(
        directory, driver.snapshot(), fsync="never",
        compact_every=compact_every)
    driver.attach_wal(log)
    return driver, log


class TestRecoveryEquivalence:
    def test_wal_attachment_does_not_perturb_the_run(self, tmp_path):
        reference = build_driver()
        reference.run(5)
        driver, log = wal_driver(tmp_path / "wal")
        driver.run(5)
        log.close()
        assert driver_fingerprint(driver) == \
            driver_fingerprint(reference)

    def test_abandoned_log_recovers_and_converges(self, tmp_path):
        reference = build_driver()
        reference.run(6)

        driver, _ = wal_driver(tmp_path / "wal", compact_every=2)
        driver.run(4)
        # No close(), no sync: the process just stops existing.
        recovered, log = recover_sim_driver(tmp_path / "wal",
                                            fsync="never")
        assert recovered.period == 4
        recovered.run(6 - recovered.period)
        log.close()
        fingerprint = driver_fingerprint(recovered)
        assert fingerprint == driver_fingerprint(reference)
        assert_no_duplicate_invoices(fingerprint["invoices"])

    def test_replay_mismatch_is_a_hard_error(self, tmp_path):
        driver, log = wal_driver(tmp_path / "wal")
        driver.run(3)
        log.close()
        # Tamper with the logged revenue of the final period record.
        directory = tmp_path / "wal"
        seq, segment = list_segments(directory)[-1]
        frames = list(rec.iter_frames(segment.read_bytes()))
        kind, body, start, _ = [f for f in frames
                                if f[0] == rec.RECORD_PERIOD][-1]
        document = rec.decode_json(body, "period")
        document["revenue"] = document["revenue"] + 1.0
        blob = segment.read_bytes()[:start] + rec.encode_frame(
            rec.RECORD_PERIOD, rec.encode_json(document))
        segment.write_bytes(blob)
        with pytest.raises(ValidationError, match="revenue"):
            recover_sim_driver(directory, fsync="never")

    def test_recovery_across_a_compaction_boundary(self, tmp_path):
        reference = build_driver()
        reference.run(7)
        driver, log = wal_driver(tmp_path / "wal", compact_every=3)
        driver.run(7)
        assert log.stats["compactions"] >= 2
        recovered, log2 = recover_sim_driver(tmp_path / "wal",
                                             fsync="never")
        log2.close()
        assert driver_fingerprint(recovered) == \
            driver_fingerprint(reference)

    def test_subscription_renewals_bill_exactly_once(self, tmp_path):
        from repro.sim import SimulationDriver, SubscriptionOptions
        from tests.wal.workloads import build_service

        def build(wal=None):
            driver = SimulationDriver(
                build_service(seed=11),
                arrivals="poisson:rate=2,seed=11",
                subscriptions=SubscriptionOptions(),
            )
            if wal is not None:
                driver.attach_wal(wal)
            return driver

        reference = build()
        reference.run(6)

        driver = build()
        log = WriteAheadLog.create(tmp_path / "wal", driver.snapshot(),
                                   fsync="never", compact_every=2)
        driver.attach_wal(log)
        driver.run(4)  # crash between two renewal cycles
        recovered, log2 = recover_sim_driver(tmp_path / "wal",
                                             fsync="never")
        recovered.run(6 - recovered.period)
        log2.close()
        fingerprint = driver_fingerprint(recovered)
        assert fingerprint == driver_fingerprint(reference)
        assert_no_duplicate_invoices(fingerprint["invoices"])


def truncated_run(tmp_path, *, periods, crash_after, chop, seed,
                  compact_every):
    """Run to *crash_after* periods, then chop *chop* bytes of tail."""
    # tmp_path is function-scoped but hypothesis runs many examples
    # through one function call — each example gets its own WAL dir.
    directory = (tmp_path
                 / f"wal-{seed}-{crash_after}-{chop}-{compact_every}")
    driver, log = wal_driver(directory, seed=seed,
                             compact_every=compact_every)
    driver.run(crash_after)
    # Abandon the live log, then tear the final segment mid-frame the
    # way a crashed kernel write would.
    seq, segment = list_segments(directory)[-1]
    blob = segment.read_bytes()
    segment.write_bytes(blob[:len(blob) - min(chop, len(blob))])
    return directory


class TestCrashOffsetProperty:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(seed=st.integers(0, 10_000),
           crash_after=st.integers(1, 5),
           chop=st.integers(0, 4096),
           compact_every=st.sampled_from([0, 2, 3]))
    def test_any_crash_offset_converges_byte_identically(
            self, tmp_path, seed, crash_after, chop, compact_every):
        periods = 6
        reference = build_driver(seed=seed)
        reference.run(periods)
        reference_fingerprint = driver_fingerprint(reference)

        directory = truncated_run(
            tmp_path, periods=periods, crash_after=crash_after,
            chop=chop, seed=seed, compact_every=compact_every)
        recovered, log = recover_sim_driver(directory, fsync="never")
        assert recovered.period <= crash_after
        recovered.run(periods - recovered.period)
        log.close()
        fingerprint = driver_fingerprint(recovered)
        assert fingerprint == reference_fingerprint
        assert_no_duplicate_invoices(fingerprint["invoices"])
