"""The paper's Figure 1 queries as *running* plans, end to end.

Builds q1/q2/q3 of Example 1 as actual stream plans (selects over a
quote stream and a news stream, a join on the company attribute, with
operator A shared between q1 and q2), estimates loads, auctions with
CAT, and runs the winners on the engine — the complete story of
Sections II and IV in one test.
"""

import pytest

from repro.core import make_mechanism
from repro.dsms import (
    ContinuousQuery,
    JoinOperator,
    SelectOperator,
    StreamEngine,
    auction_instance_from_catalog,
    news_stories,
    stock_quotes,
)
from repro.dsms.plan import QueryPlanCatalog


def build_plans():
    """q1 = {A, B}: select + join; q2 = {A, C}: select + select;
    q3 = {D, E}: two selects on the news stream."""
    def op_a():
        return SelectOperator(
            "A", "quotes", lambda t: t.value("volume") > 5000,
            cost_per_tuple=0.4, selectivity_estimate=0.5)

    op_c = SelectOperator(
        "C", "news", lambda t: t.value("public"),
        cost_per_tuple=0.5, selectivity_estimate=0.8)
    op_b = JoinOperator(
        "B", "A", "C",
        left_key=lambda t: t.value("symbol"),
        right_key=lambda t: t.value("company"),
        window=3, cost_per_tuple=0.1, selectivity_estimate=0.2)
    op_d = SelectOperator(
        "D", "news", lambda t: t.value("sentiment") > 0,
        cost_per_tuple=0.5, selectivity_estimate=0.5)
    op_e = SelectOperator(
        "E", "D", lambda t: t.value("company") == "AAA",
        cost_per_tuple=0.5, selectivity_estimate=0.3)
    op_c2 = SelectOperator(
        "C", "news", lambda t: t.value("public"),
        cost_per_tuple=0.5, selectivity_estimate=0.8)

    q1 = ContinuousQuery("q1", (op_a(), op_c, op_b), sink_id="B",
                         bid=55.0, owner="user1")
    q2 = ContinuousQuery("q2", (op_a(), op_c2), sink_id="C",
                         bid=72.0, owner="user2")
    q3 = ContinuousQuery("q3", (op_d, op_e), sink_id="E",
                         bid=100.0, owner="user3")
    return [q1, q2, q3]


@pytest.fixture
def sources():
    return [stock_quotes(rate=10, seed=1), news_stories(rate=6, seed=2)]


class TestExample1Pipeline:
    def test_catalog_shares_operator_a(self):
        catalog = QueryPlanCatalog(build_plans())
        assert catalog.sharing_degree("A") == 2
        assert catalog.sharing_degree("C") == 2  # C also shared here

    def test_auction_and_run(self, sources):
        plans = build_plans()
        catalog = QueryPlanCatalog(plans)
        rates = {s.name: s.expected_rate() for s in sources}
        # Capacity sized so not everything fits (like Example 1).
        instance = auction_instance_from_catalog(
            catalog, rates, capacity=10.0)
        outcome = make_mechanism("CAT").run(instance)
        assert 0 < len(outcome.winner_ids) < 3

        engine = StreamEngine(sources, capacity=10.0)
        for plan in plans:
            if outcome.is_winner(plan.query_id):
                engine.admit(plan)
        report = engine.run(30)
        # Winners actually produce results; average work stays within
        # the auctioned capacity (estimates were exact rates).
        for qid in outcome.winner_ids:
            assert len(engine.results[qid]) > 0
        assert report.work_per_tick <= 10.0 * 1.3  # Poisson slack

    def test_join_results_are_company_matches(self, sources):
        plans = build_plans()
        engine = StreamEngine(sources, capacity=100.0)
        engine.admit(plans[0])  # q1 with the join
        engine.run(40)
        for result in engine.results["q1"]:
            assert result.value("symbol") == result.value("company")
            assert result.value("volume") > 5000
            assert result.value("public") is True
