"""Cross-package integration tests.

These exercise the full pipeline the library exists for: stream plans
→ load estimation → admission auction → engine execution → billing,
and the workload generator → mechanisms → metrics path the experiments
use.
"""

import pytest

from repro.cloud import DSMSCenter
from repro.core import CAT, make_mechanism
from repro.dsms import (
    ContinuousQuery,
    SelectOperator,
    auction_instance_from_catalog,
    estimate_operator_loads,
)
from repro.dsms.plan import QueryPlanCatalog
from repro.dsms.streams import SyntheticStream
from repro.workload import WorkloadConfig, WorkloadGenerator


class TestPlansToAuctionToEngine:
    def test_auction_on_estimated_loads_matches_engine_reality(self):
        """Admission decisions made on analytic load estimates keep the
        engine within capacity when the estimates are exact."""
        center = DSMSCenter(
            sources=[SyntheticStream("s", rate=4, poisson=False,
                                     seed=0)],
            capacity=20.0,
            mechanism=CAT(),
            ticks_per_period=15,
        )
        for i, bid in enumerate([60, 50, 40, 30, 20]):
            sel = SelectOperator(
                f"sel{i}", "s", lambda t: True,
                cost_per_tuple=1.5, selectivity_estimate=1.0)
            center.submit(ContinuousQuery(
                f"q{i}", (sel,), sink_id=f"sel{i}", bid=float(bid)))
        report = center.run_period()
        # Each query loads 4 × 1.5 = 6; capacity 20 admits 3.
        assert len(report.admitted) == 3
        assert report.engine_utilization == pytest.approx(18 / 20)
        assert center.engine.report.overload_ticks == 0

    def test_estimates_agree_with_measured_loads(self):
        """The paper's premise that loads 'can be reasonably
        approximated': analytic estimates equal measured work for
        deterministic streams."""
        source = SyntheticStream("s", rate=5, poisson=False, seed=0)
        sel = SelectOperator("a", "s", lambda t: True,
                             cost_per_tuple=2.0,
                             selectivity_estimate=1.0)
        catalog = QueryPlanCatalog(
            [ContinuousQuery("q", (sel,), sink_id="a", bid=1.0)])
        estimated = estimate_operator_loads(catalog, {"s": 5.0})

        from repro.dsms.engine import StreamEngine
        engine = StreamEngine([source])
        engine.admit(ContinuousQuery(
            "q", (SelectOperator("a", "s", lambda t: True,
                                 cost_per_tuple=2.0),),
            sink_id="a"))
        engine.run(10)
        assert engine.measured_loads()["a"] == pytest.approx(
            estimated["a"])

    def test_auction_instance_round_trip(self):
        """Catalog → AuctionInstance keeps sharing structure intact."""
        shared = SelectOperator("hot", "s", lambda t: True,
                                cost_per_tuple=1.0)
        shared2 = SelectOperator("hot", "s", lambda t: True,
                                 cost_per_tuple=1.0)
        catalog = QueryPlanCatalog([
            ContinuousQuery("q1", (shared,), sink_id="hot", bid=9.0),
            ContinuousQuery("q2", (shared2,), sink_id="hot", bid=7.0),
        ])
        instance = auction_instance_from_catalog(
            catalog, {"s": 3.0}, capacity=10.0)
        assert instance.sharing_degree("hot") == 2
        assert instance.union_load(["q1", "q2"]) == pytest.approx(3.0)


class TestWorkloadToMechanisms:
    @pytest.fixture(scope="class")
    def instance(self):
        config = WorkloadConfig(num_queries=120, max_sharing=10,
                                capacity=700.0)
        return WorkloadGenerator(config=config, seed=77).instance(
            max_sharing=8)

    def test_all_mechanisms_complete_and_respect_capacity(self, instance):
        for name in ("CAR", "CAF", "CAF+", "CAT", "CAT+", "GV",
                     "OPT_C"):
            outcome = make_mechanism(name).run(instance)
            assert outcome.used_capacity <= instance.capacity + 1e-6
        outcome = make_mechanism("Two-price", seed=1).run(instance)
        assert outcome.used_capacity <= instance.capacity + 1e-6

    def test_profit_sandwich(self, instance):
        """GV ≤ OPT_C: GV is a valid uniform pricing; OPT_C optimizes
        over all of them."""
        gv = make_mechanism("GV").run(instance).profit
        opt = make_mechanism("OPT_C").run(instance).profit
        assert gv <= opt + 1e-6

    def test_stop_at_first_profit_within_winner_bids(self, instance):
        outcome = make_mechanism("CAT").run(instance)
        total_bids = sum(instance.query(q).bid
                         for q in outcome.winner_ids)
        assert outcome.profit <= total_bids + 1e-6


class TestMultiPeriodBusiness:
    def test_three_period_lifecycle(self):
        """Submissions across periods, evictions, cumulative billing."""
        center = DSMSCenter(
            sources=[SyntheticStream("s", rate=3, poisson=False,
                                     seed=1)],
            capacity=9.0,  # room for three 3-unit queries
            mechanism=CAT(),
            ticks_per_period=8,
        )

        def query(qid, bid):
            sel = SelectOperator(f"op_{qid}", "s", lambda t: True,
                                 cost_per_tuple=1.0,
                                 selectivity_estimate=1.0)
            return ContinuousQuery(qid, (sel,), sink_id=f"op_{qid}",
                                   bid=bid, owner=qid)

        center.submit(query("early_low", 10.0))
        center.submit(query("early_high", 50.0))
        first = center.run_period()
        assert set(first.admitted) == {"early_low", "early_high"}

        center.submit(query("rich1", 90.0))
        center.submit(query("rich2", 80.0))
        second = center.run_period()
        assert "early_low" not in second.admitted
        assert center.engine.admitted_ids == set(second.admitted)

        third = center.run_period()
        assert third.admitted == second.admitted
        assert center.total_revenue() == pytest.approx(
            sum(r.revenue for r in center.reports))
        # The engine kept running through both transitions: 24 period
        # ticks plus one held-tuple replay tick per transition.
        assert center.engine.report.ticks == 26
