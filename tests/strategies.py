"""Hypothesis strategies for random auction instances and workloads.

:func:`auction_instances` draws structurally-valid instances with
operator sharing: a catalogue of operators with bounded loads, queries
picking random operator subsets (so sharing arises naturally), bids on
a bounded positive range, and a capacity somewhere between "almost
nothing fits" and "everything fits".

:func:`cluster_workloads` draws end-to-end *federation* workloads for
the :mod:`repro.cluster` invariant suite: a shard count, per-shard
capacity, a stream rate, a placement-policy spec, and several periods
of client submissions (real :class:`ContinuousQuery` plans with
module-level — hence picklable — predicates).
"""

from __future__ import annotations

from dataclasses import dataclass

from hypothesis import strategies as st

from repro.core.model import AuctionInstance, Operator, Query
from repro.dsms.operators import SelectOperator
from repro.dsms.plan import ContinuousQuery


@st.composite
def auction_instances(
    draw,
    min_queries: int = 1,
    max_queries: int = 8,
    max_operators: int = 10,
    max_load: float = 10.0,
    max_bid: float = 100.0,
) -> AuctionInstance:
    """Draw a valid :class:`AuctionInstance` with natural sharing."""
    num_operators = draw(st.integers(1, max_operators))
    loads = draw(st.lists(
        st.floats(0.0, max_load, allow_nan=False, allow_infinity=False),
        min_size=num_operators, max_size=num_operators))
    operators = {
        f"op{i}": Operator(f"op{i}", load)
        for i, load in enumerate(loads)
    }
    num_queries = draw(st.integers(min_queries, max_queries))
    queries = []
    for index in range(num_queries):
        subset = draw(st.lists(
            st.integers(0, num_operators - 1),
            min_size=1, max_size=min(4, num_operators), unique=True))
        bid = draw(st.floats(0.0, max_bid, allow_nan=False,
                             allow_infinity=False))
        queries.append(Query(
            query_id=f"q{index}",
            operator_ids=tuple(f"op{i}" for i in subset),
            bid=bid,
        ))
    total = sum(loads) or 1.0
    capacity = draw(st.floats(
        total * 0.1 + 1e-6, total * 1.5 + 1.0,
        allow_nan=False, allow_infinity=False))
    return AuctionInstance(operators, tuple(queries), capacity)


# ----------------------------------------------------------------------
# Federation workloads (repro.cluster)
# ----------------------------------------------------------------------


def accept_all(_tuple) -> bool:
    """Module-level predicate so generated plans pickle (checkpoints)."""
    return True


@dataclass(frozen=True)
class ClusterWorkload:
    """One drawn federation scenario: topology + periods of traffic."""

    num_shards: int
    capacity: float
    rate: float
    seed: int
    placement: str
    submissions: tuple[tuple[ContinuousQuery, ...], ...]

    @property
    def all_queries(self) -> tuple[ContinuousQuery, ...]:
        """Every query across all periods, in submission order."""
        return tuple(q for batch in self.submissions for q in batch)


def select_query(qid: str, owner: str, bid: float,
                 cost: float, stream: str = "s") -> ContinuousQuery:
    """A one-operator select plan bidding *bid* (picklable)."""
    op = SelectOperator(f"sel_{qid}", stream, accept_all,
                        cost_per_tuple=cost, selectivity_estimate=1.0)
    return ContinuousQuery(qid, (op,), sink_id=op.op_id, bid=bid,
                           owner=owner)


@st.composite
def cluster_workloads(
    draw,
    max_shards: int = 3,
    max_clients: int = 4,
    max_queries_per_period: int = 6,
    max_periods: int = 2,
    max_bid: float = 100.0,
) -> ClusterWorkload:
    """Draw a multi-shard, multi-client, multi-period workload.

    Capacities range from "almost nothing fits per shard" to "a shard
    fits everything", so auctions reject often enough to exercise the
    rebalancer; placement specs cover all three shipped policies.
    """
    num_shards = draw(st.integers(1, max_shards))
    seed = draw(st.integers(0, 2**16))
    placement = draw(st.sampled_from([
        f"consistent-hash:seed={seed % 97}",
        "least-loaded",
        "round-robin",
    ]))
    num_clients = draw(st.integers(1, max_clients))
    rate = float(draw(st.integers(1, 5)))
    capacity = draw(st.floats(2.0, 40.0, allow_nan=False,
                              allow_infinity=False))
    num_periods = draw(st.integers(1, max_periods))
    submissions = []
    for period in range(1, num_periods + 1):
        count = draw(st.integers(0 if period > 1 else 1,
                                 max_queries_per_period))
        batch = []
        for index in range(count):
            owner = f"c{draw(st.integers(0, num_clients - 1))}"
            bid = draw(st.floats(0.0, max_bid, allow_nan=False,
                                 allow_infinity=False))
            cost = draw(st.floats(0.25, 3.0, allow_nan=False,
                                  allow_infinity=False))
            batch.append(select_query(
                f"p{period}q{index}", owner, bid, cost))
        submissions.append(tuple(batch))
    return ClusterWorkload(
        num_shards=num_shards,
        capacity=capacity,
        rate=rate,
        seed=seed,
        placement=placement,
        submissions=tuple(submissions),
    )
