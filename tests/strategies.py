"""Hypothesis strategies for random auction instances.

:func:`auction_instances` draws structurally-valid instances with
operator sharing: a catalogue of operators with bounded loads, queries
picking random operator subsets (so sharing arises naturally), bids on
a bounded positive range, and a capacity somewhere between "almost
nothing fits" and "everything fits".
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.model import AuctionInstance, Operator, Query


@st.composite
def auction_instances(
    draw,
    min_queries: int = 1,
    max_queries: int = 8,
    max_operators: int = 10,
    max_load: float = 10.0,
    max_bid: float = 100.0,
) -> AuctionInstance:
    """Draw a valid :class:`AuctionInstance` with natural sharing."""
    num_operators = draw(st.integers(1, max_operators))
    loads = draw(st.lists(
        st.floats(0.0, max_load, allow_nan=False, allow_infinity=False),
        min_size=num_operators, max_size=num_operators))
    operators = {
        f"op{i}": Operator(f"op{i}", load)
        for i, load in enumerate(loads)
    }
    num_queries = draw(st.integers(min_queries, max_queries))
    queries = []
    for index in range(num_queries):
        subset = draw(st.lists(
            st.integers(0, num_operators - 1),
            min_size=1, max_size=min(4, num_operators), unique=True))
        bid = draw(st.floats(0.0, max_bid, allow_nan=False,
                             allow_infinity=False))
        queries.append(Query(
            query_id=f"q{index}",
            operator_ids=tuple(f"op{i}" for i in subset),
            bid=bid,
        ))
    total = sum(loads) or 1.0
    capacity = draw(st.floats(
        total * 0.1 + 1e-6, total * 1.5 + 1.0,
        allow_nan=False, allow_infinity=False))
    return AuctionInstance(operators, tuple(queries), capacity)
