"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core import make_mechanism
from repro.workload import WorkloadConfig, WorkloadGenerator, example1

#: Deterministic mechanisms (safe to instantiate without a seed).
DETERMINISTIC_MECHANISMS = ("CAR", "CAF", "CAF+", "CAT", "CAT+", "GV",
                            "OPT_C")

#: Every registered mechanism name with the kwargs to instantiate it.
ALL_MECHANISMS = {
    "CAR": {},
    "CAF": {},
    "CAF+": {},
    "CAT": {},
    "CAT+": {},
    "GV": {},
    "OPT_C": {},
    "Two-price": {"seed": 0},
    "Random": {"seed": 0},
}


@pytest.fixture
def example_instance():
    """The paper's Example 1 (Figures 1–2)."""
    return example1()


@pytest.fixture
def small_generator():
    """A small seeded workload generator (fast tests)."""
    config = WorkloadConfig(num_queries=60, max_sharing=8,
                            capacity=450.0)
    return WorkloadGenerator(config=config, seed=42)


@pytest.fixture
def medium_instance(small_generator):
    """A 60-query instance at moderate sharing."""
    return small_generator.instance(max_sharing=6)


def build_mechanism(name: str, seed: int = 0):
    """Instantiate mechanism *name* with a deterministic seed."""
    kwargs = dict(ALL_MECHANISMS[name])
    if "seed" in kwargs:
        kwargs["seed"] = seed
    return make_mechanism(name, **kwargs)


@pytest.fixture(params=sorted(ALL_MECHANISMS))
def any_mechanism(request):
    """Parametrized over every registered mechanism."""
    return build_mechanism(request.param)


@pytest.fixture(params=DETERMINISTIC_MECHANISMS)
def deterministic_mechanism(request):
    """Parametrized over the deterministic mechanisms."""
    return build_mechanism(request.param)
