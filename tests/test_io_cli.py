"""Serialization and CLI tests."""

import json

import pytest

from repro.core import make_mechanism
from repro.io import (
    instance_from_dict,
    instance_to_dict,
    load_instance,
    outcome_to_dict,
    save_instance,
    save_outcome,
)
from repro.utils.validation import ValidationError
from repro.workload import example1
from repro.__main__ import main


class TestInstanceSerialization:
    def test_round_trip(self, tmp_path):
        instance = example1()
        path = tmp_path / "instance.json"
        save_instance(instance, path)
        loaded = load_instance(path)
        assert loaded.capacity == instance.capacity
        assert loaded.num_queries == instance.num_queries
        for query in instance.queries:
            again = loaded.query(query.query_id)
            assert again.bid == query.bid
            assert again.operator_ids == query.operator_ids

    def test_valuation_and_owner_preserved(self):
        from repro.core.model import AuctionInstance, Operator, Query

        instance = AuctionInstance(
            {"a": Operator("a", 1.0)},
            (Query("q", ("a",), bid=3.0, valuation=9.0, owner="alice"),),
            capacity=5.0)
        loaded = instance_from_dict(instance_to_dict(instance))
        assert loaded.query("q").true_value == 9.0
        assert loaded.query("q").owner_id == "alice"

    def test_malformed_document(self):
        with pytest.raises(ValidationError):
            instance_from_dict({"capacity": 1.0})
        with pytest.raises(ValidationError):
            instance_from_dict({
                "capacity": 1.0, "operators": {"a": 1.0},
                "queries": [{"operators": ["a"]}],  # missing id/bid
            })

    def test_outcome_document(self, tmp_path):
        outcome = make_mechanism("CAT").run(example1())
        path = tmp_path / "outcome.json"
        save_outcome(outcome, path)
        document = json.loads(path.read_text())
        assert document["mechanism"] == "CAT"
        assert document["payments"]["q1"] == pytest.approx(50.0)
        assert document["metrics"]["profit"] == pytest.approx(110.0)


class TestCLI:
    def test_generate_then_run(self, tmp_path, capsys):
        instance_path = tmp_path / "wl.json"
        assert main(["generate", "--queries", "30", "--sharing", "4",
                     "--seed", "3", "-o", str(instance_path)]) == 0
        assert instance_path.exists()
        assert main(["run", "CAT", str(instance_path)]) == 0
        out = capsys.readouterr().out
        assert '"mechanism": "CAT"' in out

    def test_run_writes_outcome(self, tmp_path):
        instance_path = tmp_path / "wl.json"
        save_instance(example1(), instance_path)
        outcome_path = tmp_path / "out.json"
        assert main(["run", "CAF", str(instance_path),
                     "-o", str(outcome_path)]) == 0
        document = json.loads(outcome_path.read_text())
        assert document["payments"]["q1"] == pytest.approx(30.0)

    def test_run_randomized_with_seed(self, tmp_path, capsys):
        instance_path = tmp_path / "wl.json"
        save_instance(example1(), instance_path)
        assert main(["run", "Two-price", str(instance_path),
                     "--seed", "5"]) == 0

    def test_run_selection_fast_matches_reference(self, tmp_path,
                                                  capsys):
        instance_path = tmp_path / "wl.json"
        assert main(["generate", "--queries", "40", "--sharing", "4",
                     "--seed", "9", "-o", str(instance_path)]) == 0
        capsys.readouterr()
        assert main(["run", "CAT", str(instance_path)]) == 0
        reference = capsys.readouterr().out
        assert main(["run", "CAT", str(instance_path),
                     "--selection", "fast:strict=true"]) == 0
        assert capsys.readouterr().out == reference

    def test_run_rejects_unknown_selection(self, tmp_path, capsys):
        instance_path = tmp_path / "wl.json"
        save_instance(example1(), instance_path)
        assert main(["run", "CAT", str(instance_path),
                     "--selection", "warp"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error: --selection 'warp'")
        assert "selection path" in err

    def test_simulate_profile_dumps_phase_timings(self, capsys):
        assert main(["simulate", "--periods", "2", "--ticks", "2",
                     "--selection", "fast", "--profile"]) == 0
        out = capsys.readouterr().out
        document = json.loads(out[out.index('{\n  "profile"'):])
        assert document["profile"] == "simulate"
        assert [entry["period"] for entry in document["periods"]] == [1, 2]
        for entry in document["periods"]:
            assert set(entry) == {"period", "prepare", "auction",
                                  "settle", "execute"}
        assert set(document["totals"]) == {"prepare", "auction",
                                           "settle", "execute"}
        assert all(value >= 0 for value in document["totals"].values())

    def test_verify_command(self, capsys, monkeypatch):
        # Shrink the battery via a tiny seed-compatible call by
        # patching the defaults.
        import repro.gametheory.properties as properties

        original = properties.verify_properties

        def small(seed=0, **_kwargs):
            return original(num_instances=1, num_queries=20,
                            users_per_instance=2, attack_attempts=2,
                            seed=seed)

        monkeypatch.setattr(
            "repro.gametheory.properties.verify_properties", small)
        assert main(["verify", "--seed", "1"]) == 0
        assert "Table I" in capsys.readouterr().out
