"""Utility-module tests: validation, rng, tables, metrics report."""

import numpy as np
import pytest

from repro.dsms.metrics import EngineReport
from repro.utils.rng import derive_seed, spawn_rng
from repro.utils.tables import format_table
from repro.utils.validation import (
    ValidationError,
    require,
    require_non_negative,
    require_positive,
)


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ValidationError, match="broken"):
            require(False, "broken")

    def test_require_positive(self):
        require_positive(0.1, "x")
        with pytest.raises(ValidationError):
            require_positive(0.0, "x")

    def test_require_non_negative(self):
        require_non_negative(0.0, "x")
        with pytest.raises(ValidationError):
            require_non_negative(-0.1, "x")

    def test_validation_error_is_value_error(self):
        assert issubclass(ValidationError, ValueError)


class TestRng:
    def test_spawn_from_int_deterministic(self):
        assert (spawn_rng(5).integers(0, 1000, 10)
                == spawn_rng(5).integers(0, 1000, 10)).all()

    def test_spawn_passthrough(self):
        generator = np.random.default_rng(0)
        assert spawn_rng(generator) is generator

    def test_derive_seed_stable(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_derive_seed_varies(self):
        seeds = {derive_seed(1, "a", i) for i in range(50)}
        assert len(seeds) == 50

    def test_derive_seed_fits_numpy(self):
        np.random.default_rng(derive_seed(0, "anything"))


class TestFormatTable:
    def test_alignment_and_precision(self):
        text = format_table(["name", "value"],
                            [["a", 1.23456], ["bb", 2.0]],
                            precision=2)
        lines = text.splitlines()
        assert lines[0].endswith("value")
        assert "1.23" in text
        assert "2.00" in text

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_non_float_cells(self):
        text = format_table(["a", "b"], [[3, "hi"]])
        assert "hi" in text


class TestEngineReport:
    def test_merge_and_utilization(self):
        report = EngineReport(capacity=10.0)
        report.merge_tick(5, 8.0, {"q": 3})
        report.merge_tick(5, 12.0, {"q": 2})
        assert report.ticks == 2
        assert report.source_tuples == 10
        assert report.delivered_tuples == {"q": 5}
        assert report.work_per_tick == pytest.approx(10.0)
        assert report.utilization == pytest.approx(1.0)
        assert report.overload_ticks == 1

    def test_unlimited_capacity(self):
        report = EngineReport()
        report.merge_tick(1, 5.0, {})
        assert report.utilization is None
        assert report.overload_ticks == 0

    def test_empty_report(self):
        report = EngineReport(capacity=5.0)
        assert report.work_per_tick == 0.0
