"""The multi-process front-end: shard affinity, deployment
equivalence, routing, drain handoff, group commit, and respawn.

The load-bearing claims, each pinned here:

* :meth:`ShardAffinityMap.shard_of` equals the federation placement's
  live choice for every key (the whole front-end design rests on
  predicting placement without touching the federation);
* a multi-worker supervisor, a single-process gateway, and an
  in-process backend produce **byte-identical** period reports for the
  same workload;
* shutdown drains buffered ops through the coordinator handoff, and
  offline striped-WAL recovery reproduces the live run exactly;
* group commit batches concurrent stripe appends into fewer fsyncs
  than mutations;
* a SIGKILLed worker is respawned and reloads its unsettled buffer
  from its stripe, with every invoice issued exactly once.
"""

import asyncio
import json
import time

import pytest

from repro.cluster import FederatedAdmissionService
from repro.cluster.affinity import ShardAffinityMap, affinity_key
from repro.dsms.streams import SyntheticStream
from repro.serve import (
    AdmissionGateway,
    GatewayClient,
    GatewayConfig,
    HostBackend,
    run_load,
)
from repro.serve.frontend import (
    COORDINATOR,
    FrontendConfig,
    GatewaySupervisor,
    stripe_directory,
)
from repro.serve.gateway import report_document
from repro.utils.validation import ValidationError
from repro.wal import recover_striped_gateway, wal_exists
from tests.strategies import select_query

pytestmark = pytest.mark.serve

QUIET = {"quiet": True, "allow_pickle_plans": True}


def build_cluster(num_shards=4, placement="consistent-hash",
                  capacity=20.0):
    return FederatedAdmissionService.build(
        num_shards=num_shards,
        sources=[SyntheticStream("s", rate=2.0, seed=0)],
        capacity=capacity,
        mechanism="CAT",
        ticks_per_period=4,
        placement=placement,
    )


def queries(n, start=0):
    return [select_query(f"q{i}", f"owner{i}", bid=4.0 + (i % 3),
                         cost=1.0) for i in range(start, start + n)]


def canonical(document):
    return json.dumps(document, sort_keys=True)


def reference_run(batches, **cluster_kwargs):
    """The in-process ground truth: one backend, direct submits."""
    backend = HostBackend(build_cluster(**cluster_kwargs))
    reports = []
    for batch in batches:
        for query in batch:
            backend.submit(query)
        reports.append(canonical(report_document(backend.tick())))
    return backend, reports


async def drive_batches(host, port, batches):
    """Submit each batch over the wire, tick, return report bytes."""
    reports = []
    async with GatewayClient(host, port, client_id="drv") as client:
        for batch in batches:
            for query in batch:
                status, body = await client.submit(query)
                assert status == 200, (query.query_id, status, body)
            status, body = await client.tick()
            assert status == 200, body
            reports.append(canonical(body["report"]))
    return reports


def frontend_config(workers=2, wal_dir=None, **overrides):
    gateway = GatewayConfig(
        **QUIET, port=0,
        wal_dir=None if wal_dir is None else str(wal_dir),
        **overrides)
    return FrontendConfig(workers=workers, gateway=gateway)


def invoice_keys(backend):
    return sorted(
        (shard, invoice.period, invoice.query_id)
        for shard, service in enumerate(backend.services)
        for invoice in service.ledger.invoices)


class TestShardAffinity:
    def test_shard_of_matches_live_placement(self):
        backend = HostBackend(build_cluster(num_shards=5))
        affinity = ShardAffinityMap.for_cluster(
            backend.host.cluster, num_workers=3)
        for query in queries(40):
            shard = backend.submit(query)
            assert affinity.shard_of(affinity_key(query)) == shard

    def test_affinity_key_prefers_owner(self):
        query = select_query("qid", "the-owner", bid=1.0, cost=1.0)
        assert affinity_key(query) == "the-owner"
        anonymous = select_query("qid", "x", bid=1.0, cost=1.0)
        object.__setattr__(anonymous, "owner", None)
        assert affinity_key(anonymous) == "qid"

    def test_worker_groups_partition_contiguously(self):
        affinity = ShardAffinityMap(8, 3)
        groups = affinity.worker_groups()
        assert [list(group) for group in groups] == [
            [0, 1, 2], [3, 4, 5], [6, 7]]
        flat = [shard for group in groups for shard in group]
        assert flat == list(range(8))

    def test_more_workers_than_shards(self):
        affinity = ShardAffinityMap(2, 4)
        groups = affinity.worker_groups()
        assert [len(group) for group in groups] == [1, 1, 0, 0]
        for key in ("a", "b", "c", "owner9"):
            assert affinity.worker_of(key) in (0, 1)

    def test_worker_of_agrees_with_shard_ranges(self):
        affinity = ShardAffinityMap(7, 2, seed=3)
        for index in range(50):
            key = f"client{index}"
            shard = affinity.shard_of(key)
            worker = affinity.worker_of(key)
            assert shard in affinity.shards_of_worker(worker)
            assert affinity.worker_of_shard(shard) == worker

    def test_bounds_are_validated(self):
        affinity = ShardAffinityMap(4, 2)
        with pytest.raises(ValidationError):
            affinity.worker_of_shard(4)
        with pytest.raises(ValidationError):
            affinity.shards_of_worker(2)
        with pytest.raises(ValidationError):
            ShardAffinityMap(0, 1)

    def test_for_cluster_requires_consistent_hash(self):
        backend = HostBackend(build_cluster(placement="round-robin"))
        with pytest.raises(ValidationError):
            ShardAffinityMap.for_cluster(backend.host.cluster, 2)


class TestDeploymentEquivalence:
    def test_reports_byte_identical_across_deployments(self):
        batches = [queries(10), queries(10, start=10)]
        _, expected = reference_run(batches)

        async def single_process():
            gateway = AdmissionGateway(
                build_cluster(), GatewayConfig(**QUIET, port=0))
            await gateway.start()
            try:
                return await drive_batches(*gateway.address, batches)
            finally:
                await gateway.stop(final_settle=False)

        assert asyncio.run(single_process()) == expected

        supervisor = GatewaySupervisor(
            build_cluster, frontend_config(workers=2))
        with supervisor:
            observed = asyncio.run(
                drive_batches(*supervisor.address, batches))
        assert observed == expected

    def test_worker_report_view_matches_coordinator(self):
        batches = [queries(8)]
        _, expected = reference_run(batches)
        supervisor = GatewaySupervisor(
            build_cluster, frontend_config(workers=2)).start()
        try:
            host, port = supervisor.address
            asyncio.run(drive_batches(host, port, batches))

            async def reports():
                bodies = []
                # Fresh connections: SO_REUSEPORT may land each on a
                # different worker; every answer must agree.
                for _ in range(6):
                    async with GatewayClient(host, port) as client:
                        status, body = await client.report()
                        assert status == 200
                        bodies.append(canonical(body["report"]))
                return bodies

            for body in asyncio.run(reports()):
                assert body == expected[0]
        finally:
            supervisor.stop()


class TestRouting:
    def test_single_connection_forwards_peer_owned_keys(self):
        affinity = ShardAffinityMap.for_cluster(
            HostBackend(build_cluster()).host.cluster, num_workers=2)
        batch = queries(16)
        owners = {affinity.worker_of(affinity_key(q)) for q in batch}
        assert owners == {0, 1}, "workload must span both workers"

        supervisor = GatewaySupervisor(
            build_cluster, frontend_config(workers=2)).start()
        try:
            async def drive():
                async with GatewayClient(
                        *supervisor.address, client_id="c") as client:
                    for query in batch:
                        status, body = await client.submit(query)
                        assert status == 200, body
                        assert body["shard"] == affinity.shard_of(
                            affinity_key(query))
                    status, body = await client.metrics()
                    assert status == 200
                    return body["frontend"]

            frontend = asyncio.run(drive())
            # One keep-alive connection lands on one worker; the peer
            # owns some of the 16 keys, so forwarding must have fired.
            assert frontend["forwarded"] >= 1
            assert frontend["workers"] == 2
            start, stop = frontend["shard_range"]
            assert list(range(start, stop)) == list(
                affinity.shards_of_worker(frontend["worker"]))
        finally:
            supervisor.stop()

    def test_withdraw_probes_peers_then_404(self):
        supervisor = GatewaySupervisor(
            build_cluster, frontend_config(workers=2)).start()
        try:
            async def drive():
                async with GatewayClient(
                        *supervisor.address, client_id="c") as client:
                    for query in queries(4):
                        status, _ = await client.submit(query)
                        assert status == 200
                    status, body = await client.withdraw("q2")
                    assert status == 200, body
                    status, _ = await client.withdraw("q2")
                    assert status == 404
                    status, _ = await client.withdraw("never-seen")
                    assert status == 404

            asyncio.run(drive())
        finally:
            supervisor.stop()

    def test_duplicate_submission_rejected(self):
        supervisor = GatewaySupervisor(
            build_cluster, frontend_config(workers=2)).start()
        try:
            async def drive():
                query = queries(1)[0]
                async with GatewayClient(
                        *supervisor.address, client_id="c") as client:
                    status, _ = await client.submit(query)
                    assert status == 200
                    status, body = await client.submit(query)
                    assert status == 400, body
                    assert "already submitted" in body["error"]

            asyncio.run(drive())
        finally:
            supervisor.stop()


class TestDrainHandoff:
    def test_shutdown_settles_buffered_ops_via_handoff(self, tmp_path):
        wal_dir = tmp_path / "wal"
        batch = queries(12)
        reference, expected = reference_run([batch])

        supervisor = GatewaySupervisor(
            build_cluster,
            frontend_config(workers=2, wal_dir=wal_dir,
                            wal_group_commit=True)).start()
        try:
            async def submit_only():
                async with GatewayClient(
                        *supervisor.address, client_id="c") as client:
                    for query in batch:
                        status, _ = await client.submit(query)
                        assert status == 200
            asyncio.run(submit_only())
        finally:
            # No tick was issued: the rolling drain must hand every
            # worker's buffer to the coordinator for a final settle.
            supervisor.stop()

        for worker in range(2):
            assert wal_exists(stripe_directory(wal_dir, worker))
        backend = HostBackend(build_cluster())
        log, consumed = recover_striped_gateway(wal_dir, backend)
        log.close()
        assert backend.period == 1
        assert canonical(
            report_document(backend.last_report)) == expected[0]
        assert backend.total_revenue() == reference.total_revenue()
        assert sum(consumed.values()) == len(batch)
        keys = invoice_keys(backend)
        assert keys == invoice_keys(reference)
        assert len(keys) == len(set(keys))


class TestGroupCommit:
    def test_concurrent_mutations_share_fsyncs(self, tmp_path):
        supervisor = GatewaySupervisor(
            build_cluster,
            frontend_config(workers=2, wal_dir=tmp_path / "wal",
                            wal_group_commit=True,
                            wal_group_window=0.005,
                            client_rate=1e6, client_burst=1e6,
                            peer_rate=1e9, peer_burst=1e9)).start()
        try:
            host, port = supervisor.address
            result = asyncio.run(run_load(
                host, port, arrivals="poisson:rate=100000,seed=7",
                requests=80, concurrency=16))
            assert result.completed == 80, result.statuses

            async def metrics():
                async with GatewayClient(host, port) as client:
                    status, body = await client.metrics()
                    assert status == 200
                    return body

            document = asyncio.run(metrics())
            commit = document["wal"]["group_commit"]
            assert commit["mutations"] >= 10
            assert commit["fsyncs"] < commit["mutations"]
            assert commit["fsyncs_per_mutation"] < 1.0
            stripe = document["frontend"]["stripe"]
            assert stripe["enabled"]
            assert stripe["fsyncs"] < stripe["records"]
        finally:
            supervisor.stop()


class TestSupervisorRespawn:
    def test_sigkill_mid_buffer_respawns_and_converges(self, tmp_path):
        wal_dir = tmp_path / "wal"
        first, second = queries(12), queries(12, start=12)
        reference, expected = reference_run([first, second])

        supervisor = GatewaySupervisor(
            build_cluster,
            frontend_config(workers=2, wal_dir=wal_dir,
                            wal_group_commit=True)).start()
        try:
            host, port = supervisor.address

            async def submit(batch):
                async with GatewayClient(
                        host, port, client_id="c") as client:
                    for query in batch:
                        await resilient_submit(client, query)

            async def settle():
                async with GatewayClient(
                        host, port, client_id="c") as client:
                    status, body = await client.tick()
                    assert status == 200, body
                    return canonical(body["report"])

            asyncio.run(submit(first))
            assert asyncio.run(settle()) == expected[0]

            # Half the second batch acked, then SIGKILL worker 1 with
            # its buffer non-empty.
            asyncio.run(submit(second[:6]))
            pid = supervisor.worker_pid(1)
            supervisor.kill_worker(1)
            deadline = time.time() + 20
            while (supervisor.worker_pid(1) == pid
                   or supervisor.respawns[1] == 0):
                assert time.time() < deadline, "worker never respawned"
                time.sleep(0.05)
            asyncio.run(submit(second[6:]))
            assert asyncio.run(settle()) == expected[1]

            async def revenue():
                async with GatewayClient(host, port) as client:
                    status, body = await client.report()
                    assert status == 200
                    return body["revenue"]
            live_revenue = asyncio.run(revenue())
        finally:
            supervisor.stop()

        backend = HostBackend(build_cluster())
        log, _ = recover_striped_gateway(wal_dir, backend)
        log.close()
        assert backend.period == 2
        assert backend.total_revenue() == live_revenue
        assert canonical(
            report_document(backend.last_report)) == expected[1]
        keys = invoice_keys(backend)
        assert keys == invoice_keys(reference)
        assert len(keys) == len(set(keys))


class TestLoadgenFanout:
    def test_fanout_merges_samples_and_statuses(self):
        supervisor = GatewaySupervisor(
            build_cluster,
            frontend_config(workers=2, client_rate=1e6,
                            client_burst=1e6, peer_rate=1e9,
                            peer_burst=1e9)).start()
        try:
            host, port = supervisor.address
            result = asyncio.run(run_load(
                host, port, arrivals="poisson:rate=100000,seed=11",
                requests=40, concurrency=2, processes=2))
        finally:
            supervisor.stop()
        assert result.completed == 40
        assert result.errors == 0
        assert result.statuses.get("200") == 40
        assert len(result.latency_s) == 40
        assert result.requests_per_s > 0
        assert result.latency_ms["p50"] <= result.latency_ms["p99"]

    def test_fanout_requires_positive_processes(self):
        with pytest.raises(ValidationError):
            asyncio.run(run_load("127.0.0.1", 1, requests=1,
                                 processes=0))


class TestSupervisorValidation:
    def test_rejects_round_robin_cluster(self):
        supervisor = GatewaySupervisor(
            lambda: build_cluster(placement="round-robin"),
            frontend_config(workers=2))
        with pytest.raises(ValidationError):
            supervisor.start()

    def test_config_requires_workers(self):
        with pytest.raises(ValidationError):
            FrontendConfig(workers=0)


async def resilient_submit(client, query, attempts=60):
    """Submit with reconnect-and-retry: survives the window where a
    killed worker's shared listening socket queues the connection."""
    from repro.serve import HttpError

    for _ in range(attempts):
        try:
            status, body = await asyncio.wait_for(
                client.submit(query), 5.0)
        except (OSError, HttpError, asyncio.TimeoutError):
            await client.close()
            await asyncio.sleep(0.1)
            continue
        if status == 200:
            return
        await asyncio.sleep(0.1)
    raise AssertionError(f"submit never acked: {query.query_id}")
