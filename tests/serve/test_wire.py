"""Serving-layer wire schemas: request/response envelopes."""

import base64

import pytest

from repro.io import (
    ServeRequest,
    serve_request_from_dict,
    serve_request_to_dict,
    serve_response_from_dict,
    serve_response_to_dict,
)
from repro.utils.validation import ValidationError
from tests.strategies import select_query


class TestServeRequest:
    def test_submit_round_trip(self):
        # tests.strategies plans carry a custom predicate, so they
        # travel base64-pickled — decoding them back needs the
        # trusted-side opt-in.
        query = select_query("q1", "alice", bid=4.0, cost=2.0)
        request = ServeRequest(op="submit", query=query)
        parsed = serve_request_from_dict(serve_request_to_dict(request),
                                         allow_pickle=True)
        assert parsed.op == "submit"
        assert parsed.query.query_id == "q1"
        assert parsed.query.bid == pytest.approx(4.0)
        assert parsed.category is None

    def test_subscribe_round_trip_keeps_category(self):
        query = select_query("q2", "bob", bid=3.0, cost=1.0)
        request = ServeRequest(op="subscribe", query=query,
                               category="gold")
        parsed = serve_request_from_dict(serve_request_to_dict(request),
                                         allow_pickle=True)
        assert parsed.op == "subscribe"
        assert parsed.category == "gold"

    def test_compact_select_round_trip_needs_no_opt_in(self):
        # Synthetic pass-all selects use the compact 'select' codec —
        # the only plan shape an untrusting server accepts.
        import numpy as np

        from repro.sim.arrivals import synthetic_query

        query = synthetic_query(np.random.default_rng(0), 1)
        document = serve_request_to_dict(
            ServeRequest(op="submit", query=query))
        assert document["query"]["plan"] == "select"
        parsed = serve_request_from_dict(document)
        assert parsed.query.query_id == query.query_id
        assert parsed.query.bid == pytest.approx(query.bid)

    def test_pickle_plan_refused_without_opt_in(self):
        # pickle.loads on wire bytes is remote code execution; the
        # default parse must refuse before any unpickling happens.
        query = select_query("q1", "alice", bid=4.0, cost=2.0)
        document = serve_request_to_dict(
            ServeRequest(op="submit", query=query))
        assert document["query"]["plan"] == "pickle"
        with pytest.raises(ValidationError, match="network boundary"):
            serve_request_from_dict(document)

    def test_withdraw_round_trip(self):
        request = ServeRequest(op="withdraw", query_id="q9")
        parsed = serve_request_from_dict(serve_request_to_dict(request))
        assert parsed.op == "withdraw"
        assert parsed.query_id == "q9"
        assert parsed.query is None

    def test_unknown_op_rejected(self):
        with pytest.raises(ValidationError, match="unknown serve op"):
            ServeRequest(op="teleport")

    def test_submit_without_query_rejected(self):
        with pytest.raises(ValidationError, match="needs a query"):
            ServeRequest(op="submit")

    def test_subscribe_without_category_rejected(self):
        query = select_query("q3", "carol", bid=1.0, cost=1.0)
        with pytest.raises(ValidationError, match="needs a category"):
            ServeRequest(op="subscribe", query=query)

    def test_withdraw_without_id_rejected(self):
        with pytest.raises(ValidationError, match="needs a query_id"):
            ServeRequest(op="withdraw")

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValidationError, match="not a serve request"):
            serve_request_from_dict({"schema": "repro/other",
                                     "version": 1, "op": "submit"})

    def test_non_object_rejected(self):
        with pytest.raises(ValidationError, match="expected an object"):
            serve_request_from_dict([1, 2, 3])

    def test_corrupt_pickle_plan_is_a_bad_request(self):
        # Corrupt plan bytes must classify as the client's error (the
        # gateway maps ValidationError to a 400), never as a 500.
        query = select_query("q1", "alice", bid=4.0, cost=2.0)
        document = serve_request_to_dict(
            ServeRequest(op="submit", query=query))
        document["query"] = {"plan": "pickle", "id": "q1",
                             "data": "bm90LWEtcGlja2xl"}
        with pytest.raises(ValidationError,
                           match="malformed trace query entry"):
            serve_request_from_dict(document, allow_pickle=True)

    def test_unimportable_plan_is_a_bad_request(self):
        # Pickled plans deserialize by reference: a plan naming a
        # module only the *client* can import must fail its sender
        # with a clear 400, not surface as an internal error.
        ghost = base64.b64encode(
            b"cmodule_only_the_client_has\nGhost\n.").decode("ascii")
        query = select_query("q1", "alice", bid=4.0, cost=2.0)
        document = serve_request_to_dict(
            ServeRequest(op="submit", query=query))
        document["query"] = {"plan": "pickle", "id": "q1",
                             "data": ghost}
        with pytest.raises(ValidationError, match="importable"):
            serve_request_from_dict(document, allow_pickle=True)


class TestServeResponse:
    def test_round_trip_with_fields(self):
        document = serve_response_to_dict(
            "ok", "r000001", shard=2, query_id="q1")
        parsed = serve_response_from_dict(document)
        assert parsed["status"] == "ok"
        assert parsed["request_id"] == "r000001"
        assert parsed["shard"] == 2

    def test_missing_status_rejected(self):
        document = serve_response_to_dict("ok", "r1")
        del document["status"]
        with pytest.raises(ValidationError, match="missing"):
            serve_response_from_dict(document)

    def test_wrong_version_rejected(self):
        document = serve_response_to_dict("ok", "r1")
        document["version"] = 99
        with pytest.raises(ValidationError, match="version"):
            serve_response_from_dict(document)
