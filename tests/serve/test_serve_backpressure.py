"""Token buckets and retry budgets under a deterministic clock."""

import pytest

from repro.serve.backpressure import RetryBudget, TokenBucket
from repro.utils.validation import ValidationError


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_throttle_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3, clock=clock)
        assert [bucket.try_acquire() for _ in range(3)] == [0.0] * 3
        wait = bucket.try_acquire()
        assert wait == pytest.approx(0.5)
        clock.advance(wait)
        assert bucket.try_acquire() == 0.0

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2, clock=clock)
        clock.advance(60.0)
        assert bucket.available == pytest.approx(2.0)

    def test_retry_after_is_proportional_to_deficit(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=1, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == pytest.approx(1.0)
        clock.advance(0.25)
        assert bucket.try_acquire() == pytest.approx(0.75)

    def test_validates_parameters(self):
        with pytest.raises(ValidationError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValidationError):
            TokenBucket(rate=1.0, burst=0.5)


class TestRetryBudget:
    def test_deposits_scale_with_traffic(self):
        budget = RetryBudget(deposit=0.25, initial=0.0, cap=10.0)
        for _ in range(4):
            budget.record_request()
        assert budget.balance == pytest.approx(1.0)
        assert budget.try_withdraw()
        assert not budget.try_withdraw()
        assert budget.exhausted == 1

    def test_initial_balance_absorbs_cold_start(self):
        budget = RetryBudget(deposit=0.0, initial=2.0, cap=10.0)
        assert budget.try_withdraw()
        assert budget.try_withdraw()
        assert not budget.try_withdraw()
        assert budget.retries == 2

    def test_cap_bounds_banked_retries(self):
        budget = RetryBudget(deposit=1.0, initial=0.0, cap=3.0)
        for _ in range(100):
            budget.record_request()
        assert budget.balance == pytest.approx(3.0)
        assert budget.requests == 100

    def test_validates_parameters(self):
        with pytest.raises(ValidationError):
            RetryBudget(deposit=-0.1)
        with pytest.raises(ValidationError):
            RetryBudget(initial=5.0, cap=1.0)
