"""Seeded load generation: determinism and measurement plumbing."""

import asyncio
import json

import pytest

from repro.cluster import FederatedAdmissionService
from repro.dsms.streams import SyntheticStream
from repro.io import cluster_report_to_dict
from repro.serve import (
    AdmissionGateway,
    GatewayConfig,
    LoadgenResult,
    materialize,
    run_load,
)
from repro.utils.validation import ValidationError

pytestmark = pytest.mark.serve

ARRIVALS = "poisson:rate=5,seed=11"


def build_cluster():
    return FederatedAdmissionService.build(
        num_shards=2,
        sources=[SyntheticStream("s", rate=2.0, seed=0)],
        capacity=20.0,
        mechanism="CAT",
        ticks_per_period=4,
        placement="round-robin",
    )


def wide_open_config():
    return GatewayConfig(quiet=True, client_rate=100_000.0,
                         client_burst=100_000.0)


class TestMaterialize:
    def test_same_spec_same_arrivals(self):
        first = materialize(ARRIVALS, 20)
        second = materialize(ARRIVALS, 20)
        assert [a.query.query_id for a in first] == [
            a.query.query_id for a in second]
        assert [a.query.bid for a in first] == [
            a.query.bid for a in second]

    def test_different_seed_different_arrivals(self):
        first = materialize(ARRIVALS, 20)
        other = materialize("poisson:rate=5,seed=12", 20)
        assert ([a.query.bid for a in first]
                != [a.query.bid for a in other])

    def test_empty_process_rejected(self):
        from repro.sim.arrivals import ArrivalProcess

        class Exhausted(ArrivalProcess):
            def next_arrival(self):
                return None

        with pytest.raises(ValidationError, match="no arrivals"):
            materialize(Exhausted(), 5)

    def test_validates_request_count(self):
        with pytest.raises(ValidationError):
            asyncio.run(run_load("127.0.0.1", 1, requests=0))


class TestSeededRuns:
    def test_sequential_replay_is_deterministic(self):
        """Two identical gateways fed the same seeded load settle to
        byte-identical cluster reports and the same accepted ids."""

        async def one_run():
            cluster = build_cluster()
            gateway = AdmissionGateway(cluster, wide_open_config())
            await gateway.start()
            host, port = gateway.address
            result = await run_load(
                host, port, arrivals=ARRIVALS, requests=24,
                concurrency=1, tick_every=8)
            await gateway.stop()
            reports = [json.dumps(cluster_report_to_dict(report),
                                  sort_keys=True)
                       for report in cluster.reports]
            return result, reports

        async def go():
            first, first_reports = await one_run()
            second, second_reports = await one_run()
            assert first.completed == 24
            assert first.errors == 0
            assert first.query_ids == second.query_ids
            assert first.ticks == second.ticks == 3
            assert first_reports == second_reports

        asyncio.run(go())

    def test_concurrent_load_completes_and_measures(self):
        async def go():
            gateway = AdmissionGateway(build_cluster(),
                                       wide_open_config())
            await gateway.start()
            host, port = gateway.address
            result = await run_load(
                host, port, arrivals=ARRIVALS, requests=30,
                concurrency=4, tick_every=10)
            await gateway.stop()
            return result

        result = asyncio.run(go())
        assert isinstance(result, LoadgenResult)
        assert result.completed == 30
        assert result.statuses == {"200": 30}
        assert result.requests_per_s > 0.0
        assert set(result.latency_ms) == {"p50", "p95", "p99"}
        assert result.elapsed_s > 0.0
        document = result.to_dict()
        assert document["requests"] == 30
        assert document["statuses"] == {"200": 30}

    def test_retry_after_is_honoured(self):
        """A throttled submit sleeps for the server's Retry-After —
        the fixed 0.01s·attempts floor alone (≈0.45s over ten tries)
        would exhaust the attempts before a 1 token/s bucket refills."""

        async def go():
            gateway = AdmissionGateway(
                build_cluster(),
                GatewayConfig(quiet=True, client_rate=1.0,
                              client_burst=1))
            await gateway.start()
            host, port = gateway.address
            started = asyncio.get_running_loop().time()
            result = await run_load(
                host, port, arrivals=ARRIVALS, requests=2,
                concurrency=1, max_attempts=10)
            elapsed = asyncio.get_running_loop().time() - started
            await gateway.stop()
            return result, elapsed

        result, elapsed = asyncio.run(go())
        assert result.completed == 2
        assert result.retries >= 1
        # The second submit waited out the advised refill (~1s).
        assert elapsed >= 0.5

    def test_loadgen_retries_through_throttling(self):
        """A throttled client backs off and still lands every query."""

        async def go():
            gateway = AdmissionGateway(
                build_cluster(),
                GatewayConfig(quiet=True, client_rate=50.0,
                              client_burst=5))
            await gateway.start()
            host, port = gateway.address
            result = await run_load(
                host, port, arrivals=ARRIVALS, requests=15,
                concurrency=1, max_attempts=50)
            await gateway.stop()
            return result, gateway.counters["throttled"]

        result, throttled = asyncio.run(go())
        assert result.completed == 15
        assert throttled > 0
        assert result.retries >= throttled
