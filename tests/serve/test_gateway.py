"""Gateway integration tests over real loopback sockets.

Every test stands up a real :class:`AdmissionGateway` on an ephemeral
port and drives it with :class:`GatewayClient`; the interesting cases
are the *failure* paths — bursts that must be throttled, settles that
outlive their caller, a retry budget run dry, and shutdown with work
still pending.
"""

import asyncio
import json
import time

import pytest

from repro.cluster import FederatedAdmissionService
from repro.dsms.streams import SyntheticStream
from repro.serve import (
    AdmissionGateway,
    GatewayClient,
    GatewayConfig,
    HostBackend,
    REDACTED,
)
from repro.sim import SimulationDriver, SubscriptionOptions
from tests.strategies import select_query

pytestmark = pytest.mark.serve

# tests.strategies queries carry a custom predicate, so they travel
# as pickle plans — these gateways opt in as a trusted operator would
# (the default-deny itself is covered in TestWireHardening).
QUIET = {"quiet": True, "allow_pickle_plans": True}


def build_cluster(shards: int = 2, seed: int = 0):
    return FederatedAdmissionService.build(
        num_shards=shards,
        sources=[SyntheticStream("s", rate=2.0, seed=seed)],
        capacity=20.0,
        mechanism="CAT",
        ticks_per_period=4,
        placement="round-robin",
    )


def query(n: int, bid: float = 4.0):
    return select_query(f"q{n}", f"owner{n}", bid=bid, cost=1.0)


async def started_gateway(target, **overrides):
    config = GatewayConfig(**{**QUIET, **overrides})
    gateway = AdmissionGateway(target, config)
    await gateway.start()
    return gateway


class TestHappyPath:
    def test_submit_tick_report_round_trip(self):
        async def go():
            gateway = await started_gateway(build_cluster())
            host, port = gateway.address
            async with GatewayClient(host, port) as client:
                for n in range(4):
                    status, body = await client.submit(query(n))
                    assert status == 200
                    assert body["query_id"] == f"q{n}"
                    assert body["shard"] in (0, 1)
                status, health = await client.health()
                assert status == 200
                assert health["status"] == "ok"
                assert health["pending"] == 4
                status, ticked = await client.tick()
                assert status == 200
                assert ticked["period"] == 1
                admitted = [qid for shard in ticked["report"]["shards"]
                            for qid in shard["admitted"]]
                assert sorted(admitted) == ["q0", "q1", "q2", "q3"]
                status, report = await client.report()
                assert status == 200
                assert report["period"] == 1
                # /v1/report re-serves the settled period's report.
                assert report["report"] == ticked["report"]
            await gateway.stop()

        asyncio.run(go())

    def test_metrics_exposes_shards_and_latency(self):
        async def go():
            gateway = await started_gateway(build_cluster())
            host, port = gateway.address
            async with GatewayClient(host, port) as client:
                await client.submit(query(0))
                status, metrics = await client.metrics()
            await gateway.stop()
            assert status == 200
            assert metrics["schema"] == "repro/serve-metrics"
            assert len(metrics["shards"]) == 2
            assert metrics["pending"] == 1
            assert metrics["latency_ms"]["fast"]["p50"] >= 0.0
            assert metrics["requests"]["/v1/submit:200"] == 1
            assert metrics["backpressure"]["throttled"] == 0

        asyncio.run(go())


class TestProtocolErrors:
    def test_unknown_endpoint_404(self):
        async def go():
            gateway = await started_gateway(build_cluster())
            async with GatewayClient(*gateway.address) as client:
                status, body = await client.request("GET", "/v2/nope")
            await gateway.stop()
            assert status == 404
            assert "/v2/nope" in body["error"]

        asyncio.run(go())

    def test_wrong_method_405(self):
        async def go():
            gateway = await started_gateway(build_cluster())
            async with GatewayClient(*gateway.address) as client:
                status, body = await client.request("GET", "/v1/tick")
            await gateway.stop()
            assert status == 405
            assert "POST" in body["error"]

        asyncio.run(go())

    def test_bad_json_body_400(self):
        async def go():
            gateway = await started_gateway(build_cluster())
            async with GatewayClient(*gateway.address) as client:
                status, body = await client.request(
                    "POST", "/v1/submit", {"schema": "wrong"})
            await gateway.stop()
            assert status == 400
            assert "serve request" in body["error"]

        asyncio.run(go())

    def test_duplicate_query_id_400_via_driver_backend(self):
        async def go():
            driver = SimulationDriver(build_cluster())
            gateway = await started_gateway(driver)
            async with GatewayClient(*gateway.address) as client:
                status, _ = await client.submit(query(1))
                assert status == 200
                status, body = await client.submit(query(1))
            await gateway.stop(final_settle=False)
            assert status == 400
            assert "already submitted" in body["error"]

        asyncio.run(go())

    def test_unknown_stream_rejected_at_submit(self):
        """A plan over a stream no shard serves is the submitter's 400
        — not a poisoned settle for everyone else later."""

        async def go():
            gateway = await started_gateway(build_cluster())
            async with GatewayClient(*gateway.address) as client:
                bad = select_query("qx", "mallory", bid=9.0, cost=1.0,
                                   stream="no_such_stream")
                status, body = await client.submit(bad)
                assert status == 400
                assert "no_such_stream" in body["error"]
                # The period still settles cleanly afterwards.
                await client.submit(query(1))
                status, ticked = await client.tick()
                assert status == 200
                assert ticked["period"] == 1
            await gateway.stop()

        asyncio.run(go())

    def test_withdraw_unknown_id_404(self):
        async def go():
            gateway = await started_gateway(build_cluster())
            async with GatewayClient(*gateway.address) as client:
                status, body = await client.withdraw("ghost")
            await gateway.stop()
            assert status == 404
            assert "ghost" in body["error"]

        asyncio.run(go())

    def test_subscribe_without_managers_409(self):
        async def go():
            gateway = await started_gateway(build_cluster())
            async with GatewayClient(*gateway.address) as client:
                status, body = await client.submit(
                    query(1), category="day")
            await gateway.stop()
            assert status == 409
            assert "subscriptions" in body["error"]

        asyncio.run(go())


class TestSubscriptions:
    def test_subscribe_and_settle_through_driver(self):
        async def go():
            driver = SimulationDriver(
                build_cluster(),
                subscriptions=SubscriptionOptions(seed=0))
            gateway = await started_gateway(driver)
            async with GatewayClient(*gateway.address) as client:
                status, body = await client.submit(
                    query(1), category="day")
                assert status == 200
                assert body["category"] == "day"
                status, ticked = await client.tick()
                assert status == 200
                assert "q1" in ticked["report"]["admitted"]
            await gateway.stop()

        asyncio.run(go())

    def test_unknown_category_400(self):
        async def go():
            driver = SimulationDriver(
                build_cluster(),
                subscriptions=SubscriptionOptions(seed=0))
            gateway = await started_gateway(driver)
            async with GatewayClient(*gateway.address) as client:
                status, body = await client.submit(
                    query(1), category="fortnight")
            await gateway.stop(final_settle=False)
            assert status == 400
            assert "fortnight" in body["error"]

        asyncio.run(go())

    def test_withdraw_from_gateway_inbox(self):
        async def go():
            driver = SimulationDriver(build_cluster())
            gateway = await started_gateway(driver)
            async with GatewayClient(*gateway.address) as client:
                await client.submit(query(1))
                status, body = await client.withdraw("q1")
                assert status == 200
                assert body["withdrawn"]
                assert body["pending"] == 0
                status, ticked = await client.tick()
                assert all(shard["admitted"] == []
                           for shard in ticked["report"]["shards"])
            await gateway.stop()

        asyncio.run(go())


class TestWireHardening:
    def test_pickle_plan_refused_by_default(self):
        """Without the explicit opt-in, a pickle-encoded plan is the
        client's 400 — never bytes fed to ``pickle.loads``."""

        async def go():
            gateway = AdmissionGateway(
                build_cluster(), GatewayConfig(quiet=True))
            await gateway.start()
            async with GatewayClient(*gateway.address) as client:
                status, body = await client.submit(query(1))
            await gateway.stop(final_settle=False)
            assert status == 400
            assert "pickle" in body["error"]
            assert gateway.backend.pending_count() == 0

        asyncio.run(go())

    def test_client_id_rotation_cannot_duck_the_peer_floor(self):
        """Rotating x-client-id buys no rate: the per-peer-address
        bucket still throttles the connection's sixth request."""

        async def go():
            gateway = await started_gateway(
                build_cluster(), client_rate=10_000.0,
                client_burst=10_000.0, peer_rate=1.0, peer_burst=3)
            statuses = []
            async with GatewayClient(*gateway.address) as client:
                for n in range(6):
                    client.client_id = f"rotated{n}"
                    status, _ = await client.submit(query(n))
                    statuses.append(status)
            await gateway.stop(final_settle=False)
            assert statuses.count(200) == 3
            assert statuses.count(429) == 3
            assert gateway.counters["throttled"] == 3

        asyncio.run(go())

    def test_bucket_table_is_bounded(self):
        """Client-chosen ids cannot grow the bucket table without
        bound; the longest-idle bucket is evicted."""

        async def go():
            gateway = await started_gateway(
                build_cluster(), max_tracked_clients=8)
            async with GatewayClient(*gateway.address) as client:
                for n in range(30):
                    client.client_id = f"ephemeral{n}"
                    await client.submit(query(n))
            await gateway.stop(final_settle=False)
            assert len(gateway._buckets) <= 8
            assert gateway.counters["buckets_evicted"] >= 22

        asyncio.run(go())


class TestBackpressure:
    def test_concurrent_burst_is_throttled_with_retry_after(self):
        """Clients past their burst get 429 + a parseable Retry-After."""

        async def go():
            gateway = await started_gateway(
                build_cluster(), client_rate=1.0, client_burst=3)
            host, port = gateway.address

            async def hammer(index: int):
                statuses = []
                async with GatewayClient(
                        host, port, client_id=f"burst{index}") as client:
                    for n in range(6):
                        status, _ = await client.submit(
                            query(index * 100 + n))
                        statuses.append(
                            (status, dict(client.last_headers)))
                return statuses

            results = await asyncio.gather(hammer(0), hammer(1))
            await gateway.stop(final_settle=False)
            for statuses in results:
                accepted = [s for s, _ in statuses if s == 200]
                throttled = [(s, h) for s, h in statuses if s == 429]
                assert len(accepted) == 3
                assert len(throttled) == 3
                for _, headers in throttled:
                    assert float(headers["retry-after"]) > 0.0
            assert gateway.counters["throttled"] == 6

        asyncio.run(go())

    def test_inflight_cap_sheds_503(self):
        async def go():
            backend = HostBackend(build_cluster())
            gateway = await started_gateway(backend, max_inflight=1)
            gateway._inflight = 1
            async with GatewayClient(*gateway.address) as client:
                status, body = await client.submit(query(1))
            gateway._inflight = 0
            await gateway.stop(final_settle=False)
            assert status == 503
            assert "in-flight cap" in body["error"]
            assert gateway.counters["shed"] == 1

        asyncio.run(go())


class SlowTickBackend(HostBackend):
    """A backend whose settle takes ``delay`` wall-clock seconds."""

    def __init__(self, target, delay: float) -> None:
        super().__init__(target)
        self.delay = delay
        self.ticks_finished = 0

    def tick(self):
        time.sleep(self.delay)
        report = super().tick()
        self.ticks_finished += 1
        return report


class TestTimeoutsAndRetryBudget:
    def test_timeout_mid_auction_still_settles_and_unlocks(self):
        """A 504'd /v1/tick leaves the settle to finish on its own."""

        async def go():
            backend = SlowTickBackend(build_cluster(), delay=0.4)
            gateway = await started_gateway(backend, slow_timeout=0.05)
            async with GatewayClient(*gateway.address) as client:
                await client.submit(query(1))
                status, body = await client.tick()
                assert status == 504
                assert "timed out" in body["error"]
                # The shielded settle completes in its worker thread
                # and the done-callback releases the lock.
                deadline = time.monotonic() + 5.0
                while (backend.ticks_finished == 0
                       and time.monotonic() < deadline):
                    await asyncio.sleep(0.02)
                assert backend.ticks_finished == 1
                assert backend.period == 1
                status, body = await client.submit(query(2))
                assert status == 200
            assert gateway.counters["timeouts"] == 1
            await gateway.stop()

        asyncio.run(go())

    def test_probes_serve_a_snapshot_mid_settle(self):
        """/healthz and /metrics answer during a settle from the last
        uncontended snapshot instead of reading structures the worker
        thread is mutating."""

        async def go():
            backend = SlowTickBackend(build_cluster(), delay=0.5)
            gateway = await started_gateway(backend, slow_timeout=5.0)
            host, port = gateway.address
            async with GatewayClient(host, port) as submitter:
                await submitter.submit(query(1))
                _, fresh = await submitter.health()
                assert fresh["pending"] == 1
                tick_task = asyncio.create_task(submitter.tick())
                await asyncio.sleep(0.1)      # settle underway
                assert gateway._lock.locked()
                assert backend.ticks_finished == 0
                async with GatewayClient(
                        host, port, client_id="probe") as probe:
                    s_health, health = await probe.health()
                    s_metrics, metrics = await probe.metrics()
                status, _ = await tick_task
            await gateway.stop()
            assert status == 200
            assert s_health == s_metrics == 200
            # The pre-settle snapshot, not a torn mid-settle read.
            assert health["pending"] == 1
            assert metrics["pending"] == 1

        asyncio.run(go())

    def test_retry_budget_exhaustion_503(self):
        """Contention with no banked retries is refused, not queued."""

        async def go():
            gateway = await started_gateway(
                build_cluster(), lock_patience=0.02,
                retry_deposit=0.0, retry_initial=0.0, retry_cap=1.0,
                fast_timeout=5.0)
            await gateway._lock.acquire()      # a settle in progress
            try:
                async with GatewayClient(*gateway.address) as client:
                    status, body = await client.submit(query(1))
            finally:
                gateway._lock.release()
            await gateway.stop(final_settle=False)
            assert status == 503
            assert "retry budget is exhausted" in body["error"]
            assert gateway._budget.exhausted == 1
            assert float(client.last_headers["retry-after"]) > 0.0

        asyncio.run(go())

    def test_retry_budget_absorbs_transient_contention(self):
        """With budget banked, the gateway retries and succeeds."""

        async def go():
            gateway = await started_gateway(
                build_cluster(), lock_patience=0.05,
                retry_initial=5.0, fast_timeout=5.0)
            await gateway._lock.acquire()

            async def release_soon():
                await asyncio.sleep(0.12)
                gateway._lock.release()

            release = asyncio.create_task(release_soon())
            async with GatewayClient(*gateway.address) as client:
                status, _ = await client.submit(query(1))
            await release
            await gateway.stop()
            assert status == 200
            assert gateway._budget.retries >= 1

        asyncio.run(go())


class TestShutdown:
    def test_stop_runs_final_settle_over_pending_work(self):
        async def go():
            cluster = build_cluster()
            gateway = await started_gateway(cluster)
            async with GatewayClient(*gateway.address) as client:
                for n in range(3):
                    await client.submit(query(n))
            assert gateway.backend.pending_count() == 3
            await gateway.stop()
            assert gateway.backend.pending_count() == 0
            assert gateway.backend.period == 1
            assert len(cluster.reports) == 1

        asyncio.run(go())

    def test_draining_gateway_refuses_new_work(self):
        async def go():
            gateway = await started_gateway(build_cluster())
            gateway._draining = True
            async with GatewayClient(*gateway.address) as client:
                status, body = await client.submit(query(1))
                s_health, health = await client.health()
            gateway._draining = False
            await gateway.stop(final_settle=False)
            assert status == 503
            assert "draining" in body["error"]
            # /healthz stays reachable and reports the drain.
            assert s_health == 200

        asyncio.run(go())

    def test_failed_final_settle_still_shuts_down(self):
        """A final settle that cannot take the lock is logged and
        skipped — sockets and the log sink still close."""

        async def go():
            gateway = await started_gateway(
                build_cluster(), lock_patience=0.02,
                retry_deposit=0.0, retry_initial=0.0,
                drain_timeout=0.05)
            async with GatewayClient(*gateway.address) as client:
                await client.submit(query(1))
            await gateway._lock.acquire()      # a stuck settle
            await gateway.stop()               # must not raise
            assert gateway._stopped
            assert gateway.backend.pending_count() == 1

        asyncio.run(go())

    def test_stop_without_final_settle_leaves_pending(self):
        async def go():
            gateway = await started_gateway(build_cluster())
            async with GatewayClient(*gateway.address) as client:
                await client.submit(query(1))
            await gateway.stop(final_settle=False)
            assert gateway.backend.pending_count() == 1
            assert gateway.backend.period == 0

        asyncio.run(go())


class TestLogging:
    def test_secrets_are_redacted_through_the_wire(self, tmp_path):
        log_path = tmp_path / "gateway.jsonl"

        async def go():
            gateway = await started_gateway(
                build_cluster(), log_path=str(log_path))
            async with GatewayClient(*gateway.address) as client:
                status, _ = await client.request(
                    "GET", "/healthz?token=hunter2&shard=1")
                assert status == 200
            await gateway.stop()

        asyncio.run(go())
        raw = log_path.read_text()
        assert "hunter2" not in raw
        assert REDACTED in raw
        records = [json.loads(line) for line in raw.splitlines()]
        request = next(r for r in records if r["event"] == "request")
        assert request["params"]["token"] == REDACTED
        assert request["params"]["shard"] == "1"
        assert request["request_id"].startswith("r")
        events = {r["event"] for r in records}
        assert {"listening", "request", "stopped"} <= events
