"""HTTP/1.1 framing: parse, render, and the protocol-limit errors."""

import asyncio

import pytest

from repro.serve.http import (
    HttpError,
    json_body,
    read_request,
    read_response,
    render_request,
    render_response,
)
from repro.utils.validation import ValidationError


def parse_request(raw: bytes, **limits):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **limits)

    return asyncio.run(go())


def parse_response(raw: bytes, **limits):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_response(reader, **limits)

    return asyncio.run(go())


class TestRequestParsing:
    def test_round_trip(self):
        raw = render_request(
            "post", "/v1/submit?a=1&b=two", json_body({"x": 1}),
            headers={"x-client-id": "c7"})
        request = parse_request(raw)
        assert request.method == "POST"
        assert request.path == "/v1/submit"
        assert request.params == {"a": "1", "b": "two"}
        assert request.headers["x-client-id"] == "c7"
        assert request.json() == {"x": 1}
        assert request.keep_alive

    def test_connection_close_honoured(self):
        raw = render_request("GET", "/healthz", keep_alive=False)
        assert not parse_request(raw).keep_alive

    def test_clean_eof_returns_none(self):
        assert parse_request(b"") is None

    def test_malformed_request_line_is_400(self):
        with pytest.raises(HttpError) as excinfo:
            parse_request(b"NOT-HTTP\r\n\r\n")
        assert excinfo.value.status == 400

    def test_oversized_body_is_413(self):
        raw = render_request("POST", "/v1/submit", b"x" * 100)
        with pytest.raises(HttpError) as excinfo:
            parse_request(raw, max_body=10)
        assert excinfo.value.status == 413

    def test_too_many_headers_is_431(self):
        headers = {f"h{i}": "v" for i in range(100)}
        raw = render_request("GET", "/healthz", headers=headers)
        with pytest.raises(HttpError) as excinfo:
            parse_request(raw, max_headers=8)
        assert excinfo.value.status == 431

    def test_bad_content_length_is_400(self):
        raw = (b"POST /x HTTP/1.1\r\nContent-Length: ten\r\n\r\n")
        with pytest.raises(HttpError) as excinfo:
            parse_request(raw)
        assert excinfo.value.status == 400

    def test_truncated_body_is_400(self):
        raw = b"POST /x HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort"
        with pytest.raises(HttpError) as excinfo:
            parse_request(raw)
        assert excinfo.value.status == 400
        assert "mid-body" in excinfo.value.message

    def test_non_json_body_raises_validation_error(self):
        raw = render_request("POST", "/x", b"not json")
        with pytest.raises(ValidationError, match="not valid JSON"):
            parse_request(raw).json()


class TestResponseParsing:
    def test_round_trip(self):
        raw = render_response(200, json_body({"ok": True}),
                              headers={"Retry-After": "0.5"})
        response = parse_response(raw)
        assert response.status == 200
        assert response.headers["retry-after"] == "0.5"
        assert response.json() == {"ok": True}

    def test_reason_phrases_cover_gateway_statuses(self):
        for status in (200, 400, 404, 405, 413, 429, 431, 500, 503,
                       504):
            line = render_response(status).split(b"\r\n")[0]
            assert str(status).encode() in line
            assert line != f"HTTP/1.1 {status} Unknown".encode()

    def test_malformed_status_line_is_400(self):
        with pytest.raises(HttpError) as excinfo:
            parse_response(b"HTTP/1.1 abc\r\n\r\n")
        assert excinfo.value.status == 400
