"""Structured logging: dual sinks, redaction, deterministic records."""

import io
import json

import pytest

from repro.serve.logs import REDACTED, StructuredLog, redact


class TestRedact:
    def test_redacts_secret_looking_keys(self):
        cleaned = redact({
            "token": "t0p", "api_key": "k", "Authorization": "Bearer x",
            "password": "pw", "client": "c7",
        })
        assert cleaned["token"] == REDACTED
        assert cleaned["api_key"] == REDACTED
        assert cleaned["Authorization"] == REDACTED
        assert cleaned["password"] == REDACTED
        assert cleaned["client"] == "c7"

    def test_recurses_through_mappings_and_lists(self):
        cleaned = redact({
            "params": {"session_token": "s", "path": "/x"},
            "items": [{"secret": "s2"}, 7],
        })
        assert cleaned["params"]["session_token"] == REDACTED
        assert cleaned["params"]["path"] == "/x"
        assert cleaned["items"][0]["secret"] == REDACTED
        assert cleaned["items"][1] == 7

    def test_original_mapping_is_untouched(self):
        original = {"token": "keep-me"}
        redact(original)
        assert original["token"] == "keep-me"


class TestStructuredLog:
    def test_writes_both_sinks(self, tmp_path):
        stream = io.StringIO()
        path = tmp_path / "gw.jsonl"
        with StructuredLog(path=path, stream=stream,
                           clock=lambda: 12.5) as log:
            log.log("request", request_id="r1", status=200)
        line = stream.getvalue()
        assert "[info] request" in line
        assert "request_id=r1" in line
        record = json.loads(path.read_text())
        assert record == {"ts": 12.5, "level": "info",
                          "event": "request", "request_id": "r1",
                          "status": 200}

    def test_secrets_never_reach_either_sink(self, tmp_path):
        stream = io.StringIO()
        path = tmp_path / "gw.jsonl"
        with StructuredLog(path=path, stream=stream) as log:
            log.log("auth", token="sekret123",
                    params={"api_key": "k-9"})
        for sink in (stream.getvalue(), path.read_text()):
            assert "sekret123" not in sink
            assert "k-9" not in sink
            assert REDACTED in sink

    def test_rejects_unknown_level(self):
        log = StructuredLog(stream=None)
        with pytest.raises(ValueError, match="unknown log level"):
            log.log("event", level="loud")

    def test_file_sink_appends_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "gw.jsonl"
        with StructuredLog(path=path, stream=None) as log:
            log.log("a", n=1)
            log.log("b", n=2)
        lines = path.read_text().splitlines()
        assert [json.loads(line)["event"] for line in lines] == ["a",
                                                                 "b"]
