"""Arrival processes: specs, determinism, resumability."""

import pickle

import pytest

from repro.sim.arrivals import (
    Arrival,
    ArrivalSpec,
    BurstArrivals,
    PoissonArrivals,
    ScheduledArrivals,
    make_arrivals,
    registered_arrivals,
    resolve_arrivals,
    synthetic_query,
)
from repro.utils.validation import ValidationError


def drain(process, count):
    out = []
    for _ in range(count):
        arrival = process.next_arrival()
        if arrival is None:
            break
        out.append(arrival)
    return out


class TestSpecs:
    def test_parse_roundtrip(self):
        spec = ArrivalSpec.parse("poisson:rate=40,seed=7")
        assert spec.name == "poisson"
        assert spec.params == {"rate": 40, "seed": 7}
        assert str(spec) == "poisson:rate=40,seed=7"

    def test_registry_menu_on_unknown_name(self):
        with pytest.raises(KeyError) as excinfo:
            ArrivalSpec.parse("flood:rate=1").validate()
        assert "poisson" in str(excinfo.value)
        assert "burst" in str(excinfo.value)
        assert "trace" in str(excinfo.value)

    def test_unknown_parameter_names_the_menu(self):
        with pytest.raises(ValidationError) as excinfo:
            ArrivalSpec.parse("poisson:rate=1,cadence=3").validate()
        assert "cadence" in str(excinfo.value)
        assert "rate" in str(excinfo.value)

    def test_accepts_and_with_params(self):
        spec = ArrivalSpec.parse("poisson:rate=1")
        assert spec.accepts("seed")
        assert not spec.accepts("cadence")
        assert spec.with_params(seed=9).params["seed"] == 9

    def test_resolve_forms(self):
        assert isinstance(resolve_arrivals("poisson:rate=2"),
                          PoissonArrivals)
        assert isinstance(
            resolve_arrivals(ArrivalSpec.parse("burst")), BurstArrivals)
        live = PoissonArrivals(rate=1.0)
        assert resolve_arrivals(live) is live
        with pytest.raises(ValidationError):
            resolve_arrivals(42)

    def test_registered_names(self):
        names = set(registered_arrivals())
        assert {"poisson", "burst", "trace"} <= names

    def test_make_arrivals_validates_kwargs(self):
        with pytest.raises(ValidationError):
            make_arrivals("poisson", rate=1.0, nope=2)


class TestPoisson:
    def test_deterministic_given_seed(self):
        a = drain(PoissonArrivals(rate=2.0, seed=5), 20)
        b = drain(PoissonArrivals(rate=2.0, seed=5), 20)
        assert [(x.time, x.query.query_id, x.query.bid) for x in a] == \
               [(x.time, x.query.query_id, x.query.bid) for x in b]

    def test_times_strictly_increase(self):
        times = [a.time for a in drain(PoissonArrivals(rate=3.0), 50)]
        assert all(later > earlier
                   for earlier, later in zip(times, times[1:]))

    def test_limit_exhausts(self):
        process = PoissonArrivals(rate=1.0, limit=3)
        assert len(drain(process, 10)) == 3
        assert process.next_arrival() is None

    def test_pickle_resumes_the_same_stream(self):
        process = PoissonArrivals(rate=2.0, seed=1)
        drain(process, 7)
        clone = pickle.loads(pickle.dumps(process))
        tail_a = drain(process, 10)
        tail_b = drain(clone, 10)
        assert [(x.time, x.query.query_id) for x in tail_a] == \
               [(x.time, x.query.query_id) for x in tail_b]

    def test_rate_must_be_positive(self):
        with pytest.raises(ValidationError):
            PoissonArrivals(rate=0.0)

    def test_query_ids_use_prefix(self):
        arrivals = drain(PoissonArrivals(rate=1.0, prefix="s2a"), 3)
        assert [a.query.query_id for a in arrivals] == \
               ["s2a0", "s2a1", "s2a2"]


class TestBurst:
    def test_bursts_share_a_time(self):
        arrivals = drain(BurstArrivals(size=3, every=10.0), 7)
        times = [a.time for a in arrivals]
        assert times == [10.0, 10.0, 10.0, 20.0, 20.0, 20.0, 30.0]

    def test_limit(self):
        assert len(drain(BurstArrivals(size=4, every=5.0, limit=6),
                         20)) == 6

    def test_validation(self):
        with pytest.raises(ValidationError):
            BurstArrivals(size=0)
        with pytest.raises(ValidationError):
            BurstArrivals(every=0.0)


class TestScheduled:
    def test_yields_in_order(self):
        queries = [synthetic_query(_rng(), i) for i in range(3)]
        process = ScheduledArrivals([
            Arrival(time=1.0, query=queries[0]),
            Arrival(time=1.0, query=queries[1]),
            Arrival(time=4.0, query=queries[2]),
        ])
        assert [a.time for a in drain(process, 5)] == [1.0, 1.0, 4.0]
        assert process.next_arrival() is None

    def test_rejects_time_regressions(self):
        queries = [synthetic_query(_rng(), i) for i in range(2)]
        with pytest.raises(ValidationError):
            ScheduledArrivals([
                Arrival(time=2.0, query=queries[0]),
                Arrival(time=1.0, query=queries[1]),
            ])


class TestTraceProcess:
    def test_requires_exactly_one_source(self):
        from repro.sim.arrivals import TraceArrivals

        with pytest.raises(ValidationError):
            TraceArrivals()
        with pytest.raises(ValidationError):
            TraceArrivals(trace=object(), path="x")

    def test_rejects_non_trace_objects(self):
        from repro.sim.arrivals import TraceArrivals

        with pytest.raises(ValidationError):
            TraceArrivals(trace=object())


def _rng():
    import numpy as np

    return np.random.default_rng(0)


class TestSyntheticQuery:
    def test_shape_and_ranges(self):
        query = synthetic_query(_rng(), 3, stream="quotes", clients=2)
        assert query.query_id == "a3"
        assert query.owner == "user_1"
        assert query.operators[0].inputs == ("quotes",)
        assert 5.0 <= query.bid <= 100.0
        assert 0.5 <= query.operators[0].cost_per_tuple <= 2.0
