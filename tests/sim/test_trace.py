"""Trace codec and the versioned repro/sim-trace schema."""

import json

import numpy as np
import pytest

from repro.dsms.operators import ProjectOperator, SelectOperator
from repro.dsms.plan import ContinuousQuery
from repro.io import (
    SIM_TRACE_SCHEMA,
    SIM_TRACE_VERSION,
    load_sim_trace,
    save_sim_trace,
    sim_trace_from_dict,
    sim_trace_to_dict,
)
from repro.sim.arrivals import TraceArrivals, synthetic_query
from repro.sim.trace import (
    SimTrace,
    TraceEntry,
    TraceRecorder,
    decode_query,
    encode_query,
)
from repro.utils.validation import ValidationError


def _keep(_t):
    return True


class TestQueryCodec:
    def test_synthetic_queries_use_the_compact_encoding(self):
        query = synthetic_query(np.random.default_rng(0), 4,
                                stream="quotes")
        encoded = encode_query(query)
        assert encoded["plan"] == "select"
        decoded = decode_query(encoded)
        assert decoded.query_id == query.query_id
        assert decoded.bid == query.bid
        assert decoded.owner == query.owner
        assert decoded.operator_ids == query.operator_ids
        assert (decoded.operators[0].cost_per_tuple
                == query.operators[0].cost_per_tuple)

    def test_arbitrary_plans_fall_back_to_pickle(self):
        select = SelectOperator("sel", "s", _keep)
        project = ProjectOperator("proj", "sel", ("a",))
        query = ContinuousQuery("fancy", (select, project),
                                sink_id="proj", bid=9.0)
        encoded = encode_query(query)
        assert encoded["plan"] == "pickle"
        decoded = decode_query(encoded)
        assert decoded.query_id == "fancy"
        assert decoded.operator_ids == ("sel", "proj")

    def test_unknown_plan_encoding_rejected(self):
        with pytest.raises(ValidationError):
            decode_query({"plan": "yaml", "id": "x"})

    def test_malformed_entry_rejected(self):
        with pytest.raises(ValidationError):
            decode_query({"plan": "select", "id": "x"})


class TestSchema:
    def _trace(self):
        recorder = TraceRecorder()
        rng = np.random.default_rng(1)
        recorder.record(1.5, synthetic_query(rng, 0), "day", stream=0)
        recorder.record(2.5, synthetic_query(rng, 1), None, stream=1)
        return recorder.trace()

    def test_document_shape(self):
        document = sim_trace_to_dict(self._trace())
        assert document["schema"] == SIM_TRACE_SCHEMA
        assert document["version"] == SIM_TRACE_VERSION
        assert len(document["arrivals"]) == 2
        assert document["arrivals"][0]["category"] == "day"
        assert "category" not in document["arrivals"][1]
        json.dumps(document)  # JSON-able all the way down

    def test_roundtrip(self, tmp_path):
        trace = self._trace()
        path = tmp_path / "run.trace.json"
        save_sim_trace(trace, path)
        loaded = load_sim_trace(path)
        assert isinstance(loaded, SimTrace)
        assert len(loaded) == 2
        first = loaded.entries[0]
        assert isinstance(first, TraceEntry)
        assert first.time == 1.5
        assert first.category == "day"
        assert first.query.query_id == trace.entries[0].query.query_id
        assert loaded.entries[1].stream == 1

    def test_replay_through_trace_arrivals(self, tmp_path):
        trace = self._trace()
        path = tmp_path / "run.trace.json"
        save_sim_trace(trace, path)
        process = TraceArrivals(path=str(path))
        replayed = [process.next_arrival() for _ in range(2)]
        assert process.next_arrival() is None
        assert [a.time for a in replayed] == [1.5, 2.5]
        assert replayed[0].category == "day"

    def test_schema_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            sim_trace_from_dict({"schema": "repro/other", "version": 1,
                                 "arrivals": []})

    def test_version_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            sim_trace_from_dict({"schema": SIM_TRACE_SCHEMA,
                                 "version": 99, "arrivals": []})

    def test_non_object_rejected(self):
        with pytest.raises(ValidationError):
            sim_trace_from_dict([])

    def test_arrivals_must_be_an_array(self):
        with pytest.raises(ValidationError):
            sim_trace_from_dict({"schema": SIM_TRACE_SCHEMA,
                                 "version": SIM_TRACE_VERSION,
                                 "arrivals": {}})


class TestSimSnapshotEnvelope:
    def test_envelope_roundtrip_and_validation(self, tmp_path):
        from repro.io import load_sim_snapshot, save_sim_snapshot

        path = tmp_path / "sim.ckpt"
        save_sim_snapshot({"hello": 1}, path)
        assert load_sim_snapshot(path) == {"hello": 1}

        bad = tmp_path / "bad.ckpt"
        bad.write_bytes(b"not a pickle")
        with pytest.raises(ValidationError):
            load_sim_snapshot(bad)

    def test_wrong_schema_rejected(self, tmp_path):
        import pickle

        from repro.io import load_sim_snapshot

        path = tmp_path / "weird.ckpt"
        path.write_bytes(pickle.dumps({"schema": "repro/other",
                                       "version": 1, "snapshot": None}))
        with pytest.raises(ValidationError):
            load_sim_snapshot(path)
