"""Columnar-pump equivalence: numpy rows, identical bytes.

The arrival pump (``SimulationDriver(pump=True)``) pulls whole numpy
row-blocks from the arrival processes and admits boundary slices
through the columnar twin, materializing plan objects for winners
only.  It is only admissible because every observable — period
reports, ``events_processed``, recorder rows, RNG streams, checkpoint
round-trips — is byte-identical to the batched and per-event object
paths.  This suite pins that across open-system, subscription, and
cluster-routed runs, plus the edges: bursts, near-empty blocks,
mid-run checkpoint stitching, and trace record/replay.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io import save_sim_trace
from repro.sim import SimulationDriver, SubscriptionOptions

from tests.sim.test_equivalence import (
    build_cluster,
    build_service,
    report_bytes,
)


def run_driver(host, periods=4, pump=False, batch_arrivals=True,
               arrivals=None, subscriptions=None, record=False,
               route="placement"):
    driver = SimulationDriver(
        host,
        arrivals=(arrivals if arrivals is not None
                  else "poisson:rate=3,seed=11"),
        subscriptions=subscriptions,
        batch_arrivals=batch_arrivals,
        pump=pump,
        record=record,
        route=route,
    )
    reports = driver.run(periods)
    return driver, reports


def assert_all_paths_identical(make_host, **kwargs):
    """Pump ≡ batched ≡ per-event on fresh hosts from *make_host*."""
    pumped, pumped_reports = run_driver(make_host(), pump=True,
                                        **kwargs)
    batched, batched_reports = run_driver(make_host(), **kwargs)
    legacy, legacy_reports = run_driver(make_host(),
                                        batch_arrivals=False, **kwargs)
    expected = report_bytes(batched_reports)
    assert report_bytes(pumped_reports) == expected
    assert report_bytes(legacy_reports) == expected
    assert (pumped.events_processed == batched.events_processed
            == legacy.events_processed)
    return pumped


class TestPumpEqualsObjectPaths:
    def test_open_system_identical(self):
        pumped = assert_all_paths_identical(build_service)
        pump = pumped.metrics_snapshot()["pump"]
        assert pump["enabled"] is True
        assert pump["rows"] > 0
        assert 0 <= pump["winners"] <= pump["rows"]
        assert pump["blocks"] > 0

    def test_subscription_mode_identical(self):
        assert_all_paths_identical(
            build_service,
            subscriptions=SubscriptionOptions(seed=3))

    def test_cluster_stream_routing_identical(self):
        assert_all_paths_identical(
            build_cluster,
            arrivals=["poisson:rate=2,seed=5,prefix=a",
                      "poisson:rate=3,seed=9,prefix=b"],
            route="stream",
            subscriptions=SubscriptionOptions(seed=1))

    def test_cluster_placement_routing_identical(self):
        """Placement routing admits per-row (pump falls back cleanly)."""
        assert_all_paths_identical(
            build_cluster,
            arrivals="poisson:rate=4,seed=17",
            route="placement")

    def test_burst_arrivals_identical(self):
        """Simultaneous arrivals: block slicing must respect ties."""
        assert_all_paths_identical(
            build_service,
            arrivals="burst:size=20,every=2,seed=7")

    def test_near_empty_blocks_identical(self):
        """A rate so low most pump pulls yield zero or one row."""
        assert_all_paths_identical(
            build_service,
            arrivals="poisson:rate=0.05,seed=13",
            periods=6)

    def test_recorder_rows_identical(self):
        pumped, _ = run_driver(
            build_service(), pump=True, record=True,
            subscriptions=SubscriptionOptions(seed=3))
        legacy, _ = run_driver(
            build_service(), record=True, batch_arrivals=False,
            subscriptions=SubscriptionOptions(seed=3))
        assert ([repr(e) for e in pumped.trace().entries]
                == [repr(e) for e in legacy.trace().entries])

    def test_pump_off_reports_disabled_counters(self):
        driver, _ = run_driver(build_service(), periods=2)
        pump = driver.metrics_snapshot()["pump"]
        assert pump["enabled"] is False
        assert pump["rows"] == 0
        assert pump["winners"] == 0

    @given(rate=st.floats(min_value=0.5, max_value=8.0),
           seed=st.integers(min_value=0, max_value=2**16),
           subscriptions=st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_property_pump_equals_batched(self, rate, seed,
                                          subscriptions):
        arrivals = f"poisson:rate={rate},seed={seed}"
        options = (SubscriptionOptions(seed=seed) if subscriptions
                   else None)
        pumped, pumped_reports = run_driver(
            build_service(seed=seed % 7), periods=3, pump=True,
            arrivals=arrivals, subscriptions=options)
        batched, batched_reports = run_driver(
            build_service(seed=seed % 7), periods=3,
            arrivals=arrivals, subscriptions=options)
        assert report_bytes(pumped_reports) == report_bytes(
            batched_reports)
        assert pumped.events_processed == batched.events_processed


class TestPumpCheckpointing:
    def test_mid_run_checkpoint_stitches_identically(self):
        """Snapshot between periods: a pump driver resumes mid-block.

        The restored run's remaining periods must match both an
        uninterrupted pump run and the per-event reference — the
        snapshot carries block cursors, so rows consumed before the
        checkpoint are never re-admitted after it.
        """
        def spec():
            return dict(arrivals="poisson:rate=4,seed=23",
                        subscriptions=SubscriptionOptions(seed=5))

        whole, whole_reports = run_driver(build_service(), periods=4,
                                          pump=True, **spec())
        reference, reference_reports = run_driver(
            build_service(), periods=4, batch_arrivals=False, **spec())

        first = SimulationDriver(build_service(), pump=True, **spec())
        head = first.run(2)
        restored = SimulationDriver.restore(first.snapshot())
        assert restored.pump is True
        tail = restored.run(2)

        stitched = report_bytes(head + tail)
        assert stitched == report_bytes(whole_reports)
        assert stitched == report_bytes(reference_reports)
        assert (whole.events_processed
                == first.events_processed + (
                    restored.events_processed - first.events_processed)
                == restored.events_processed)

    def test_snapshot_roundtrip_preserves_pump_counters(self):
        driver, _ = run_driver(build_service(), periods=2, pump=True)
        restored = SimulationDriver.restore(driver.snapshot())
        assert (restored.metrics_snapshot()["pump"]
                == driver.metrics_snapshot()["pump"])


class TestPumpTraceReplay:
    @pytest.mark.parametrize("replay_pump", [False, True])
    def test_pump_recording_replays_identically(self, tmp_path,
                                                replay_pump):
        """A trace recorded under the pump replays byte-identically —
        whether the replay itself pumps numpy blocks or not."""
        live, live_reports = run_driver(
            build_service(), pump=True, record=True,
            arrivals="poisson:rate=4,seed=21",
            subscriptions=SubscriptionOptions(seed=2))
        path = tmp_path / "pumped.trace.npz"
        save_sim_trace(live.trace(), path)

        replay = SimulationDriver(
            build_service(),
            arrivals=f"trace:path={path}",
            subscriptions=SubscriptionOptions(seed=2),
            pump=replay_pump,
        )
        replayed = replay.run(4)
        assert report_bytes(replayed) == report_bytes(live_reports)
        assert replay.events_processed == live.events_processed
