"""Fast-layer equivalence: every shortcut must be invisible.

The simulation runtime's throughput work — batched arrival dispatch,
the v2 binary trace columns, the probe's count-mode engine — is only
admissible because each fast path produces *byte-identical* results to
the reference path it replaced.  This suite pins that:

* batched arrival dispatch ≡ per-event dispatch (reports,
  ``events_processed``, recorder rows);
* trace-v2 (binary) replay ≡ trace-v1 (JSON) replay ≡ the live run;
* the property-based sweep covers arrival rates, seeds, subscription
  lifecycles, and sharded stream routing.
"""

import dataclasses
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import FederatedAdmissionService
from repro.dsms.streams import SyntheticStream
from repro.io import (
    load_sim_trace,
    report_to_dict,
    save_sim_trace,
)
from repro.service import ServiceBuilder
from repro.sim import SimulationDriver, SubscriptionOptions


def build_service(seed=0, capacity=40.0):
    return (ServiceBuilder()
            .with_sources(SyntheticStream("s", rate=5.0, seed=seed))
            .with_capacity(capacity)
            .with_mechanism("CAT")
            .with_ticks_per_period(5)
            .build())


def build_cluster(seed=0):
    return FederatedAdmissionService.build(
        num_shards=2,
        sources=[SyntheticStream("s", rate=5.0, seed=seed)],
        capacity=40.0,
        mechanism="CAT",
        ticks_per_period=5,
        placement="round-robin",
    )


def report_bytes(reports) -> str:
    """A canonical byte string over any host's period reports."""
    rendered = []
    for report in reports:
        if dataclasses.is_dataclass(report):
            # SimPeriodReport / ClusterReport: deterministic dataclass
            # reprs recurse through every field.
            rendered.append(repr(report))
        else:
            rendered.append(json.dumps(report_to_dict(report),
                                       sort_keys=True))
    return "\x1e".join(rendered)


def run_driver(host, periods=4, batch_arrivals=True, arrivals=None,
               subscriptions=None, record=False, route="placement",
               probe=None):
    driver = SimulationDriver(
        host,
        arrivals=(arrivals if arrivals is not None
                  else "poisson:rate=3,seed=11"),
        subscriptions=subscriptions,
        batch_arrivals=batch_arrivals,
        record=record,
        route=route,
        probe=probe,
    )
    reports = driver.run(periods)
    return driver, reports


class TestBatchedEqualsPerEvent:
    def test_open_system_reports_identical(self):
        batched, batched_reports = run_driver(build_service())
        legacy, legacy_reports = run_driver(build_service(),
                                            batch_arrivals=False)
        assert report_bytes(batched_reports) == report_bytes(
            legacy_reports)
        assert batched.events_processed == legacy.events_processed

    def test_subscription_mode_identical(self):
        batched, batched_reports = run_driver(
            build_service(), subscriptions=SubscriptionOptions(seed=3))
        legacy, legacy_reports = run_driver(
            build_service(), subscriptions=SubscriptionOptions(seed=3),
            batch_arrivals=False)
        assert report_bytes(batched_reports) == report_bytes(
            legacy_reports)
        assert batched.events_processed == legacy.events_processed

    def test_cluster_stream_routing_identical(self):
        arrivals = ["poisson:rate=2,seed=5,prefix=a",
                    "poisson:rate=3,seed=9,prefix=b"]
        batched, batched_reports = run_driver(
            build_cluster(), arrivals=arrivals, route="stream",
            subscriptions=SubscriptionOptions(seed=1))
        legacy, legacy_reports = run_driver(
            build_cluster(), arrivals=arrivals, route="stream",
            subscriptions=SubscriptionOptions(seed=1),
            batch_arrivals=False)
        assert report_bytes(batched_reports) == report_bytes(
            legacy_reports)
        assert batched.events_processed == legacy.events_processed

    def test_recorder_rows_identical(self):
        batched, _ = run_driver(
            build_service(), record=True,
            subscriptions=SubscriptionOptions(seed=3))
        legacy, _ = run_driver(
            build_service(), record=True,
            subscriptions=SubscriptionOptions(seed=3),
            batch_arrivals=False)
        assert ([repr(e) for e in batched.trace().entries]
                == [repr(e) for e in legacy.trace().entries])

    @given(rate=st.floats(min_value=0.5, max_value=8.0),
           seed=st.integers(min_value=0, max_value=2**16),
           subscriptions=st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_property_batched_equals_per_event(self, rate, seed,
                                               subscriptions):
        arrivals = f"poisson:rate={rate},seed={seed}"
        options = (SubscriptionOptions(seed=seed) if subscriptions
                   else None)
        batched, batched_reports = run_driver(
            build_service(seed=seed % 7), periods=3,
            arrivals=arrivals, subscriptions=options)
        legacy, legacy_reports = run_driver(
            build_service(seed=seed % 7), periods=3,
            arrivals=arrivals, subscriptions=options,
            batch_arrivals=False)
        assert report_bytes(batched_reports) == report_bytes(
            legacy_reports)
        assert batched.events_processed == legacy.events_processed


class TestTraceReplayEquivalence:
    def _record(self, subscriptions=True):
        options = SubscriptionOptions(seed=2) if subscriptions else None
        driver, reports = run_driver(
            build_service(), record=True,
            arrivals="poisson:rate=4,seed=21",
            subscriptions=options)
        return driver, reports, options

    def _replay(self, path, options, periods=4):
        driver = SimulationDriver(
            build_service(),
            arrivals=f"trace:path={path}",
            subscriptions=(SubscriptionOptions(seed=2)
                           if options else None),
        )
        return driver, driver.run(periods)

    def test_v1_and_v2_replays_match_the_live_run(self, tmp_path):
        live, live_reports, options = self._record()
        trace = live.trace()

        v1 = tmp_path / "run.trace.json"
        v2 = tmp_path / "run.trace.npz"
        save_sim_trace(trace, v1)
        save_sim_trace(trace, v2)
        assert v2.read_bytes()[:2] == b"PK"  # actually binary

        _, v1_reports = self._replay(v1, options)
        _, v2_reports = self._replay(v2, options)
        expected = report_bytes(live_reports)
        assert report_bytes(v1_reports) == expected
        assert report_bytes(v2_reports) == expected

    def test_v2_roundtrip_preserves_every_entry(self, tmp_path):
        live, _reports, _options = self._record()
        trace = live.trace()
        path = tmp_path / "run.trace.npz"
        save_sim_trace(trace, path)
        loaded = load_sim_trace(path)
        assert ([repr(e) for e in loaded.entries]
                == [repr(e) for e in trace.entries])

    def test_open_system_without_subscriptions_replays(self, tmp_path):
        live, live_reports, _ = self._record(subscriptions=False)
        path = tmp_path / "plain.trace.npz"
        save_sim_trace(live.trace(), path)
        _, replayed = self._replay(path, options=None)
        assert report_bytes(replayed) == report_bytes(live_reports)
