"""The simulation driver: lockstep equivalence, open system, resume."""

import json

import numpy as np
import pytest

from repro.cluster import FederatedAdmissionService
from repro.dsms.streams import SyntheticStream
from repro.io import report_to_dict
from repro.service import ServiceBuilder
from repro.sim import ScheduledArrivals, SimulationDriver
from repro.sim.arrivals import synthetic_query
from repro.sim.events import PeriodEvent
from repro.utils.validation import ValidationError


def build_service(mechanism="CAT", ticks=10, capacity=40.0, rate=5.0):
    return (ServiceBuilder()
            .with_sources(SyntheticStream("s", rate=rate, seed=0))
            .with_capacity(capacity)
            .with_mechanism(mechanism)
            .with_ticks_per_period(ticks)
            .build())


def build_cluster(num_shards=2, ticks=10):
    return FederatedAdmissionService.build(
        num_shards=num_shards,
        sources=[SyntheticStream("s", rate=5.0, seed=0)],
        capacity=40.0,
        mechanism="CAT",
        ticks_per_period=ticks,
        placement="consistent-hash:seed=3",
    )


def batches(periods=3, count=5, seed=0):
    out = []
    for period in range(1, periods + 1):
        rng = np.random.default_rng([seed, period])
        out.append([synthetic_query(rng, i, prefix=f"p{period}q")
                    for i in range(count)])
    return out


def reports_json(reports):
    return json.dumps([report_to_dict(r) for r in reports],
                      sort_keys=True)


class TestLockstepEquivalence:
    def test_run_periods_matches_manual_loop_byte_identically(self):
        manual = build_service()
        manual_reports = []
        for batch in batches():
            for query in batch:
                manual.submit(query)
            manual_reports.append(manual.run_period())

        delegated = build_service()
        delegated_reports = delegated.run_periods(batches())

        assert reports_json(manual_reports) == \
            reports_json(delegated_reports)
        assert manual.total_revenue() == delegated.total_revenue()

    def test_run_periods_with_randomized_mechanism(self):
        manual = build_service(mechanism="two-price:seed=9")
        manual_reports = []
        for batch in batches():
            for query in batch:
                manual.submit(query)
            manual_reports.append(manual.run_period())
        delegated = build_service(mechanism="two-price:seed=9")
        assert reports_json(manual_reports) == \
            reports_json(delegated.run_periods(batches()))

    def test_run_periods_accepts_a_lazy_generator(self):
        service = build_service()
        consumed = []

        def lazy():
            for index, batch in enumerate(batches()):
                consumed.append(index)
                yield batch

        reports = service.run_periods(lazy())
        assert len(reports) == 3
        assert consumed == [0, 1, 2]

    def test_empty_batch_with_no_candidates_still_raises(self):
        service = build_service()
        with pytest.raises(ValidationError):
            service.run_periods([[]])

    def test_hooks_fire_in_submit_order(self):
        events = []
        service = (ServiceBuilder()
                   .with_sources(SyntheticStream("s", rate=5.0, seed=0))
                   .with_capacity(40.0)
                   .with_mechanism("CAT")
                   .with_ticks_per_period(5)
                   .on_submit(lambda svc, q:
                              events.append(("submit", q.query_id)))
                   .on_billing(lambda svc, period, revenue, outcome:
                               events.append(("billing", period)))
                   .build())
        service.run_periods(batches(periods=2, count=2))
        submitted = [e for e in events if e[0] == "submit"]
        assert [e[1] for e in submitted[:2]] == ["p1q0", "p1q1"]
        assert ("billing", 1) in events and ("billing", 2) in events

    def test_cluster_run_periods_matches_manual_loop(self):
        manual = build_cluster()
        manual_reports = []
        for batch in batches():
            for query in batch:
                manual.submit(query)
            manual_reports.append(manual.run_period())

        delegated = build_cluster()
        delegated_reports = delegated.run_periods(batches())
        from repro.io import cluster_report_to_dict

        a = json.dumps([cluster_report_to_dict(r)
                        for r in manual_reports], sort_keys=True)
        b = json.dumps([cluster_report_to_dict(r)
                        for r in delegated_reports], sort_keys=True)
        assert a == b

    def test_cluster_run_periods_batch_path(self):
        sequential = build_cluster().run_periods(batches())
        batched = build_cluster().run_periods(batches(), batch=True)
        from repro.io import cluster_report_to_dict

        assert json.dumps([cluster_report_to_dict(r)
                           for r in sequential], sort_keys=True) == \
            json.dumps([cluster_report_to_dict(r)
                        for r in batched], sort_keys=True)


class TestOpenSystem:
    def test_poisson_arrivals_reach_the_auction(self):
        driver = SimulationDriver(
            build_service(), arrivals="poisson:rate=1.5,seed=4")
        reports = driver.run(4)
        assert [r.period for r in reports] == [1, 2, 3, 4]
        assert sum(len(r.admitted) for r in reports) > 0

    def test_first_period_is_idle_when_nothing_arrived_yet(self):
        driver = SimulationDriver(
            build_service(), arrivals="poisson:rate=0.5,seed=4")
        report = driver.run(1)[0]
        assert report.outcome.mechanism == "idle"
        assert report.revenue == 0.0

    def test_multiple_processes_merge_deterministically(self):
        def make():
            return SimulationDriver(
                build_service(),
                arrivals=["poisson:rate=1,seed=1,prefix=x",
                          "poisson:rate=1,seed=2,prefix=y"],
                record=True)

        a, b = make(), make()
        a.run(3)
        b.run(3)
        ids_a = [e.query.query_id for e in a.trace().entries]
        ids_b = [e.query.query_id for e in b.trace().entries]
        assert ids_a == ids_b
        assert any(i.startswith("x") for i in ids_a)
        assert any(i.startswith("y") for i in ids_a)

    def test_scheduled_arrivals_compete_at_the_right_boundary(self):
        from repro.sim.arrivals import Arrival

        rng = np.random.default_rng(0)
        early = synthetic_query(rng, 0, prefix="early")
        late = synthetic_query(rng, 1, prefix="late")
        driver = SimulationDriver(
            build_service(ticks=10),
            arrivals=ScheduledArrivals([
                Arrival(2.0, early),
                Arrival(15.0, late),
            ]))
        first, second, third = driver.run(3)
        # Arrival at t=2 competes at the period-2 boundary (t=10);
        # arrival at t=15 at the period-3 boundary (t=20).
        assert "early0" not in first.admitted + first.rejected
        assert "early0" in second.admitted + second.rejected
        assert "late1" in third.admitted + third.rejected

    def test_run_drains_up_to_the_next_boundary(self):
        driver = SimulationDriver(
            build_service(), arrivals="poisson:rate=1,seed=4",
            probe="fifo")
        driver.run(2)
        # Everything before the next PeriodEvent is processed.
        assert isinstance(driver.queue.peek(), PeriodEvent)
        # Probe ticked once per virtual tick of both periods.
        assert len(driver.tick_metrics()) == 2 * 10

    def test_route_stream_pins_processes_to_shards(self):
        cluster = build_cluster()
        driver = SimulationDriver(
            cluster,
            arrivals=["poisson:rate=1,seed=1,prefix=s0",
                      "poisson:rate=1,seed=2,prefix=s1"],
            route="stream")
        driver.run(3)
        shard0 = cluster.shards[0].ledger.invoices
        shard1 = cluster.shards[1].ledger.invoices
        assert all(i.query_id.startswith("s0") for i in shard0)
        assert all(i.query_id.startswith("s1") for i in shard1)
        assert shard0 and shard1

    def test_multi_stream_recording_replays_onto_recorded_shards(self):
        from repro.sim import TraceArrivals

        def shard_invoices(cluster):
            return [sorted(i.query_id for i in shard.ledger.invoices)
                    for shard in cluster.shards]

        live_cluster = build_cluster()
        live = SimulationDriver(
            live_cluster,
            arrivals=["poisson:rate=1,seed=1,prefix=s0",
                      "poisson:rate=1,seed=2,prefix=s1"],
            route="stream", record=True)
        live.run(3)

        replay_cluster = build_cluster()
        replay = SimulationDriver(
            replay_cluster,
            arrivals=TraceArrivals(trace=live.trace()),
            route="stream")
        replay.run(3)
        # Every arrival lands on its *recorded* stream's shard, even
        # though the replay runs through a single trace process.
        assert shard_invoices(replay_cluster) == \
            shard_invoices(live_cluster)
        assert any(shard_invoices(live_cluster)[1])

    def test_pinned_stream_out_of_range_is_rejected(self):
        from repro.sim.arrivals import Arrival, ScheduledArrivals

        rng = np.random.default_rng(0)
        driver = SimulationDriver(
            build_service(),
            arrivals=ScheduledArrivals([
                Arrival(1.0, synthetic_query(rng, 0), stream=3)]),
            route="stream")
        with pytest.raises(ValidationError) as excinfo:
            driver.run(2)
        assert "stream 3" in str(excinfo.value)

    def test_route_stream_requires_enough_shards(self):
        with pytest.raises(ValidationError):
            SimulationDriver(
                build_service(),
                arrivals=["poisson:rate=1", "poisson:rate=1"],
                route="stream")

    def test_unknown_route_rejected(self):
        with pytest.raises(ValidationError):
            SimulationDriver(build_service(), route="teleport")


class TestProbe:
    def test_metrics_cover_every_tick(self):
        driver = SimulationDriver(
            build_service(ticks=8), arrivals="poisson:rate=1,seed=2",
            probe="fifo")
        driver.run(3)
        metrics = driver.tick_metrics()
        assert [m.time for m in metrics] == list(range(1, 25))

    def test_percentiles_empty_without_probe(self):
        driver = SimulationDriver(build_service(),
                                  arrivals="poisson:rate=1,seed=2")
        driver.run(2)
        assert driver.tick_metrics() == []
        assert driver.latency_percentiles() == {50.0: 0.0, 95.0: 0.0,
                                                99.0: 0.0}

    def test_probe_work_respects_the_budget(self):
        driver = SimulationDriver(
            build_service(capacity=20.0),
            arrivals="poisson:rate=2,seed=2", probe="fifo")
        driver.run(3)
        assert all(m.work <= 20.0 + 1e-9
                   for m in driver.tick_metrics())


class TestCheckpointing:
    @staticmethod
    def fingerprint(driver):
        """Exact value fingerprint (every float must match bitwise)."""
        return [
            [(r.period, tuple(r.admitted), tuple(r.rejected), r.revenue)
             for r in driver.reports],
            [(m.time, m.shard, m.queued, m.delivered, m.mean_latency,
              m.work) for m in driver.tick_metrics()],
            sorted(driver.latency_percentiles().items()),
            [(i.period, i.query_id, i.owner, i.amount, i.mechanism)
             for s in driver.host.services for i in s.ledger.invoices],
            driver.events_processed,
        ]

    def test_resume_is_byte_identical(self, tmp_path):
        def make():
            return SimulationDriver(
                build_service(mechanism="two-price:seed=3"),
                arrivals="poisson:rate=1.5,seed=6", probe="fifo",
                record=True)

        uninterrupted = make()
        uninterrupted.run(6)

        interrupted = make()
        interrupted.run(2)
        path = tmp_path / "sim.ckpt"
        interrupted.save_checkpoint(path)
        resumed = SimulationDriver.load_checkpoint(path)
        resumed.run(4)

        assert self.fingerprint(uninterrupted) == \
            self.fingerprint(resumed)
        from repro.io import sim_trace_to_dict

        assert json.dumps(sim_trace_to_dict(uninterrupted.trace()),
                          sort_keys=True) == \
            json.dumps(sim_trace_to_dict(resumed.trace()),
                       sort_keys=True)

    def test_snapshot_restores_twice(self, tmp_path):
        driver = SimulationDriver(build_service(),
                                  arrivals="poisson:rate=1,seed=6")
        driver.run(1)
        snapshot = driver.snapshot()
        a = SimulationDriver.restore(snapshot)
        b = SimulationDriver.restore(snapshot)
        a.run(2)
        b.run(2)
        assert self.fingerprint(a) == self.fingerprint(b)

    def test_version_mismatch_rejected(self):
        driver = SimulationDriver(build_service(),
                                  arrivals="poisson:rate=1")
        snapshot = driver.snapshot()
        from dataclasses import replace

        with pytest.raises(ValidationError):
            SimulationDriver.restore(replace(snapshot, version=99))

    def test_snapshot_requires_every_state_field(self):
        from repro.sim.driver import SimSnapshot

        with pytest.raises(ValidationError):
            SimSnapshot(version=1, state={"clock": 0.0})

    def test_cluster_resume_is_byte_identical(self, tmp_path):
        def make():
            return SimulationDriver(
                build_cluster(), arrivals="poisson:rate=2,seed=6",
                batch=True)

        uninterrupted = make()
        uninterrupted.run(5)
        interrupted = make()
        interrupted.run(2)
        path = tmp_path / "cluster-sim.ckpt"
        interrupted.save_checkpoint(path)
        resumed = SimulationDriver.load_checkpoint(path)
        resumed.run(3)
        a = [(type(r).__name__, r.period, r.total_revenue)
             for r in uninterrupted.reports]
        b = [(type(r).__name__, r.period, r.total_revenue)
             for r in resumed.reports]
        assert a == b
        assert getattr(resumed.host, "batch", None) is True


class TestBuilderIntegration:
    def test_build_simulation_wires_arrivals_probe_and_recording(self):
        driver = (ServiceBuilder()
                  .with_sources(SyntheticStream("s", rate=5.0, seed=0))
                  .with_capacity(40.0)
                  .with_mechanism("CAT")
                  .with_ticks_per_period(10)
                  .with_arrivals("poisson:rate=1,seed=2")
                  .with_scheduler("longest-queue-first")
                  .build_simulation(record=True))
        assert driver.probes is not None
        assert driver.probes[0].engine.policy.name == \
            "longest-queue-first"
        driver.run(2)
        assert len(driver.trace().entries) > 0

    def test_build_rejects_open_system_settings(self):
        builder = (ServiceBuilder()
                   .with_sources(SyntheticStream("s", rate=5.0))
                   .with_capacity(40.0)
                   .with_mechanism("CAT")
                   .with_subscriptions())
        with pytest.raises(ValidationError):
            builder.build()

    def test_config_scheduler_is_validated_and_adopted(self):
        from repro.service import ServiceConfig

        with pytest.raises(KeyError):
            ServiceConfig(capacity=10.0, scheduler="warp-speed")
        config = ServiceConfig(capacity=10.0, scheduler="fifo")
        assert config.scheduler_spec().name == "fifo"
        assert config.with_scheduler("round-robin").scheduler == \
            "round-robin"

    def test_unwrappable_host_rejected(self):
        with pytest.raises(ValidationError):
            SimulationDriver(object())
