"""Deterministic ordering of the simulation event queue."""

import copy
import pickle

import pytest

from repro.dsms.operators import SelectOperator
from repro.dsms.plan import ContinuousQuery
from repro.sim.events import (
    ArrivalEvent,
    EventQueue,
    ExpiryEvent,
    PeriodEvent,
    RenewalEvent,
    TickEvent,
)
from repro.utils.validation import ValidationError


def _query(qid="q1"):
    op = SelectOperator(f"sel_{qid}", "s", lambda t: True)
    return ContinuousQuery(qid, (op,), sink_id=op.op_id, bid=1.0)


class TestOrdering:
    def test_time_orders_first(self):
        queue = EventQueue()
        queue.push(PeriodEvent(time=10.0, period=2))
        queue.push(PeriodEvent(time=5.0, period=1))
        assert queue.pop().period == 1
        assert queue.pop().period == 2

    def test_lifecycle_priority_at_equal_times(self):
        queue = EventQueue()
        queue.push(PeriodEvent(time=5.0, period=1))
        queue.push(ArrivalEvent(time=5.0, query=_query()))
        queue.push(RenewalEvent(time=5.0, query=_query("q2")))
        queue.push(ExpiryEvent(time=5.0, query_id="q3"))
        queue.push(TickEvent(time=5.0))
        kinds = [queue.pop().kind for _ in range(5)]
        assert kinds == ["tick", "expiry", "renewal", "arrival",
                        "period"]

    def test_stream_index_merges_same_time_arrivals(self):
        queue = EventQueue()
        queue.push(ArrivalEvent(time=1.0, query=_query("b"), stream=1),
                   stream=1)
        queue.push(ArrivalEvent(time=1.0, query=_query("a"), stream=0),
                   stream=0)
        assert queue.pop().query.query_id == "a"
        assert queue.pop().query.query_id == "b"

    def test_sequence_breaks_remaining_ties_fifo(self):
        queue = EventQueue()
        queue.push(ArrivalEvent(time=1.0, query=_query("first")))
        queue.push(ArrivalEvent(time=1.0, query=_query("second")))
        assert queue.pop().query.query_id == "first"
        assert queue.pop().query.query_id == "second"

    def test_sequence_survives_copy_and_pickle(self):
        queue = EventQueue()
        queue.push(TickEvent(time=1.0))
        queue.pop()
        restored = pickle.loads(pickle.dumps(copy.deepcopy(queue)))
        restored.push(TickEvent(time=2.0))
        assert restored._sequence == 2


class TestQueueApi:
    def test_peek_and_next_time(self):
        queue = EventQueue()
        assert queue.peek() is None
        assert queue.next_time() is None
        queue.push(TickEvent(time=3.0))
        assert queue.peek().time == 3.0
        assert queue.next_time() == 3.0
        assert len(queue) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(ValidationError):
            EventQueue().pop()

    def test_events_listing_is_sorted_and_non_destructive(self):
        queue = EventQueue()
        queue.push(PeriodEvent(time=2.0, period=1))
        queue.push(TickEvent(time=1.0))
        listed = queue.events()
        assert [e.kind for e in listed] == ["tick", "period"]
        assert len(queue) == 2


class TestValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValidationError):
            TickEvent(time=-1.0)

    def test_arrival_needs_a_query(self):
        with pytest.raises(ValidationError):
            ArrivalEvent(time=1.0)

    def test_renewal_needs_a_query(self):
        with pytest.raises(ValidationError):
            RenewalEvent(time=1.0)
