"""The ``python -m repro sim`` subcommand."""

import json

import pytest

from repro.__main__ import _parse_categories, main
from repro.utils.validation import ValidationError

FAST_NO_ARRIVALS = ["--periods", "3", "--ticks", "5", "--rate", "2"]
FAST = [*FAST_NO_ARRIVALS, "--arrivals", "poisson:rate=1"]


class TestSim:
    def test_open_system_run(self, capsys):
        assert main(["sim", *FAST]) == 0
        out = capsys.readouterr().out
        assert "Open-system simulation" in out
        assert "re-auction" in out
        assert "events processed" in out

    def test_subscriptions_with_probe(self, capsys):
        assert main(["sim", *FAST, "--subscriptions",
                     "--scheduler", "fifo"]) == 0
        out = capsys.readouterr().out
        assert "subscriptions" in out
        assert "probe:" in out
        assert "p95" in out

    def test_custom_categories_imply_subscriptions(self, capsys):
        assert main(["sim", *FAST, "--categories",
                     "short=1:0.6,long=2:0.4"]) == 0
        assert "subscriptions" in capsys.readouterr().out

    def test_record_then_replay_matches(self, tmp_path, capsys):
        trace_path = tmp_path / "run.trace.json"
        assert main(["sim", *FAST, "--subscriptions",
                     "--record", str(trace_path)]) == 0
        recorded = capsys.readouterr().out
        document = json.loads(trace_path.read_text())
        assert document["schema"] == "repro/sim-trace"

        # --replay replaces the workload, so --arrivals must go.
        assert main(["sim", *FAST, "--subscriptions",
                     "--replay", str(trace_path)]) == 2
        assert "repro: error:" in capsys.readouterr().err
        assert main(["sim", *FAST_NO_ARRIVALS, "--subscriptions",
                     "--replay", str(trace_path)]) == 0
        replayed = capsys.readouterr().out

        def table_lines(text):
            return [line for line in text.splitlines()
                    if line.strip() and line.split()[0].isdigit()]

        assert table_lines(recorded) == table_lines(replayed)

    def test_recorded_traces_are_pickle_free_and_wire_safe(
            self, tmp_path, capsys):
        """CLI recordings never fall back to the pickle encoding.

        The CLI's synthetic workloads are all single-select plans over
        the public ``pass_all`` predicate, so every recorded entry
        must use the compact ``'select'`` encoding — and therefore
        round-trip through the gateway wire codec with its default
        pickle-refusing posture.
        """
        from repro.io import (
            ServeRequest,
            serve_request_from_dict,
            serve_request_to_dict,
        )
        from repro.sim.trace import decode_query

        trace_path = tmp_path / "run.trace.json"
        assert main(["sim", *FAST, "--subscriptions",
                     "--record", str(trace_path)]) == 0
        capsys.readouterr()
        document = json.loads(trace_path.read_text())
        arrivals = document["arrivals"]
        assert arrivals, "recording produced no arrivals"
        plans = {entry["query"]["plan"] for entry in arrivals}
        assert plans == {"select"}

        # Every recorded plan survives the gateway boundary without
        # allow_pickle (the default for untrusted clients).
        for entry in arrivals:
            query = decode_query(entry["query"])
            wire = serve_request_to_dict(
                ServeRequest(op="submit", query=query))
            parsed = serve_request_from_dict(wire)
            assert parsed.query.query_id == entry["query"]["id"]

    def test_checkpoint_resume_continues_the_run(self, tmp_path,
                                                 capsys):
        ckpt = tmp_path / "sim.ckpt"
        assert main(["sim", *FAST, "--checkpoint", str(ckpt)]) == 0
        capsys.readouterr()
        assert main(["sim", "--periods", "2", "--resume",
                     str(ckpt)]) == 0
        out = capsys.readouterr().out
        # Resumed boundaries continue the numbering (4 and 5).
        assert any(line.split()[:1] == ["4"]
                   for line in out.splitlines())
        assert any(line.split()[:1] == ["5"]
                   for line in out.splitlines())

    def test_cluster_mode_with_stream_routing(self, capsys):
        assert main(["sim", "--periods", "2", "--ticks", "4",
                     "--shards", "2", "--route", "stream",
                     "--arrivals", "poisson:rate=1,prefix=s0",
                     "--arrivals", "poisson:rate=1,prefix=s1",
                     "--batch"]) == 0
        assert "2 shard(s)" in capsys.readouterr().out

    def test_resume_rejects_mode_changing_flags(self, tmp_path,
                                                capsys):
        ckpt = tmp_path / "sim.ckpt"
        assert main(["sim", *FAST, "--checkpoint", str(ckpt)]) == 0
        capsys.readouterr()
        assert main(["sim", "--periods", "1", "--resume", str(ckpt),
                     "--subscriptions", "--shards", "3"]) == 2
        message = capsys.readouterr().err
        assert "--subscriptions" in message
        assert "--shards" in message
        # Workload settings are conflicts too, not silent no-ops.
        assert main(["sim", "--periods", "1", "--resume", str(ckpt),
                     "--mechanism", "CAF", "--capacity", "999"]) == 2
        message = capsys.readouterr().err
        assert "--mechanism" in message
        assert "--capacity" in message

    def test_batch_requires_a_real_cluster(self, capsys):
        assert main(["sim", *FAST, "--batch"]) == 2
        assert "--shards" in capsys.readouterr().err
        assert main(["sim", *FAST, "--batch", "--shards", "2",
                     "--subscriptions"]) == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_resume_rejects_record_on_non_recording_checkpoint(
            self, tmp_path, capsys):
        ckpt = tmp_path / "sim.ckpt"
        assert main(["sim", *FAST, "--checkpoint", str(ckpt)]) == 0
        capsys.readouterr()
        assert main(["sim", "--periods", "1", "--resume", str(ckpt),
                     "--record", str(tmp_path / "t.json")]) == 2
        assert "not recording" in capsys.readouterr().err

    def test_bad_spec_strings_exit_2_naming_the_spec(self, capsys):
        cases = [
            (["sim", *FAST_NO_ARRIVALS, "--arrivals", "nope:x=1"],
             "--arrivals 'nope:x=1'"),
            (["sim", *FAST, "--scheduler", "warp"],
             "--scheduler 'warp'"),
            (["sim", *FAST, "--backend", "gpu"], "--backend 'gpu'"),
            (["sim", *FAST, "--mechanism", "VCG"],
             "--mechanism 'VCG'"),
            (["sim", *FAST, "--shards", "2", "--placement", "pin"],
             "--placement 'pin'"),
        ]
        for argv, needle in cases:
            assert main(argv) == 2, argv
            err = capsys.readouterr().err
            assert err.count("\n") == 1, err
            assert err.startswith("repro: error:"), err
            assert needle in err, err

    def test_multiple_arrivals_get_distinct_default_prefixes(
            self, capsys):
        assert main(["sim", "--periods", "2", "--ticks", "4",
                     "--shards", "2", "--route", "stream",
                     "--arrivals", "poisson:rate=1",
                     "--arrivals", "poisson:rate=1"]) == 0
        assert "2 shard(s)" in capsys.readouterr().out

    def test_seed_defaults_into_arrival_spec(self, capsys):
        def deterministic(text):
            # Drop the wall-clock events/sec line.
            return [line for line in text.splitlines()
                    if not line.startswith("events processed")]

        assert main(["sim", *FAST, "--seed", "5"]) == 0
        first = capsys.readouterr().out
        assert main(["sim", *FAST, "--seed", "5"]) == 0
        second = capsys.readouterr().out
        assert deterministic(first) == deterministic(second)


class TestCategoryParsing:
    def test_parses_pairs(self):
        categories = _parse_categories("day=1:0.4,week=7:0.35")
        assert [c.name for c in categories] == ["day", "week"]
        assert categories[0].length_days == 1
        assert categories[1].capacity_fraction == 0.35

    def test_rejects_malformed_items(self):
        with pytest.raises(ValidationError):
            _parse_categories("day:1=0.4")
        with pytest.raises(ValidationError):
            _parse_categories("day")

    def test_rejects_overflowing_fractions_naming_them(self):
        with pytest.raises(ValidationError) as excinfo:
            _parse_categories("a=1:0.8,b=1:0.9")
        assert "a=0.8" in str(excinfo.value)
