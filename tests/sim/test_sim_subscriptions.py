"""Subscription lifecycles: the Hypothesis invariant suite.

Pins the four lifecycle guarantees of the open-system runtime:

1. capacity is reclaimed *exactly* on expiry (shared operators only
   once nobody holds them, engine runs exactly the active book);
2. no double billing across renewals (one invoice per admission,
   never two for the same query in one period);
3. per-category auctions stay bid-strategyproof (misreporting never
   beats truth within a category);
4. a replayed trace reproduces the live run byte-identically.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.subscriptions import SubscriptionCategory
from repro.dsms.operators import SelectOperator
from repro.dsms.plan import ContinuousQuery
from repro.dsms.streams import SyntheticStream
from repro.service import ServiceBuilder
from repro.sim import (
    SimulationDriver,
    SubscriptionManager,
    SubscriptionOptions,
    TraceArrivals,
)
from repro.utils.validation import ValidationError

lifecycle_settings = settings(max_examples=30, deadline=None)


def _keep(_t):
    return True


def build_service(capacity=35.0, rate=4.0, ticks=8, mechanism="CAT"):
    return (ServiceBuilder()
            .with_sources(SyntheticStream("s", rate=rate, seed=2))
            .with_capacity(capacity)
            .with_mechanism(mechanism)
            .with_ticks_per_period(ticks)
            .build())


def category_mixes():
    return st.sampled_from([
        (SubscriptionCategory("day", 1, 0.5),
         SubscriptionCategory("week", 3, 0.5)),
        (SubscriptionCategory("day", 1, 0.4),
         SubscriptionCategory("week", 2, 0.35),
         SubscriptionCategory("month", 4, 0.25)),
        (SubscriptionCategory("only", 2, 1.0),),
    ])


def plan(qid, cost=1.0, bid=10.0, valuation=None, owner=None,
         op_id=None):
    op = SelectOperator(op_id or f"sel_{qid}", "s", _keep,
                        cost_per_tuple=cost, selectivity_estimate=1.0)
    return ContinuousQuery(qid, (op,), sink_id=op.op_id, bid=bid,
                           valuation=valuation, owner=owner)


# ----------------------------------------------------------------------
# 1. Capacity reclaimed exactly on expiry
# ----------------------------------------------------------------------


class TestCapacityReclamation:
    def test_shared_operator_reclaimed_only_when_last_holder_expires(self):
        service = build_service(capacity=100.0, rate=4.0)
        options = SubscriptionOptions(
            categories=(SubscriptionCategory("day", 1, 0.5),
                        SubscriptionCategory("week", 3, 0.5)))
        manager = SubscriptionManager(options, service.mechanism)
        rates = {"s": 4.0}
        shared = plan("day1", cost=2.0, bid=30.0, op_id="shared_op")
        twin = plan("week1", cost=2.0, bid=30.0, op_id="shared_op")
        solo = plan("day2", cost=1.0, bid=20.0)
        manager.run_period(service, 1, [
            (shared, "day"), (twin, "week"), (solo, "day")])
        assert set(manager.active) == {"day1", "week1", "day2"}
        # shared_op counted once: 2×4 + 1×4
        assert manager.held_capacity(rates) == pytest.approx(12.0)

        # The day subscriptions expire; shared_op is still held by the
        # week subscription, so only solo's operator is reclaimed from
        # the shared one's point of view.
        _entries, reclaimed = manager.expire(service, ["day2"], rates)
        assert reclaimed == pytest.approx(4.0)
        _entries, reclaimed = manager.expire(service, ["day1"], rates)
        assert reclaimed == pytest.approx(0.0)  # twin still holds it
        assert manager.held_capacity(rates) == pytest.approx(8.0)
        _entries, reclaimed = manager.expire(service, ["week1"], rates)
        assert reclaimed == pytest.approx(8.0)
        assert manager.held_capacity(rates) == 0.0
        assert service.engine.admitted_ids == set()

    def test_expiring_unknown_subscription_raises(self):
        service = build_service()
        manager = SubscriptionManager(SubscriptionOptions(),
                                      service.mechanism)
        with pytest.raises(ValidationError):
            manager.expire(service, ["ghost"], {"s": 4.0})

    @given(seed=st.integers(0, 500), categories=category_mixes())
    @lifecycle_settings
    def test_engine_runs_exactly_the_active_book(self, seed, categories):
        service = build_service()
        driver = SimulationDriver(
            service,
            arrivals=f"poisson:rate=1.2,seed={seed}",
            subscriptions=SubscriptionOptions(categories=categories,
                                              seed=seed))
        for _ in range(4):
            driver.run(1)
            manager = driver.managers[0]
            assert service.engine.admitted_ids == set(manager.active)
            # Held capacity is exactly the union load of the active
            # book, recomputed independently.
            rates = {"s": 4.0}
            # Union load recomputed independently: each active plan is
            # one select whose load is cost × stream rate, deduplicated
            # by operator id.
            loads_by_op = {
                entry.query.operators[0].op_id:
                    entry.query.operators[0].cost_per_tuple * 4.0
                for entry in manager.active.values()
            }
            assert manager.held_capacity(rates) == pytest.approx(
                sum(loads_by_op.values()))


# ----------------------------------------------------------------------
# 2. No double billing across renewals
# ----------------------------------------------------------------------


class TestBilling:
    @given(seed=st.integers(0, 500), categories=category_mixes())
    @lifecycle_settings
    def test_one_invoice_per_admission_never_two_per_period(
            self, seed, categories):
        service = build_service()
        driver = SimulationDriver(
            service,
            arrivals=f"poisson:rate=1.5,seed={seed}",
            subscriptions=SubscriptionOptions(categories=categories,
                                              seed=seed))
        reports = driver.run(5)
        invoices = service.ledger.invoices
        # Never two invoices for the same query in the same period.
        keys = [(i.period, i.query_id) for i in invoices]
        assert len(keys) == len(set(keys))
        # Exactly one invoice per admission event (renewals re-bill
        # only when re-admitted).
        admissions = [(r.period, qid) for r in reports
                      for qid in r.admitted]
        assert sorted(admissions) == sorted(keys)
        # Ledger total equals the reported revenue.
        assert service.total_revenue() == pytest.approx(
            sum(r.revenue for r in reports))

    @given(seed=st.integers(0, 200))
    @lifecycle_settings
    def test_invoices_tag_the_category(self, seed):
        service = build_service()
        driver = SimulationDriver(
            service, arrivals=f"poisson:rate=1.5,seed={seed}",
            subscriptions=True)
        driver.run(4)
        for invoice in service.ledger.invoices:
            assert "@" in invoice.mechanism
            assert invoice.mechanism.split("@")[1] in (
                "day", "week", "month")

    def test_max_renewals_bounds_resubmission(self):
        service = build_service(capacity=100.0)
        driver = SimulationDriver(
            service, arrivals="poisson:rate=0.4,seed=3,limit=4",
            subscriptions=SubscriptionOptions(
                categories=(SubscriptionCategory("day", 1, 1.0),),
                max_renewals=1, seed=3))
        reports = driver.run(8)
        renewed = [qid for r in reports for qid in r.renewed]
        # Each query renews at most max_renewals times.
        from collections import Counter

        assert all(count <= 1 for count in Counter(renewed).values())

    def test_no_renew_lets_subscriptions_lapse(self):
        service = build_service(capacity=100.0)
        driver = SimulationDriver(
            service, arrivals="poisson:rate=0.5,seed=3,limit=5",
            subscriptions=SubscriptionOptions(
                categories=(SubscriptionCategory("day", 1, 1.0),),
                auto_renew=False, seed=3))
        reports = driver.run(8)
        assert all(not r.renewed for r in reports)
        assert not driver.managers[0].active  # everything lapsed


# ----------------------------------------------------------------------
# 3. Per-category strategyproofness
# ----------------------------------------------------------------------


def _category_utility(requests, manipulator_bid):
    """The manipulator's utility when bidding *manipulator_bid*."""
    service = build_service(capacity=30.0, mechanism="CAT")
    manager = SubscriptionManager(
        SubscriptionOptions(
            categories=(SubscriptionCategory("day", 1, 0.6),
                        SubscriptionCategory("week", 2, 0.4)),
            mechanism="CAT"),
        service.mechanism)
    pending = []
    valuation = None
    for qid, cost, bid, category, is_manipulator in requests:
        if is_manipulator:
            valuation = bid
            pending.append((plan(qid, cost=cost, bid=manipulator_bid,
                                 valuation=bid), category))
        else:
            pending.append((plan(qid, cost=cost, bid=bid), category))
    result = manager.run_period(service, 1, pending)
    manipulator = next(r for r in requests if r[4])
    qid, category = manipulator[0], manipulator[3]
    outcome = result.outcomes.get(category)
    if outcome is None or not outcome.is_winner(qid):
        return 0.0
    return valuation - outcome.payment(qid)


@st.composite
def request_sets(draw):
    count = draw(st.integers(3, 8))
    requests = []
    manipulator_index = draw(st.integers(0, count - 1))
    for index in range(count):
        cost = draw(st.floats(0.5, 3.0, allow_nan=False))
        bid = draw(st.floats(1.0, 50.0, allow_nan=False))
        category = draw(st.sampled_from(["day", "week"]))
        requests.append((f"q{index}", round(cost, 2), round(bid, 2),
                         category, index == manipulator_index))
    lie = draw(st.floats(0.0, 80.0, allow_nan=False))
    return requests, round(lie, 2)


class TestStrategyproofness:
    @given(request_sets())
    @lifecycle_settings
    def test_misreporting_never_beats_truth_within_a_category(
            self, generated):
        requests, lie = generated
        manipulator = next(r for r in requests if r[4])
        truthful = _category_utility(requests, manipulator[2])
        lying = _category_utility(requests, lie)
        assert lying <= truthful + 1e-9


# ----------------------------------------------------------------------
# 4. Replayed trace ≡ live run
# ----------------------------------------------------------------------


def _report_fingerprint(reports):
    return [
        (r.period, tuple(r.admitted), tuple(r.rejected),
         tuple(r.expired), tuple(r.renewed), r.revenue,
         r.reclaimed_capacity, r.engine_utilization)
        for r in reports
    ]


class TestTraceReplay:
    @given(seed=st.integers(0, 500), categories=category_mixes(),
           rate=st.sampled_from([0.8, 1.5, 3.0]))
    @lifecycle_settings
    def test_replay_reproduces_the_live_run(self, seed, categories,
                                            rate):
        options = SubscriptionOptions(categories=categories, seed=seed)
        live = SimulationDriver(
            build_service(),
            arrivals=f"poisson:rate={rate},seed={seed}",
            subscriptions=options, record=True)
        live_reports = live.run(4)

        replay = SimulationDriver(
            build_service(),
            arrivals=TraceArrivals(trace=live.trace()),
            subscriptions=options)
        replay_reports = replay.run(4)
        assert _report_fingerprint(live_reports) == \
            _report_fingerprint(replay_reports)

    def test_replay_via_json_file_is_identical(self, tmp_path):
        from repro.io import load_sim_trace, save_sim_trace

        live = SimulationDriver(
            build_service(), arrivals="poisson:rate=1.5,seed=9",
            subscriptions=True, record=True)
        live_reports = live.run(4)
        path = tmp_path / "run.trace.json"
        save_sim_trace(live.trace(), path)

        replay = SimulationDriver(
            build_service(),
            arrivals=TraceArrivals(trace=load_sim_trace(path)),
            subscriptions=True)
        assert _report_fingerprint(live_reports) == \
            _report_fingerprint(replay.run(4))
        # The JSON round-trip preserves every bid/cost bit-exactly.
        document = json.loads(path.read_text())
        assert document["schema"] == "repro/sim-trace"


# ----------------------------------------------------------------------
# Options validation
# ----------------------------------------------------------------------


class TestOptions:
    def test_fraction_overflow_names_categories(self):
        with pytest.raises(ValidationError) as excinfo:
            SubscriptionOptions(categories=(
                SubscriptionCategory("day", 1, 0.7),
                SubscriptionCategory("week", 7, 0.6)))
        assert "day=0.7" in str(excinfo.value)
        assert "week=0.6" in str(excinfo.value)

    def test_mechanism_spec_validated_up_front(self):
        with pytest.raises(KeyError):
            SubscriptionOptions(mechanism="nope")
        with pytest.raises(ValidationError):
            SubscriptionOptions(mechanism=42)

    def test_max_renewals_must_be_non_negative(self):
        with pytest.raises(ValidationError):
            SubscriptionOptions(max_renewals=-1)

    def test_unknown_requested_category_rejected_at_the_driver(self):
        from repro.sim.arrivals import Arrival, ScheduledArrivals
        from repro.sim import SimulationDriver

        service = build_service()
        driver = SimulationDriver(
            service,
            arrivals=ScheduledArrivals([
                Arrival(1.0, plan("q1"), category="decade")]),
            subscriptions=True)
        with pytest.raises(ValidationError) as excinfo:
            driver.run(2)
        assert "decade" in str(excinfo.value)

    def test_assign_category_is_deterministic_per_seed(self):
        service = build_service()
        options = SubscriptionOptions(seed=13)
        a = SubscriptionManager(options, service.mechanism)
        b = SubscriptionManager(options, service.mechanism)
        queries = [plan(f"q{i}") for i in range(20)]
        assert [a.assign_category(q) for q in queries] == \
            [b.assign_category(q) for q in queries]
