"""Golden-report regression: the ClusterReport JSON schema is pinned.

A small fixed-seed cluster run is serialized with
:func:`repro.io.cluster_report_to_dict` and compared byte-for-byte
against a committed fixture.  Any drift — a renamed field, a changed
aggregate, different rounding, a reordered shard list — fails loudly
here instead of silently corrupting downstream archives.

To intentionally evolve the schema, bump
``repro.io.CLUSTER_REPORT_VERSION`` and regenerate the fixture:

    UPDATE_FIXTURES=1 PYTHONPATH=src python -m pytest \
        tests/cluster/test_golden_report.py
"""

import json
import os
import pathlib

import pytest

from repro.cluster import FederatedAdmissionService
from repro.dsms.streams import SyntheticStream
from repro.io import cluster_report_from_dict, cluster_report_to_dict

from tests.strategies import select_query

pytestmark = pytest.mark.cluster

FIXTURE = (pathlib.Path(__file__).parent / "fixtures"
           / "cluster_report.json")


def golden_run():
    """The pinned scenario: 2 shards, CAT, hash placement, 2 periods."""
    cluster = FederatedAdmissionService.build(
        num_shards=2,
        sources=[SyntheticStream("s", rate=4, seed=13, poisson=False)],
        capacity=9.0,
        mechanism="CAT",
        ticks_per_period=5,
        placement="consistent-hash:seed=3",
    )
    # alice's portfolio hashes onto one shard and overflows it; the
    # other shard has spare capacity, so the rebalancer migrates.
    owners = ("alice", "alice", "alice", "bob")
    reports = []
    for period in (1, 2):
        for index in range(4):
            cluster.submit(select_query(
                f"p{period}q{index}", owners[index],
                15.0 * (index + 1) + period, 1.0 + 0.25 * index))
        reports.append(cluster.run_period())
    return reports


def render(reports) -> str:
    return json.dumps([cluster_report_to_dict(r) for r in reports],
                      indent=2, sort_keys=True) + "\n"


def test_cluster_report_matches_committed_fixture():
    rendered = render(golden_run())
    if os.environ.get("UPDATE_FIXTURES"):
        FIXTURE.parent.mkdir(exist_ok=True)
        FIXTURE.write_text(rendered)
    assert FIXTURE.exists(), (
        f"missing fixture {FIXTURE}; regenerate with UPDATE_FIXTURES=1")
    assert rendered == FIXTURE.read_text(), (
        "ClusterReport serialization drifted from the committed "
        "fixture; if the schema change is intentional, bump "
        "CLUSTER_REPORT_VERSION and regenerate with UPDATE_FIXTURES=1")


def test_fixture_round_trips_through_the_parser():
    reports = [cluster_report_from_dict(entry)
               for entry in json.loads(FIXTURE.read_text())]
    assert render(reports) == FIXTURE.read_text()


def test_fixture_exercises_the_interesting_paths():
    """The pinned scenario must cover migration and rejection, or the
    golden file guards less than it claims."""
    payload = json.loads(FIXTURE.read_text())
    assert [entry["period"] for entry in payload] == [1, 2]
    for entry in payload:
        assert entry["schema"] == "repro/cluster-report"
        assert entry["version"] == 1
        assert len(entry["shards"]) == 2
    assert payload[0]["migrations"], "scenario no longer migrates"
    assert any(entry["rejected_load"] > 0 for entry in payload), (
        "scenario no longer rejects load")
    assert sum(entry["total_revenue"] for entry in payload) > 0