"""The ``python -m repro cluster`` subcommand."""

import pytest

from repro.__main__ import main

pytestmark = pytest.mark.cluster


def run_cli(args, capsys):
    assert main(args) == 0
    return capsys.readouterr().out


def test_cluster_simulation_renders_table(capsys):
    out = run_cli(["cluster", "--shards", "3", "--periods", "2",
                   "--ticks", "3", "--seed", "1"], capsys)
    assert "3 shards" in out
    assert "consistent-hash placement" in out
    assert "migrated" in out
    assert "total revenue:" in out


def test_cluster_batch_and_sequential_agree(capsys):
    args = ["cluster", "--shards", "2", "--periods", "2",
            "--ticks", "3", "--seed", "4"]
    sequential = run_cli(args, capsys)
    batch = run_cli(args + ["--batch"], capsys)
    assert sequential == batch


def test_cluster_selection_and_workers_agree_with_default(capsys):
    args = ["cluster", "--shards", "2", "--periods", "2",
            "--ticks", "3", "--seed", "4",
            "--mechanism", "two-price:seed=7"]
    sequential = run_cli(args, capsys)
    pooled_fast = run_cli(
        args + ["--batch", "--selection", "fast",
                "--auction-workers", "4"], capsys)
    assert sequential == pooled_fast


def test_cluster_resume_honors_selection_and_workers(tmp_path, capsys):
    checkpoint = str(tmp_path / "cl.ckpt")
    run_cli(["cluster", "--shards", "2", "--periods", "1",
             "--ticks", "2", "--seed", "3",
             "--checkpoint", checkpoint], capsys)
    reference = run_cli(["cluster", "--periods", "1",
                         "--resume", checkpoint], capsys)
    fast = run_cli(["cluster", "--periods", "1", "--resume", checkpoint,
                    "--selection", "fast", "--batch",
                    "--auction-workers", "2"], capsys)
    assert fast == reference


def test_cluster_placement_spec(capsys):
    out = run_cli(["cluster", "--shards", "2", "--periods", "1",
                   "--ticks", "3", "--placement", "least-loaded"], capsys)
    assert "least-loaded placement" in out


def test_cluster_checkpoint_resume_matches_uninterrupted(
        tmp_path, capsys):
    checkpoint = str(tmp_path / "cluster.ckpt")
    base = ["cluster", "--shards", "2", "--ticks", "3", "--seed", "2"]
    uninterrupted = run_cli(base + ["--periods", "3"], capsys)

    run_cli(base + ["--periods", "2", "--checkpoint", checkpoint], capsys)
    resumed = run_cli(base + ["--periods", "1", "--resume", checkpoint],
                      capsys)
    # The resumed third period reports the same totals.
    assert uninterrupted.splitlines()[-1] == resumed.splitlines()[-1]
    final_row = [line for line in uninterrupted.splitlines()
                 if line.strip().startswith("3")][-1]
    assert final_row in resumed


def test_cluster_no_rebalance_flag(capsys):
    seed = ["cluster", "--shards", "2", "--periods", "2", "--ticks", "3",
            "--capacity", "8", "--seed", "6"]
    with_rebalance = run_cli(seed, capsys)
    without = run_cli(seed + ["--no-rebalance"], capsys)
    assert "migrated" in with_rebalance and "migrated" in without