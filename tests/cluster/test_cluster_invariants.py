"""Property-based invariants of the sharded federation.

The economic guarantees the paper proves for one center must survive
sharding.  Hypothesis drives randomized multi-shard, multi-client,
multi-period workloads through :class:`FederatedAdmissionService` and
checks, for every period:

* **capacity feasibility** — no shard's admitted set (auction winners
  plus migrated-in queries) exceeds its capacity;
* **budget balance** — cluster profit is exactly the sum of shard
  profits, which is exactly what the ledgers invoiced;
* **placement determinism** — the same seed and workload produce the
  same placement and byte-identical cluster reports;
* **no double billing** — each query is invoiced at most once per
  period, and a migrated query is invoiced zero times in the period it
  migrates (migration is free-riding on spare capacity, not a sale).
"""

import json

import pytest
from hypothesis import given, settings

from repro.cluster import FederatedAdmissionService
from repro.dsms.streams import SyntheticStream
from repro.io import cluster_report_to_dict

from tests.strategies import cluster_workloads

pytestmark = pytest.mark.cluster

EPSILON = 1e-6

#: ≥ 100 examples per property (the acceptance bar of this suite).
invariant_settings = settings(max_examples=100, deadline=None)


def build_cluster(workload, rebalance=True):
    return FederatedAdmissionService.build(
        num_shards=workload.num_shards,
        sources=[SyntheticStream("s", rate=workload.rate,
                                 seed=workload.seed, poisson=False)],
        capacity=workload.capacity,
        mechanism="CAT",
        ticks_per_period=3,
        placement=workload.placement,
        rebalance=rebalance,
    )


def run_workload(workload, rebalance=True):
    cluster = build_cluster(workload, rebalance=rebalance)
    reports = cluster.run_periods(workload.submissions)
    return cluster, reports


@given(cluster_workloads())
@invariant_settings
def test_per_shard_capacity_never_exceeded(workload):
    cluster, reports = run_workload(workload)
    for report in reports:
        migrated_load = {}
        for migration in report.migrations:
            migrated_load[migration.target] = (
                migrated_load.get(migration.target, 0.0) + migration.load)
        for index, shard_report in enumerate(report.shard_reports):
            used = shard_report.outcome.used_capacity
            assert used <= workload.capacity + EPSILON
            assert (used + migrated_load.get(index, 0.0)
                    <= workload.capacity + EPSILON)


@given(cluster_workloads())
@invariant_settings
def test_cluster_profit_is_sum_of_shard_profits(workload):
    cluster, reports = run_workload(workload)
    for report in reports:
        assert report.total_revenue == pytest.approx(
            sum(r.revenue for r in report.shard_reports))
    assert cluster.total_revenue() == pytest.approx(
        sum(report.total_revenue for report in reports))
    assert cluster.total_revenue() == pytest.approx(
        sum(shard.ledger.total_revenue() for shard in cluster.shards))


@given(cluster_workloads())
@invariant_settings
def test_placement_is_deterministic_given_a_seed(workload):
    first = build_cluster(workload)
    second = build_cluster(workload)
    first_reports, second_reports = [], []
    for batch in workload.submissions:
        first_placed = [first.submit(q) for q in batch]
        second_placed = [second.submit(q) for q in batch]
        assert first_placed == second_placed
        first_reports.append(first.run_period())
        second_reports.append(second.run_period())
    for ours, theirs in zip(first_reports, second_reports):
        assert (json.dumps(cluster_report_to_dict(ours), sort_keys=True)
                == json.dumps(cluster_report_to_dict(theirs),
                              sort_keys=True))


@given(cluster_workloads())
@invariant_settings
def test_migrated_query_is_never_double_billed(workload):
    cluster, reports = run_workload(workload)
    for report in reports:
        billed = [
            invoice.query_id
            for shard in cluster.shards
            for invoice in shard.ledger.invoices
            if invoice.period == report.period
        ]
        assert len(billed) == len(set(billed)), (
            f"period {report.period} billed a query twice: {billed}")
        for query_id in report.migrated:
            assert billed.count(query_id) == 0, (
                f"migrated query {query_id} was billed in the period "
                f"it migrated")


@given(cluster_workloads(max_shards=3, max_periods=2))
@invariant_settings
def test_batch_path_matches_sequential_path(workload):
    sequential, _ = run_workload(workload)
    batch = build_cluster(workload)
    batch_reports = batch.run_periods(workload.submissions, batch=True)
    for ours, theirs in zip(sequential.reports, batch_reports):
        assert (json.dumps(cluster_report_to_dict(ours), sort_keys=True)
                == json.dumps(cluster_report_to_dict(theirs),
                              sort_keys=True))