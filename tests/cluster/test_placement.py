"""Unit tests for the placement policies and their registry."""

import copy

import pytest

from repro.cluster import (
    ConsistentHashPlacement,
    LeastLoadedPlacement,
    PlacementPolicy,
    RoundRobinPlacement,
    ShardStatus,
    register_placement,
    registered_placements,
    resolve_placement,
)
from repro.utils.validation import ValidationError

from tests.strategies import select_query

pytestmark = pytest.mark.cluster


def statuses(*counts, capacity=10.0):
    """Shard statuses with the given (pending, admitted) pairs."""
    return tuple(
        ShardStatus(index=i, capacity=capacity,
                    pending_count=pending, admitted_count=admitted)
        for i, (pending, admitted) in enumerate(counts)
    )


def q(qid, owner=None, bid=10.0):
    return select_query(qid, owner or qid, bid, 1.0)


class TestRoundRobin:
    def test_cycles_through_shards(self):
        policy = RoundRobinPlacement()
        shards = statuses((0, 0), (0, 0), (0, 0))
        chosen = [policy.choose(q(f"q{i}"), shards) for i in range(7)]
        assert chosen == [0, 1, 2, 0, 1, 2, 0]

    def test_cursor_survives_deep_copy(self):
        policy = RoundRobinPlacement()
        shards = statuses((0, 0), (0, 0))
        policy.choose(q("q0"), shards)
        clone = copy.deepcopy(policy)
        assert clone.choose(q("q1"), shards) == policy.choose(q("q1"), shards)


class TestLeastLoaded:
    def test_picks_emptiest_shard(self):
        policy = LeastLoadedPlacement()
        assert policy.choose(q("a"), statuses((3, 1), (0, 1), (2, 0))) == 1

    def test_counts_pending_plus_admitted(self):
        policy = LeastLoadedPlacement()
        assert policy.choose(q("a"), statuses((0, 5), (4, 0), (1, 2))) == 2

    def test_ties_break_to_lowest_index(self):
        policy = LeastLoadedPlacement()
        assert policy.choose(q("a"), statuses((1, 1), (2, 0), (0, 2))) == 0


class TestConsistentHash:
    def test_same_client_always_lands_on_same_shard(self):
        policy = ConsistentHashPlacement(seed=7)
        shards = statuses(*[(0, 0)] * 4)
        targets = {
            policy.choose(q(f"q{i}", owner="alice"), shards)
            for i in range(20)
        }
        assert len(targets) == 1

    def test_deterministic_across_instances(self):
        shards = statuses(*[(0, 0)] * 5)
        first = ConsistentHashPlacement(seed=3)
        second = ConsistentHashPlacement(seed=3)
        for i in range(30):
            query = q(f"q{i}", owner=f"client{i}")
            assert first.choose(query, shards) == second.choose(query, shards)

    def test_spreads_clients_across_shards(self):
        policy = ConsistentHashPlacement(seed=0)
        shards = statuses(*[(0, 0)] * 4)
        targets = {
            policy.choose(q(f"q{i}", owner=f"client{i}"), shards)
            for i in range(64)
        }
        assert len(targets) == 4  # 64 clients cover a 4-shard ring

    def test_unowned_query_keys_on_query_id(self):
        policy = ConsistentHashPlacement(seed=0)
        shards = statuses(*[(0, 0)] * 4)
        query = select_query("anon", None, 1.0, 1.0)
        assert query.owner is None
        assert policy.choose(query, shards) == policy.choose(query, shards)

    def test_growing_the_ring_moves_a_minority_of_clients(self):
        policy = ConsistentHashPlacement(seed=1)
        small = statuses(*[(0, 0)] * 4)
        large = statuses(*[(0, 0)] * 5)
        moved = sum(
            policy.choose(q(f"x{i}", owner=f"c{i}"), small)
            != policy.choose(q(f"x{i}", owner=f"c{i}"), large)
            for i in range(200)
        )
        assert 0 < moved < 100  # ~1/5 expected; far below half

    def test_replicas_validated(self):
        with pytest.raises(ValidationError, match="replicas"):
            ConsistentHashPlacement(replicas=0)


class TestRegistryAndSpecs:
    def test_policy_instance_passes_through(self):
        policy = RoundRobinPlacement()
        assert resolve_placement(policy) is policy

    def test_spec_strings(self):
        assert isinstance(resolve_placement("round-robin"),
                          RoundRobinPlacement)
        assert isinstance(resolve_placement("least-loaded"),
                          LeastLoadedPlacement)
        policy = resolve_placement("consistent-hash:seed=9,replicas=16")
        assert isinstance(policy, ConsistentHashPlacement)
        assert policy.seed == 9
        assert policy.replicas == 16

    def test_unknown_policy_lists_known(self):
        with pytest.raises(ValidationError, match="consistent-hash"):
            resolve_placement("no-such-policy")

    def test_unknown_parameter_lists_accepted(self):
        with pytest.raises(ValidationError, match="accepted parameters"):
            resolve_placement("consistent-hash:volume=11")
        with pytest.raises(ValidationError, match="round-robin"):
            resolve_placement("round-robin:seed=1")

    def test_unresolvable_value_rejected(self):
        with pytest.raises(ValidationError, match="PlacementPolicy"):
            resolve_placement(42)

    def test_custom_policy_registration(self):
        class AlwaysZero(PlacementPolicy):
            name = "always-zero"

            def choose(self, query, shards):
                return 0

        register_placement("always-zero", AlwaysZero)
        try:
            assert "always-zero" in registered_placements()
            assert isinstance(resolve_placement("always-zero"), AlwaysZero)
        finally:
            from repro.cluster import placement as placement_module

            placement_module._PLACEMENTS.pop("always-zero", None)