"""File round trip and validation of the cluster-report schema."""

import json

import pytest

from repro.cluster import FederatedAdmissionService
from repro.dsms.streams import SyntheticStream
from repro.io import (
    cluster_report_from_dict,
    cluster_report_to_dict,
    load_cluster_report,
    save_cluster_report,
)
from repro.utils.validation import ValidationError

from tests.strategies import select_query

pytestmark = pytest.mark.cluster


@pytest.fixture
def report():
    cluster = FederatedAdmissionService.build(
        num_shards=2,
        sources=[SyntheticStream("s", rate=4, seed=2, poisson=False)],
        capacity=8.0,
        mechanism="CAT",
        ticks_per_period=4,
        placement="consistent-hash:seed=3",
    )
    for i in range(4):
        cluster.submit(select_query(f"q{i}", "alice", 40.0 - i, 1.0))
    return cluster.run_period()


def test_file_round_trip_is_lossless(tmp_path, report):
    path = tmp_path / "cluster_report.json"
    save_cluster_report(report, path)
    again = load_cluster_report(path)
    assert (json.dumps(cluster_report_to_dict(again), sort_keys=True)
            == json.dumps(cluster_report_to_dict(report), sort_keys=True))
    assert again.total_revenue == report.total_revenue
    assert again.shard_capacities == report.shard_capacities
    assert again.migrations == report.migrations
    assert again.utilization == report.utilization


def test_rejects_wrong_schema_and_version(report):
    document = cluster_report_to_dict(report)
    with pytest.raises(ValidationError, match="cluster-report"):
        cluster_report_from_dict({**document, "schema": "repro/other"})
    with pytest.raises(ValidationError, match="version"):
        cluster_report_from_dict({**document, "version": 99})
    with pytest.raises(ValidationError, match="expected an object"):
        cluster_report_from_dict([document])


def test_rejects_missing_fields(report):
    document = cluster_report_to_dict(report)
    document.pop("shard_capacities")
    with pytest.raises(ValidationError, match="malformed"):
        cluster_report_from_dict(document)