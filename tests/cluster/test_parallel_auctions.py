"""The thread-pooled batch auction path: parallel == sequential.

``run_period_all`` dispatches independent shard auctions across a
thread pool (auctions are side-effect-free until settlement); these
tests pin that the pooled path produces byte-identical cluster reports
to the sequential :meth:`run_period` — including for randomized
mechanisms, whose per-shard RNG streams must be consumed in shard
order either way — and that auction failures still roll back cleanly.
"""

import json

import pytest
from hypothesis import given, settings

from repro.cluster import FederatedAdmissionService
from repro.core.mechanism import Mechanism, register_mechanism
from repro.dsms.streams import SyntheticStream
from repro.io import cluster_report_to_dict

from tests.strategies import cluster_workloads, select_query

pytestmark = pytest.mark.cluster


def build_cluster(mechanism="two-price:seed=7", num_shards=3,
                  capacity=8.0, selection=None, auction_workers=None):
    return FederatedAdmissionService.build(
        num_shards=num_shards,
        sources=[SyntheticStream("s", rate=4, seed=5, poisson=False)],
        capacity=capacity,
        mechanism=mechanism,
        ticks_per_period=3,
        selection=selection,
        placement="round-robin",
        auction_workers=auction_workers,
    )


def submissions(period, count=7):
    return [
        select_query(f"p{period}q{i}", owner=f"c{i % 3}",
                     bid=10.0 + 3 * i, cost=0.5 + 0.25 * i)
        for i in range(count)
    ]


def report_bytes(report):
    return json.dumps(cluster_report_to_dict(report), sort_keys=True)


def run_periods(cluster, periods, batch):
    reports = []
    for period in range(1, periods + 1):
        for query in submissions(period):
            cluster.submit(query)
        reports.append(cluster.run_period_all() if batch
                       else cluster.run_period())
    return reports


class TestParallelEqualsSequential:
    @pytest.mark.parametrize("selection", [None, "fast"])
    def test_randomized_mechanism_reports_identical(self, selection):
        sequential = build_cluster(selection=selection)
        pooled = build_cluster(selection=selection)
        for left, right in zip(run_periods(sequential, 3, batch=False),
                               run_periods(pooled, 3, batch=True)):
            assert report_bytes(left) == report_bytes(right)
        assert sequential.total_revenue() == pooled.total_revenue()

    def test_single_worker_pool_identical_to_wide_pool(self):
        narrow = build_cluster(auction_workers=1)
        wide = build_cluster(auction_workers=8)
        for left, right in zip(run_periods(narrow, 2, batch=True),
                               run_periods(wide, 2, batch=True)):
            assert report_bytes(left) == report_bytes(right)

    def test_shared_mechanism_object_stays_sequential(self):
        """Shards sharing one live mechanism draw RNG in shard order."""
        from repro.core import TwoPrice

        sequential = build_cluster(mechanism=TwoPrice(seed=3))
        pooled = build_cluster(mechanism=TwoPrice(seed=3))
        assert len({id(s.mechanism) for s in pooled.shards}) == 1
        for left, right in zip(run_periods(sequential, 2, batch=False),
                               run_periods(pooled, 2, batch=True)):
            assert report_bytes(left) == report_bytes(right)

    @given(workload=cluster_workloads(max_periods=2))
    @settings(max_examples=25, deadline=None)
    def test_property_batch_equals_sequential_with_fast_selection(
            self, workload):
        def build(selection):
            return FederatedAdmissionService.build(
                num_shards=workload.num_shards,
                sources=[SyntheticStream(
                    "s", rate=workload.rate, seed=workload.seed)],
                capacity=workload.capacity,
                mechanism="two-price:seed=13",
                ticks_per_period=2,
                selection=selection,
                placement=workload.placement,
            )

        sequential = build("reference")
        pooled = build("fast")
        for batch in workload.submissions:
            for query in batch:
                sequential.submit(query)
                pooled.submit(query)
            left = sequential.run_period()
            right = pooled.run_period_all()
            assert report_bytes(left) == report_bytes(right)


class _Explosive(Mechanism):
    name = "explosive"

    def _select(self, instance):
        raise RuntimeError("auction blew up")


class TestFailurePropagation:
    def test_auction_failure_rolls_back_and_is_retryable(self):
        register_mechanism("explosive-parallel", _Explosive)
        cluster = build_cluster(mechanism="explosive-parallel",
                                num_shards=2)
        for query in submissions(1, count=4):
            cluster.submit(query)
        pending_before = set(cluster.pending_ids)
        with pytest.raises(RuntimeError, match="auction blew up"):
            cluster.run_period_all()
        assert cluster.period == 0
        assert cluster.pending_ids == pending_before
        for shard in cluster.shards:
            assert shard.period == 0
        # Swap in a working mechanism and retry the period.
        for shard in cluster.shards:
            shard.mechanism = (
                __import__("repro.core", fromlist=["CAT"]).CAT())
        report = cluster.run_period_all()
        assert report.period == 1

    def test_restored_cluster_defaults_auction_workers(self):
        cluster = build_cluster(auction_workers=4)
        restored = FederatedAdmissionService.restore(cluster.snapshot())
        assert restored.auction_workers is None
