"""The pooled batch auction paths: parallel == sequential.

``run_period_all`` dispatches independent shard auctions across a
pool — threads by default, worker processes with
``auction_mode="process"`` (auctions are side-effect-free until
settlement); these tests pin that both pooled paths produce
byte-identical cluster reports to the sequential :meth:`run_period` —
including for randomized mechanisms, whose per-shard RNG streams must
be consumed in shard order either way, and round-tripped back from the
worker processes — and that auction failures still roll back cleanly.
"""

import json

import pytest
from hypothesis import given, settings

from repro.cluster import FederatedAdmissionService
from repro.core.mechanism import Mechanism, register_mechanism
from repro.dsms.streams import SyntheticStream
from repro.io import cluster_report_to_dict

from tests.strategies import cluster_workloads, select_query

pytestmark = pytest.mark.cluster


def build_cluster(mechanism="two-price:seed=7", num_shards=3,
                  capacity=8.0, selection=None, auction_workers=None,
                  auction_mode="thread", auction_columns="pickle"):
    return FederatedAdmissionService.build(
        num_shards=num_shards,
        sources=[SyntheticStream("s", rate=4, seed=5, poisson=False)],
        capacity=capacity,
        mechanism=mechanism,
        ticks_per_period=3,
        selection=selection,
        placement="round-robin",
        auction_workers=auction_workers,
        auction_mode=auction_mode,
        auction_columns=auction_columns,
    )


def submissions(period, count=7):
    return [
        select_query(f"p{period}q{i}", owner=f"c{i % 3}",
                     bid=10.0 + 3 * i, cost=0.5 + 0.25 * i)
        for i in range(count)
    ]


def report_bytes(report):
    return json.dumps(cluster_report_to_dict(report), sort_keys=True)


def run_periods(cluster, periods, batch):
    reports = []
    for period in range(1, periods + 1):
        for query in submissions(period):
            cluster.submit(query)
        reports.append(cluster.run_period_all() if batch
                       else cluster.run_period())
    return reports


class TestParallelEqualsSequential:
    @pytest.mark.parametrize("selection", [None, "fast"])
    def test_randomized_mechanism_reports_identical(self, selection):
        sequential = build_cluster(selection=selection)
        pooled = build_cluster(selection=selection)
        for left, right in zip(run_periods(sequential, 3, batch=False),
                               run_periods(pooled, 3, batch=True)):
            assert report_bytes(left) == report_bytes(right)
        assert sequential.total_revenue() == pooled.total_revenue()

    def test_single_worker_pool_identical_to_wide_pool(self):
        narrow = build_cluster(auction_workers=1)
        wide = build_cluster(auction_workers=8)
        for left, right in zip(run_periods(narrow, 2, batch=True),
                               run_periods(wide, 2, batch=True)):
            assert report_bytes(left) == report_bytes(right)

    def test_shared_mechanism_object_stays_sequential(self):
        """Shards sharing one live mechanism draw RNG in shard order."""
        from repro.core import TwoPrice

        sequential = build_cluster(mechanism=TwoPrice(seed=3))
        pooled = build_cluster(mechanism=TwoPrice(seed=3))
        assert len({id(s.mechanism) for s in pooled.shards}) == 1
        for left, right in zip(run_periods(sequential, 2, batch=False),
                               run_periods(pooled, 2, batch=True)):
            assert report_bytes(left) == report_bytes(right)

    @given(workload=cluster_workloads(max_periods=2))
    @settings(max_examples=25, deadline=None)
    def test_property_batch_equals_sequential_with_fast_selection(
            self, workload):
        def build(selection):
            return FederatedAdmissionService.build(
                num_shards=workload.num_shards,
                sources=[SyntheticStream(
                    "s", rate=workload.rate, seed=workload.seed)],
                capacity=workload.capacity,
                mechanism="two-price:seed=13",
                ticks_per_period=2,
                selection=selection,
                placement=workload.placement,
            )

        sequential = build("reference")
        pooled = build("fast")
        for batch in workload.submissions:
            for query in batch:
                sequential.submit(query)
                pooled.submit(query)
            left = sequential.run_period()
            right = pooled.run_period_all()
            assert report_bytes(left) == report_bytes(right)


class _Explosive(Mechanism):
    name = "explosive"

    def _select(self, instance):
        raise RuntimeError("auction blew up")


class TestFailurePropagation:
    def test_auction_failure_rolls_back_and_is_retryable(self):
        register_mechanism("explosive-parallel", _Explosive)
        cluster = build_cluster(mechanism="explosive-parallel",
                                num_shards=2)
        for query in submissions(1, count=4):
            cluster.submit(query)
        pending_before = set(cluster.pending_ids)
        with pytest.raises(RuntimeError, match="auction blew up"):
            cluster.run_period_all()
        assert cluster.period == 0
        assert cluster.pending_ids == pending_before
        for shard in cluster.shards:
            assert shard.period == 0
        # Swap in a working mechanism and retry the period.
        for shard in cluster.shards:
            shard.mechanism = (
                __import__("repro.core", fromlist=["CAT"]).CAT())
        report = cluster.run_period_all()
        assert report.period == 1

    def test_restored_cluster_defaults_auction_workers(self):
        cluster = build_cluster(auction_workers=4)
        restored = FederatedAdmissionService.restore(cluster.snapshot())
        assert restored.auction_workers is None


@pytest.mark.sim_parallel
class TestProcessPool:
    """``auction_mode="process"``: worker processes, same bytes.

    Marked ``sim_parallel`` so CI can exercise the multiprocessing
    pool in its own leg (``pytest -m sim_parallel``); every test pins
    the pool at 2 workers.
    """

    def test_process_equals_sequential_over_periods(self):
        """Randomized per-shard mechanisms: RNG state round-trips.

        Three periods, so period N+1 only matches if the parent-side
        mechanism RNGs advanced exactly as a sequential run's would
        after period N — the worker's evolved state must come back.
        """
        sequential = build_cluster()
        pooled = build_cluster(auction_mode="process",
                               auction_workers=2)
        try:
            for left, right in zip(
                    run_periods(sequential, 3, batch=False),
                    run_periods(pooled, 3, batch=True)):
                assert report_bytes(left) == report_bytes(right)
        finally:
            pooled.close_pool()
        assert sequential.total_revenue() == pooled.total_revenue()

    def test_process_equals_thread(self):
        threaded = build_cluster(auction_workers=2)
        pooled = build_cluster(auction_mode="process",
                               auction_workers=2)
        try:
            for left, right in zip(run_periods(threaded, 2, batch=True),
                                   run_periods(pooled, 2, batch=True)):
                assert report_bytes(left) == report_bytes(right)
        finally:
            pooled.close_pool()

    def test_shared_mechanism_object_stays_one_group(self):
        """One shared mechanism: one worker job, state still returns."""
        from repro.core import TwoPrice

        sequential = build_cluster(mechanism=TwoPrice(seed=3))
        pooled = build_cluster(mechanism=TwoPrice(seed=3),
                               auction_mode="process",
                               auction_workers=2)
        mechanism = pooled.shards[0].mechanism
        assert all(s.mechanism is mechanism for s in pooled.shards)
        try:
            for left, right in zip(
                    run_periods(sequential, 2, batch=False),
                    run_periods(pooled, 2, batch=True)):
                assert report_bytes(left) == report_bytes(right)
        finally:
            pooled.close_pool()
        # The parent-side object survived state splicing untouched in
        # identity: shards still share the very same mechanism.
        assert all(s.mechanism is mechanism for s in pooled.shards)

    def test_worker_failure_rolls_back_and_is_retryable(self):
        register_mechanism("explosive-process", _Explosive)
        cluster = build_cluster(mechanism="explosive-process",
                                num_shards=2,
                                auction_mode="process",
                                auction_workers=2)
        try:
            for query in submissions(1, count=4):
                cluster.submit(query)
            pending_before = set(cluster.pending_ids)
            with pytest.raises(RuntimeError, match="auction blew up"):
                cluster.run_period_all()
            assert cluster.period == 0
            assert cluster.pending_ids == pending_before
            for shard in cluster.shards:
                shard.mechanism = (
                    __import__("repro.core", fromlist=["CAT"]).CAT())
            report = cluster.run_period_all()
            assert report.period == 1
        finally:
            cluster.close_pool()

    def test_checkpoint_resume_continues_identically(self):
        """A mid-run checkpoint resumes byte-identically on the pool."""
        reference = build_cluster()
        pooled = build_cluster(auction_mode="process",
                               auction_workers=2)
        try:
            for query in submissions(1):
                reference.submit(query)
            for query in submissions(1):
                pooled.submit(query)
            reference.run_period()
            pooled.run_period_all()
            restored = FederatedAdmissionService.restore(
                pooled.snapshot())
        finally:
            pooled.close_pool()
        # Pool configuration is runtime tuning, not state.
        assert restored.auction_mode == "thread"
        restored.auction_mode = "process"
        restored.auction_workers = 2
        for query in submissions(2):
            reference.submit(query)
        for query in submissions(2):
            restored.submit(query)
        left = reference.run_period()
        try:
            right = restored.run_period_all()
        finally:
            restored.close_pool()
        assert report_bytes(left) == report_bytes(right)

    def test_shm_columns_equal_sequential_over_periods(self):
        """Shared-memory column transport: same bytes, segments used.

        Three periods so RNG state must round-trip through the shm
        jobs too; the pool's counters prove the segment path actually
        engaged rather than silently falling back to pickling.
        """
        sequential = build_cluster()
        pooled = build_cluster(auction_mode="process",
                               auction_workers=2,
                               auction_columns="shm")
        try:
            for left, right in zip(
                    run_periods(sequential, 3, batch=False),
                    run_periods(pooled, 3, batch=True)):
                assert report_bytes(left) == report_bytes(right)
            stats = pooled._process_pool.stats
            assert stats["shm_segments"] == 3
            assert stats["shm_bytes"] > 0
            assert stats["pickled_calls"] == 0
        finally:
            pooled.close_pool()

    def test_shm_columns_equal_pickled_columns(self):
        pickled = build_cluster(auction_mode="process",
                                auction_workers=2)
        shm = build_cluster(auction_mode="process",
                            auction_workers=2,
                            auction_columns="shm")
        try:
            for left, right in zip(run_periods(pickled, 2, batch=True),
                                   run_periods(shm, 2, batch=True)):
                assert report_bytes(left) == report_bytes(right)
        finally:
            pickled.close_pool()
            shm.close_pool()

    def test_switching_transport_rebuilds_pool_mid_run(self):
        """Flipping ``auction_columns`` between periods takes effect."""
        sequential = build_cluster()
        pooled = build_cluster(auction_mode="process",
                               auction_workers=2)
        try:
            left = run_periods(sequential, 1, batch=False)[0]
            right = run_periods(pooled, 1, batch=True)[0]
            assert report_bytes(left) == report_bytes(right)
            first_pool = pooled._process_pool
            assert first_pool.columns == "pickle"
            pooled.auction_columns = "shm"
            for query in submissions(2):
                sequential.submit(query)
            for query in submissions(2):
                pooled.submit(query)
            left = sequential.run_period()
            right = pooled.run_period_all()
            assert report_bytes(left) == report_bytes(right)
            assert pooled._process_pool is not first_pool
            assert pooled._process_pool.stats["shm_segments"] == 1
        finally:
            pooled.close_pool()

    def test_multi_operator_instances_fall_back_to_pickling(self):
        """Shapes the columnar select can't pack still run correctly."""
        from repro.cluster.parallel import AuctionProcessPool
        from repro.core import CAT
        from repro.core.model import AuctionInstance, Operator, Query

        operators = {"o0": Operator("o0", 1.0),
                     "o1": Operator("o1", 2.0)}
        queries = (Query("q0", ("o0", "o1"), bid=5.0),
                   Query("q1", ("o0",), bid=3.0))
        instance = AuctionInstance(operators, queries, capacity=4.0)
        pool = AuctionProcessPool(2, columns="shm")
        try:
            grouped = pool.run_groups([(CAT(), [instance])])
        finally:
            pool.close()
        assert pool.stats["shm_segments"] == 0
        assert pool.stats["pickled_calls"] == 1
        expected = CAT().run_many([instance])
        assert repr(grouped[0]) == repr(expected)

    def test_invalid_transport_rejected(self):
        from repro.cluster.parallel import AuctionProcessPool
        from repro.utils.validation import ValidationError

        with pytest.raises(ValidationError, match="pickle"):
            AuctionProcessPool(2, columns="mmap")
        with pytest.raises(ValidationError, match="pickle"):
            build_cluster(auction_columns="mmap")

    def test_restored_cluster_defaults_columns_to_pickle(self):
        cluster = build_cluster(auction_mode="process",
                                auction_workers=2,
                                auction_columns="shm")
        try:
            run_periods(cluster, 1, batch=True)
            restored = FederatedAdmissionService.restore(
                cluster.snapshot())
        finally:
            cluster.close_pool()
        assert restored.auction_columns == "pickle"

    def test_pool_survives_copy_and_pickle_cold(self):
        import copy as copy_module
        import pickle

        cluster = build_cluster(auction_mode="process",
                                auction_workers=2)
        try:
            run_periods(cluster, 1, batch=True)
            assert cluster._process_pool is not None
            clone = copy_module.deepcopy(cluster)
            assert clone._process_pool is None
            wire = pickle.loads(pickle.dumps(cluster._process_pool))
            assert wire._executor is None
            assert wire.workers == 2
        finally:
            cluster.close_pool()
        assert cluster._process_pool is None
