"""Unit tests for the federation facade, rebalancer and batch path."""

import json

import pytest

from repro.cluster import (
    FederatedAdmissionService,
    Rebalancer,
    RoundRobinPlacement,
)
from repro.dsms.streams import SyntheticStream
from repro.io import cluster_report_to_dict
from repro.utils.validation import ValidationError

from tests.strategies import select_query

pytestmark = pytest.mark.cluster


def build_cluster(num_shards=2, capacity=10.0, mechanism="CAT",
                  placement="round-robin", rebalance=True, ticks=4):
    return FederatedAdmissionService.build(
        num_shards=num_shards,
        sources=[SyntheticStream("s", rate=4, seed=5, poisson=False)],
        capacity=capacity,
        mechanism=mechanism,
        ticks_per_period=ticks,
        placement=placement,
        rebalance=rebalance,
    )


def report_bytes(report):
    return json.dumps(cluster_report_to_dict(report), sort_keys=True)


class TestConstruction:
    def test_needs_at_least_one_shard(self):
        with pytest.raises(ValidationError, match="at least one shard"):
            FederatedAdmissionService(shards=[])

    def test_rejects_duplicate_shard_objects(self):
        shard = build_cluster(num_shards=1).shards[0]
        with pytest.raises(ValidationError, match="twice"):
            FederatedAdmissionService(shards=[shard, shard])

    def test_build_validates_shard_count(self):
        with pytest.raises(ValidationError, match="num_shards"):
            build_cluster(num_shards=0)

    def test_spec_mechanisms_are_per_shard_instances(self):
        cluster = build_cluster(num_shards=3, mechanism="two-price:seed=7")
        mechanisms = {id(shard.mechanism) for shard in cluster.shards}
        assert len(mechanisms) == 3

    def test_live_mechanism_object_is_shared(self):
        from repro.core import CAT

        mechanism = CAT()
        cluster = FederatedAdmissionService.build(
            num_shards=2,
            sources=[SyntheticStream("s", rate=4, seed=5, poisson=False)],
            capacity=10.0,
            mechanism=mechanism,
            ticks_per_period=4,
        )
        assert all(shard.mechanism is mechanism
                   for shard in cluster.shards)


class TestRouting:
    def test_submit_returns_chosen_shard(self):
        cluster = build_cluster(num_shards=3)
        placed = [cluster.submit(select_query(f"q{i}", f"c{i}", 10.0, 1.0))
                  for i in range(3)]
        assert placed == [0, 1, 2]  # round-robin
        assert cluster.pending_ids == {"q0", "q1", "q2"}

    def test_duplicate_id_rejected_cluster_wide(self):
        cluster = build_cluster(num_shards=3)
        cluster.submit(select_query("dup", "a", 10.0, 1.0))
        # round-robin would route the second copy to a *different*
        # shard, whose own queue knows nothing about the first.
        with pytest.raises(ValidationError, match="shard 0"):
            cluster.submit(select_query("dup", "b", 20.0, 1.0))

    def test_duplicate_of_running_query_rejected(self):
        cluster = build_cluster(num_shards=2)
        cluster.submit(select_query("q", "a", 10.0, 1.0))
        cluster.run_period()
        assert cluster.locate("q") == 0
        with pytest.raises(ValidationError, match="already submitted"):
            cluster.submit(select_query("q", "b", 5.0, 1.0))

    def test_withdraw_routes_to_owning_shard(self):
        cluster = build_cluster(num_shards=3)
        cluster.submit(select_query("q0", "a", 10.0, 1.0))
        cluster.submit(select_query("q1", "b", 20.0, 1.0))
        withdrawn = cluster.withdraw("q1")
        assert withdrawn.query_id == "q1"
        assert cluster.pending_ids == {"q0"}

    def test_withdraw_unknown_names_cluster_pending(self):
        cluster = build_cluster(num_shards=2)
        cluster.submit(select_query("q0", "a", 10.0, 1.0))
        with pytest.raises(ValidationError, match="q0"):
            cluster.withdraw("ghost")

    def test_misbehaving_policy_caught(self):
        class OutOfRange(RoundRobinPlacement):
            def choose(self, query, shards):
                return 99

        cluster = build_cluster(num_shards=2)
        cluster.placement = OutOfRange()
        with pytest.raises(ValidationError, match="shards 0..1"):
            cluster.submit(select_query("q", "a", 1.0, 1.0))


class TestClusterPeriods:
    def test_idle_shards_still_advance(self):
        cluster = build_cluster(num_shards=3,
                                placement="consistent-hash:seed=0")
        cluster.submit(select_query("q0", "alice", 10.0, 1.0))
        report = cluster.run_period()
        assert cluster.period == 1
        idle = [r for r in report.shard_reports
                if r.outcome.mechanism == "idle"]
        assert len(idle) == 2
        for shard_report in idle:
            assert shard_report.revenue == 0.0
            assert shard_report.engine_ticks == 4  # streams kept flowing
        assert all(shard.period == 1 for shard in cluster.shards)

    def test_fully_idle_period(self):
        cluster = build_cluster(num_shards=2)
        report = cluster.run_period()
        assert report.total_revenue == 0.0
        assert report.admitted == ()
        assert cluster.period == 1

    def test_pre_auction_failure_rolls_back_cleanly(self):
        """Nothing billed yet ⇒ full rollback, the period is retryable."""
        def boom(_service, _instance):
            raise ValidationError("boom")

        cluster = build_cluster(num_shards=2)
        cluster.submit(select_query("q0", "a", 10.0, 1.0))
        cluster.shards[0].hooks.add("pre_auction", boom)
        with pytest.raises(ValidationError, match="boom"):
            cluster.run_period()
        assert cluster.period == 0
        assert all(shard.period == 0 for shard in cluster.shards)
        assert cluster.pending_ids == {"q0"}
        assert cluster.reports == []

        cluster.shards[0].hooks = type(cluster.shards[0].hooks)()
        report = cluster.run_period()  # retry succeeds
        assert report.period == 1

    def test_post_settlement_failure_commits_the_period(self):
        """Once a shard billed, the period is consumed: counters stay
        aligned everywhere even though no report is recorded."""
        def boom(_service, outcome):
            raise ValidationError("boom")

        cluster = build_cluster(num_shards=2)
        cluster.submit(select_query("q0", "a", 10.0, 1.0))
        cluster.shards[0].hooks.add("post_auction", boom)
        with pytest.raises(ValidationError, match="boom"):
            cluster.run_period()
        assert cluster.period == 1
        assert all(shard.period == 1 for shard in cluster.shards)
        assert cluster.reports == []

    def test_cluster_report_aggregates(self):
        cluster = build_cluster(num_shards=2, capacity=30.0)
        for i in range(4):
            cluster.submit(select_query(f"q{i}", f"c{i}", 20.0 + i, 1.0))
        report = cluster.run_period()
        assert report.num_shards == 2
        assert report.total_revenue == pytest.approx(
            sum(r.revenue for r in report.shard_reports))
        assert set(report.admitted) <= {"q0", "q1", "q2", "q3"}
        assert report.utilization is not None

    def test_run_periods_convenience(self):
        cluster = build_cluster(num_shards=2)
        reports = cluster.run_periods([
            [select_query("a", "u1", 10.0, 1.0)],
            [select_query("b", "u2", 20.0, 1.0)],
        ])
        assert [r.period for r in reports] == [1, 2]
        assert cluster.period == 2


class TestRebalancing:
    def overload_one_shard(self, rebalance=True, **kwargs):
        """All of one client's queries hash to one small shard; the
        other shard stays empty with full capacity."""
        cluster = build_cluster(
            num_shards=2, capacity=4.0,
            placement="consistent-hash:seed=0", rebalance=rebalance,
            **kwargs)
        # rate 4 × cost 1.0 = load 4 per query: exactly one fits a shard.
        for i in range(3):
            cluster.submit(select_query(f"q{i}", "alice", 50.0 - i, 1.0))
        return cluster

    def test_rejected_queries_migrate_to_spare_capacity(self):
        cluster = self.overload_one_shard()
        report = cluster.run_period()
        assert len(report.admitted) == 1
        assert len(report.migrated) == 1  # one more fits on the twin
        migration = report.migrations[0]
        assert migration.origin != migration.target
        target = cluster.shards[migration.target]
        assert migration.query_id in target.engine.admitted_ids

    def test_migration_is_not_billed(self):
        cluster = self.overload_one_shard()
        report = cluster.run_period()
        migrated = report.migrations[0].query_id
        for shard in cluster.shards:
            assert all(invoice.query_id != migrated
                       for invoice in shard.ledger.invoices)

    def test_migrated_query_reauctioned_on_target_next_period(self):
        cluster = self.overload_one_shard()
        report = cluster.run_period()
        migration = report.migrations[0]
        next_report = cluster.run_period()
        target_report = next_report.shard_reports[migration.target]
        assert (migration.query_id in target_report.admitted
                or migration.query_id in target_report.rejected)

    def test_rebalance_can_be_disabled(self):
        cluster = self.overload_one_shard(rebalance=False)
        report = cluster.run_period()
        assert report.migrations == ()
        assert len(report.rejected) == 2

    def test_max_migrations_cap(self):
        cluster = self.overload_one_shard()
        cluster.rebalancer = Rebalancer(max_migrations=0)
        report = cluster.run_period()
        assert report.migrations == ()

    def test_rejected_load_accounts_for_migrations(self):
        unbalanced = self.overload_one_shard(rebalance=False)
        balanced = self.overload_one_shard()
        without = unbalanced.run_period()
        with_rebalance = balanced.run_period()
        assert with_rebalance.rejected_load < without.rejected_load


class TestBatchPath:
    @pytest.mark.parametrize("mechanism", ["CAT", "two-price:seed=7"])
    def test_run_period_all_matches_run_period(self, mechanism):
        def fill(cluster):
            for period in range(1, 3):
                for i in range(5):
                    cluster.submit(select_query(
                        f"p{period}q{i}", f"c{i % 3}",
                        10.0 * (i + 1) + period, 1.0))
                yield

        sequential = build_cluster(num_shards=3, mechanism=mechanism,
                                   placement="consistent-hash:seed=2")
        batch = build_cluster(num_shards=3, mechanism=mechanism,
                              placement="consistent-hash:seed=2")
        seq_reports, batch_reports = [], []
        for _ in fill(sequential):
            seq_reports.append(sequential.run_period())
        for _ in fill(batch):
            batch_reports.append(batch.run_period_all())
        for ours, theirs in zip(seq_reports, batch_reports):
            assert report_bytes(ours) == report_bytes(theirs)


class TestRunBatchHook:
    def test_groups_consecutive_same_mechanism_runs(self):
        from repro.core import CAT, run_batch
        from repro.workload import example1

        calls = []

        class Spy(CAT):
            def run_many(self, instances):
                instances = list(instances)
                calls.append(len(instances))
                return super().run_many(instances)

        first, second = Spy(), Spy()
        instance = example1()
        outcomes = run_batch([
            (first, instance), (first, instance),
            (second, instance), (first, instance),
        ])
        assert calls == [2, 1, 1]
        assert len(outcomes) == 4
        solo = CAT().run(instance)
        for outcome in outcomes:
            assert outcome.winner_ids == solo.winner_ids

    def test_empty_batch(self):
        from repro.core import run_batch

        assert run_batch([]) == []

class TestShardBackends:
    def _build(self, backend, num_shards=2):
        return FederatedAdmissionService.build(
            num_shards=num_shards,
            sources=[SyntheticStream("s", rate=4, seed=5,
                                     poisson=False)],
            capacity=10.0,
            mechanism="CAT",
            ticks_per_period=4,
            backend=backend,
            placement="round-robin",
        )

    def test_single_spec_applies_to_every_shard(self):
        from repro.dsms.columnar import ColumnarBackend

        cluster = self._build("columnar:batch=512", num_shards=3)
        for shard in cluster.shards:
            assert isinstance(shard.engine.backend, ColumnarBackend)
            assert shard.engine.backend.batch_rows == 512
        backends = {id(s.engine.backend) for s in cluster.shards}
        assert len(backends) == 3  # no shared backend state

    def test_per_shard_backend_specs(self):
        from repro.dsms.backend import ScalarBackend
        from repro.dsms.columnar import ColumnarBackend

        cluster = self._build(["scalar", "columnar"], num_shards=2)
        assert isinstance(cluster.shards[0].engine.backend,
                          ScalarBackend)
        assert isinstance(cluster.shards[1].engine.backend,
                          ColumnarBackend)

    def test_backend_count_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="backend specs"):
            self._build(["scalar"], num_shards=2)

    def test_cluster_periods_equivalent_across_backends(self):
        def run(backend):
            cluster = self._build(backend)
            for period in range(1, 3):
                for i in range(6):
                    cluster.submit(select_query(
                        f"p{period}_q{i}", owner=f"u{i % 3}",
                        bid=5.0 + i, cost=0.5 + 0.25 * i))
                cluster.run_period()
            return [report_bytes(r) for r in cluster.reports]

        assert run("scalar") == run("columnar")
