"""Cluster checkpoint/restore: the resumed federation is bit-identical.

The cluster-scope mirror of ``tests/service/test_snapshot.py``: a
federation checkpointed mid-run and restored must produce
byte-identical :class:`ClusterReport` documents for the remaining
periods — per-shard RNG and engine state, ledgers, pending queues,
the placement policy's cursor/ring state, and the period counter all
survive the composed envelope round trip.
"""

import json
import pickle

import pytest

from repro.cluster import ClusterSnapshot, FederatedAdmissionService
from repro.dsms.streams import SyntheticStream
from repro.io import (
    CLUSTER_SNAPSHOT_SCHEMA,
    SNAPSHOT_SCHEMA,
    cluster_report_to_dict,
    load_cluster_snapshot,
)
from repro.utils.validation import ValidationError

from tests.strategies import select_query

pytestmark = pytest.mark.cluster


def build_cluster(placement="round-robin", mechanism="two-price:seed=7"):
    return FederatedAdmissionService.build(
        num_shards=3,
        sources=[SyntheticStream("s", rate=5, seed=3)],
        capacity=12.0,
        mechanism=mechanism,
        ticks_per_period=6,
        placement=placement,
    )


def batch(period):
    return [select_query(f"p{period}q{i}", f"c{i % 2}",
                         10.0 * (i + 1) + period, 1.0 + 0.5 * i)
            for i in range(4)]


def report_bytes(report):
    return json.dumps(cluster_report_to_dict(report), sort_keys=True).encode()


@pytest.mark.parametrize("placement",
                         ["round-robin", "consistent-hash:seed=5",
                          "least-loaded"])
def test_restore_is_byte_identical(placement):
    cluster = build_cluster(placement)
    cluster.run_periods([batch(1), batch(2)])
    snapshot = cluster.snapshot()

    uninterrupted = cluster.run_periods([batch(3), batch(4)])

    resumed = FederatedAdmissionService.restore(snapshot)
    replayed = resumed.run_periods([batch(3), batch(4)])

    for original, again in zip(uninterrupted, replayed):
        assert report_bytes(original) == report_bytes(again)
    assert resumed.total_revenue() == cluster.total_revenue()


def test_disk_round_trip_is_byte_identical(tmp_path):
    cluster = build_cluster()
    cluster.run_periods([batch(1), batch(2)])
    path = tmp_path / "cluster.ckpt"
    cluster.save_checkpoint(path)

    uninterrupted = cluster.run_periods([batch(3)])

    resumed = FederatedAdmissionService.load_checkpoint(path)
    assert resumed.period == 2
    replayed = resumed.run_periods([batch(3)])
    assert report_bytes(uninterrupted[0]) == report_bytes(replayed[0])


def test_save_mid_period_pending_queue_survives(tmp_path):
    cluster = build_cluster()
    cluster.run_periods([batch(1)])
    for query in batch(2):
        cluster.submit(query)
    path = tmp_path / "cluster.ckpt"
    cluster.save_checkpoint(path)

    uninterrupted = cluster.run_period()

    resumed = FederatedAdmissionService.load_checkpoint(path)
    assert resumed.pending_ids == {q.query_id for q in batch(2)}
    assert report_bytes(resumed.run_period()) == report_bytes(uninterrupted)


def test_snapshot_is_isolated_from_the_live_cluster():
    cluster = build_cluster()
    cluster.run_periods([batch(1)])
    snapshot = cluster.snapshot()
    cluster.run_periods([batch(2), batch(3)])

    first = FederatedAdmissionService.restore(snapshot)
    second = FederatedAdmissionService.restore(snapshot)
    assert first.period == second.period == 1
    assert (report_bytes(first.run_periods([batch(2)])[0])
            == report_bytes(second.run_periods([batch(2)])[0]))


def test_report_history_travels_with_the_snapshot():
    cluster = build_cluster()
    cluster.run_periods([batch(1), batch(2)])
    resumed = FederatedAdmissionService.restore(cluster.snapshot())
    assert [r.period for r in resumed.reports] == [1, 2]
    assert (report_bytes(resumed.reports[-1])
            == report_bytes(cluster.reports[-1]))


def test_version_mismatch_rejected():
    cluster = build_cluster()
    snapshot = cluster.snapshot()
    stale = ClusterSnapshot(
        version=99,
        placement=snapshot.placement,
        rebalancer=snapshot.rebalancer,
        period=snapshot.period,
        reports=snapshot.reports,
        shards=snapshot.shards,
    )
    with pytest.raises(ValidationError, match="version 99"):
        FederatedAdmissionService.restore(stale)


def test_empty_shard_list_rejected():
    snapshot = build_cluster().snapshot()
    with pytest.raises(ValidationError, match="no shards"):
        ClusterSnapshot(
            version=snapshot.version,
            placement=snapshot.placement,
            rebalancer=snapshot.rebalancer,
            period=snapshot.period,
            reports=snapshot.reports,
            shards=(),
        )


def test_cluster_snapshot_file_validation(tmp_path):
    bogus = tmp_path / "bogus.ckpt"
    bogus.write_bytes(b"not a pickle at all")
    with pytest.raises(ValidationError, match="malformed cluster"):
        load_cluster_snapshot(bogus)

    wrong_schema = tmp_path / "wrong.ckpt"
    wrong_schema.write_bytes(pickle.dumps(
        {"schema": "repro/other", "version": 1}))
    with pytest.raises(ValidationError, match=CLUSTER_SNAPSHOT_SCHEMA):
        load_cluster_snapshot(wrong_schema)

    # A *service* checkpoint is not a cluster checkpoint.
    cluster = build_cluster()
    cluster.run_periods([batch(1)])
    service_ckpt = tmp_path / "service.ckpt"
    cluster.shards[0].save_checkpoint(service_ckpt)
    with pytest.raises(ValidationError, match=CLUSTER_SNAPSHOT_SCHEMA):
        load_cluster_snapshot(service_ckpt)


def test_envelope_composes_per_shard_envelopes(tmp_path):
    """The cluster file embeds N valid service-snapshot envelopes —
    the same format ``save_snapshot`` writes for one service."""
    cluster = build_cluster()
    cluster.run_periods([batch(1)])
    path = tmp_path / "cluster.ckpt"
    cluster.save_checkpoint(path)

    envelope = pickle.loads(path.read_bytes())
    assert envelope["schema"] == CLUSTER_SNAPSHOT_SCHEMA
    assert len(envelope["shards"]) == cluster.num_shards
    for shard_envelope in envelope["shards"]:
        assert shard_envelope["schema"] == SNAPSHOT_SCHEMA

    # Each embedded envelope restores as a standalone service.
    from repro.service import AdmissionService

    service = AdmissionService.restore(envelope["shards"][0]["snapshot"])
    assert service.period == 1