"""Runtime operator semantics tests."""

import pytest

from repro.dsms.operators import (
    AggregateOperator,
    JoinOperator,
    MapOperator,
    ProjectOperator,
    SelectOperator,
    UnionOperator,
)
from repro.dsms.tuples import StreamTuple


def batch(stream, tick, payloads):
    return [StreamTuple(stream, tick, p, origin=(f"{stream}@{tick}#{i}",))
            for i, p in enumerate(payloads)]


class TestSelect:
    def test_filters_by_predicate(self):
        op = SelectOperator("sel", "in", lambda t: t.value("x") > 2)
        out = op.execute({"in": batch("in", 1, [{"x": 1}, {"x": 3},
                                                {"x": 5}])})
        assert [t.value("x") for t in out] == [3, 5]

    def test_counters(self):
        op = SelectOperator("sel", "in", lambda t: True)
        op.execute({"in": batch("in", 1, [{}, {}])})
        assert op.processed_tuples == 2
        assert op.emitted_tuples == 2

    def test_work_is_input_times_cost(self):
        op = SelectOperator("sel", "in", lambda t: False,
                            cost_per_tuple=2.5)
        assert op.work({"in": batch("in", 1, [{}, {}, {}])}) == 7.5


class TestProjectAndMap:
    def test_project_keeps_attributes(self):
        op = ProjectOperator("proj", "in", ["a"])
        out = op.execute({"in": batch("in", 1, [{"a": 1, "b": 2}])})
        assert out[0].payload == {"a": 1}

    def test_map_transforms(self):
        op = MapOperator("m", "in", lambda p: {"double": p["x"] * 2})
        out = op.execute({"in": batch("in", 1, [{"x": 4}])})
        assert out[0].value("double") == 8


class TestJoin:
    def make_join(self, window=3):
        return JoinOperator(
            "j", "L", "R",
            left_key=lambda t: t.value("k"),
            right_key=lambda t: t.value("k"),
            window=window)

    def test_matches_within_tick(self):
        op = self.make_join()
        out = op.execute({
            "L": batch("L", 1, [{"k": "a", "l": 1}]),
            "R": batch("R", 1, [{"k": "a", "r": 2}]),
        })
        assert len(out) == 1
        assert out[0].value("l") == 1
        assert out[0].value("r") == 2

    def test_matches_across_ticks_within_window(self):
        op = self.make_join(window=3)
        op.execute({"L": batch("L", 1, [{"k": "a", "l": 1}]), "R": []})
        out = op.execute({"L": [], "R": batch("R", 2, [{"k": "a"}])})
        assert len(out) == 1

    def test_window_expiry(self):
        op = self.make_join(window=2)
        op.execute({"L": batch("L", 1, [{"k": "a"}]), "R": []})
        out = op.execute({"L": [], "R": batch("R", 5, [{"k": "a"}])})
        assert out == []

    def test_no_duplicate_matches(self):
        """New-left×(old+new right) plus old-left×new-right covers each
        pair exactly once."""
        op = self.make_join(window=5)
        op.execute({"L": batch("L", 1, [{"k": "a"}]),
                    "R": batch("R", 1, [{"k": "a"}])})   # 1 match
        out = op.execute({"L": batch("L", 2, [{"k": "a"}]),
                          "R": batch("R", 2, [{"k": "a"}])})
        # new L joins 2 R (old+new); old L joins 1 new R → 3 matches.
        assert len(out) == 3

    def test_origin_combines_sides(self):
        op = self.make_join()
        out = op.execute({
            "L": batch("L", 1, [{"k": "a"}]),
            "R": batch("R", 1, [{"k": "a"}]),
        })
        assert len(out[0].origin) == 2

    def test_pending_and_reset(self):
        op = self.make_join()
        op.execute({"L": batch("L", 1, [{"k": "a"}]), "R": []})
        assert op.pending_tuples() == 1
        op.reset()
        assert op.pending_tuples() == 0


class TestAggregate:
    def test_tumbling_window_emission(self):
        op = AggregateOperator("agg", "in", "v", sum, window=2)
        assert op.execute({"in": batch("in", 1, [{"v": 1}, {"v": 2}])}) == []
        out = op.execute({"in": batch("in", 2, [{"v": 3}])})
        assert len(out) == 1
        assert out[0].value("value") == 6
        assert out[0].value("count") == 3

    def test_group_by(self):
        op = AggregateOperator(
            "agg", "in", "v", max, window=1,
            group_by=lambda t: t.value("g"))
        out = op.execute({"in": batch("in", 1, [
            {"g": "x", "v": 1}, {"g": "x", "v": 5}, {"g": "y", "v": 2}])})
        values = {t.value("group"): t.value("value") for t in out}
        assert values == {"x": 5, "y": 2}

    def test_window_resets_after_emission(self):
        op = AggregateOperator("agg", "in", "v", sum, window=1)
        op.execute({"in": batch("in", 1, [{"v": 1}])})
        out = op.execute({"in": batch("in", 2, [{"v": 10}])})
        assert out[0].value("value") == 10

    def test_selectivity_estimate(self):
        op = AggregateOperator("agg", "in", "v", sum, window=4)
        assert op.selectivity() == 0.25


class TestUnion:
    def test_merges_inputs(self):
        op = UnionOperator("u", ["a", "b"])
        out = op.execute({
            "a": batch("a", 1, [{"x": 1}]),
            "b": batch("b", 1, [{"x": 2}, {"x": 3}]),
        })
        assert len(out) == 3


class TestValidation:
    def test_negative_cost_rejected(self):
        from repro.utils.validation import ValidationError
        with pytest.raises(ValidationError):
            SelectOperator("s", "in", lambda t: True, cost_per_tuple=-1)

    def test_join_window_positive(self):
        from repro.utils.validation import ValidationError
        with pytest.raises(ValidationError):
            JoinOperator("j", "L", "R", lambda t: 1, lambda t: 1,
                         window=0)


class TestFlushPartial:
    def _aggregate(self, group_by=None):
        return AggregateOperator(
            "agg", "s", "x", sum, window=10, group_by=group_by)

    def test_flush_emits_partial_groups_and_clears(self):
        op = self._aggregate(group_by=lambda t: t.value("g"))
        op.execute({"s": [
            StreamTuple("s", 1, {"g": "a", "x": 1}),
            StreamTuple("s", 2, {"g": "b", "x": 2}),
            StreamTuple("s", 2, {"g": "a", "x": 3}),
        ]})
        assert op.pending_tuples() == 3
        flushed = op.flush_partial()
        assert op.pending_tuples() == 0
        by_group = {t.value("group"): t for t in flushed}
        assert by_group["a"].value("value") == 4
        assert by_group["b"].value("value") == 2
        assert all(t.value("partial") is True for t in flushed)
        assert all(t.tick == 2 for t in flushed)

    def test_flush_on_empty_buffer_is_noop(self):
        op = self._aggregate()
        assert op.flush_partial() == []

    def test_window_restarts_after_flush(self):
        op = self._aggregate()
        op.execute({"s": [StreamTuple("s", 1, {"x": 1})]})
        op.flush_partial()
        # A fresh window starts counting from the next input tick.
        out = op.execute({"s": [StreamTuple("s", 30, {"x": 5})]})
        assert out == []
        assert op.pending_tuples() == 1
