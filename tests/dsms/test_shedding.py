"""Tuple-level load shedding tests (the intro's contrast)."""

import pytest

from repro.core import make_mechanism
from repro.dsms.operators import SelectOperator
from repro.dsms.plan import ContinuousQuery
from repro.dsms.shedding import (
    PriorityShedder,
    RandomShedder,
    SheddingEngine,
    run_shedding_comparison,
)
from repro.dsms.streams import SyntheticStream
from repro.dsms.tuples import StreamTuple


def passthrough(op_id, source="s", cost=1.0):
    return SelectOperator(op_id, source, lambda t: True,
                          cost_per_tuple=cost, selectivity_estimate=1.0)


def make_batch(stream, count):
    return [StreamTuple(stream, 1, {}, origin=(f"{stream}#{i}",))
            for i in range(count)]


class TestShedders:
    def test_random_sheds_roughly_fraction(self):
        shedder = RandomShedder(seed=0)
        arrivals = {"s": make_batch("s", 1000)}
        kept = shedder.shed(arrivals, overload_fraction=0.3)
        assert len(kept["s"]) == pytest.approx(700, abs=60)
        assert shedder.dropped == 1000 - len(kept["s"])

    def test_random_zero_fraction_keeps_all(self):
        shedder = RandomShedder(seed=0)
        kept = shedder.shed({"s": make_batch("s", 50)}, 0.0)
        assert len(kept["s"]) == 50

    def test_priority_sheds_low_value_streams_first(self):
        shedder = PriorityShedder({"cheap": 1.0, "dear": 100.0}, seed=0)
        arrivals = {"cheap": make_batch("cheap", 40),
                    "dear": make_batch("dear", 40)}
        kept = shedder.shed(arrivals, overload_fraction=0.5)
        assert len(kept["cheap"]) == 0       # absorbed all drops
        assert len(kept["dear"]) == 40

    def test_priority_spills_over(self):
        shedder = PriorityShedder({"cheap": 1.0, "dear": 100.0}, seed=0)
        arrivals = {"cheap": make_batch("cheap", 10),
                    "dear": make_batch("dear", 40)}
        kept = shedder.shed(arrivals, overload_fraction=0.6)  # 30 of 50
        assert len(kept["cheap"]) == 0
        assert len(kept["dear"]) == 20


class TestSheddingEngine:
    def test_keeps_work_within_capacity(self):
        engine = SheddingEngine(
            [SyntheticStream("s", rate=20, poisson=False, seed=0)],
            capacity=10.0,
            shedder=RandomShedder(seed=1))
        engine.admit(ContinuousQuery("q", (passthrough("a"),),
                                     sink_id="a"))
        report = engine.run(10)
        # Work per tick ≈ capacity (sheds exactly the overload).
        assert report.work_per_tick <= 10.0 + 1e-6
        assert engine.shedder.dropped > 0

    def test_no_shedding_under_light_load(self):
        engine = SheddingEngine(
            [SyntheticStream("s", rate=3, poisson=False, seed=0)],
            capacity=100.0,
            shedder=RandomShedder(seed=1))
        engine.admit(ContinuousQuery("q", (passthrough("a"),),
                                     sink_id="a"))
        engine.run(5)
        assert engine.shedder.dropped == 0
        assert len(engine.results["q"]) == 15


class TestComparison:
    @pytest.fixture(scope="class")
    def comparison(self):
        def make_sources():
            return [SyntheticStream("s", rate=10, poisson=False, seed=1)]

        queries = []
        for i, bid in enumerate([50, 30, 20, 10]):
            queries.append(ContinuousQuery(
                f"q{i}", (passthrough(f"op{i}"),), sink_id=f"op{i}",
                bid=float(bid)))
        return run_shedding_comparison(
            make_sources, queries, capacity=25.0,
            mechanism=make_mechanism("CAT"), ticks=20)

    def test_admission_serves_winners_fully(self, comparison):
        assert comparison.winners_served_fully
        for qid in comparison.admission_winner_ids:
            assert comparison.admission_delivered[qid] == 200  # 10×20

    def test_admission_earns_revenue_shedding_does_not(self, comparison):
        assert comparison.admission_revenue > 0

    def test_shedding_degrades_everyone(self, comparison):
        assert comparison.shedding_dropped > 0
        for qid, delivered in comparison.shedding_delivered.items():
            assert delivered < 200  # nobody gets the full stream
