"""Tuple and stream-source tests."""

import pytest

from repro.dsms.streams import (
    SyntheticStream,
    news_stories,
    sensor_readings,
    stock_quotes,
)
from repro.dsms.tuples import StreamTuple


class TestStreamTuple:
    def test_default_origin(self):
        t = StreamTuple("s", 3, {"x": 1})
        assert t.origin == ("s@3",)

    def test_value_lookup(self):
        t = StreamTuple("s", 1, {"price": 10.0})
        assert t.value("price") == 10.0
        assert t.value("missing", "dflt") == "dflt"

    def test_derive_keeps_lineage(self):
        t = StreamTuple("s", 1, {"a": 1})
        derived = t.derive(payload={"b": 2})
        assert derived.origin == t.origin
        assert derived.payload == {"b": 2}

    def test_dict_payload_ownership_no_copy(self):
        # Hot path: a payload passed as a plain dict is adopted as-is
        # (the constructor takes ownership, no per-tuple copy).
        payload = {"a": 1}
        t = StreamTuple("s", 1, payload)
        assert t.payload is payload

    def test_non_dict_mapping_converted_once(self):
        import types

        proxy = types.MappingProxyType({"a": 1})
        t = StreamTuple("s", 1, proxy)
        assert type(t.payload) is dict
        assert t.payload == {"a": 1}

    def test_aliasing_safety_across_derivation(self):
        # Operators derive with *fresh* payload dicts; the original
        # tuple's payload must never be shared with the derived one.
        t = StreamTuple("s", 1, {"a": 1, "b": 2})
        derived = t.derive(payload={"a": t.payload["a"]})
        assert derived.payload is not t.payload
        assert t.payload == {"a": 1, "b": 2}
        same = t.derive()  # payload unchanged -> sharing is fine
        assert same.payload is t.payload


class TestSyntheticStream:
    def test_constant_rate(self):
        stream = SyntheticStream("s", rate=5, poisson=False, seed=0)
        assert len(stream.emit(1)) == 5
        assert stream.expected_rate() == 5

    def test_poisson_rate_mean(self):
        stream = SyntheticStream("s", rate=4.0, seed=1)
        counts = [len(stream.emit(t)) for t in range(300)]
        assert sum(counts) / len(counts) == pytest.approx(4.0, rel=0.15)

    def test_unique_origins(self):
        stream = SyntheticStream("s", rate=10, poisson=False, seed=2)
        batch = stream.emit(1) + stream.emit(2)
        origins = [t.origin for t in batch]
        assert len(set(origins)) == len(origins)

    def test_emitted_counter(self):
        stream = SyntheticStream("s", rate=3, poisson=False, seed=3)
        stream.emit(1)
        stream.emit(2)
        assert stream.emitted == 6


class TestDomainStreams:
    def test_stock_quotes_payloads(self):
        stream = stock_quotes(rate=8, seed=1)
        batch = stream.emit(1)
        for t in batch:
            assert t.value("symbol") in ("AAA", "BBB", "CCC", "DDD")
            assert t.value("price") > 0
            assert 1 <= t.value("volume") < 10_000

    def test_news_payloads(self):
        stream = news_stories(rate=8, seed=1)
        for t in stream.emit(1):
            assert isinstance(t.value("public"), bool)
            assert -1 <= t.value("sentiment") <= 1

    def test_sensor_payloads(self):
        stream = sensor_readings(rate=8, num_sensors=4, seed=1)
        for t in stream.emit(1):
            assert 0 <= t.value("sensor") < 4
            assert isinstance(t.value("temperature"), float)
