"""Bounded-work scheduled engine tests: queues, policies, latency."""

import pytest

from repro.dsms.operators import SelectOperator
from repro.dsms.plan import ContinuousQuery
from repro.dsms.scheduler import (
    CheapestFirstPolicy,
    LongestQueueFirstPolicy,
    RoundRobinPolicy,
    ScheduledEngine,
)
from repro.dsms.streams import SyntheticStream


def passthrough(op_id, source="s", cost=1.0):
    return SelectOperator(op_id, source, lambda t: True,
                          cost_per_tuple=cost, selectivity_estimate=1.0)


def make_engine(rate=5, capacity=10.0, policy=None, seed=0):
    return ScheduledEngine(
        [SyntheticStream("s", rate=rate, poisson=False, seed=seed)],
        capacity=capacity,
        policy=policy,
    )


class TestUnderloadedBehaviour:
    def test_everything_flows_through(self):
        engine = make_engine(rate=4, capacity=100.0)
        engine.admit(ContinuousQuery("q", (passthrough("a"),),
                                     sink_id="a"))
        engine.run(5)
        assert len(engine.results["q"]) == 20
        assert engine.total_queued() == 0

    def test_same_tick_latency_when_capacity_ample(self):
        engine = make_engine(rate=4, capacity=100.0)
        engine.admit(ContinuousQuery("q", (passthrough("a"),),
                                     sink_id="a"))
        engine.run(5)
        assert engine.mean_latency("q") == 0.0

    def test_pipeline_processed_within_tick(self):
        engine = make_engine(rate=3, capacity=100.0)
        a = passthrough("a")
        b = passthrough("b", source="a")
        engine.admit(ContinuousQuery("q", (a, b), sink_id="b"))
        engine.run(4)
        assert len(engine.results["q"]) == 12
        assert engine.total_queued() == 0


class TestOverloadedBehaviour:
    def test_budget_respected(self):
        engine = make_engine(rate=20, capacity=8.0)
        engine.admit(ContinuousQuery("q", (passthrough("a"),),
                                     sink_id="a"))
        engine.run(10)
        assert engine.mean_work_per_tick <= 8.0 + 1e-9

    def test_queues_grow_without_admission_control(self):
        """Over-admission shows up as unbounded queueing — the failure
        mode the paper's admission auctions exist to prevent."""
        engine = make_engine(rate=20, capacity=8.0)
        engine.admit(ContinuousQuery("q", (passthrough("a"),),
                                     sink_id="a"))
        engine.run(5)
        early = engine.total_queued()
        engine.run(10)
        assert engine.total_queued() > early

    def test_latency_grows_under_overload(self):
        engine = make_engine(rate=20, capacity=8.0)
        engine.admit(ContinuousQuery("q", (passthrough("a"),),
                                     sink_id="a"))
        engine.run(20)
        assert engine.mean_latency("q") > 1.0
        assert engine.latency["q"].maximum >= 5

    def test_admitted_set_within_capacity_is_stable(self):
        """The auction's promise: union load ≤ capacity ⇒ no queue
        growth."""
        engine = make_engine(rate=5, capacity=10.0)
        engine.admit(ContinuousQuery("q1", (passthrough("a"),),
                                     sink_id="a"))
        engine.admit(ContinuousQuery("q2", (passthrough("b"),),
                                     sink_id="b"))
        engine.run(20)
        assert engine.total_queued() == 0


class TestPolicies:
    @pytest.mark.parametrize("policy_cls", [
        RoundRobinPolicy, LongestQueueFirstPolicy, CheapestFirstPolicy])
    def test_all_policies_conserve_tuples(self, policy_cls):
        engine = make_engine(rate=6, capacity=6.0, policy=policy_cls())
        engine.admit(ContinuousQuery("q1", (passthrough("a", cost=0.5),),
                                     sink_id="a"))
        engine.admit(ContinuousQuery("q2", (passthrough("b", cost=2.0),),
                                     sink_id="b"))
        engine.run(10)
        delivered = sum(len(r) for r in engine.results.values())
        queued = engine.total_queued()
        assert delivered + queued == 2 * 6 * 10  # both ops see all 60

    def test_cheapest_first_maximizes_throughput(self):
        def build(policy):
            engine = make_engine(rate=6, capacity=6.0, policy=policy,
                                 seed=3)
            engine.admit(ContinuousQuery(
                "cheap", (passthrough("a", cost=0.5),), sink_id="a"))
            engine.admit(ContinuousQuery(
                "dear", (passthrough("b", cost=3.0),), sink_id="b"))
            engine.run(10)
            return sum(len(r) for r in engine.results.values())

        assert build(CheapestFirstPolicy()) >= build(RoundRobinPolicy())

    def test_longest_queue_first_targets_backlog(self):
        engine = make_engine(rate=10, capacity=5.0,
                             policy=LongestQueueFirstPolicy())
        engine.admit(ContinuousQuery("q", (passthrough("a", cost=0.5),),
                                     sink_id="a"))
        engine.run(5)
        # The single operator still gets served every tick.
        assert len(engine.results["q"]) > 0


class TestValidation:
    def test_unknown_stream(self):
        from repro.utils.validation import ValidationError

        engine = make_engine()
        with pytest.raises(ValidationError):
            engine.admit(ContinuousQuery(
                "q", (passthrough("a", source="nope"),), sink_id="a"))

    def test_positive_capacity_required(self):
        from repro.utils.validation import ValidationError

        with pytest.raises(ValidationError):
            ScheduledEngine([], capacity=0.0)
