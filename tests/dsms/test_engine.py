"""Stream-engine execution tests: sharing, metering, transition."""

import pytest

from repro.dsms.engine import StreamEngine
from repro.dsms.operators import AggregateOperator, SelectOperator
from repro.dsms.plan import ContinuousQuery
from repro.dsms.streams import SyntheticStream
from repro.utils.validation import ValidationError


def passthrough(op_id, source="s", cost=1.0):
    return SelectOperator(op_id, source, lambda t: True,
                          cost_per_tuple=cost, selectivity_estimate=1.0)


@pytest.fixture
def engine():
    return StreamEngine(
        [SyntheticStream("s", rate=4, poisson=False, seed=0)],
        capacity=100.0)


class TestExecution:
    def test_results_flow_to_sink(self, engine):
        engine.admit(ContinuousQuery("q", (passthrough("a"),),
                                     sink_id="a"))
        engine.run(5)
        assert len(engine.results["q"]) == 20  # 4/tick × 5

    def test_shared_operator_executes_once(self, engine):
        shared = passthrough("shared")
        shared_again = passthrough("shared")
        engine.admit(ContinuousQuery("q1", (shared,), sink_id="shared"))
        engine.admit(ContinuousQuery("q2", (shared_again,),
                                     sink_id="shared"))
        engine.run(5)
        # The merged operator instance processed 20 tuples, not 40.
        merged = engine.catalog.operators["shared"]
        assert merged.processed_tuples == 20
        assert len(engine.results["q1"]) == 20
        assert len(engine.results["q2"]) == 20

    def test_work_metering(self, engine):
        engine.admit(ContinuousQuery(
            "q", (passthrough("a", cost=2.0),), sink_id="a"))
        engine.run(10)
        loads = engine.measured_loads()
        assert loads["a"] == pytest.approx(8.0)  # 4 tuples × 2.0

    def test_unknown_stream_rejected(self, engine):
        with pytest.raises(ValidationError):
            engine.admit(ContinuousQuery(
                "q", (passthrough("a", source="nope"),), sink_id="a"))
        assert engine.admitted_ids == set()

    def test_report_accumulates(self, engine):
        engine.admit(ContinuousQuery("q", (passthrough("a"),),
                                     sink_id="a"))
        report = engine.run(4)
        assert report.ticks == 4
        assert report.source_tuples == 16
        assert report.delivered_tuples["q"] == 16
        assert report.utilization == pytest.approx(4.0 / 100.0)

    def test_overload_counted(self):
        engine = StreamEngine(
            [SyntheticStream("s", rate=10, poisson=False, seed=0)],
            capacity=5.0)
        engine.admit(ContinuousQuery(
            "q", (passthrough("a", cost=1.0),), sink_id="a"))
        report = engine.run(3)
        assert report.overload_ticks == 3


class TestTransition:
    def test_no_tuples_lost_across_transition(self, engine):
        """Connection points hold arrivals; a continuing query sees a
        gap-free stream (every source tuple reaches its sink)."""
        engine.admit(ContinuousQuery("q", (passthrough("a"),),
                                     sink_id="a"))
        engine.run(3)                      # 12 tuples
        engine.transition(hold_ticks=2)    # 8 tuples held then replayed
        engine.run(3)                      # 12 tuples
        source = engine._sources["s"]
        assert len(engine.results["q"]) == source.emitted
        # Origins are unique → nothing duplicated either.
        origins = [t.origin for t in engine.results["q"]]
        assert len(set(origins)) == len(origins)

    def test_held_tuples_counted_while_holding(self, engine):
        engine.admit(ContinuousQuery("q", (passthrough("a"),),
                                     sink_id="a"))
        engine.begin_transition()
        engine.hold_tick()
        assert engine.held_tuples() == 4
        engine.end_transition()
        assert engine.held_tuples() == 0

    def test_add_and_remove_queries(self, engine):
        engine.admit(ContinuousQuery("q1", (passthrough("a"),),
                                     sink_id="a"))
        engine.run(2)
        new_query = ContinuousQuery("q2", (passthrough("b"),),
                                    sink_id="b")
        engine.transition(add=[new_query], remove=["q1"], hold_ticks=1)
        assert engine.admitted_ids == {"q2"}
        engine.run(2)
        # q2 receives the held tick's tuples plus the new ticks.
        assert len(engine.results["q2"]) == 4 + 8

    def test_drain_flushes_partial_aggregates(self, engine):
        agg = AggregateOperator("agg", "s", "x", len, window=10)
        engine.admit(ContinuousQuery("q", (agg,), sink_id="agg"))
        engine.run(3)  # window not yet full → nothing emitted
        assert engine.results["q"] == []
        engine.begin_transition()
        drained = engine.drain(["q"])
        engine.end_transition(remove=["q"])
        assert drained["q"] == 1
        assert engine.results["q"][0].value("partial") is True
        assert engine.results["q"][0].value("count") == 12

    def test_cannot_run_mid_transition(self, engine):
        engine.admit(ContinuousQuery("q", (passthrough("a"),),
                                     sink_id="a"))
        engine.begin_transition()
        with pytest.raises(ValidationError):
            engine.run(1)
        engine.end_transition()

    def test_double_transition_rejected(self, engine):
        engine.begin_transition()
        with pytest.raises(ValidationError):
            engine.begin_transition()

    def test_bad_query_fails_transition_atomically(self, engine):
        """An unknown-stream plan in the add set must not strand the
        transition half-applied (removals done, points holding)."""
        engine.admit(ContinuousQuery("q1", (passthrough("a"),),
                                     sink_id="a"))
        engine.run(2)
        bad = ContinuousQuery("q2", (passthrough("b", source="nope"),),
                              sink_id="b")
        with pytest.raises(ValidationError, match="unknown streams"):
            engine.transition(add=[bad], remove=["q1"], hold_ticks=1)
        # q1 still runs; the next transition opens cleanly.
        assert engine.admitted_ids == {"q1"}
        engine.transition(hold_ticks=0)
        engine.run(1)
