"""Load estimation and the DSMS→auction bridge."""

import pytest

from repro.dsms.engine import StreamEngine
from repro.dsms.load import (
    LoadMeter,
    auction_instance_from_catalog,
    estimate_operator_loads,
)
from repro.dsms.operators import AggregateOperator, SelectOperator
from repro.dsms.plan import ContinuousQuery, QueryPlanCatalog
from repro.dsms.streams import SyntheticStream


def select(op_id, source, selectivity, cost=1.0):
    return SelectOperator(op_id, source, lambda t: True,
                          cost_per_tuple=cost,
                          selectivity_estimate=selectivity)


class TestAnalyticEstimation:
    def test_rate_propagation(self):
        a = select("a", "s", selectivity=0.5, cost=2.0)
        b = select("b", "a", selectivity=1.0, cost=3.0)
        catalog = QueryPlanCatalog(
            [ContinuousQuery("q", (a, b), sink_id="b")])
        loads = estimate_operator_loads(catalog, {"s": 10.0})
        assert loads["a"] == pytest.approx(20.0)   # 10 × 2
        assert loads["b"] == pytest.approx(15.0)   # 10×0.5 × 3

    def test_unknown_stream_rate_zero(self):
        a = select("a", "mystery", selectivity=1.0)
        catalog = QueryPlanCatalog(
            [ContinuousQuery("q", (a,), sink_id="a")])
        assert estimate_operator_loads(catalog, {})["a"] == 0.0

    def test_aggregate_reduces_downstream_rate(self):
        agg = AggregateOperator("agg", "s", "x", sum, window=5,
                                cost_per_tuple=1.0)
        after = select("after", "agg", selectivity=1.0, cost=10.0)
        catalog = QueryPlanCatalog(
            [ContinuousQuery("q", (agg, after), sink_id="after")])
        loads = estimate_operator_loads(catalog, {"s": 10.0})
        assert loads["after"] == pytest.approx(10.0 / 5 * 10.0)


class TestMeasuredVsEstimated:
    def test_measurement_tracks_estimate(self):
        engine = StreamEngine(
            [SyntheticStream("s", rate=6, poisson=False, seed=0)])
        op = select("a", "s", selectivity=1.0, cost=1.5)
        engine.admit(ContinuousQuery("q", (op,), sink_id="a"))
        engine.run(20)
        estimated = estimate_operator_loads(engine.catalog, {"s": 6.0})
        measured = engine.measured_loads()
        assert measured["a"] == pytest.approx(estimated["a"], rel=0.01)


class TestLoadMeter:
    def test_means(self):
        meter = LoadMeter()
        meter.record_tick({"a": 4.0})
        meter.record_tick({"a": 6.0, "b": 2.0})
        assert meter.ticks == 2
        assert meter.measured_loads() == {"a": 5.0, "b": 1.0}
        assert meter.total_load() == pytest.approx(6.0)

    def test_empty(self):
        assert LoadMeter().measured_loads() == {}


class TestAuctionBridge:
    def test_instance_from_catalog(self):
        shared = select("shared", "s", selectivity=1.0, cost=1.0)
        shared2 = select("shared", "s", selectivity=1.0, cost=1.0)
        own = select("own", "s", selectivity=1.0, cost=2.0)
        catalog = QueryPlanCatalog([
            ContinuousQuery("q1", (shared, own), sink_id="own",
                            bid=20.0, owner="alice"),
            ContinuousQuery("q2", (shared2,), sink_id="shared",
                            bid=10.0),
        ])
        instance = auction_instance_from_catalog(
            catalog, {"s": 5.0}, capacity=100.0)
        assert instance.num_queries == 2
        assert instance.sharing_degree("shared") == 2
        assert instance.operator("own").load == pytest.approx(10.0)
        assert instance.query("q1").owner_id == "alice"

    def test_measured_loads_override(self):
        a = select("a", "s", selectivity=1.0, cost=1.0)
        catalog = QueryPlanCatalog(
            [ContinuousQuery("q", (a,), sink_id="a", bid=1.0)])
        instance = auction_instance_from_catalog(
            catalog, {"s": 5.0}, capacity=10.0, loads={"a": 7.5})
        assert instance.operator("a").load == 7.5
