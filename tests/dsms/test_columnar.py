"""Unit tests: ColumnBatch, expressions, backend registry, state."""

import copy

import numpy as np
import pytest

from repro.dsms import (
    AggregateOperator,
    BackendSpec,
    ColumnarBackend,
    ColumnBatch,
    ContinuousQuery,
    ScalarBackend,
    SelectOperator,
    StreamEngine,
    StreamTuple,
    SyntheticStream,
    col,
    make_backend,
    registered_backends,
    resolve_backend,
)
from repro.dsms.columnar import MISSING, column_array, supports_block
from repro.dsms.windows import TopKOperator
from repro.utils.validation import ValidationError


def make_tuples():
    return [
        StreamTuple("s", 1, {"k": "a", "v": 1.5}),
        StreamTuple("s", 1, {"k": "b", "v": -2.0, "extra": (1, 2)}),
        StreamTuple("s", 2, {"k": "a", "v": 0.0}),
    ]


class TestColumnBatch:
    def test_round_trip_exact(self):
        tuples = make_tuples()
        batch = ColumnBatch.from_tuples(tuples)
        assert len(batch) == 3
        assert batch.to_tuples() == tuples

    def test_round_trip_preserves_python_types(self):
        batch = ColumnBatch.from_tuples(
            [StreamTuple("s", 1, {"n": 3, "f": 2.5, "b": True,
                                  "s": "x"})])
        payload = batch.to_tuples()[0].payload
        assert type(payload["n"]) is int
        assert type(payload["f"]) is float
        assert type(payload["b"]) is bool
        assert type(payload["s"]) is str

    def test_ragged_payloads_round_trip(self):
        tuples = [
            StreamTuple("s", 1, {"a": 1}),
            StreamTuple("s", 1, {"a": 2, "b": "x"}),
            StreamTuple("s", 2, {"b": "y"}),
        ]
        batch = ColumnBatch.from_tuples(tuples)
        assert batch.to_tuples() == tuples
        # Missing attributes read as None, like StreamTuple.value.
        assert batch.column_values("b") == [None, "x", "y"]
        assert batch.column_values("nope") == [None, None, None]

    def test_take_and_mask(self):
        batch = ColumnBatch.from_tuples(make_tuples())
        kept = batch.mask(np.array([True, False, True]))
        assert [t.value("k") for t in kept.to_tuples()] == ["a", "a"]
        sliced = batch.take(slice(1, 3))
        assert len(sliced) == 2

    def test_concat_mixed_streams(self):
        left = ColumnBatch.from_tuples([StreamTuple("s1", 1, {"a": 1})])
        right = ColumnBatch.from_tuples([StreamTuple("s2", 1, {"a": 2})])
        merged = ColumnBatch.concat([left, right])
        assert [t.stream for t in merged.to_tuples()] == ["s1", "s2"]

    def test_empty(self):
        batch = ColumnBatch.from_tuples([])
        assert len(batch) == 0
        assert batch.to_tuples() == []


class TestColumnArray:
    def test_numeric_packing(self):
        assert column_array([1, 2, 3]).dtype.kind == "i"
        assert column_array([1.5, 2.0]).dtype.kind == "f"
        assert column_array([True, False]).dtype.kind == "b"
        assert column_array(["a", "bb"]).dtype.kind == "U"

    def test_mixed_types_stay_object_and_exact(self):
        # Packing mixed numerics would silently rewrite values
        # (True -> 1, 2 -> 2.0); exactness beats density.
        for values in (["a", 1], [1.0, 2], [True, 2], [1, 2.5]):
            arr = column_array(values)
            assert arr.dtype == object
            out = arr.tolist()
            assert out == values
            assert [type(v) for v in out] == [type(v) for v in values]

    def test_huge_ints_stay_object(self):
        arr = column_array([2**100, 1])
        assert arr.dtype == object
        assert arr.tolist() == [2**100, 1]


class TestMissingSentinel:
    def test_deepcopy_and_copy_keep_identity(self):
        assert copy.deepcopy(MISSING) is MISSING
        assert copy.copy(MISSING) is MISSING

    def test_pickle_keeps_identity(self):
        import pickle

        assert pickle.loads(pickle.dumps(MISSING)) is MISSING


class TestExpressions:
    def test_scalar_and_block_agree(self):
        batch = ColumnBatch.from_tuples(make_tuples())
        for predicate in (
            col("v").gt(0.0),
            col("v").le(-2.0),
            col("k").eq("a"),
            col("k").isin(["b", "c"]),
            col("v").gt(-3.0) & col("k").eq("a"),
            col("v").lt(0.0) | col("k").ne("a"),
            col("extra").eq((1, 2)),
        ):
            mask = predicate.eval_block(batch)
            expected = [predicate(t) for t in batch.tuples()]
            assert mask.tolist() == expected, predicate

    def test_missing_attribute_never_matches(self):
        t = StreamTuple("s", 1, {"other": 5})
        batch = ColumnBatch.from_tuples([t, StreamTuple("s", 1, {"v": 1})])
        predicate = col("v").gt(0)
        assert predicate(t) is False
        assert predicate.eval_block(batch).tolist() == [False, True]
        # Even eq(None) is false for a missing attribute (SQL NULL).
        assert col("v").eq(None)(t) is False

    def test_col_as_key_function(self):
        key = col("k")
        t = StreamTuple("s", 1, {"k": "a"})
        assert key(t) == "a"
        assert supports_block(key)
        assert not supports_block(lambda t: t.value("k"))


class TestBackendRegistry:
    def test_registered(self):
        names = set(registered_backends())
        assert {"scalar", "columnar"} <= names

    def test_spec_parse_and_str(self):
        spec = BackendSpec.parse("columnar:batch=1024")
        assert spec.name == "columnar"
        assert spec.params == {"batch": 1024}
        assert str(spec) == "columnar:batch=1024"
        assert isinstance(spec.create(), ColumnarBackend)
        assert spec.create().batch_rows == 1024

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown execution backend"):
            BackendSpec.parse("vectorwise").validate()

    def test_bad_param_rejected(self):
        with pytest.raises(ValidationError):
            make_backend("scalar", batch=4)
        with pytest.raises(ValidationError):
            resolve_backend("columnar:batch=0")
        # Typo'd parameters fail at *spec* time, naming the menu.
        with pytest.raises(ValidationError, match="batch"):
            BackendSpec.parse("columnar:chunk=64").validate()

    def test_resolve_forms(self):
        assert isinstance(resolve_backend("scalar"), ScalarBackend)
        live = ColumnarBackend()
        assert resolve_backend(live) is live
        with pytest.raises(ValidationError):
            resolve_backend(42)


def _engine(backend):
    return StreamEngine(
        [SyntheticStream("s", rate=3, poisson=False, seed=0,
                         payload_fn=lambda rng, tick, i:
                         {"k": "ab"[i % 2], "v": float(tick + i)})],
        capacity=100.0, backend=backend)


class TestColumnarBackendState:
    def test_pending_lives_in_backend_not_operator(self):
        engine = _engine("columnar")
        agg = AggregateOperator("agg", "s", "v", sum, window=10,
                                group_by=col("k"))
        engine.admit(ContinuousQuery("q", (agg,), sink_id="agg"))
        engine.run(3)
        assert agg.pending_tuples() == 0  # operator object untouched
        assert engine.backend.pending_tuples(agg) == 9

    def test_state_pruned_after_query_removal(self):
        engine = _engine("columnar")
        agg = AggregateOperator("agg", "s", "v", sum, window=10)
        engine.admit(ContinuousQuery("q", (agg,), sink_id="agg"))
        engine.run(2)
        assert engine.backend._agg_state
        engine.remove("q")
        engine.run(1)
        assert not engine.backend._agg_state

    def test_fallback_operator_keeps_own_state(self):
        # TopKOperator has no kernel: it must run its own scalar
        # execute inside the columnar pipeline, state and all.
        results = {}
        for backend in ("scalar", "columnar"):
            engine = _engine(backend)
            top = TopKOperator("top", "s", lambda t: t.value("v"),
                               k=2, window=3)
            engine.admit(ContinuousQuery("q", (top,), sink_id="top"))
            engine.run(4)
            results[backend] = engine.results["q"]
        assert results["scalar"] == results["columnar"]
        assert results["scalar"]

    def test_engine_deepcopy_isolates_columnar_state(self):
        engine = _engine("columnar")
        agg = AggregateOperator("agg", "s", "v", sum, window=10)
        engine.admit(ContinuousQuery("q", (agg,), sink_id="agg"))
        engine.run(2)
        clone = copy.deepcopy(engine)
        clone.run(3)
        assert engine.backend.pending_tuples(
            engine.catalog.operators["agg"]) == 6
        assert clone.backend is not engine.backend

    def test_one_backend_instance_per_spec_resolution(self):
        first = resolve_backend("columnar")
        second = resolve_backend("columnar")
        assert first is not second


class TestSelectChunking:
    def test_chunked_mask_equals_unchunked(self):
        rows = [StreamTuple("s", 1, {"v": float(i % 7)})
                for i in range(50)]
        batch = ColumnBatch.from_tuples(rows)
        op = SelectOperator("sel", "s", col("v").gt(3.0))
        from repro.dsms.columnar.kernels import select_kernel

        small = select_kernel(op, batch, chunk_rows=8)
        large = select_kernel(op, batch, chunk_rows=4096)
        assert small.to_tuples() == large.to_tuples()
        assert len(small) == sum(1 for t in rows if t.value("v") > 3.0)


class TestReviewRegressions:
    """Fixes found in review: state reuse, array payloads, NaN keys,
    type rewrites."""

    def test_recycled_op_id_starts_with_fresh_state(self):
        # A removed aggregate's buffered window must not leak into a
        # *new* operator object re-admitted under the same op id.
        results = {}
        for backend in ("scalar", "columnar"):
            engine = _engine(backend)
            first = AggregateOperator("agg", "s", "v", sum, window=3)
            engine.admit(ContinuousQuery("q", (first,), sink_id="agg"))
            engine.run(1)  # mid-window: one tick buffered
            engine.begin_transition()
            engine.end_transition(remove=["q"])  # no held tuples
            second = AggregateOperator("agg", "s", "v", sum, window=3)
            engine.admit(ContinuousQuery("q2", (second,),
                                         sink_id="agg"))
            engine.run(2)
            results[backend] = (engine.results["q2"],
                                engine.backend.pending_tuples(second))
        assert results["scalar"] == results["columnar"]

    def test_array_payload_values_survive_columnar(self):
        import numpy as np

        tuples = [StreamTuple("s", 1, {"v": np.array([1, 2])}),
                  StreamTuple("s", 1, {"w": 3})]
        batch = ColumnBatch.from_tuples(tuples)
        out = batch.to_tuples()
        assert np.array_equal(out[0].payload["v"], np.array([1, 2]))
        assert out[1].payload == {"w": 3}
        # Predicates over the other (ragged) column must not explode.
        mask = col("w").gt(0).eval_block(batch)
        assert mask.tolist() == [False, True]

    def test_nan_join_keys_match_nothing_on_both_backends(self):
        from repro.dsms import JoinOperator

        def nan_payload(rng, tick, i):
            return {"k": float("nan"), "x": i}

        results = {}
        for backend in ("scalar", "columnar"):
            engine = StreamEngine(
                [SyntheticStream("a", rate=3, poisson=False, seed=0,
                                 payload_fn=nan_payload),
                 SyntheticStream("b", rate=3, poisson=False, seed=1,
                                 payload_fn=nan_payload)],
                backend=backend)
            join = JoinOperator("j", "a", "b", col("k"), col("k"),
                                window=2)
            engine.admit(ContinuousQuery("q", (join,), sink_id="j"))
            engine.run(3)
            results[backend] = len(engine.results["q"])
        assert results["scalar"] == results["columnar"] == 0

    def test_mixed_numeric_payloads_round_trip_exact_types(self):
        tuples = [StreamTuple("s", 1, {"v": True}),
                  StreamTuple("s", 1, {"v": 2}),
                  StreamTuple("s", 2, {"v": 2.5})]
        out = ColumnBatch.from_tuples(tuples).to_tuples()
        assert out == tuples
        assert [type(t.payload["v"]) for t in out] == [bool, int, float]

    def test_concat_never_upcasts_across_batches(self):
        ints = ColumnBatch.from_tuples(
            [StreamTuple("s", 1, {"v": 1})])
        floats = ColumnBatch.from_tuples(
            [StreamTuple("s", 1, {"v": 2.5})])
        merged = ColumnBatch.concat([ints, floats]).to_tuples()
        assert [t.payload["v"] for t in merged] == [1, 2.5]
        assert type(merged[0].payload["v"]) is int

    def test_large_int_vs_float_join_keys_stay_distinct(self):
        # int64+float64 key concat would upcast and equate 2**53+1
        # with float(2**53); the dict path keeps them exact.
        from repro.dsms.columnar.kernels import factorize_pair
        import numpy as np

        left = np.asarray([2**53 + 1])
        right = np.asarray([float(2**53)])
        codes_l, codes_r, _ = factorize_pair(left, right)
        assert codes_l[0] != codes_r[0]
        # Plain equal int/float keys still match, like scalar == does.
        codes_l, codes_r, _ = factorize_pair(
            np.asarray([1]), np.asarray([1.0]))
        assert codes_l[0] == codes_r[0]

    def test_nul_strings_round_trip(self):
        tuples = [StreamTuple("s", 1, {"v": "a\x00"}),
                  StreamTuple("s", 1, {"v": "b"})]
        out = ColumnBatch.from_tuples(tuples).to_tuples()
        assert out == tuples
        assert out[0].payload["v"] == "a\x00"

    def test_nan_isin_identity_matches_scalar(self):
        nan = float("nan")
        t = StreamTuple("s", 1, {"v": nan})
        batch = ColumnBatch.from_tuples(
            [t, StreamTuple("s", 1, {"v": 1.0})])
        predicate = col("v").isin([nan])
        # Scalar `in` matches NaN by identity; the block path must too
        # (NaN-holding columns stay object-typed, preserving identity).
        assert predicate(t) is True
        assert predicate.eval_block(batch).tolist() == [
            predicate(s) for s in batch.tuples()]

    def test_nan_payloads_preserve_identity_in_columns(self):
        nan = float("nan")
        batch = ColumnBatch.from_tuples(
            [StreamTuple("s", 1, {"v": nan})])
        assert batch.columns["v"].dtype == object
        assert batch.to_tuples()[0].payload["v"] is nan

    def test_int_float_comparisons_stay_exact(self):
        big = 2**53
        batch = ColumnBatch.from_tuples(
            [StreamTuple("s", 1, {"x": big + 1})])
        t = batch.tuples()[0]
        for predicate in (col("x").eq(float(big)),
                          col("x").gt(float(big)),
                          col("x").isin([float(big)]),
                          col("x").ne(float(big))):
            assert predicate.eval_block(batch).tolist() == [
                predicate(t)], predicate
        # The common float-column case still takes the numpy path
        # and agrees with scalar.
        fbatch = ColumnBatch.from_tuples(
            [StreamTuple("s", 1, {"v": 1.5})])
        assert col("v").gt(0).eval_block(fbatch).tolist() == [True]

    def test_nul_string_comparison_constants_stay_exact(self):
        batch = ColumnBatch.from_tuples(
            [StreamTuple("s", 1, {"x": "a"}),
             StreamTuple("s", 1, {"x": "b"})])
        t = batch.tuples()[0]
        for predicate in (col("x").eq("a\x00"), col("x").ne("a\x00")):
            assert predicate.eval_block(batch).tolist() == [
                predicate(s) for s in batch.tuples()], predicate
        assert col("x").eq("a\x00")(t) is False


class TestPreBackendCheckpointCompat:
    """Pickles from builds without `backend`/`_order_cache` resume."""

    def test_engine_setstate_defaults_scalar_backend(self):
        from repro.dsms.backend import ScalarBackend
        from repro.dsms.plan import QueryPlanCatalog

        engine = _engine("scalar")
        engine.admit(ContinuousQuery(
            "q", (SelectOperator("sel", "s", col("v").gt(0.0)),),
            sink_id="sel"))
        engine.run(2)
        delivered_before = len(engine.results["q"])
        # Emulate a pre-backend pickle: the attributes do not exist.
        state = dict(engine.__dict__)
        del state["backend"]
        catalog_state = dict(state["catalog"].__dict__)
        del catalog_state["_order_cache"]
        old_catalog = object.__new__(QueryPlanCatalog)
        old_catalog.__setstate__(catalog_state)
        state["catalog"] = old_catalog
        revived = object.__new__(StreamEngine)
        revived.__setstate__(state)
        assert isinstance(revived.backend, ScalarBackend)
        revived.run(2)  # must execute, not AttributeError
        assert len(revived.results["q"]) == delivered_before + 6

    def test_bool_combine_with_plain_callable_side(self):
        # README promise: arbitrary Python predicates work on the
        # columnar backend — including mixed into & / | combinations.
        mixed = col("v").gt(0.0) & (lambda t: t.value("k") == "a")
        results = {}
        for backend in ("scalar", "columnar:batch=2"):
            engine = _engine(backend)
            sel = SelectOperator("sel", "s", mixed)
            engine.admit(ContinuousQuery("q", (sel,), sink_id="sel"))
            engine.run(4)  # > batch size: exercises the chunk gate
            results[backend] = engine.results["q"]
        assert results["scalar"] == results["columnar:batch=2"]
        assert results["scalar"]

    def test_overridden_work_meters_identically(self):
        class CostlySelect(SelectOperator):
            def work(self, batches):
                return 2.0 * super().work(batches)

        loads = {}
        for backend in ("scalar", "columnar"):
            engine = _engine(backend)
            sel = CostlySelect("sel", "s", col("v").gt(0.0),
                               cost_per_tuple=1.0)
            engine.admit(ContinuousQuery("q", (sel,), sink_id="sel"))
            engine.run(3)
            loads[backend] = engine.measured_loads()
        assert loads["scalar"] == loads["columnar"]

    def test_pickle_and_deepcopy_drop_tuple_cache(self):
        import pickle

        batch = ColumnBatch.from_tuples(make_tuples())
        batch.tuples()  # populate the cache
        revived = pickle.loads(pickle.dumps(batch))
        assert revived._tuples is None
        assert revived.to_tuples() == batch.to_tuples()
        clone = copy.deepcopy(batch)
        assert clone._tuples is None
        assert clone.to_tuples() == batch.to_tuples()
