"""Spec-addressable scheduling policies + ScheduledEngine removal."""

import pytest

from repro.dsms.operators import SelectOperator
from repro.dsms.plan import ContinuousQuery
from repro.dsms.scheduler import (
    CheapestFirstPolicy,
    FifoPolicy,
    LongestQueueFirstPolicy,
    PolicySpec,
    RoundRobinPolicy,
    ScheduledEngine,
    make_policy,
    registered_policies,
    resolve_policy,
)
from repro.dsms.streams import SyntheticStream
from repro.utils.validation import ValidationError


def _keep(_t):
    return True


def _query(qid, cost=1.0):
    op = SelectOperator(f"sel_{qid}", "s", _keep, cost_per_tuple=cost,
                        selectivity_estimate=1.0)
    return ContinuousQuery(qid, (op,), sink_id=op.op_id, bid=1.0)


class TestRegistry:
    def test_all_policies_registered(self):
        names = set(registered_policies())
        assert {"fifo", "round-robin", "longest-queue-first",
                "cheapest-first"} <= names

    def test_resolve_forms(self):
        assert isinstance(resolve_policy("fifo"), FifoPolicy)
        assert isinstance(resolve_policy("ROUND-ROBIN"),
                          RoundRobinPolicy)
        assert isinstance(
            resolve_policy(PolicySpec.parse("cheapest-first")),
            CheapestFirstPolicy)
        live = LongestQueueFirstPolicy()
        assert resolve_policy(live) is live
        with pytest.raises(ValidationError):
            resolve_policy(3.14)

    def test_unknown_name_lists_the_menu(self):
        with pytest.raises(KeyError) as excinfo:
            resolve_policy("warp")
        assert "fifo" in str(excinfo.value)
        assert "round-robin" in str(excinfo.value)

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValidationError):
            PolicySpec.parse("fifo:speed=9").validate()

    def test_make_policy(self):
        assert isinstance(make_policy("fifo"), FifoPolicy)

    def test_spec_str_roundtrip(self):
        assert str(PolicySpec.parse("fifo")) == "fifo"

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            PolicySpec("")


class TestFifoPolicy:
    def test_preserves_the_offered_topological_order(self):
        ops = [SelectOperator(f"op{i}", "s", _keep) for i in range(4)]
        assert FifoPolicy().order(ops, {}) == ops


class TestEngineIntegration:
    def test_engine_accepts_policy_spec_strings(self):
        engine = ScheduledEngine(
            [SyntheticStream("s", rate=3.0, seed=0)], capacity=10.0,
            policy="cheapest-first")
        assert isinstance(engine.policy, CheapestFirstPolicy)

    def test_remove_drops_orphaned_queues_keeps_shared(self):
        engine = ScheduledEngine(
            [SyntheticStream("s", rate=3.0, seed=0)], capacity=1.0)
        shared_op = SelectOperator("shared", "s", _keep,
                                   cost_per_tuple=5.0)
        first = ContinuousQuery("q1", (shared_op,), sink_id="shared",
                                bid=1.0)
        second = ContinuousQuery(
            "q2",
            (SelectOperator("shared", "s", _keep, cost_per_tuple=5.0),),
            sink_id="shared", bid=1.0)
        solo = _query("q3")
        for query in (first, second, solo):
            engine.admit(query)
        engine.run(3)  # builds queues (capacity is tiny)
        assert engine.admitted_ids == {"q1", "q2", "q3"}

        engine.remove("q1")
        # shared op still referenced by q2: queue survives.
        assert "shared" in engine._queues
        engine.remove("q2")
        assert "shared" not in engine._queues
        assert engine.admitted_ids == {"q3"}

    def test_remove_unknown_query_raises(self):
        engine = ScheduledEngine(
            [SyntheticStream("s", rate=3.0, seed=0)], capacity=1.0)
        # Same contract as the catalog (and StreamEngine.remove).
        with pytest.raises(KeyError):
            engine.remove("ghost")

    def test_latency_samples_kept_only_on_request(self):
        def run_engine(keep):
            engine = ScheduledEngine(
                [SyntheticStream("s", rate=3.0, seed=0)],
                capacity=50.0, keep_latency_samples=keep)
            engine.admit(_query("q1"))
            engine.run(5)
            return engine

        assert run_engine(False).latency_samples is None
        sampled = run_engine(True)
        assert sampled.latency_samples
        stats = sampled.latency[
            "q1"]
        assert len(sampled.latency_samples) == stats.count
        assert sum(sampled.latency_samples) == pytest.approx(
            stats.total)
