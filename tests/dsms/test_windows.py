"""Sliding-window operator tests."""

import pytest

from repro.dsms.tuples import StreamTuple
from repro.dsms.windows import (
    DistinctOperator,
    SlidingAggregateOperator,
    TopKOperator,
)


def batch(tick, payloads, stream="s"):
    return [StreamTuple(stream, tick, p, origin=(f"{stream}@{tick}#{i}",))
            for i, p in enumerate(payloads)]


class TestSlidingAggregate:
    def test_emits_every_tick(self):
        op = SlidingAggregateOperator("sl", "s", "v", sum, window=3)
        out1 = op.execute({"s": batch(1, [{"v": 1}])})
        out2 = op.execute({"s": batch(2, [{"v": 2}])})
        assert out1[0].value("value") == 1
        assert out2[0].value("value") == 3   # window covers both

    def test_window_slides(self):
        op = SlidingAggregateOperator("sl", "s", "v", sum, window=2)
        op.execute({"s": batch(1, [{"v": 10}])})
        op.execute({"s": batch(2, [{"v": 5}])})
        out = op.execute({"s": batch(3, [{"v": 1}])})
        # tick-1 tuple expired: 5 + 1.
        assert out[0].value("value") == 6

    def test_group_by(self):
        op = SlidingAggregateOperator(
            "sl", "s", "v", max, window=3,
            group_by=lambda t: t.value("g"))
        out = op.execute({"s": batch(1, [
            {"g": "a", "v": 1}, {"g": "a", "v": 7}, {"g": "b", "v": 3}])})
        values = {t.value("group"): t.value("value") for t in out}
        assert values == {"a": 7, "b": 3}

    def test_empty_tick_no_output(self):
        op = SlidingAggregateOperator("sl", "s", "v", sum, window=3)
        assert op.execute({"s": []}) == []

    def test_reset(self):
        op = SlidingAggregateOperator("sl", "s", "v", sum, window=3)
        op.execute({"s": batch(1, [{"v": 1}])})
        op.reset()
        assert op.pending_tuples() == 0


class TestDistinct:
    def test_dedup_within_window(self):
        op = DistinctOperator("d", "s", key=lambda t: t.value("k"),
                              window=5)
        out1 = op.execute({"s": batch(1, [{"k": "x"}, {"k": "x"},
                                          {"k": "y"}])})
        assert len(out1) == 2
        out2 = op.execute({"s": batch(2, [{"k": "x"}])})
        assert out2 == []   # still suppressed

    def test_key_reappears_after_window(self):
        op = DistinctOperator("d", "s", key=lambda t: t.value("k"),
                              window=2)
        op.execute({"s": batch(1, [{"k": "x"}])})
        out = op.execute({"s": batch(4, [{"k": "x"}])})
        assert len(out) == 1


class TestTopK:
    def test_ranks_by_score(self):
        op = TopKOperator("t", "s", score=lambda t: t.value("v"),
                          k=2, window=3)
        out = op.execute({"s": batch(1, [{"v": 5}, {"v": 9}, {"v": 1}])})
        assert [t.value("v") for t in out] == [9, 5]
        assert [t.value("rank") for t in out] == [1, 2]

    def test_window_expiry_drops_old_leaders(self):
        op = TopKOperator("t", "s", score=lambda t: t.value("v"),
                          k=1, window=2)
        op.execute({"s": batch(1, [{"v": 100}])})
        out = op.execute({"s": batch(3, [{"v": 7}])})
        assert [t.value("v") for t in out] == [7]

    def test_fewer_than_k(self):
        op = TopKOperator("t", "s", score=lambda t: t.value("v"),
                          k=5, window=3)
        out = op.execute({"s": batch(1, [{"v": 2}])})
        assert len(out) == 1


class TestEngineIntegration:
    def test_sliding_aggregate_in_engine(self):
        from repro.dsms.engine import StreamEngine
        from repro.dsms.plan import ContinuousQuery
        from repro.dsms.streams import SyntheticStream

        engine = StreamEngine(
            [SyntheticStream("s", rate=2, poisson=False, seed=0,
                             payload_fn=lambda rng, tick, i: {"v": 1})])
        op = SlidingAggregateOperator("sl", "s", "v", sum, window=4)
        engine.admit(ContinuousQuery("q", (op,), sink_id="sl"))
        engine.run(6)
        results = engine.results["q"]
        assert len(results) == 6          # one aggregate per tick
        assert results[-1].value("value") == 8   # 4 ticks × 2 tuples
