"""Query-plan catalog tests: sharing, merging, topology."""

import pytest

from repro.dsms.operators import SelectOperator, UnionOperator
from repro.dsms.plan import ContinuousQuery, QueryPlanCatalog
from repro.utils.validation import ValidationError


def select(op_id, source="s", cost=1.0):
    return SelectOperator(op_id, source, lambda t: True,
                          cost_per_tuple=cost)


class TestContinuousQuery:
    def test_valid(self):
        q = ContinuousQuery("q", (select("a"),), sink_id="a", bid=5.0)
        assert q.operator_ids == ("a",)
        assert q.true_value == 5.0

    def test_sink_must_be_member(self):
        with pytest.raises(ValidationError):
            ContinuousQuery("q", (select("a"),), sink_id="zzz")

    def test_duplicate_operator_rejected(self):
        with pytest.raises(ValidationError):
            ContinuousQuery("q", (select("a"), select("a")), sink_id="a")


class TestCatalogSharing:
    def test_shared_operator_merged(self):
        catalog = QueryPlanCatalog()
        catalog.add(ContinuousQuery("q1", (select("shared"),),
                                    sink_id="shared"))
        catalog.add(ContinuousQuery("q2", (select("shared"),),
                                    sink_id="shared"))
        assert len(catalog.operators) == 1
        assert catalog.sharing_degree("shared") == 2
        assert set(catalog.queries_containing("shared")) == {"q1", "q2"}

    def test_conflicting_share_rejected(self):
        catalog = QueryPlanCatalog()
        catalog.add(ContinuousQuery("q1", (select("x", cost=1.0),),
                                    sink_id="x"))
        with pytest.raises(ValidationError):
            catalog.add(ContinuousQuery("q2", (select("x", cost=9.0),),
                                        sink_id="x"))

    def test_remove_drops_orphans_keeps_shared(self):
        catalog = QueryPlanCatalog()
        catalog.add(ContinuousQuery(
            "q1", (select("shared"), select("only1")), sink_id="only1"))
        catalog.add(ContinuousQuery("q2", (select("shared"),),
                                    sink_id="shared"))
        catalog.remove("q1")
        assert "only1" not in catalog.operators
        assert "shared" in catalog.operators

    def test_duplicate_query_rejected(self):
        catalog = QueryPlanCatalog()
        catalog.add(ContinuousQuery("q", (select("a"),), sink_id="a"))
        with pytest.raises(ValidationError):
            catalog.add(ContinuousQuery("q", (select("b"),), sink_id="b"))


class TestTopology:
    def test_topological_order(self):
        a = select("a", source="s")
        b = SelectOperator("b", "a", lambda t: True)
        c = SelectOperator("c", "b", lambda t: True)
        catalog = QueryPlanCatalog(
            [ContinuousQuery("q", (c, a, b), sink_id="c")])
        order = [op.op_id for op in catalog.topological_order()]
        assert order.index("a") < order.index("b") < order.index("c")

    def test_cycle_detected(self):
        a = SelectOperator("a", "b", lambda t: True)
        b = SelectOperator("b", "a", lambda t: True)
        catalog = QueryPlanCatalog(
            [ContinuousQuery("q", (a, b), sink_id="a")])
        with pytest.raises(ValidationError):
            catalog.topological_order()

    def test_stream_names(self):
        a = select("a", source="s1")
        u = UnionOperator("u", ["a", "s2"])
        catalog = QueryPlanCatalog(
            [ContinuousQuery("q", (a, u), sink_id="u")])
        assert catalog.stream_names() == {"s1", "s2"}

    def test_subgraph_order(self):
        a = select("a")
        b = select("b")
        catalog = QueryPlanCatalog([
            ContinuousQuery("q1", (a,), sink_id="a"),
            ContinuousQuery("q2", (b,), sink_id="b"),
        ])
        sub = [op.op_id for op in catalog.subgraph_order(["q1"])]
        assert sub == ["a"]


class TestTopologicalOrderCache:
    def test_repeated_calls_return_equal_fresh_lists(self):
        a = select("a")
        catalog = QueryPlanCatalog(
            [ContinuousQuery("q", (a,), sink_id="a")])
        first = catalog.topological_order()
        second = catalog.topological_order()
        assert first == second
        assert first is not second  # callers may mutate their copy
        first.clear()
        assert catalog.topological_order() == second

    def test_cache_invalidated_by_add_and_remove(self):
        a = select("a")
        catalog = QueryPlanCatalog(
            [ContinuousQuery("q1", (a,), sink_id="a")])
        assert [op.op_id for op in catalog.topological_order()] == ["a"]
        b = select("b")
        catalog.add(ContinuousQuery("q2", (b,), sink_id="b"))
        assert [op.op_id for op in catalog.topological_order()] == [
            "a", "b"]
        catalog.remove("q1")
        assert [op.op_id for op in catalog.topological_order()] == ["b"]

    def test_cache_invalidated_by_engine_transition(self):
        # apply_changes regression: a transition mutates the plan
        # through add/remove, so the next tick must execute the new
        # operator set, not a stale cached order.
        from repro.dsms.engine import StreamEngine
        from repro.dsms.streams import SyntheticStream

        engine = StreamEngine(
            [SyntheticStream("s", rate=2, poisson=False, seed=0)])
        engine.admit(ContinuousQuery("q1", (select("a"),), sink_id="a"))
        engine.run(2)
        engine.transition(
            add=[ContinuousQuery("q2", (select("b"),), sink_id="b")],
            remove=["q1"])
        engine.run(2)
        order = [op.op_id for op in engine.catalog.topological_order()]
        assert order == ["b"]
        # 2 held-and-replayed tuples + 2 ticks × 2: the new operator
        # set executed, including over the transition's held arrivals.
        assert len(engine.results["q2"]) == 6
