"""Differential suite: scalar ≡ columnar on randomized plans.

Hypothesis generates random operator DAGs (select/join/aggregate
mixes over two streams, with queries sharing subgraphs), builds two
identical engines — one per backend — feeds them identical arrivals,
and asserts the *entire observable state* matches: the
:class:`EngineReport`, every query's result log (tuple-for-tuple),
and the per-operator measured loads.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsms import (
    AggregateOperator,
    ContinuousQuery,
    JoinOperator,
    MapOperator,
    ProjectOperator,
    ReplayStream,
    SelectOperator,
    StreamEngine,
    SyntheticStream,
    UnionOperator,
    col,
)

KEYS = ("a", "b", "c")


def _payload_s1(_rng, tick, index):
    payload = {"k": KEYS[(tick + index) % 3],
               "v": round(0.1 * ((tick * 7 + index * 3) % 23) - 1.0, 3)}
    if (tick + index) % 3 == 0:
        payload["w"] = (tick + index) % 5
    return payload


def _payload_s2(_rng, tick, index):
    return {"k": KEYS[(tick * 2 + index) % 3],
            "u": float((tick * 5 + index) % 11)}


def make_sources():
    """Fresh, deterministic sources (identical across engines)."""
    return [
        SyntheticStream("s1", rate=3, payload_fn=_payload_s1,
                        seed=0, poisson=False),
        SyntheticStream("s2", rate=2, payload_fn=_payload_s2,
                        seed=1, poisson=False),
    ]


def _sum_numeric(values):
    return sum(v for v in values if isinstance(v, (int, float)))


def _key_fn(t):
    return t.value("k")


def build_operators(specs):
    """Instantiate fresh operator objects from a plan description."""
    ops = {}
    for i, spec in enumerate(specs):
        oid = f"o{i}"
        kind = spec[0]
        if kind == "select":
            _, src, threshold, use_expr = spec
            predicate = (col("v").gt(threshold) if use_expr
                         else (lambda t, thr=threshold:
                               (t.value("v") or 0.0) > thr))
            ops[oid] = SelectOperator(
                oid, src, predicate, selectivity_estimate=0.5)
        elif kind == "project":
            _, src, attrs = spec
            ops[oid] = ProjectOperator(oid, src, attrs)
        elif kind == "map":
            _, src, delta = spec
            ops[oid] = MapOperator(
                oid, src,
                lambda p, d=delta: {**p, "m": (p.get("v") or 0.0) + d})
        elif kind == "join":
            _, left, right, window, use_expr = spec
            left_key = col("k") if use_expr else _key_fn
            right_key = col("k") if use_expr else _key_fn
            ops[oid] = JoinOperator(
                oid, left, right, left_key, right_key, window=window)
        elif kind == "agg":
            _, src, window, grouped, use_expr = spec
            group_by = None
            if grouped:
                group_by = col("k") if use_expr else _key_fn
            ops[oid] = AggregateOperator(
                oid, src, "v", _sum_numeric, window=window,
                group_by=group_by)
        elif kind == "union":
            _, first, second = spec
            ops[oid] = UnionOperator(oid, [first, second])
        else:  # pragma: no cover - strategy bug
            raise AssertionError(kind)
    return ops


def ancestors(specs, sink):
    """The sink's operator closure (op ids feeding it, plus itself)."""
    inputs_of = {}
    for i, spec in enumerate(specs):
        kind = spec[0]
        if kind == "join":
            inputs_of[f"o{i}"] = [spec[1], spec[2]]
        elif kind == "union":
            inputs_of[f"o{i}"] = [spec[1], spec[2]]
        else:
            inputs_of[f"o{i}"] = [spec[1]]
    closure = set()
    frontier = [sink]
    while frontier:
        node = frontier.pop()
        if node in closure or node not in inputs_of:
            continue
        closure.add(node)
        frontier.extend(inputs_of[node])
    return closure


def build_engine(specs, sinks, backend):
    engine = StreamEngine(make_sources(), capacity=500.0,
                          backend=backend)
    ops = build_operators(specs)
    for qi, sink in enumerate(sinks):
        keep = ancestors(specs, sink)
        query_ops = tuple(ops[oid] for oid in sorted(keep))
        engine.admit(ContinuousQuery(
            f"q{qi}", query_ops, sink_id=sink, bid=1.0))
    return engine


@st.composite
def plan_specs(draw):
    n_ops = draw(st.integers(min_value=2, max_value=7))
    specs = []
    nodes = ["s1", "s2"]
    for i in range(n_ops):
        kind = draw(st.sampled_from(
            ["select", "select", "project", "map", "join", "agg",
             "union"]))
        src = draw(st.sampled_from(nodes))
        if kind == "select":
            threshold = draw(st.floats(
                min_value=-1.0, max_value=1.0, allow_nan=False))
            specs.append(("select", src, threshold,
                          draw(st.booleans())))
        elif kind == "project":
            attrs = tuple(draw(st.sets(
                st.sampled_from(["k", "v", "w", "u", "m"]),
                min_size=1, max_size=3)))
            specs.append(("project", src, attrs))
        elif kind == "map":
            delta = draw(st.floats(
                min_value=-2.0, max_value=2.0, allow_nan=False))
            specs.append(("map", src, delta))
        elif kind == "join":
            other = draw(st.sampled_from(nodes))
            window = draw(st.integers(min_value=1, max_value=3))
            specs.append(("join", src, other, window,
                          draw(st.booleans())))
        elif kind == "agg":
            window = draw(st.integers(min_value=1, max_value=3))
            specs.append(("agg", src, window, draw(st.booleans()),
                          draw(st.booleans())))
        else:
            other = draw(st.sampled_from(nodes))
            specs.append(("union", src, other))
        nodes.append(f"o{i}")
    op_nodes = [n for n in nodes if n.startswith("o")]
    sinks = draw(st.lists(st.sampled_from(op_nodes), min_size=1,
                          max_size=3, unique=True))
    ticks = draw(st.integers(min_value=3, max_value=8))
    return specs, sinks, ticks


def assert_equivalent(scalar, columnar):
    assert scalar.report == columnar.report
    assert scalar.measured_loads() == columnar.measured_loads()
    assert set(scalar.results) == set(columnar.results)
    for query_id in scalar.results:
        assert scalar.results[query_id] == columnar.results[query_id], (
            f"result log of {query_id} diverged")


class TestDifferential:
    @settings(max_examples=100, deadline=None)
    @given(plan=plan_specs())
    def test_scalar_equals_columnar(self, plan):
        specs, sinks, ticks = plan
        scalar = build_engine(specs, sinks, "scalar")
        columnar = build_engine(specs, sinks, "columnar")
        scalar.run(ticks)
        columnar.run(ticks)
        assert_equivalent(scalar, columnar)

    @settings(max_examples=25, deadline=None)
    @given(plan=plan_specs(),
           batch=st.sampled_from([1, 2, 7, 64]))
    def test_equivalence_is_batch_size_independent(self, plan, batch):
        specs, sinks, ticks = plan
        scalar = build_engine(specs, sinks, "scalar")
        columnar = build_engine(specs, sinks, f"columnar:batch={batch}")
        scalar.run(ticks)
        columnar.run(ticks)
        assert_equivalent(scalar, columnar)


def _build_transition_pair():
    """Two engines with a grouped aggregate, for drain equivalence."""
    engines = []
    for backend in ("scalar", "columnar"):
        engine = StreamEngine(make_sources(), capacity=500.0,
                              backend=backend)
        select = SelectOperator("sel", "s1", col("v").gt(-0.5),
                                selectivity_estimate=0.7)
        agg = AggregateOperator("agg", "sel", "v", _sum_numeric,
                                window=4, group_by=col("k"))
        join = JoinOperator("join", "sel", "s2", col("k"), col("k"),
                            window=2)
        engine.admit(ContinuousQuery("qa", (select, agg),
                                     sink_id="agg"))
        engine.admit(ContinuousQuery("qj", (select, join),
                                     sink_id="join"))
        engines.append(engine)
    return engines


class TestTransitionDifferential:
    def test_drain_and_replay_equivalence(self):
        scalar, columnar = _build_transition_pair()
        replacement_specs = [("select", "s2", 3.0, True)]
        for engine in (scalar, columnar):
            engine.run(3)  # mid-window: the aggregate holds state
            ops = build_operators(replacement_specs)
            query = ContinuousQuery("qn", (ops["o0"],), sink_id="o0")
            engine.transition(add=[query], remove=["qa"],
                              hold_ticks=2)
            engine.run(4)
        assert_equivalent(scalar, columnar)
        # The drained partial window must actually exist, identically.
        partials = [t for t in scalar.results["qa"]
                    if t.value("partial")]
        assert partials
        assert partials == [t for t in columnar.results["qa"]
                            if t.value("partial")]

    def test_drain_counts_match(self):
        scalar, columnar = _build_transition_pair()
        counts = []
        for engine in (scalar, columnar):
            engine.run(2)
            engine.begin_transition()
            counts.append(engine.drain())
            engine.hold_tick()
            engine.end_transition()
        assert counts[0] == counts[1]
        assert_equivalent(scalar, columnar)


class TestReplayDifferential:
    def test_replayed_arrivals_identical_results(self):
        # ReplayStream decouples the two engines from RNG state
        # entirely; also exercises the record() helper.
        base = SyntheticStream("s1", rate=4, payload_fn=_payload_s1,
                               seed=5, poisson=True)
        recording = ReplayStream.record(base, ticks=6)
        engines = []
        for backend in ("scalar", "columnar"):
            engine = StreamEngine(
                [ReplayStream("s1", recording._batches)],
                backend=backend)
            select = SelectOperator("sel", "s1", col("v").gt(0.0))
            engine.admit(ContinuousQuery("q", (select,),
                                         sink_id="sel"))
            engine.run(6)
            engines.append(engine)
        assert_equivalent(*engines)
        assert engines[0].report.source_tuples > 0


@pytest.mark.parametrize("backend", ["scalar", "columnar"])
def test_shared_subgraph_executes_once(backend):
    """Operator sharing is backend-independent."""
    engine = StreamEngine(make_sources(), capacity=100.0,
                          backend=backend)
    shared = SelectOperator("shared", "s1", col("v").gt(-10.0),
                            selectivity_estimate=1.0)
    shared_again = SelectOperator("shared", "s1", col("v").gt(-10.0),
                                  selectivity_estimate=1.0)
    engine.admit(ContinuousQuery("q1", (shared,), sink_id="shared"))
    engine.admit(ContinuousQuery("q2", (shared_again,),
                                 sink_id="shared"))
    engine.run(5)
    merged = engine.catalog.operators["shared"]
    assert merged.processed_tuples == 15  # 3/tick × 5, not doubled
    assert len(engine.results["q1"]) == 15
    assert engine.results["q1"] == engine.results["q2"]
