"""Query-builder and common-subexpression-detection tests."""

import pytest

from repro.dsms.builder import QueryBuilder
from repro.dsms.engine import StreamEngine
from repro.dsms.plan import QueryPlanCatalog
from repro.dsms.sharing_detector import canonicalize
from repro.dsms.streams import SyntheticStream
from repro.utils.validation import ValidationError


def trader(qid, bid, threshold, share=True):
    """A builder query: shared filter + private aggregate."""
    return (QueryBuilder(qid, bid=bid, owner=qid)
            .source("s")
            .where(lambda t, th=threshold: t.value("v") > th,
                   cost=0.5, selectivity=0.5,
                   share_key=f"v>{threshold}" if share else None)
            .sliding_aggregate("v", max, window=3,
                               share_key=None)
            .build())


class TestQueryBuilder:
    def test_linear_pipeline(self):
        query = (QueryBuilder("q1", bid=10.0)
                 .source("s")
                 .where(lambda t: True, share_key="all")
                 .project(["a"])
                 .build())
        assert query.bid == 10.0
        assert len(query.operators) == 2
        assert query.sink_id == query.operators[-1].op_id

    def test_join_absorbs_other_branch(self):
        left = (QueryBuilder("q", bid=5.0)
                .source("s1")
                .where(lambda t: True, share_key="l"))
        right = QueryBuilder("_right").source("s2").where(
            lambda t: True, share_key="r")
        query = left.join(
            right, left_key=lambda t: 1, right_key=lambda t: 1).build()
        assert len(query.operators) == 3
        kinds = [op.op_id.split(".")[-1] for op in query.operators]
        assert "join" in kinds

    def test_source_required_first(self):
        with pytest.raises(ValidationError):
            QueryBuilder("q").where(lambda t: True)

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValidationError):
            QueryBuilder("q").source("s").build()

    def test_operator_ids_unique_per_query(self):
        query = (QueryBuilder("q")
                 .source("s")
                 .where(lambda t: True)
                 .where(lambda t: False)
                 .build())
        ids = [op.op_id for op in query.operators]
        assert len(set(ids)) == len(ids)

    def test_runs_in_engine(self):
        engine = StreamEngine(
            [SyntheticStream("s", rate=3, poisson=False, seed=0,
                             payload_fn=lambda r, t, i: {"v": i})])
        query = (QueryBuilder("q", bid=1.0)
                 .source("s")
                 .where(lambda t: t.value("v") >= 1, share_key="v>=1")
                 .build())
        engine.admit(query)
        engine.run(4)
        assert len(engine.results["q"]) == 8  # 2 of 3 pass per tick


class TestCanonicalize:
    def test_equal_filters_merge(self):
        q1 = trader("u1", 10.0, threshold=5)
        q2 = trader("u2", 8.0, threshold=5)
        report = canonicalize([q1, q2])
        assert report.merged_operators == 1
        catalog = QueryPlanCatalog(report.queries)
        shared = [op_id for op_id in catalog.operators
                  if catalog.sharing_degree(op_id) == 2]
        assert len(shared) == 1

    def test_different_parameters_stay_private(self):
        q1 = trader("u1", 10.0, threshold=5)
        q2 = trader("u2", 8.0, threshold=9)
        report = canonicalize([q1, q2])
        assert report.merged_operators == 0

    def test_no_share_key_stays_private(self):
        q1 = trader("u1", 10.0, threshold=5, share=False)
        q2 = trader("u2", 8.0, threshold=5, share=False)
        report = canonicalize([q1, q2])
        assert report.merged_operators == 0

    def test_transitive_sharing_through_pipeline(self):
        """Equal step 2 on top of equal step 1 merges too."""
        def two_step(qid):
            return (QueryBuilder(qid, bid=1.0)
                    .source("s")
                    .where(lambda t: True, share_key="p1")
                    .project(["a"])
                    .build())

        report = canonicalize([two_step("u1"), two_step("u2")])
        assert report.merged_operators == 2
        catalog = QueryPlanCatalog(report.queries)
        assert len(catalog.operators) == 2  # both steps shared

    def test_merged_queries_run_shared_in_engine(self):
        engine = StreamEngine(
            [SyntheticStream("s", rate=4, poisson=False, seed=0,
                             payload_fn=lambda r, t, i: {"v": 10})])
        report = canonicalize([
            trader("u1", 10.0, threshold=5),
            trader("u2", 8.0, threshold=5),
        ])
        for query in report.queries:
            engine.admit(query)
        engine.run(3)
        # The merged filter processed each tuple once (12), not twice.
        shared_id = next(
            op_id for op_id in engine.catalog.operators
            if engine.catalog.sharing_degree(op_id) == 2)
        assert engine.catalog.operators[shared_id].processed_tuples == 12
        assert len(engine.results["u1"]) > 0
        assert len(engine.results["u2"]) > 0

    def test_fair_share_load_drops_after_canonicalization(self):
        """Sharing detection changes the auction's fair-share loads —
        the interface between the substrate and the mechanisms."""
        from repro.core.loads import static_fair_share_load
        from repro.dsms.load import auction_instance_from_catalog

        raw = [trader("u1", 10.0, threshold=5),
               trader("u2", 8.0, threshold=5)]
        before = auction_instance_from_catalog(
            QueryPlanCatalog(raw), {"s": 4.0}, capacity=100.0)
        report = canonicalize(raw)
        after = auction_instance_from_catalog(
            QueryPlanCatalog(report.queries), {"s": 4.0},
            capacity=100.0)
        q1_before = static_fair_share_load(before, before.query("u1"))
        q1_after = static_fair_share_load(after, after.query("u1"))
        assert q1_after < q1_before
