"""AdmissionService facade: parity with the old center, builder, hooks."""

import pytest

from repro.core import CAT, AuctionInstance, Query
from repro.dsms.operators import SelectOperator
from repro.dsms.plan import ContinuousQuery
from repro.dsms.streams import SyntheticStream
from repro.service import (
    AdmissionService,
    HookRegistry,
    ServiceBuilder,
    ServiceConfig,
    service_from_config,
)
from repro.utils.validation import ValidationError


def make_query(qid, bid, cost, owner=None, shared_id=None):
    op_id = shared_id or f"sel_{qid}"
    sel = SelectOperator(op_id, "s", lambda t: True,
                         cost_per_tuple=cost, selectivity_estimate=1.0)
    return ContinuousQuery(qid, (sel,), sink_id=op_id, bid=bid,
                           owner=owner)


def build_service(**overrides):
    builder = (ServiceBuilder()
               .with_sources(SyntheticStream("s", rate=5, poisson=False,
                                             seed=0))
               .with_capacity(overrides.get("capacity", 30.0))
               .with_mechanism(overrides.get("mechanism", CAT()))
               .with_ticks_per_period(overrides.get("ticks", 10)))
    return builder.build()


class TestFacadeParity:
    """The new facade reproduces the old DSMSCenter behavior exactly."""

    def test_admits_within_capacity(self):
        service = build_service()
        for i, bid in enumerate([50, 40, 30, 20]):
            service.submit(make_query(f"q{i}", bid, 2.0))
        report = service.run_period()
        assert report.admitted == ("q0", "q1", "q2")
        assert report.rejected == ("q3",)
        assert report.revenue > 0
        assert report.engine_utilization == pytest.approx(1.0)

    def test_running_queries_reauctioned(self):
        service = build_service()
        service.submit(make_query("q1", 30.0, 2.0))
        service.run_period()
        for i, bid in enumerate([90, 80, 70]):
            service.submit(make_query(f"new{i}", bid, 2.0))
        report = service.run_period()
        assert "q1" not in report.admitted
        assert service.engine.admitted_ids == {"new0", "new1", "new2"}

    def test_matches_deprecated_center(self):
        from repro.cloud import DSMSCenter

        service = build_service()
        with pytest.deprecated_call():
            center = DSMSCenter(
                sources=[SyntheticStream("s", rate=5, poisson=False,
                                         seed=0)],
                capacity=30.0,
                mechanism=CAT(),
                ticks_per_period=10,
            )
        for target in (service, center):
            for i, bid in enumerate([50, 40, 30, 20]):
                target.submit(make_query(f"q{i}", bid, 2.0))
        ours, theirs = service.run_period(), center.run_period()
        assert ours.admitted == theirs.admitted
        assert ours.revenue == theirs.revenue
        assert ours.engine_ticks == theirs.engine_ticks
        assert ours.engine_utilization == theirs.engine_utilization

    def test_empty_auction_rejected(self):
        with pytest.raises(ValidationError):
            build_service().run_period()

    def test_withdraw_unknown_id_names_pending(self):
        service = build_service()
        service.submit(make_query("q1", 10.0, 1.0))
        with pytest.raises(ValidationError, match="q1"):
            service.withdraw("ghost")
        assert service.pending_ids == {"q1"}

    def test_run_periods_batches(self):
        service = build_service()
        reports = service.run_periods([
            [make_query("a", 10.0, 1.0)],
            [make_query("b", 20.0, 1.0)],
        ])
        assert [r.period for r in reports] == [1, 2]
        assert service.period == 2


class TestPeriodPhases:
    """run_period decomposes into prepare/settle/execute — the seams
    the repro.cluster federation interleaves across shards."""

    def test_phases_match_run_period(self):
        whole, phased = build_service(), build_service()
        for service in (whole, phased):
            for i, bid in enumerate([50, 40, 30, 20]):
                service.submit(make_query(f"q{i}", bid, 2.0))
        expected = whole.run_period()

        preparation = phased.prepare_period()
        assert preparation.period == 1
        assert set(preparation.candidates) == {"q0", "q1", "q2", "q3"}
        outcome = phased.mechanism.run(preparation.instance)
        settlement = phased.settle_period(preparation, outcome)
        assert settlement.admitted == expected.admitted
        assert settlement.rejected == expected.rejected
        report = phased.execute_period(settlement)
        assert report.revenue == expected.revenue
        assert report.engine_ticks == expected.engine_ticks
        assert report.engine_utilization == expected.engine_utilization

    def test_settle_rolls_back_on_planless_winner(self):
        from repro.core import AuctionInstance, Operator, Query

        service = build_service()
        service.submit(make_query("q0", 10.0, 2.0))
        preparation = service.prepare_period()
        ghost = AuctionInstance(
            {"op": Operator("op", 1.0)},
            (Query("ghost", ("op",), bid=5.0),), capacity=30.0)
        outcome = service.mechanism.run(ghost)
        with pytest.raises(ValidationError, match="ghost"):
            service.settle_period(preparation, outcome)
        assert service.period == 0
        assert service.total_revenue() == 0.0

    def test_idle_period_advances_engine_without_auction(self):
        service = build_service()
        report = service.run_idle_period()
        assert report.period == 1
        assert report.revenue == 0.0
        assert report.admitted == () and report.rejected == ()
        assert report.outcome.mechanism == "idle"
        assert report.engine_ticks == 10
        assert service.period == 1
        assert service.reports == [report]

    def test_idle_report_serializes(self):
        from repro.io import report_from_dict, report_to_dict

        service = build_service()
        document = report_to_dict(service.run_idle_period())
        again = report_from_dict(document)
        assert again.outcome.mechanism == "idle"
        assert again.revenue == 0.0


class TestCoordinatorCapacityValidation:
    """Regression: capacity must be validated on every mutation, not
    just in the constructor."""

    def test_constructor_still_validates(self):
        from repro.service import AuctionCoordinator

        with pytest.raises(ValidationError, match="positive"):
            AuctionCoordinator(0.0)
        with pytest.raises(ValidationError, match="positive"):
            AuctionCoordinator(-3.0)

    def test_mutation_validates(self):
        from repro.service import AuctionCoordinator

        coordinator = AuctionCoordinator(10.0)
        for bogus in (0.0, -1.0, float("nan")):
            with pytest.raises(ValidationError, match="positive"):
                coordinator.capacity = bogus
        assert coordinator.capacity == 10.0  # unchanged after rejects

    def test_valid_mutation_flows_into_built_auctions(self):
        service = build_service()
        service.submit(make_query("q0", 10.0, 1.0))
        service.coordinator.capacity = 17.0
        assert service.build_auction().capacity == 17.0


class TestBuilderAndConfig:
    def test_builder_requires_sources_capacity_mechanism(self):
        with pytest.raises(ValidationError, match="sources"):
            ServiceBuilder().with_capacity(1.0).with_mechanism("CAT").build()
        with pytest.raises(ValidationError, match="capacity"):
            (ServiceBuilder()
             .with_sources(SyntheticStream("s", rate=1))
             .with_mechanism("CAT").build())
        with pytest.raises(ValidationError, match="mechanism"):
            (ServiceBuilder()
             .with_sources(SyntheticStream("s", rate=1))
             .with_capacity(1.0).build())

    def test_mechanism_spec_string(self):
        service = (ServiceBuilder()
                   .with_sources(SyntheticStream("s", rate=1))
                   .with_capacity(5.0)
                   .with_mechanism("two-price:seed=7")
                   .build())
        assert service.mechanism.name == "Two-price"

    def test_config_validates_eagerly(self):
        with pytest.raises(KeyError):
            ServiceConfig(capacity=5.0, mechanism="no-such-mechanism")
        with pytest.raises(ValidationError, match="accepted parameters"):
            ServiceConfig(capacity=5.0, mechanism="CAT:volume=11")
        with pytest.raises(ValidationError):
            ServiceConfig(capacity=-1.0)

    def test_service_from_config(self):
        config = ServiceConfig(capacity=30.0, mechanism="CAT",
                               ticks_per_period=10)
        service = service_from_config(
            config, [SyntheticStream("s", rate=5, poisson=False, seed=0)])
        service.submit(make_query("q1", 10.0, 1.0))
        report = service.run_period()
        assert report.admitted == ("q1",)

    def test_builds_are_independent(self):
        builder = (ServiceBuilder()
                   .with_sources(SyntheticStream("s", rate=5,
                                                 poisson=False, seed=0))
                   .with_capacity(30.0)
                   .with_mechanism("CAT")
                   .with_ticks_per_period(5))
        first, second = builder.build(), builder.build()
        first.submit(make_query("q1", 10.0, 1.0))
        assert second.pending_ids == set()
        first.hooks.add("on_billing", lambda *a: None)
        assert second.hooks.hooks("on_billing") == ()

    def test_builds_do_not_share_source_state(self):
        """Running one built service must not advance another's source
        RNGs — sources are deep-copied per build."""
        builder = (ServiceBuilder()
                   .with_sources(SyntheticStream("s", rate=5, seed=3))
                   .with_capacity(30.0)
                   .with_mechanism("CAT")
                   .with_ticks_per_period(10))
        first, second = builder.build(), builder.build()
        first.submit(make_query("q1", 10.0, 1.0))
        first.run_period()
        second.submit(make_query("q1", 10.0, 1.0))
        report = second.run_period()
        fresh = builder.build()
        fresh.submit(make_query("q1", 10.0, 1.0))
        assert fresh.run_period().engine_utilization == \
            report.engine_utilization


class TestHooks:
    def test_unknown_event_rejected(self):
        with pytest.raises(ValidationError, match="unknown hook event"):
            HookRegistry().add("on_coffee", lambda: None)

    def test_on_submit_can_veto(self):
        def no_cheapskates(_service, query):
            if query.bid < 5:
                raise ValidationError("bid below the house minimum")

        service = build_service()
        service.hooks.add("on_submit", no_cheapskates)
        service.submit(make_query("rich", 50.0, 1.0))
        with pytest.raises(ValidationError, match="house minimum"):
            service.submit(make_query("poor", 1.0, 1.0))
        assert service.pending_ids == {"rich"}

    def test_pre_auction_lying_client(self):
        """Bid inflation as a hook changes the auction the mechanism
        sees — the lying scenarios become plug-ins."""
        def inflate(_service, instance):
            queries = tuple(
                Query(q.query_id, q.operator_ids, bid=q.bid * 10,
                      valuation=q.valuation, owner=q.owner)
                if q.query_id == "liar" else q
                for q in instance.queries)
            return AuctionInstance(
                instance.operators, queries, instance.capacity)

        service = build_service()
        service.hooks.add("pre_auction", inflate)
        service.submit(make_query("liar", 5.0, 2.0))
        for i, bid in enumerate([40, 30, 20]):
            service.submit(make_query(f"q{i}", bid, 2.0))
        report = service.run_period()
        assert "liar" in report.admitted  # 50 beats the honest field

    def test_observer_hooks_fire_in_cycle_order(self):
        events = []
        service = (ServiceBuilder()
                   .with_sources(SyntheticStream("s", rate=5,
                                                 poisson=False, seed=0))
                   .with_capacity(30.0)
                   .with_mechanism("CAT")
                   .with_ticks_per_period(5)
                   .on_submit(lambda *a: events.append("submit"))
                   .pre_auction(lambda *a: events.append("pre") or None)
                   .post_auction(lambda *a: events.append("post") or None)
                   .on_billing(lambda *a: events.append("billing"))
                   .on_transition(lambda *a: events.append("transition"))
                   .build())
        service.submit(make_query("q1", 10.0, 1.0))
        service.run_period()
        assert events == ["submit", "pre", "post", "billing", "transition"]

    def test_pre_auction_cannot_invent_planless_winners(self):
        """A hook that admits a query id with no submitted plan must
        fail cleanly before billing, not KeyError mid-transition."""
        def add_ghost(_service, instance):
            queries = instance.queries + (
                Query("ghost", ("sel_q0",), bid=1000.0),)
            return AuctionInstance(
                instance.operators, queries, instance.capacity)

        service = build_service()
        service.hooks.add("pre_auction", add_ghost)
        service.submit(make_query("q0", 10.0, 2.0))
        with pytest.raises(ValidationError, match="ghost"):
            service.run_period()
        assert service.total_revenue() == 0.0  # nothing was billed
        assert service.period == 0

    def test_on_transition_reports_changes(self):
        seen = {}

        def record(_service, added, removed):
            seen["added"], seen["removed"] = added, removed

        service = build_service()
        service.hooks.add("on_transition", record)
        service.submit(make_query("q1", 30.0, 2.0))
        service.run_period()
        assert seen == {"added": ("q1",), "removed": ()}
        for i, bid in enumerate([90, 80, 70]):
            service.submit(make_query(f"new{i}", bid, 2.0))
        service.run_period()
        assert seen["removed"] == ("q1",)


class TestExecutionBackendThreading:
    """The backend spec reaches the engine through every assembly path."""

    def _sources(self):
        return [SyntheticStream("s", rate=5, poisson=False, seed=0)]

    def test_builder_backend_spec(self):
        from repro.dsms.columnar import ColumnarBackend

        service = (ServiceBuilder()
                   .with_sources(*self._sources())
                   .with_capacity(30.0)
                   .with_mechanism("CAT")
                   .with_backend("columnar:batch=256")
                   .build())
        assert isinstance(service.engine.backend, ColumnarBackend)
        assert service.engine.backend.batch_rows == 256

    def test_config_carries_backend(self):
        from repro.dsms.backend import BackendSpec
        from repro.dsms.columnar import ColumnarBackend

        config = ServiceConfig(capacity=30.0, mechanism="CAT",
                               backend="columnar")
        assert config.backend_spec() == BackendSpec("columnar")
        service = service_from_config(config, self._sources())
        assert isinstance(service.engine.backend, ColumnarBackend)
        scalar = config.with_backend("scalar")
        assert scalar.backend_spec().name == "scalar"

    def test_config_rejects_unknown_backend(self):
        with pytest.raises(KeyError, match="unknown execution backend"):
            ServiceConfig(capacity=30.0, backend="vectorwise")

    def test_builds_do_not_share_backend_state(self):
        from repro.dsms.columnar import ColumnarBackend

        builder = (ServiceBuilder()
                   .with_sources(*self._sources())
                   .with_capacity(30.0)
                   .with_mechanism("CAT")
                   .with_backend(ColumnarBackend()))
        first = builder.build()
        second = builder.build()
        assert first.engine.backend is not second.engine.backend

    @staticmethod
    def _period_queries(period):
        return [make_query(f"p{period}_q{i}", bid=10.0 + i,
                           cost=1.0 + 0.5 * i)
                for i in range(4)]

    def test_periods_equivalent_across_backends(self):
        def run(backend):
            service = (ServiceBuilder()
                       .with_sources(*self._sources())
                       .with_capacity(30.0)
                       .with_mechanism("CAT")
                       .with_ticks_per_period(10)
                       .with_backend(backend)
                       .build())
            reports = service.run_periods(
                [self._period_queries(1), self._period_queries(2)])
            return ([(r.revenue, r.admitted, r.engine_utilization)
                     for r in reports],
                    {qid: len(log)
                     for qid, log in service.engine.results.items()})

        assert run("scalar") == run("columnar")

    def test_snapshot_restore_preserves_columnar_backend(self):
        from repro.dsms.columnar import ColumnarBackend

        service = (ServiceBuilder()
                   .with_sources(*self._sources())
                   .with_capacity(30.0)
                   .with_mechanism("CAT")
                   .with_ticks_per_period(5)
                   .with_backend("columnar:batch=128")
                   .build())
        for query in self._period_queries(1):
            service.submit(query)
        service.run_period()
        resumed = AdmissionService.restore(service.snapshot())
        assert isinstance(resumed.engine.backend, ColumnarBackend)
        assert resumed.engine.backend.batch_rows == 128
        for query in self._period_queries(2):
            service.submit(query)
            resumed.submit(query)
        assert (service.run_period().revenue
                == resumed.run_period().revenue)
        assert service.engine.report == resumed.engine.report
