"""Checkpoint/restore: the resumed service is bit-identical.

The acceptance bar: a service checkpointed after period N and restored
must produce byte-identical ``PeriodReport`` documents for periods
N+1... compared with the uninterrupted run under the same seed — RNG
state (mechanism and sources), engine counters, ledger and pending
queue all survive the round trip.
"""

import json

import pytest

from repro.dsms.operators import SelectOperator
from repro.dsms.plan import ContinuousQuery
from repro.dsms.streams import SyntheticStream
from repro.io import (
    SNAPSHOT_SCHEMA,
    load_snapshot,
    report_to_dict,
    save_snapshot,
)
from repro.service import AdmissionService, ServiceBuilder, ServiceSnapshot
from repro.utils.validation import ValidationError


def accept_all(_tuple):
    """Module-level predicate so the plans pickle."""
    return True


def make_query(qid, bid, cost):
    op_id = f"sel_{qid}"
    sel = SelectOperator(op_id, "s", accept_all,
                         cost_per_tuple=cost, selectivity_estimate=1.0)
    return ContinuousQuery(qid, (sel,), sink_id=op_id, bid=bid, owner=qid)


def build_service(mechanism="two-price:seed=7"):
    return (ServiceBuilder()
            .with_sources(SyntheticStream("s", rate=5, seed=3))
            .with_capacity(30.0)
            .with_mechanism(mechanism)
            .with_ticks_per_period(10)
            .build())


def batch(period):
    return [make_query(f"p{period}q{i}", 10.0 * (i + 1) + period,
                       1.0 + 0.5 * i)
            for i in range(3)]


def report_bytes(report):
    return json.dumps(report_to_dict(report), sort_keys=True).encode()


@pytest.mark.parametrize("mechanism", ["CAT", "two-price:seed=7"])
def test_restore_is_byte_identical(mechanism):
    service = build_service(mechanism)
    service.run_periods([batch(1), batch(2)])
    snapshot = service.snapshot()

    uninterrupted = service.run_periods([batch(3), batch(4)])

    resumed = AdmissionService.restore(snapshot)
    replayed = resumed.run_periods([batch(3), batch(4)])

    for original, again in zip(uninterrupted, replayed):
        assert report_bytes(original) == report_bytes(again)
    assert resumed.total_revenue() == service.total_revenue()


def test_disk_round_trip_is_byte_identical(tmp_path):
    service = build_service()
    service.run_periods([batch(1), batch(2)])
    path = tmp_path / "service.ckpt"
    service.save_checkpoint(path)

    uninterrupted = service.run_periods([batch(3)])

    resumed = AdmissionService.load_checkpoint(path)
    replayed = resumed.run_periods([batch(3)])
    assert report_bytes(uninterrupted[0]) == report_bytes(replayed[0])


def test_snapshot_is_isolated_from_the_live_service(tmp_path):
    """Mutating the service after snapshotting must not leak into the
    snapshot, and one snapshot restores any number of times."""
    service = build_service()
    service.run_periods([batch(1)])
    snapshot = service.snapshot()
    service.run_periods([batch(2), batch(3)])

    first = AdmissionService.restore(snapshot)
    second = AdmissionService.restore(snapshot)
    assert first.period == second.period == 1
    r_first = first.run_periods([batch(2)])[0]
    r_second = second.run_periods([batch(2)])[0]
    assert report_bytes(r_first) == report_bytes(r_second)


def test_pending_queue_survives_checkpoint(tmp_path):
    service = build_service()
    service.run_periods([batch(1)])
    service.submit(make_query("queued", 99.0, 1.0))
    path = tmp_path / "service.ckpt"
    service.save_checkpoint(path)

    resumed = AdmissionService.load_checkpoint(path)
    assert resumed.pending_ids == {"queued"}
    report = resumed.run_period()
    assert "queued" in report.admitted


def test_snapshot_version_mismatch_rejected():
    service = build_service()
    service.run_periods([batch(1)])
    snapshot = service.snapshot()
    stale = ServiceSnapshot(version=99, state=snapshot.state)
    with pytest.raises(ValidationError, match="version 99"):
        AdmissionService.restore(stale)


def test_snapshot_missing_state_rejected():
    with pytest.raises(ValidationError, match="missing state"):
        ServiceSnapshot(version=1, state={"capacity": 1.0})


def test_snapshot_file_validation(tmp_path):
    bogus = tmp_path / "bogus.ckpt"
    bogus.write_bytes(b"not a pickle at all")
    with pytest.raises(ValidationError, match="malformed snapshot"):
        load_snapshot(bogus)

    import pickle

    wrong_schema = tmp_path / "wrong.ckpt"
    wrong_schema.write_bytes(pickle.dumps(
        {"schema": "repro/other", "version": 1, "snapshot": None}))
    with pytest.raises(ValidationError, match=SNAPSHOT_SCHEMA):
        load_snapshot(wrong_schema)

    service = build_service()
    service.run_periods([batch(1)])
    good = tmp_path / "good.ckpt"
    save_snapshot(service.snapshot(), good)
    assert isinstance(load_snapshot(good), ServiceSnapshot)


def test_hooks_are_reattached_not_restored(tmp_path):
    calls = []
    service = build_service()
    service.hooks.add("on_billing", lambda *a: calls.append("live"))
    service.run_periods([batch(1)])
    snapshot = service.snapshot()

    resumed = AdmissionService.restore(snapshot)
    assert resumed.hooks.hooks("on_billing") == ()

    from repro.service import HookRegistry

    hooks = HookRegistry()
    hooks.add("on_billing", lambda *a: calls.append("resumed"))
    rewired = AdmissionService.restore(snapshot, hooks=hooks)
    rewired.run_periods([batch(2)])
    assert calls.count("resumed") == 1
