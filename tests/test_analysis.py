"""Analysis-helper tests."""

import pytest

from repro.analysis import (
    compare_mechanisms,
    describe_instance,
    profit_breakdown,
)
from repro.core import make_mechanism
from repro.workload import example1, stock_monitoring


class TestDescribeInstance:
    def test_example1_profile(self):
        profile = describe_instance(example1())
        assert profile.num_queries == 3
        assert profile.num_operators == 5
        assert profile.total_demand == pytest.approx(17.0)
        assert profile.overload_factor == pytest.approx(1.7)
        assert profile.max_sharing_degree == 2
        assert profile.mean_bid == pytest.approx((55 + 72 + 100) / 3)

    def test_render(self):
        text = describe_instance(example1()).render()
        assert "Instance profile" in text
        assert "overload" in text


class TestCompareMechanisms:
    def test_collects_all(self):
        comparison = compare_mechanisms(
            example1(), mechanisms=("CAF", "CAT", "GV"))
        assert set(comparison.outcomes) == {"CAF", "CAT", "GV"}

    def test_best_for_profit_on_example1(self):
        comparison = compare_mechanisms(
            example1(), mechanisms=("CAF", "CAT", "GV"))
        assert comparison.best_for("profit") == "CAT"

    def test_render(self):
        comparison = compare_mechanisms(example1(),
                                        mechanisms=("CAF", "CAT"))
        text = comparison.render()
        assert "Mechanism comparison" in text
        assert "CAT" in text

    def test_randomized_mechanism_seeded(self):
        a = compare_mechanisms(stock_monitoring(),
                               mechanisms=("Two-price",), seed=3)
        b = compare_mechanisms(stock_monitoring(),
                               mechanisms=("Two-price",), seed=3)
        assert (a.outcomes["Two-price"].profit
                == b.outcomes["Two-price"].profit)


class TestProfitBreakdown:
    def test_example1_cat(self):
        outcome = make_mechanism("CAT").run(example1())
        breakdown = profit_breakdown(outcome)
        assert breakdown.profit == pytest.approx(110.0)
        assert breakdown.winners == 2
        assert breakdown.mean_payment == pytest.approx(55.0)
        assert breakdown.max_payment == pytest.approx(60.0)

    def test_empty_outcome(self):
        from repro.core.model import AuctionInstance, Operator, Query
        from repro.core.result import AuctionOutcome

        instance = AuctionInstance(
            {"a": Operator("a", 20.0)},
            (Query("q", ("a",), bid=1.0),), capacity=1.0)
        breakdown = profit_breakdown(AuctionOutcome(instance, {}))
        assert breakdown.profit == 0.0
        assert breakdown.winners == 0
        assert breakdown.mean_payment == 0.0

    def test_render(self):
        outcome = make_mechanism("CAT").run(example1())
        assert "Profit breakdown" in profit_breakdown(outcome).render()
