"""Registry round-trips and the versioned period-report schema."""

import json

import pytest

from repro.core import PAPER_MECHANISMS, MechanismSpec, make_mechanism
from repro.io import (
    PERIOD_REPORT_SCHEMA,
    PERIOD_REPORT_VERSION,
    full_outcome_to_dict,
    load_report,
    load_reports,
    outcome_from_dict,
    report_from_dict,
    report_to_dict,
    save_report,
    save_reports,
)
from repro.utils.validation import ValidationError
from repro.workload import example1


def _seeded(name):
    spec = MechanismSpec(name)
    return spec.with_params(seed=7) if spec.accepts("seed") else spec


class TestRegistryRoundTrips:
    """Every paper mechanism: registry → run → serialize → deserialize."""

    @pytest.mark.parametrize("name", PAPER_MECHANISMS)
    def test_make_mechanism_and_spec_agree(self, name):
        via_factory = make_mechanism(name, **dict(_seeded(name).params))
        via_spec = MechanismSpec.parse(str(_seeded(name))).create()
        instance = example1()
        assert dict(via_factory.run(instance).payments) == \
            dict(via_spec.run(instance).payments)

    @pytest.mark.parametrize("name", PAPER_MECHANISMS)
    def test_outcome_survives_io_round_trip(self, name):
        instance = example1()
        outcome = _seeded(name).create().run(instance)
        # Through JSON text, not just dicts: what a file would hold.
        payload = json.loads(json.dumps(full_outcome_to_dict(outcome)))
        again = outcome_from_dict(payload, instance)
        assert again.mechanism == outcome.mechanism
        assert again.winner_ids == outcome.winner_ids
        assert dict(again.payments) == pytest.approx(dict(outcome.payments))
        assert again.summary() == pytest.approx(outcome.summary())


def _period_report(mechanism="CAT"):
    from repro.service import PeriodReport

    outcome = make_mechanism(mechanism).run(example1())
    return PeriodReport(
        period=3,
        outcome=outcome,
        revenue=outcome.profit,
        admitted=tuple(sorted(outcome.winner_ids)),
        rejected=("q3",),
        engine_ticks=50,
        engine_utilization=0.85,
    )


class TestPeriodReportSchema:
    def test_document_is_versioned_and_self_contained(self):
        document = report_to_dict(_period_report())
        assert document["schema"] == PERIOD_REPORT_SCHEMA
        assert document["version"] == PERIOD_REPORT_VERSION
        assert document["instance"]["capacity"] == 10.0
        json.dumps(document)  # plain JSON, nothing exotic inside

    def test_round_trip_preserves_everything(self):
        report = _period_report()
        again = report_from_dict(
            json.loads(json.dumps(report_to_dict(report))))
        assert again.period == report.period
        assert again.revenue == report.revenue
        assert again.admitted == report.admitted
        assert again.rejected == report.rejected
        assert again.engine_ticks == report.engine_ticks
        assert again.engine_utilization == report.engine_utilization
        assert again.admission_rate == report.admission_rate
        assert dict(again.outcome.payments) == \
            pytest.approx(dict(report.outcome.payments))

    def test_file_round_trip(self, tmp_path):
        report = _period_report()
        path = tmp_path / "report.json"
        save_report(report, path)
        assert load_report(path).admitted == report.admitted

    def test_history_round_trip(self, tmp_path):
        reports = [_period_report("CAT"), _period_report("CAF")]
        path = tmp_path / "history.json"
        save_reports(reports, path)
        loaded = load_reports(path)
        assert [r.outcome.mechanism for r in loaded] == ["CAT", "CAF"]

    def test_mixed_type_details_still_serialize(self):
        """_jsonable must never crash a report — even on sets whose
        elements are not mutually comparable."""
        report = _period_report()
        object.__setattr__(report.outcome, "details",
                           {"weird": {1, "a", ("t",)}, "obj": object()})
        document = report_to_dict(report)
        json.dumps(document)
        assert len(document["outcome"]["details"]["weird"]) == 3

    def test_wrong_schema_rejected(self):
        document = report_to_dict(_period_report())
        document["schema"] = "repro/other"
        with pytest.raises(ValidationError, match="schema"):
            report_from_dict(document)

    def test_future_version_rejected(self):
        document = report_to_dict(_period_report())
        document["version"] = PERIOD_REPORT_VERSION + 1
        with pytest.raises(ValidationError, match="version"):
            report_from_dict(document)

    def test_malformed_document_rejected(self):
        with pytest.raises(ValidationError):
            report_from_dict({"schema": PERIOD_REPORT_SCHEMA,
                              "version": PERIOD_REPORT_VERSION})
        with pytest.raises(ValidationError):
            report_from_dict("not even an object")


class TestServiceReportsSerialize:
    def test_live_service_reports_round_trip(self, tmp_path):
        """Reports from an actual run (details and all) must survive."""
        from repro.dsms.operators import SelectOperator
        from repro.dsms.plan import ContinuousQuery
        from repro.dsms.streams import SyntheticStream
        from repro.service import ServiceBuilder

        service = (ServiceBuilder()
                   .with_sources(SyntheticStream("s", rate=5,
                                                 poisson=False, seed=0))
                   .with_capacity(30.0)
                   .with_mechanism("two-price:seed=7")
                   .with_ticks_per_period(5)
                   .build())
        for i, bid in enumerate([50, 40, 30]):
            op = SelectOperator(f"sel_q{i}", "s", lambda t: True,
                                cost_per_tuple=2.0,
                                selectivity_estimate=1.0)
            service.submit(ContinuousQuery(
                f"q{i}", (op,), sink_id=op.op_id, bid=float(bid)))
        report = service.run_period()
        path = tmp_path / "period.json"
        save_report(report, path)
        again = load_report(path)
        assert again.admitted == report.admitted
        assert again.revenue == pytest.approx(report.revenue)
