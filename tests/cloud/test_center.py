"""DSMS-center integration tests: auction → engine → billing.

``DSMSCenter`` is now a deprecation shim over
:class:`repro.service.AdmissionService`; these tests double as the
shim's compatibility contract.
"""

import warnings

import pytest

from repro.cloud.center import DSMSCenter
from repro.core import CAT
from repro.dsms.operators import SelectOperator
from repro.dsms.plan import ContinuousQuery
from repro.dsms.streams import SyntheticStream
from repro.utils.validation import ValidationError


def make_query(qid, bid, cost, owner=None, shared_id=None):
    op_id = shared_id or f"sel_{qid}"
    sel = SelectOperator(op_id, "s", lambda t: True,
                         cost_per_tuple=cost, selectivity_estimate=1.0)
    return ContinuousQuery(qid, (sel,), sink_id=op_id, bid=bid,
                           owner=owner)


@pytest.fixture
def center():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return DSMSCenter(
            sources=[SyntheticStream("s", rate=5, poisson=False, seed=0)],
            capacity=30.0,
            mechanism=CAT(),
            ticks_per_period=10,
        )


def test_center_construction_warns():
    with pytest.deprecated_call():
        DSMSCenter(
            sources=[SyntheticStream("s", rate=5, poisson=False, seed=0)],
            capacity=30.0,
            mechanism=CAT(),
        )


class TestSubmission:
    def test_submit_and_withdraw(self, center):
        center.submit(make_query("q1", 10.0, 1.0))
        assert center.pending_ids == {"q1"}
        center.withdraw("q1")
        assert center.pending_ids == set()

    def test_withdraw_unknown_id_raises_validation_error(self, center):
        """An unknown id must fail with the pending ids, not KeyError."""
        center.submit(make_query("q1", 10.0, 1.0))
        center.submit(make_query("q2", 12.0, 1.0))
        with pytest.raises(ValidationError) as excinfo:
            center.withdraw("missing")
        message = str(excinfo.value)
        assert "missing" in message
        assert "q1" in message and "q2" in message
        assert center.pending_ids == {"q1", "q2"}

    def test_duplicate_rejected(self, center):
        center.submit(make_query("q1", 10.0, 1.0))
        with pytest.raises(ValidationError):
            center.submit(make_query("q1", 5.0, 1.0))

    def test_empty_auction_rejected(self, center):
        with pytest.raises(ValidationError):
            center.run_period()


class TestPeriodCycle:
    def test_admits_within_capacity(self, center):
        # Loads are rate 5 × cost: 5·2=10 each; capacity 30 fits 3.
        for i, bid in enumerate([50, 40, 30, 20]):
            center.submit(make_query(f"q{i}", bid, 2.0))
        report = center.run_period()
        assert report.admitted == ("q0", "q1", "q2")
        assert report.rejected == ("q3",)
        assert report.revenue > 0
        assert report.engine_utilization == pytest.approx(1.0)

    def test_engine_runs_admitted_queries(self, center):
        center.submit(make_query("q1", 10.0, 1.0))
        center.run_period()
        assert len(center.engine.results["q1"]) == 50  # 5/tick × 10

    def test_running_queries_reauctioned(self, center):
        center.submit(make_query("q1", 30.0, 2.0))
        center.run_period()
        # A flood of higher bidders evicts q1 next period.
        for i, bid in enumerate([90, 80, 70]):
            center.submit(make_query(f"new{i}", bid, 2.0))
        report = center.run_period()
        assert "q1" not in report.admitted
        assert center.engine.admitted_ids == {"new0", "new1", "new2"}

    def test_billing_accumulates(self, center):
        for i, bid in enumerate([50, 40, 30, 20]):
            center.submit(make_query(f"q{i}", bid, 2.0))
        center.run_period()
        assert center.total_revenue() == pytest.approx(
            center.reports[0].revenue)

    def test_shared_operator_priced_once(self, center):
        """Two queries sharing one operator both fit where two private
        copies would not."""
        center.submit(make_query("qa", 50.0, 5.0, shared_id="hot"))
        center.submit(make_query("qb", 40.0, 5.0, shared_id="hot"))
        report = center.run_period()
        # Shared load = 25 ≤ 30 (two private copies would need 50).
        assert set(report.admitted) == {"qa", "qb"}

    def test_measured_loads_close_to_estimates(self, center):
        center.submit(make_query("q1", 10.0, 2.0))
        center.run_period()
        assert center.measured_loads()["sel_q1"] == pytest.approx(
            10.0, rel=0.01)
