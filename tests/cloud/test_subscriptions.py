"""Multi-period subscription scheduler tests (Section VII)."""

import pytest

from repro.cloud.subscriptions import (
    DEFAULT_CATEGORIES,
    SubscriptionCategory,
    SubscriptionRequest,
    SubscriptionScheduler,
)
from repro.core import make_mechanism
from repro.core.model import Operator, Query
from repro.utils.validation import ValidationError


def ops(**loads):
    return {name: Operator(name, load) for name, load in loads.items()}


def scheduler(capacity=20.0, categories=DEFAULT_CATEGORIES, **loads):
    catalogue = ops(**(loads or {"a": 2.0, "b": 3.0, "c": 4.0, "d": 5.0}))
    return SubscriptionScheduler(
        catalogue, capacity,
        mechanism_factory=lambda name: make_mechanism("CAT"),
        categories=categories)


class TestConfiguration:
    def test_fractions_must_not_exceed_one(self):
        bad = (SubscriptionCategory("x", 1, 0.7),
               SubscriptionCategory("y", 1, 0.5))
        with pytest.raises(ValidationError):
            scheduler(categories=bad)

    def test_fraction_error_names_the_categories(self):
        bad = (SubscriptionCategory("gold", 1, 0.7),
               SubscriptionCategory("silver", 7, 0.5))
        with pytest.raises(ValidationError) as excinfo:
            scheduler(categories=bad)
        message = str(excinfo.value)
        assert "gold=0.7" in message
        assert "silver=0.5" in message
        assert "1.2" in message

    def test_fractions_summing_exactly_to_one_are_fine(self):
        exact = (SubscriptionCategory("x", 1, 0.6),
                 SubscriptionCategory("y", 1, 0.4))
        assert scheduler(categories=exact).categories.keys() == {"x", "y"}

    def test_fraction_barely_over_one_is_rejected(self):
        bad = (SubscriptionCategory("x", 1, 0.6),
               SubscriptionCategory("y", 1, 0.4 + 1e-6))
        with pytest.raises(ValidationError) as excinfo:
            scheduler(categories=bad)
        assert "x=0.6" in str(excinfo.value)

    def test_validate_categories_helper_returns_tuple(self):
        from repro.cloud.subscriptions import validate_categories

        mix = [SubscriptionCategory("x", 1, 0.3)]
        assert validate_categories(mix) == tuple(mix)
        with pytest.raises(ValidationError):
            validate_categories([])

    def test_duplicate_names_rejected(self):
        bad = (SubscriptionCategory("x", 1, 0.3),
               SubscriptionCategory("x", 2, 0.3))
        with pytest.raises(ValidationError):
            scheduler(categories=bad)

    def test_category_validation(self):
        with pytest.raises(ValidationError):
            SubscriptionCategory("x", 0, 0.5)
        with pytest.raises(ValidationError):
            SubscriptionCategory("x", 1, 0.0)


class TestDailyCycle:
    def test_admission_and_expiry(self):
        sched = scheduler(capacity=20.0)
        requests = [
            SubscriptionRequest(Query("d1", ("a",), bid=10.0), "day"),
            SubscriptionRequest(Query("w1", ("b",), bid=20.0), "week"),
        ]
        day1 = sched.run_day(requests)
        admitted = {s.query.query_id for s in day1.admitted}
        assert admitted == {"d1", "w1"}
        d1 = next(s for s in day1.admitted if s.query.query_id == "d1")
        assert d1.expires_day == 2
        # Day 2: the day-subscription expires and its capacity returns.
        day2 = sched.run_day([])
        assert {s.query.query_id for s in day2.expired} == {"d1"}
        assert sched.free_capacity() == pytest.approx(20.0 - 3.0)

    def test_capacity_partitioned_per_category(self):
        categories = (SubscriptionCategory("day", 1, 0.5),
                      SubscriptionCategory("week", 7, 0.5))
        sched = scheduler(capacity=10.0, categories=categories,
                          a=6.0, b=4.0)
        requests = [
            SubscriptionRequest(Query("big", ("a",), bid=100.0), "day"),
            SubscriptionRequest(Query("ok", ("b",), bid=10.0), "week"),
        ]
        day = sched.run_day(requests)
        admitted = {s.query.query_id for s in day.admitted}
        # The 6-unit query exceeds its 5-unit category slice.
        assert admitted == {"ok"}

    def test_shared_operators_across_subscriptions(self):
        month_only = (SubscriptionCategory("month", 30, 1.0),)
        sched = scheduler(capacity=10.0, categories=month_only,
                          shared=6.0, p1=1.0, p2=1.0)
        day1 = sched.run_day([SubscriptionRequest(
            Query("q1", ("shared", "p1"), bid=10.0), "month")])
        assert len(day1.admitted) == 1
        assert sched.occupied_capacity() == pytest.approx(7.0)
        # A second subscriber of the shared operator adds only 1 unit.
        sched.run_day([SubscriptionRequest(
            Query("q2", ("shared", "p2"), bid=10.0), "month")])
        assert sched.occupied_capacity() == pytest.approx(8.0)

    def test_per_category_auctions_are_independent(self):
        """Second-price style payments are computed within a category,
        not across categories."""
        categories = (SubscriptionCategory("day", 1, 0.5),
                      SubscriptionCategory("week", 7, 0.5))
        sched = scheduler(capacity=16.0, categories=categories,
                          a=5.0, b=5.0, c=5.0)
        requests = [
            SubscriptionRequest(Query("d1", ("a",), bid=50.0), "day"),
            SubscriptionRequest(Query("d2", ("b",), bid=30.0), "day"),
            SubscriptionRequest(Query("w1", ("c",), bid=5.0), "week"),
        ]
        day = sched.run_day(requests)
        # Day slice 10: d1 fits, d2 is the first loser pricing d1.
        day_outcome = day.outcomes["day"]
        assert day_outcome.is_winner("d1")
        assert day_outcome.payment("d1") > 0
        # w1 alone in its category pays 0.
        assert day.outcomes["week"].payment("w1") == 0.0

    def test_revenue_accumulates(self):
        day_only = (SubscriptionCategory("day", 1, 1.0),)
        sched = scheduler(capacity=6.0, categories=day_only,
                          a=5.0, b=5.0)
        requests = [
            SubscriptionRequest(Query("q1", ("a",), bid=50.0), "day"),
            SubscriptionRequest(Query("q2", ("b",), bid=30.0), "day"),
        ]
        sched.run_day(requests)
        assert sched.total_revenue() > 0
