"""Energy model and capacity-selection tests (Section VII)."""

import pytest

from repro.cloud.energy import (
    EnergyModel,
    best_capacity,
    evaluate_capacities,
)
from repro.core import make_mechanism
from repro.utils.validation import ValidationError
from repro.workload import example1, stock_monitoring


class TestEnergyModel:
    def test_cost_shape(self):
        model = EnergyModel(idle_cost_per_unit=2.0,
                            dynamic_cost_per_unit=1.0)
        assert model.cost(10.0, 4.0) == pytest.approx(24.0)

    def test_zero_costs_allowed(self):
        assert EnergyModel(0.0, 0.0).cost(100.0, 50.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            EnergyModel(idle_cost_per_unit=-1.0)


class TestCapacitySelection:
    def test_evaluates_all_candidates(self):
        choices = evaluate_capacities(
            make_mechanism("CAT"), example1(), [5, 10, 15],
            EnergyModel())
        assert [c.capacity for c in choices] == [5, 10, 15]

    def test_best_maximizes_net_profit(self):
        model = EnergyModel(idle_cost_per_unit=1.0,
                            dynamic_cost_per_unit=0.5)
        choices = evaluate_capacities(
            make_mechanism("CAT"), example1(), [5, 10, 15, 20], model)
        best = best_capacity(
            make_mechanism("CAT"), example1(), [5, 10, 15, 20], model)
        assert best.net_profit == max(c.net_profit for c in choices)

    def test_expensive_energy_prefers_smaller_capacity(self):
        """The Section VII observation: it can be more profitable not
        to provision (and utilize) full capacity."""
        instance = stock_monitoring()
        cheap = best_capacity(
            make_mechanism("CAT"), instance, [60, 90, 120, 150],
            EnergyModel(idle_cost_per_unit=0.0,
                        dynamic_cost_per_unit=0.0))
        pricey = best_capacity(
            make_mechanism("CAT"), instance, [60, 90, 120, 150],
            EnergyModel(idle_cost_per_unit=3.0,
                        dynamic_cost_per_unit=1.0))
        assert pricey.capacity <= cheap.capacity
