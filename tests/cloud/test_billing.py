"""Billing ledger tests."""

import pytest

from repro.cloud.billing import BillingLedger
from repro.core import make_mechanism
from repro.workload import example1


@pytest.fixture
def outcome():
    return make_mechanism("CAT").run(example1())


class TestBillingLedger:
    def test_bill_outcome_revenue(self, outcome):
        ledger = BillingLedger()
        revenue = ledger.bill_outcome(1, outcome)
        assert revenue == pytest.approx(110.0)
        assert ledger.total_revenue() == pytest.approx(110.0)

    def test_invoices_carry_owner(self, outcome):
        ledger = BillingLedger()
        ledger.bill_outcome(1, outcome)
        owners = {inv.query_id: inv.owner for inv in ledger.invoices}
        assert owners == {"q1": "q1", "q2": "q2"}

    def test_revenue_by_period(self, outcome):
        ledger = BillingLedger()
        ledger.bill_outcome(1, outcome)
        ledger.bill_outcome(2, outcome)
        assert ledger.revenue_by_period() == {
            1: pytest.approx(110.0), 2: pytest.approx(110.0)}

    def test_owner_balance_aggregates_fakes(self):
        """Sybil accounting: the owner pays for all her identities."""
        from repro.gametheory.attacks import cat_plus_table2_attack

        scenario = cat_plus_table2_attack(epsilon=1e-3)
        attacked = scenario.attack.apply(scenario.honest_instance)
        outcome = make_mechanism("CAT+").run(attacked)
        ledger = BillingLedger()
        ledger.bill_outcome(1, outcome)
        # user2 pays 0 for her real query + 100ε for the fake.
        assert ledger.owner_balance("user2") == pytest.approx(0.1)
        assert len(ledger.invoices_for("user2")) == 2
