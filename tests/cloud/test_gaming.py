"""Subscription-category gaming tests (Section VII's open problem)."""

import pytest

from repro.cloud.gaming import simulate_category_gaming
from repro.cloud.subscriptions import (
    SubscriptionCategory,
    SubscriptionRequest,
)
from repro.core import make_mechanism
from repro.core.model import Operator, Query

CATEGORIES = (
    SubscriptionCategory("short", 5, 0.5),
    SubscriptionCategory("long", 10, 0.5),
)

OPERATORS = {
    "client_op": Operator("client_op", 2.0),
    "rival_op": Operator("rival_op", 2.0),
    "rival_op2": Operator("rival_op2", 2.0),
}


def rival(day_query_id, bid):
    return SubscriptionRequest(
        Query(day_query_id, ("rival_op",), bid=bid), "short")


class TestCategoryGaming:
    def test_gaming_profits_when_late_demand_is_high(self):
        """The paper's June/July story: demand (and hence prices) spike
        in the client's target window, so subscribing early-and-long at
        lull prices is strictly cheaper."""
        # Background: nothing on early days; fierce competition from
        # day 6 (the client's target window).
        background = {
            day: [rival(f"r{day}a", 90.0),
                  SubscriptionRequest(
                      Query(f"r{day}b", ("rival_op2",), bid=80.0),
                      "short")]
            for day in (6, 7)
        }
        outcome = simulate_category_gaming(
            OPERATORS,
            capacity=8.0,
            mechanism_factory=lambda name: make_mechanism("CAT"),
            categories=CATEGORIES,
            background=background,
            client_query=Query("client", ("client_op",), bid=40.0),
            honest_day=6, honest_category="short",
            gaming_day=1, gaming_category="long",
            horizon=10,
            target_days=(6, 7),
        )
        # Gaming: admitted alone on day 1, pays 0, holds capacity
        # through the target days.
        assert outcome.gaming_served
        assert outcome.gaming_cost == pytest.approx(0.0)
        assert outcome.gaming_profitable or not outcome.honest_served

    def test_gaming_pointless_without_demand_swing(self):
        """Flat demand: the long subscription buys nothing."""
        background = {}
        outcome = simulate_category_gaming(
            OPERATORS,
            capacity=8.0,
            mechanism_factory=lambda name: make_mechanism("CAT"),
            categories=CATEGORIES,
            background=background,
            client_query=Query("client", ("client_op",), bid=40.0),
            honest_day=6, honest_category="short",
            gaming_day=1, gaming_category="long",
            horizon=10,
            target_days=(6, 7),
        )
        assert outcome.honest_served
        assert outcome.honest_cost == pytest.approx(0.0)
        assert not outcome.gaming_profitable
