"""Workload generator tests (Table III)."""

import pytest

from repro.utils.validation import ValidationError
from repro.workload.generator import (
    PAPER_CAPACITIES,
    PAPER_SHARING_DEGREES,
    WorkloadConfig,
    WorkloadGenerator,
    workload_sets,
)


class TestWorkloadConfig:
    def test_paper_defaults(self):
        config = WorkloadConfig()
        assert config.num_queries == 2000
        assert config.max_sharing == 60
        assert config.max_bid == 100
        assert config.bid_skew == 0.5
        assert config.max_operator_load == 10
        assert config.load_skew == 1.0
        assert config.capacity == 15_000.0

    def test_scaled_keeps_ratio(self):
        scaled = WorkloadConfig().scaled(200)
        assert scaled.num_queries == 200
        assert scaled.capacity == pytest.approx(1500.0)

    def test_invalid_bid_mode(self):
        with pytest.raises(ValidationError):
            WorkloadConfig(bid_mode="weird")

    def test_max_sharing_capped_by_queries(self):
        with pytest.raises(ValidationError):
            WorkloadConfig(num_queries=10, max_sharing=20)

    def test_paper_constants(self):
        assert PAPER_SHARING_DEGREES == tuple(range(1, 61))
        assert PAPER_CAPACITIES == (5_000, 10_000, 15_000, 20_000)


class TestWorkloadGenerator:
    @pytest.fixture
    def generator(self):
        return WorkloadGenerator(
            config=WorkloadConfig(num_queries=100, max_sharing=10,
                                  capacity=800.0),
            seed=3)

    def test_base_instance_shape(self, generator):
        base = generator.base_instance()
        assert base.num_queries == 100
        assert base.max_sharing_degree() <= 10
        assert all(len(q.operator_ids) >= 1 for q in base.queries)

    def test_base_is_cached(self, generator):
        assert generator.base_instance() is generator.base_instance()

    def test_instance_derivation(self, generator):
        inst = generator.instance(max_sharing=3, capacity=500.0)
        assert inst.max_sharing_degree() <= 3
        assert inst.capacity == 500.0

    def test_derivation_deterministic(self, generator):
        other = WorkloadGenerator(config=generator.config, seed=3)
        a = generator.instance(max_sharing=4)
        b = other.instance(max_sharing=4)
        assert [q.bid for q in a.queries] == [q.bid for q in b.queries]
        assert a.total_demand() == pytest.approx(b.total_demand())

    def test_seeds_differ(self):
        config = WorkloadConfig(num_queries=50, max_sharing=5,
                                capacity=300.0)
        a = WorkloadGenerator(config=config, seed=1).base_instance()
        b = WorkloadGenerator(config=config, seed=2).base_instance()
        assert [q.bid for q in a.queries] != [q.bid for q in b.queries]

    def test_rank_bids_distinct(self, generator):
        bids = [q.bid for q in generator.base_instance().queries]
        assert len(set(bids)) == len(bids)  # rank profile → all distinct
        assert max(bids) == pytest.approx(100.0)

    def test_sampled_bid_mode(self):
        config = WorkloadConfig(num_queries=100, max_sharing=5,
                                capacity=500.0, bid_mode="sampled")
        base = WorkloadGenerator(config=config, seed=1).base_instance()
        bids = [q.bid for q in base.queries]
        assert all(1 <= b <= 100 for b in bids)
        assert all(float(b).is_integer() for b in bids)

    def test_sweep_yields_all_degrees(self, generator):
        degrees = [d for d, _ in generator.sweep(degrees=(1, 3, 5))]
        assert degrees == [1, 3, 5]

    def test_operator_count_range_tracks_paper(self):
        """At paper scale ratios, ops span roughly 0.35n..4.4n, the
        Table III 700–8800 range for n=2000."""
        config = WorkloadConfig(num_queries=400, max_sharing=60,
                                capacity=3000.0)
        generator = WorkloadGenerator(config=config, seed=7)
        high_sharing = generator.instance(max_sharing=60)
        no_sharing = generator.instance(max_sharing=1)
        used = lambda inst: sum(
            1 for op in inst.operators if inst.sharing_degree(op) > 0)
        assert used(high_sharing) < 0.8 * 400
        assert used(no_sharing) > 2.0 * 400


class TestWorkloadSets:
    def test_independent_seeds(self):
        sets = workload_sets(
            3, WorkloadConfig(num_queries=30, max_sharing=5,
                              capacity=200.0), seed=0)
        assert len(sets) == 3
        seeds = {generator.seed for generator in sets}
        assert len(seeds) == 3
