"""Scenario-builder tests."""

import pytest

from repro.core import make_mechanism
from repro.workload.scenarios import (
    example1,
    sensor_network,
    stock_monitoring,
    table2_instance,
    web_alerts,
)


class TestExample1:
    def test_structure(self):
        instance = example1()
        assert instance.num_queries == 3
        assert instance.capacity == 10.0
        assert instance.sharing_degree("A") == 2
        assert instance.total_demand() == pytest.approx(17.0)


class TestDomainScenarios:
    @pytest.mark.parametrize("builder,expected_queries", [
        (stock_monitoring, 40),
        (sensor_network, 30),
        (web_alerts, 25),
    ])
    def test_shapes(self, builder, expected_queries):
        instance = builder()
        assert instance.num_queries == expected_queries
        assert instance.max_sharing_degree() > 1  # hot shared operators
        assert instance.total_demand() > instance.capacity  # overloaded

    def test_seeded_reproducibility(self):
        a = stock_monitoring(seed=3)
        b = stock_monitoring(seed=3)
        assert [q.bid for q in a.queries] == [q.bid for q in b.queries]

    def test_mechanisms_run_on_scenarios(self):
        for builder in (stock_monitoring, sensor_network, web_alerts):
            instance = builder()
            for name in ("CAF", "CAT", "GV"):
                outcome = make_mechanism(name).run(instance)
                assert outcome.used_capacity <= instance.capacity + 1e-6
                assert 0 < len(outcome.winner_ids) < instance.num_queries


class TestTable2Instance:
    def test_matches_paper(self):
        instance = table2_instance(epsilon=1e-3)
        assert instance.num_queries == 3
        assert instance.query("u1").bid == 100.0
        assert instance.query("u2").bid == 89.0
        assert instance.query("u3").owner_id == "user2"
        assert instance.query("u3").true_value == 0.0
