"""Unit tests for the bounded Zipf sampler."""

import numpy as np
import pytest

from repro.utils.validation import ValidationError
from repro.workload.zipf import BoundedZipf


class TestBoundedZipf:
    def test_support_bounds(self):
        dist = BoundedZipf(10, 1.0)
        samples = dist.sample(np.random.default_rng(0), size=500)
        assert samples.min() >= 1
        assert samples.max() <= 10

    def test_pmf_normalizes(self):
        dist = BoundedZipf(20, 0.7)
        assert sum(dist.pmf(k) for k in range(1, 21)) == pytest.approx(1.0)

    def test_pmf_outside_support(self):
        dist = BoundedZipf(5, 1.0)
        assert dist.pmf(0) == 0.0
        assert dist.pmf(6) == 0.0

    def test_skew_orders_probabilities(self):
        dist = BoundedZipf(10, 1.0)
        assert dist.pmf(1) > dist.pmf(2) > dist.pmf(10)

    def test_zero_skew_uniform(self):
        dist = BoundedZipf(4, 0.0)
        for k in range(1, 5):
            assert dist.pmf(k) == pytest.approx(0.25)

    def test_mean_matches_empirical(self):
        dist = BoundedZipf(10, 1.0)
        samples = dist.sample(np.random.default_rng(1), size=20_000)
        assert samples.mean() == pytest.approx(dist.mean(), rel=0.05)

    def test_single_sample_is_int(self):
        value = BoundedZipf(10, 1.0).sample(np.random.default_rng(2))
        assert isinstance(value, int)

    def test_seeded_reproducibility(self):
        dist = BoundedZipf(10, 1.0)
        first = dist.sample(7, size=50)
        second = dist.sample(7, size=50)
        assert (first == second).all()

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            BoundedZipf(0, 1.0)
        with pytest.raises(ValidationError):
            BoundedZipf(10, -0.5)

    def test_paper_load_distribution_mean(self):
        """Mean of Zipf(10, s=1) is 10/H_10 ≈ 3.41 (used to validate
        Table III's demand arithmetic in DESIGN.md)."""
        dist = BoundedZipf(10, 1.0)
        h10 = sum(1.0 / k for k in range(1, 11))
        assert dist.mean() == pytest.approx(10.0 / h10)
