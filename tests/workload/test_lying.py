"""Lying-workload tests (Figure 5 inputs)."""

import pytest

from repro.utils.validation import ValidationError
from repro.workload.lying import (
    AGGRESSIVE_LYING,
    MODERATE_LYING,
    LyingProfile,
    apply_lying,
    lying_fraction,
)
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


@pytest.fixture
def shared_instance():
    """High sharing so fair-share/total ratios drop below thresholds."""
    config = WorkloadConfig(num_queries=120, max_sharing=20,
                            capacity=600.0)
    return WorkloadGenerator(config=config, seed=11).instance(
        max_sharing=20)


class TestProfiles:
    def test_paper_parameters(self):
        assert MODERATE_LYING.ratio_threshold == 0.25
        assert MODERATE_LYING.lying_probability == 0.5
        assert MODERATE_LYING.lying_factor == 0.5
        assert AGGRESSIVE_LYING.ratio_threshold == 0.35
        assert AGGRESSIVE_LYING.lying_probability == 0.7
        assert AGGRESSIVE_LYING.lying_factor == 0.3

    def test_validation(self):
        with pytest.raises(ValidationError):
            LyingProfile("x", 0.2, 1.5, 0.5)
        with pytest.raises(ValidationError):
            LyingProfile("x", 0.2, 0.5, 0.0)


class TestApplyLying:
    def test_valuations_preserved(self, shared_instance):
        lying = apply_lying(shared_instance, AGGRESSIVE_LYING, seed=1)
        for query in shared_instance.queries:
            assert (lying.query(query.query_id).true_value
                    == query.true_value)

    def test_liars_underbid_by_factor(self, shared_instance):
        lying = apply_lying(shared_instance, AGGRESSIVE_LYING, seed=1)
        for query in lying.queries:
            if query.bid != query.true_value:
                assert query.bid == pytest.approx(
                    query.true_value * AGGRESSIVE_LYING.lying_factor)

    def test_some_users_lie_under_high_sharing(self, shared_instance):
        lying = apply_lying(shared_instance, AGGRESSIVE_LYING, seed=1)
        assert lying_fraction(shared_instance, lying) > 0.0

    def test_nobody_lies_without_sharing(self):
        config = WorkloadConfig(num_queries=50, max_sharing=1,
                                capacity=400.0)
        truthful = WorkloadGenerator(config=config, seed=2).instance(
            max_sharing=1)
        lying = apply_lying(truthful, AGGRESSIVE_LYING, seed=3)
        assert lying_fraction(truthful, lying) == 0.0

    def test_aggressive_lies_more_than_moderate(self, shared_instance):
        moderate = apply_lying(shared_instance, MODERATE_LYING, seed=4)
        aggressive = apply_lying(shared_instance, AGGRESSIVE_LYING, seed=4)
        assert (lying_fraction(shared_instance, aggressive)
                >= lying_fraction(shared_instance, moderate))

    def test_seeded_reproducibility(self, shared_instance):
        a = apply_lying(shared_instance, MODERATE_LYING, seed=5)
        b = apply_lying(shared_instance, MODERATE_LYING, seed=5)
        assert [q.bid for q in a.queries] == [q.bid for q in b.queries]

    def test_lying_lowers_car_profit_on_average(self, shared_instance):
        """The Figure 5 claim, in miniature."""
        from repro.core import make_mechanism

        tight = shared_instance.with_capacity(
            shared_instance.total_demand() * 0.5)
        car = make_mechanism("CAR")
        truthful_profit = car.run(tight).profit
        lying_profits = [
            car.run(apply_lying(tight, AGGRESSIVE_LYING, seed=s)).profit
            for s in range(5)
        ]
        assert sum(lying_profits) / len(lying_profits) <= truthful_profit
