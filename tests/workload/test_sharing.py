"""Operator-splitting tests (the Section VI-A sharing sweep)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.loads import total_load
from repro.workload.sharing import (
    average_query_total_load,
    sharing_profile,
    split_degree,
    with_max_sharing,
)
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


class TestSplitDegree:
    def test_paper_example(self):
        """The paper: degree 8 at target 7 splits into 4, 2, 1, 1."""
        assert split_degree(8, 7) == [4, 2, 1, 1]

    def test_no_split_needed(self):
        assert split_degree(5, 60) == [5]
        assert split_degree(1, 1) == [1]

    def test_target_one(self):
        assert split_degree(4, 1) == [1, 1, 1, 1]

    @settings(max_examples=200, deadline=None)
    @given(degree=st.integers(1, 200), target=st.integers(1, 200))
    def test_parts_sum_and_bound(self, degree, target):
        parts = split_degree(degree, target)
        assert sum(parts) == degree
        assert all(1 <= p <= max(target, degree if degree <= target else 0)
                   or p <= target for p in parts)
        if degree > target:
            assert all(p <= target for p in parts)


class TestWithMaxSharing:
    @pytest.fixture
    def base(self):
        config = WorkloadConfig(num_queries=80, max_sharing=12,
                                capacity=600.0)
        return WorkloadGenerator(config=config, seed=5).base_instance()

    def test_respects_target(self, base):
        for target in (8, 4, 2, 1):
            derived = with_max_sharing(base, target, seed=0)
            assert derived.max_sharing_degree() <= target

    def test_preserves_query_total_loads(self, base):
        derived = with_max_sharing(base, 3, seed=0)
        for query in base.queries:
            before = total_load(base, query)
            after = total_load(derived, derived.query(query.query_id))
            assert after == pytest.approx(before)

    def test_preserves_average_query_load(self, base):
        derived = with_max_sharing(base, 2, seed=0)
        assert average_query_total_load(derived) == pytest.approx(
            average_query_total_load(base))

    def test_preserves_bids_and_operator_counts(self, base):
        derived = with_max_sharing(base, 2, seed=0)
        for query in base.queries:
            after = derived.query(query.query_id)
            assert after.bid == query.bid
            assert len(after.operator_ids) == len(query.operator_ids)

    def test_operator_count_grows(self, base):
        used = lambda inst: sum(
            1 for op in inst.operators
            if inst.sharing_degree(op) > 0)
        assert used(with_max_sharing(base, 1, seed=0)) > used(base)

    def test_demand_grows_as_sharing_drops(self, base):
        previous = base.total_demand()
        for target in (6, 3, 1):
            derived = with_max_sharing(base, target, seed=0)
            assert derived.total_demand() >= previous - 1e-9
            previous = derived.total_demand()

    def test_degree_one_demand_equals_sum_of_totals(self, base):
        derived = with_max_sharing(base, 1, seed=0)
        sum_totals = sum(total_load(derived, q) for q in derived.queries)
        assert derived.total_demand() == pytest.approx(sum_totals)

    def test_sharing_profile(self, base):
        profile = sharing_profile(base)
        assert all(degree >= 1 for degree in profile)
        assert sum(profile.values()) <= len(base.operators)
