"""Every example script must run to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))
FAST_EXAMPLES = [p for p in EXAMPLES
                 if p.name != "reproduce_figures.py"]


@pytest.mark.parametrize("script", FAST_EXAMPLES,
                         ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_reproduce_figures_tiny_scale():
    script = pathlib.Path(__file__).parent.parent / "examples" / \
        "reproduce_figures.py"
    env = {"REPRO_SETS": "1", "REPRO_QUERIES": "60",
           "REPRO_DEGREES": "1,4"}
    import os
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=600,
        env={**os.environ, **env})
    assert result.returncode == 0, result.stderr
    assert "Figure 4(a)" in result.stdout
    assert "Table IV" in result.stdout
    assert "Figure 5" in result.stdout
