"""Minimal ASCII table formatting for experiment reports.

The experiment harness prints the same rows/series the paper reports;
this module renders them without third-party dependencies.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def _render_cell(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 2,
    title: str | None = None,
) -> str:
    """Render *rows* under *headers* as a fixed-width ASCII table."""
    rendered = [[_render_cell(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)
