"""Shared utilities: seeded RNG helpers, validation, and ASCII tables."""

from repro.utils.rng import derive_seed, spawn_rng
from repro.utils.tables import format_table
from repro.utils.validation import (
    ValidationError,
    require,
    require_non_negative,
    require_positive,
)

__all__ = [
    "ValidationError",
    "derive_seed",
    "format_table",
    "require",
    "require_non_negative",
    "require_positive",
    "spawn_rng",
]
