"""Deterministic random-number helpers.

Everything stochastic in the library (workload generation, the Two-price
mechanism's random partition, the random-admission baseline) accepts
either an integer seed or a ``numpy.random.Generator``.  These helpers
normalize the two and derive independent child seeds so that experiment
repetitions are reproducible yet uncorrelated.
"""

from __future__ import annotations

import hashlib

import numpy as np

SeedLike = "int | np.random.Generator | None"


def spawn_rng(seed: "int | np.random.Generator | None") -> np.random.Generator:
    """Return a ``numpy`` Generator from *seed*.

    ``None`` yields a nondeterministic generator, an ``int`` a seeded
    one, and an existing ``Generator`` is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a stable 63-bit child seed from *base_seed* and *labels*.

    Used to give each workload set / sharing degree / repetition its own
    independent stream while staying reproducible across runs and
    machines (the derivation is a SHA-256 hash, not Python's salted
    ``hash``).
    """
    text = ":".join([str(base_seed), *map(str, labels)])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1
