"""Shared grammar for compact spec strings: ``name[:key=value,...]``.

One implementation of the parsing used by every spec-addressable
registry in the library — mechanisms (``"two-price:seed=7"``),
execution backends (``"columnar:batch=1024"``), placement policies —
so the grammar cannot drift between layers.
"""

from __future__ import annotations

import ast

from repro.utils.validation import ValidationError


def parse_param_value(text: str) -> object:
    """``"7"`` → 7, ``"true"`` → True, ``"even"`` → ``"even"``."""
    lowered = text.strip().lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    try:
        return ast.literal_eval(text.strip())
    except (ValueError, SyntaxError):
        return text.strip()


def parse_spec_text(
    text: str, what: str = "spec"
) -> "tuple[str, dict[str, object]]":
    """Split ``"name"`` / ``"name:k=v,k=v"`` into name and params.

    Values go through :func:`parse_param_value`; *what* names the spec
    family in error messages (``"mechanism spec"``, ``"backend
    spec"``).
    """
    head, _, tail = text.strip().partition(":")
    if not head:
        raise ValidationError(
            f"cannot parse {what} {text!r}: empty name")
    params: dict[str, object] = {}
    if tail:
        for item in tail.split(","):
            key, sep, value = item.partition("=")
            if not sep or not key.strip():
                raise ValidationError(
                    f"cannot parse {what} {text!r}: parameter "
                    f"{item!r} is not of the form key=value")
            params[key.strip()] = parse_param_value(value)
    return head.strip(), params
