"""Small validation helpers used across the library.

The library raises :class:`ValidationError` (a ``ValueError`` subclass)
for malformed user input so callers can distinguish modelling mistakes
from programming errors.
"""

from __future__ import annotations


class ValidationError(ValueError):
    """Raised when user-supplied model input is malformed."""


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with *message* unless *condition*."""
    if not condition:
        raise ValidationError(message)


def require_positive(value: float, name: str) -> None:
    """Require that *value* is strictly positive."""
    if not value > 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")


def require_non_negative(value: float, name: str) -> None:
    """Require that *value* is zero or positive."""
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
