"""A generic name → factory registry with signature validation.

Backs every spec-addressable registry in the library (mechanisms,
execution backends, scheduling policies, arrival processes):
case-insensitive lookup, factory-signature introspection, and keyword
validation that fails with the accepted parameter menu instead of an
opaque ``TypeError`` — one implementation, parameterized only by the
error-message nouns.  :class:`RegistrySpec` is the matching declarative
half: a frozen ``name + params`` dataclass with the shared
parse/validate/create behaviour, subclassed once per registry.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from collections.abc import Callable, Mapping
from typing import ClassVar

from repro.utils.validation import ValidationError


class SpecRegistry:
    """Factories by name, with validated keyword parameters.

    ``lookup_noun`` names the registry in unknown-name errors
    (``"unknown mechanism ..."``); ``param_noun`` names it in
    parameter errors (they may differ for historical message
    compatibility).
    """

    def __init__(self, lookup_noun: str,
                 param_noun: "str | None" = None) -> None:
        self._lookup_noun = lookup_noun
        self._param_noun = param_noun or lookup_noun
        self._factories: dict[str, Callable] = {}

    def register(self, name: str, factory: Callable) -> None:
        """Register *factory* under *name* (case-insensitive)."""
        self._factories[name.lower()] = factory

    def lookup(self, name: str) -> Callable:
        """The factory of *name*; raises ``KeyError`` with the menu."""
        try:
            return self._factories[name.lower()]
        except KeyError:
            known = ", ".join(sorted(self._factories))
            raise KeyError(
                f"unknown {self._lookup_noun} {name!r}; "
                f"known: {known}") from None

    def params(self, name: str) -> "tuple[str, ...] | None":
        """Parameter names the factory of *name* accepts.

        Returns ``None`` when the signature cannot be inspected or it
        takes ``**kwargs`` — meaning "anything goes".
        """
        factory = self.lookup(name)
        try:
            signature = inspect.signature(factory)
        except (TypeError, ValueError):
            return None
        names = []
        for parameter in signature.parameters.values():
            if parameter.kind is inspect.Parameter.VAR_KEYWORD:
                return None
            if parameter.kind in (
                    inspect.Parameter.POSITIONAL_OR_KEYWORD,
                    inspect.Parameter.KEYWORD_ONLY):
                names.append(parameter.name)
        return tuple(names)

    def validate_params(self, name: str,
                        params: Mapping[str, object]) -> None:
        """Reject *params* the factory of *name* does not accept."""
        if not params:
            return
        accepted = self.params(name)
        if accepted is None:
            return
        unknown = sorted(set(params) - set(accepted))
        if unknown:
            menu = ", ".join(accepted) if accepted else "none"
            raise ValidationError(
                f"{self._param_noun} {name!r} does not accept "
                f"parameter(s) {unknown}; accepted parameters: {menu}")

    def create(self, name: str, **kwargs: object):
        """Instantiate *name*, validating kwargs against the factory."""
        factory = self.lookup(name)
        self.validate_params(name, kwargs)
        return factory(**kwargs)

    def as_mapping(self) -> Mapping[str, Callable]:
        """Read-only snapshot of the registry (name → factory)."""
        return dict(self._factories)


@dataclass(frozen=True)
class RegistrySpec:
    """A registry name plus declared, validated parameters.

    The declarative counterpart of :meth:`SpecRegistry.create`,
    parseable from the library's compact spec strings
    (``"name:key=value,key=value"``).  Subclasses bind a registry and
    an error-message noun as class attributes::

        @dataclass(frozen=True)
        class PolicySpec(RegistrySpec):
            _registry = _REGISTRY
            _what = "scheduler spec"
    """

    name: str
    params: Mapping[str, object] = field(default_factory=dict)

    #: The :class:`SpecRegistry` this spec family resolves against.
    _registry: ClassVar[SpecRegistry]
    #: How error messages name the spec family ("mechanism spec", …).
    _what: ClassVar[str] = "spec"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError(
                f"{self._what} needs a non-empty name")
        object.__setattr__(self, "params", dict(self.params))

    @classmethod
    def parse(cls, text: str) -> "RegistrySpec":
        """Parse ``"name"`` or ``"name:key=value,key=value"``."""
        from repro.utils.specparse import parse_spec_text

        name, params = parse_spec_text(text, what=cls._what)
        return cls(name, params)

    def validate(self) -> "RegistrySpec":
        """Check name and params against the registry; returns self."""
        self._registry.lookup(self.name)
        self._registry.validate_params(self.name, self.params)
        return self

    def create(self):
        """Instantiate whatever this spec describes."""
        return self._registry.create(self.name, **self.params)

    def accepts(self, param: str) -> bool:
        """True if the factory takes a parameter called *param*."""
        accepted = self._registry.params(self.name)
        return accepted is None or param in accepted

    def with_params(self, **params: object) -> "RegistrySpec":
        """A copy of this spec with extra/overridden parameters."""
        return type(self)(self.name, {**self.params, **params})

    def __str__(self) -> str:
        if not self.params:
            return self.name
        rendered = ",".join(f"{key}={value}"
                            for key, value in sorted(self.params.items()))
        return f"{self.name}:{rendered}"
