"""A generic name → factory registry with signature validation.

Backs every spec-addressable registry in the library (mechanisms,
execution backends): case-insensitive lookup, factory-signature
introspection, and keyword validation that fails with the accepted
parameter menu instead of an opaque ``TypeError`` — one
implementation, parameterized only by the error-message nouns.
"""

from __future__ import annotations

import inspect
from collections.abc import Callable, Mapping

from repro.utils.validation import ValidationError


class SpecRegistry:
    """Factories by name, with validated keyword parameters.

    ``lookup_noun`` names the registry in unknown-name errors
    (``"unknown mechanism ..."``); ``param_noun`` names it in
    parameter errors (they may differ for historical message
    compatibility).
    """

    def __init__(self, lookup_noun: str,
                 param_noun: "str | None" = None) -> None:
        self._lookup_noun = lookup_noun
        self._param_noun = param_noun or lookup_noun
        self._factories: dict[str, Callable] = {}

    def register(self, name: str, factory: Callable) -> None:
        """Register *factory* under *name* (case-insensitive)."""
        self._factories[name.lower()] = factory

    def lookup(self, name: str) -> Callable:
        """The factory of *name*; raises ``KeyError`` with the menu."""
        try:
            return self._factories[name.lower()]
        except KeyError:
            known = ", ".join(sorted(self._factories))
            raise KeyError(
                f"unknown {self._lookup_noun} {name!r}; "
                f"known: {known}") from None

    def params(self, name: str) -> "tuple[str, ...] | None":
        """Parameter names the factory of *name* accepts.

        Returns ``None`` when the signature cannot be inspected or it
        takes ``**kwargs`` — meaning "anything goes".
        """
        factory = self.lookup(name)
        try:
            signature = inspect.signature(factory)
        except (TypeError, ValueError):
            return None
        names = []
        for parameter in signature.parameters.values():
            if parameter.kind is inspect.Parameter.VAR_KEYWORD:
                return None
            if parameter.kind in (
                    inspect.Parameter.POSITIONAL_OR_KEYWORD,
                    inspect.Parameter.KEYWORD_ONLY):
                names.append(parameter.name)
        return tuple(names)

    def validate_params(self, name: str,
                        params: Mapping[str, object]) -> None:
        """Reject *params* the factory of *name* does not accept."""
        if not params:
            return
        accepted = self.params(name)
        if accepted is None:
            return
        unknown = sorted(set(params) - set(accepted))
        if unknown:
            menu = ", ".join(accepted) if accepted else "none"
            raise ValidationError(
                f"{self._param_noun} {name!r} does not accept "
                f"parameter(s) {unknown}; accepted parameters: {menu}")

    def create(self, name: str, **kwargs: object):
        """Instantiate *name*, validating kwargs against the factory."""
        factory = self.lookup(name)
        self.validate_params(name, kwargs)
        return factory(**kwargs)

    def as_mapping(self) -> Mapping[str, Callable]:
        """Read-only snapshot of the registry (name → factory)."""
        return dict(self._factories)
