"""Bounded Zipf sampling (the paper's workload distributions).

Table III draws every workload quantity from a *bounded* Zipf
distribution: value ``k`` in ``1..max`` has probability proportional to
``k^{-s}`` where ``s`` is the "skewness" parameter.  Bids use
``max=100, s=0.5``; operator loads ``max=10, s=1``; operator sharing
degrees ``max=1..60, s=1``.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import spawn_rng
from repro.utils.validation import require, require_non_negative


class BoundedZipf:
    """Zipf distribution over ``{1, ..., maximum}`` with exponent *s*.

    ``P(k) = k^{-s} / H`` where ``H`` normalizes over the support.
    ``s = 0`` degenerates to the uniform distribution; larger ``s``
    concentrates mass on small values.
    """

    def __init__(self, maximum: int, skew: float) -> None:
        require(maximum >= 1, f"Zipf maximum must be >= 1, got {maximum}")
        require_non_negative(skew, "Zipf skew")
        self.maximum = int(maximum)
        self.skew = float(skew)
        support = np.arange(1, self.maximum + 1, dtype=float)
        weights = support ** (-self.skew)
        self._probabilities = weights / weights.sum()
        self._support = support.astype(int)

    def sample(
        self,
        rng: "int | np.random.Generator | None",
        size: int | None = None,
    ) -> "int | np.ndarray":
        """Draw one value (``size=None``) or an array of *size* values."""
        generator = spawn_rng(rng)
        drawn = generator.choice(
            self._support, size=size, p=self._probabilities)
        if size is None:
            return int(drawn)
        return drawn

    def pmf(self, k: int) -> float:
        """Probability of value *k* (0 outside the support)."""
        if not 1 <= k <= self.maximum:
            return 0.0
        return float(self._probabilities[k - 1])

    def mean(self) -> float:
        """Expected value of the distribution."""
        return float((self._support * self._probabilities).sum())
