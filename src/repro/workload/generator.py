"""The paper's workload generator (Table III, Section VI-A).

Table III:

========================  =====================================
Number of workload sets   50
Number of queries         2000
Number of operators       700 – 8800 (falls as sharing rises)
Max degree of sharing     1 – 60, Zipf skew 1
Maximum bid               100, Zipf skew 0.5
Maximum operator load     10, Zipf skew 1
System capacity           5K / 10K / 15K / 20K
========================  =====================================

Generation follows the paper: build the workload once at the **highest**
maximum degree of sharing (60) — drawing each operator's load and
sharing degree from bounded Zipf distributions and assigning it to that
many random queries — then derive every lower-degree instance by the
operator-splitting procedure of :mod:`repro.workload.sharing`, which
keeps the average query load constant across the sweep.

With the paper's parameters this yields ≈700 operators at degree 60 and
≈8800 at degree 1, matching Table III's operator-count range.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.model import AuctionInstance, Operator, Query
from repro.utils.rng import derive_seed, spawn_rng
from repro.utils.validation import require, require_positive
from repro.workload.sharing import with_max_sharing
from repro.workload.zipf import BoundedZipf

#: The sharing degrees plotted in Figure 4 (x axis 1..60).
PAPER_SHARING_DEGREES = tuple(range(1, 61))

#: The system capacities of Figures 4(c)–(f).
PAPER_CAPACITIES = (5_000, 10_000, 15_000, 20_000)


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the Table III generator (paper defaults).

    ``operators_per_query`` is the mean number of operators per query;
    the paper's 2000 queries and 700–8800 operators imply ≈4.4 operator
    slots per query, which we adopt as the default.

    ``bid_mode`` selects between the two readings of "Maximum Bid 100 —
    Zipf, skewness 0.5" (Table III):

    * ``"rank"`` (default) — a Zipf *rank profile*: the i-th highest
      bid is ``max_bid · i^{-skew}``, randomly assigned to queries.
      This gives every user a distinct valuation (the assumption
      Two-price's Theorem 11 is stated under) and reproduces the
      figures' shape: the density mechanisms beat Two-price at low
      sharing, with the crossover sliding left as capacity grows.
    * ``"sampled"`` — bids drawn i.i.d. from the bounded Zipf pmf
      ``P(b) ∝ b^{-skew}``, b in 1..max_bid.  Under this literal
      reading constant pricing extracts so much revenue that Two-price
      dominates everywhere, contradicting Figure 4; kept for ablation
      (see EXPERIMENTS.md).
    """

    num_queries: int = 2000
    max_sharing: int = 60
    max_bid: int = 100
    bid_skew: float = 0.5
    bid_mode: str = "rank"
    max_operator_load: int = 10
    load_skew: float = 1.0
    sharing_skew: float = 1.0
    operators_per_query: float = 4.4
    capacity: float = 15_000.0

    def __post_init__(self) -> None:
        require(self.bid_mode in ("rank", "sampled"),
                f"bid_mode must be 'rank' or 'sampled', got {self.bid_mode!r}")
        require(self.num_queries >= 1, "num_queries must be >= 1")
        require(self.max_sharing >= 1, "max_sharing must be >= 1")
        require(self.max_sharing <= self.num_queries,
                "max_sharing cannot exceed num_queries")
        require_positive(self.operators_per_query, "operators_per_query")
        require_positive(self.capacity, "capacity")

    def scaled(self, num_queries: int) -> "WorkloadConfig":
        """Copy with a different query count, capacity scaled pro rata.

        Keeps the capacity-to-demand ratio of the paper's setup so that
        reduced-scale benchmark runs preserve the figures' shape.
        """
        factor = num_queries / self.num_queries
        return replace(
            self,
            num_queries=num_queries,
            capacity=self.capacity * factor,
            max_sharing=min(self.max_sharing, num_queries),
        )


@dataclass
class WorkloadGenerator:
    """Seeded generator producing :class:`AuctionInstance` objects.

    One generator corresponds to one *workload set* in the paper's
    terminology: :meth:`base_instance` builds the maximum-sharing
    instance and :meth:`instance` derives the variant for any requested
    maximum degree of sharing and capacity.
    """

    config: WorkloadConfig = field(default_factory=WorkloadConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        self._bid_dist = BoundedZipf(self.config.max_bid,
                                     self.config.bid_skew)
        self._load_dist = BoundedZipf(self.config.max_operator_load,
                                      self.config.load_skew)
        self._degree_dist = BoundedZipf(self.config.max_sharing,
                                        self.config.sharing_skew)
        self._base_cache: AuctionInstance | None = None

    # ------------------------------------------------------------------
    # Base (maximum-sharing) instance
    # ------------------------------------------------------------------

    def base_instance(self) -> AuctionInstance:
        """The workload at the configured maximum degree of sharing.

        Operators are created until the total number of (operator,
        query) slots reaches ``operators_per_query × num_queries``; each
        operator draws a load and a sharing degree from the Table III
        Zipf distributions and is assigned to that many distinct random
        queries.  Queries left empty receive a private degree-1
        operator, and each query then draws its bid.
        """
        if self._base_cache is not None:
            return self._base_cache
        rng = spawn_rng(derive_seed(self.seed, "base"))
        cfg = self.config
        target_slots = int(round(cfg.operators_per_query * cfg.num_queries))
        assignments: list[list[int]] = [[] for _ in range(cfg.num_queries)]
        operators: dict[str, Operator] = {}
        slots = 0
        op_index = 0
        while slots < target_slots:
            degree = int(self._degree_dist.sample(rng))
            load = float(self._load_dist.sample(rng))
            op_id = f"op{op_index}"
            operators[op_id] = Operator(op_id, load)
            members = rng.choice(cfg.num_queries, size=degree, replace=False)
            for query_idx in members:
                assignments[int(query_idx)].append(op_index)
            slots += degree
            op_index += 1
        # Guarantee every query contains at least one operator.
        for query_idx, ops in enumerate(assignments):
            if not ops:
                load = float(self._load_dist.sample(rng))
                op_id = f"op{op_index}"
                operators[op_id] = Operator(op_id, load)
                ops.append(op_index)
                op_index += 1
        bids = self._draw_bids(rng)
        queries = tuple(
            Query(
                query_id=f"q{idx}",
                operator_ids=tuple(f"op{op}" for op in ops),
                bid=float(bids[idx]),
            )
            for idx, ops in enumerate(assignments)
        )
        self._base_cache = AuctionInstance(
            operators, queries, cfg.capacity)
        return self._base_cache

    def _draw_bids(self, rng: np.random.Generator) -> np.ndarray:
        """Per-query bids under the configured ``bid_mode``."""
        cfg = self.config
        if cfg.bid_mode == "sampled":
            return np.asarray(
                self._bid_dist.sample(rng, size=cfg.num_queries),
                dtype=float)
        ranks = rng.permutation(cfg.num_queries) + 1
        return cfg.max_bid * ranks.astype(float) ** (-cfg.bid_skew)

    # ------------------------------------------------------------------
    # Derived instances
    # ------------------------------------------------------------------

    def instance(
        self,
        max_sharing: int | None = None,
        capacity: float | None = None,
    ) -> AuctionInstance:
        """Instance at the given max degree of sharing and capacity.

        Splitting is deterministic per (seed, degree) so re-requesting
        the same point of the sweep reproduces the same instance.
        """
        base = self.base_instance()
        if max_sharing is not None and max_sharing < self.config.max_sharing:
            split_rng = spawn_rng(derive_seed(self.seed, "split", max_sharing))
            base = with_max_sharing(base, max_sharing, split_rng)
        if capacity is not None:
            base = base.with_capacity(capacity)
        return base

    def sweep(
        self,
        degrees: tuple[int, ...] = PAPER_SHARING_DEGREES,
        capacity: float | None = None,
    ):
        """Yield ``(degree, instance)`` across a sharing sweep."""
        for degree in degrees:
            yield degree, self.instance(max_sharing=degree,
                                        capacity=capacity)


def workload_sets(
    num_sets: int,
    config: WorkloadConfig | None = None,
    seed: int = 0,
) -> list[WorkloadGenerator]:
    """The paper's "50 different sets of workload" (any count).

    Each set is an independent :class:`WorkloadGenerator` with a derived
    seed; experiments average their metrics across sets.
    """
    cfg = config or WorkloadConfig()
    return [
        WorkloadGenerator(config=cfg, seed=derive_seed(seed, "set", index))
        for index in range(num_sets)
    ]
