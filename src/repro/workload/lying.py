"""Strategic-lying workloads for the CAR experiment (Figure 5).

CAR is the paper's only non-strategyproof mechanism, so users facing it
may profit by under-bidding.  The paper simulates this: a user whose
query shares many operators (low ``C^SF_i / C^T_i`` ratio) submits an
*alternative bid* — her valuation times a *lying factor* — with some
probability.  Two parameterizations are evaluated:

* **moderate lying (ML)** — ratio threshold 0.25, P(lie) 0.5, factor 0.5;
* **aggressive lying (AL)** — ratio threshold 0.35, P(lie) 0.7, factor 0.3.

The transformed instances keep every user's *valuation* intact, so
profits and payoffs remain comparable against the truthful runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.loads import static_fair_share_load, total_load
from repro.core.model import AuctionInstance, Query
from repro.utils.rng import spawn_rng
from repro.utils.validation import require


@dataclass(frozen=True)
class LyingProfile:
    """A strategic-bidding population profile.

    A user lies (submits ``valuation * lying_factor``) when her
    fair-share-to-total-load ratio is below *ratio_threshold*, with
    probability *lying_probability*.
    """

    name: str
    ratio_threshold: float
    lying_probability: float
    lying_factor: float

    def __post_init__(self) -> None:
        require(0 <= self.lying_probability <= 1,
                "lying probability must be in [0, 1]")
        require(0 < self.lying_factor <= 1,
                "lying factor must be in (0, 1]")
        require(self.ratio_threshold >= 0,
                "ratio threshold must be >= 0")


#: Figure 5's "CAR-ML" workload parameters.
MODERATE_LYING = LyingProfile(
    name="ML", ratio_threshold=0.25, lying_probability=0.5,
    lying_factor=0.5)

#: Figure 5's "CAR-AL" workload parameters.
AGGRESSIVE_LYING = LyingProfile(
    name="AL", ratio_threshold=0.35, lying_probability=0.7,
    lying_factor=0.3)


def apply_lying(
    instance: AuctionInstance,
    profile: LyingProfile,
    seed: "int | np.random.Generator | None" = None,
) -> AuctionInstance:
    """Return *instance* with strategic under-bids applied.

    Queries keep their true valuations; only submitted bids change, and
    only for users whose sharing makes lying attractive under *profile*.
    """
    rng = spawn_rng(seed)
    queries: list[Query] = []
    for query in instance.queries:
        total = total_load(instance, query)
        if total == 0:
            ratio = 1.0
        else:
            ratio = static_fair_share_load(instance, query) / total
        lies = (ratio < profile.ratio_threshold
                and rng.random() < profile.lying_probability)
        if lies:
            queries.append(Query(
                query_id=query.query_id,
                operator_ids=query.operator_ids,
                bid=query.true_value * profile.lying_factor,
                valuation=query.true_value,
                owner=query.owner,
            ))
        else:
            queries.append(query)
    return AuctionInstance(instance.operators, tuple(queries),
                           instance.capacity)


def lying_fraction(
    truthful: AuctionInstance, lying: AuctionInstance
) -> float:
    """Fraction of users whose submitted bid differs from their valuation."""
    liars = sum(
        1 for q in lying.queries if q.bid != q.true_value
    )
    if truthful.num_queries == 0:
        return 0.0
    return liars / truthful.num_queries
