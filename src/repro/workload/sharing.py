"""Varying the degree of sharing by operator splitting (Section VI-A).

The paper keeps the *average query load* constant while sweeping the
maximum degree of sharing: it generates the workload once at the
highest degree (60) and derives lower-degree variants by **splitting**
highly-shared operators — each split part is a fresh operator with the
*same load* as the original, and the queries that shared the original
are partitioned among the parts.  Every query therefore keeps exactly
the same number of operators and the same total load ``C^T``; only the
sharing structure (and hence the instance's aggregate demand) changes.

The paper's worked example splits a degree-8 operator into degrees
``4, 2, 1, 1`` "to generate an input instance of maximum degree of
sharing 7": successive halving, capped at the target degree.
:func:`split_degree` reproduces that rule exactly.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import AuctionInstance, Operator, Query
from repro.utils.rng import spawn_rng
from repro.utils.validation import require


def split_degree(degree: int, target: int) -> list[int]:
    """Split *degree* into parts of at most *target*, by halving.

    Matches the paper's example (8 at target 7 → ``[4, 2, 1, 1]``): at
    each step the next part is ``min(target, remaining // 2)`` and the
    final unit closes the sum.  Degrees already within the target are
    returned unsplit.

    >>> split_degree(8, 7)
    [4, 2, 1, 1]
    >>> split_degree(8, 3)
    [3, 2, 1, 1, 1]
    >>> split_degree(5, 60)
    [5]
    """
    require(degree >= 1, f"degree must be >= 1, got {degree}")
    require(target >= 1, f"target must be >= 1, got {target}")
    if degree <= target:
        return [degree]
    parts: list[int] = []
    remaining = degree
    while remaining > 1:
        part = min(target, max(1, remaining // 2))
        parts.append(part)
        remaining -= part
    parts.append(remaining)  # the final unit (remaining == 1)
    return parts


def with_max_sharing(
    instance: AuctionInstance,
    target: int,
    seed: "int | np.random.Generator | None" = None,
) -> AuctionInstance:
    """Derive an instance whose max degree of sharing is at most *target*.

    Operators whose sharing degree exceeds *target* are split per
    :func:`split_degree`; the sharing queries are shuffled (seeded) and
    partitioned among the parts.  Bids, valuations, owners, per-query
    operator counts and total loads are all preserved.
    """
    rng = spawn_rng(seed)
    operators: dict[str, Operator] = {}
    # Maps query id -> replacement operator ids (accumulated per query).
    reassignment: dict[str, dict[str, str]] = {
        q.query_id: {} for q in instance.queries}
    sharers: dict[str, list[str]] = {op_id: [] for op_id in instance.operators}
    for query in instance.queries:
        for op_id in query.operator_ids:
            sharers[op_id].append(query.query_id)

    for op_id, operator in instance.operators.items():
        degree = len(sharers[op_id])
        if degree <= target:
            operators[op_id] = operator
            continue
        parts = split_degree(degree, target)
        shuffled = list(sharers[op_id])
        rng.shuffle(shuffled)
        cursor = 0
        for index, part in enumerate(parts):
            part_id = f"{op_id}~s{index}"
            operators[part_id] = Operator(part_id, operator.load)
            for qid in shuffled[cursor:cursor + part]:
                reassignment[qid][op_id] = part_id
            cursor += part

    queries = tuple(
        Query(
            query_id=q.query_id,
            operator_ids=tuple(
                reassignment[q.query_id].get(op_id, op_id)
                for op_id in q.operator_ids
            ),
            bid=q.bid,
            valuation=q.valuation,
            owner=q.owner,
        )
        for q in instance.queries
    )
    return AuctionInstance(operators, queries, instance.capacity)


def sharing_profile(instance: AuctionInstance) -> dict[int, int]:
    """Histogram: sharing degree → number of operators at that degree.

    Operators referenced by no query are excluded (degree 0 entries are
    bookkeeping artifacts, not workload).
    """
    profile: dict[int, int] = {}
    for op_id in instance.operators:
        degree = instance.sharing_degree(op_id)
        if degree > 0:
            profile[degree] = profile.get(degree, 0) + 1
    return profile


def average_query_total_load(instance: AuctionInstance) -> float:
    """Mean total load ``C^T`` over the submitted queries.

    The quantity the paper holds constant across the sharing sweep.
    """
    from repro.core.loads import total_load

    if not instance.queries:
        return 0.0
    return sum(
        total_load(instance, q) for q in instance.queries
    ) / instance.num_queries
