"""Hand-built scenario instances: the paper's Example 1 and the
application workloads its introduction motivates.

These are small, fully-determined instances used by the worked-example
tests, the quickstart, and the domain examples (stock-market
monitoring, sensor-network environmental monitoring, personalized Web
alerts).
"""

from __future__ import annotations

import numpy as np

from repro.core.model import AuctionInstance, Operator, Query
from repro.utils.rng import spawn_rng
from repro.workload.zipf import BoundedZipf


def example1() -> AuctionInstance:
    """The paper's Example 1 (Figures 1–2).

    Three queries on a server of capacity 10: ``q1 = {A, B}``,
    ``q2 = {A, C}`` (sharing operator A), ``q3 = {D, E}``.  Loads:
    A=4, B=1, C=2, D=5, E=5.  The bids reproduce the worked numbers of
    Sections IV-A/B/C — priorities 11/12/10 under CAR and CAT,
    18.34/18/10 under CAF — i.e. ``b1=55, b2=72, b3=100``:

    * CAR admits q2 then q1; payments $10 and $60 ($10/unit of
      remaining load).
    * CAF admits q1 then q2; payments $30 and $40.
    * CAT admits q2 then q1; payments $50 and $60.
    """
    return AuctionInstance.build(
        operator_loads={"A": 4.0, "B": 1.0, "C": 2.0, "D": 5.0, "E": 5.0},
        query_specs={"q1": ("A", "B"), "q2": ("A", "C"), "q3": ("D", "E")},
        bids={"q1": 55.0, "q2": 72.0, "q3": 100.0},
        capacity=10.0,
    )


def stock_monitoring(
    num_traders: int = 40,
    capacity: float = 120.0,
    seed: int = 7,
) -> AuctionInstance:
    """A stock-market monitoring tenant mix (the paper's Section I/II
    motivating application).

    A few *hot* shared operators — selections over a stock-quote stream
    and a news-story stream, index aggregates — are shared by many
    traders' queries; each trader adds a private join or window with her
    own parameters.  Bids follow a skewed (Zipf) willingness-to-pay.
    """
    rng = spawn_rng(seed)
    operators: dict[str, float] = {
        # Hot shared subnetwork over stream s1 (quotes) and s2 (news).
        "sel_high_value_trades": 6.0,
        "sel_public_companies": 4.0,
        "agg_index_1min": 5.0,
        "agg_index_5min": 3.0,
        "sel_sec_filings": 2.0,
    }
    shared_ids = list(operators)
    query_specs: dict[str, list[str]] = {}
    bids: dict[str, float] = {}
    bid_dist = BoundedZipf(100, 0.5)
    for trader in range(num_traders):
        qid = f"trader{trader}"
        picks = rng.choice(len(shared_ids),
                           size=int(rng.integers(1, 4)), replace=False)
        ops = [shared_ids[int(i)] for i in picks]
        private_op = f"join_portfolio_{trader}"
        operators[private_op] = float(rng.integers(1, 5))
        ops.append(private_op)
        query_specs[qid] = ops
        bids[qid] = float(bid_dist.sample(rng))
    return AuctionInstance.build(
        operator_loads=operators,
        query_specs=query_specs,
        bids=bids,
        capacity=capacity,
    )


def sensor_network(
    num_subscribers: int = 30,
    num_sensors: int = 6,
    capacity: float = 40.0,
    seed: int = 11,
) -> AuctionInstance:
    """Environmental monitoring over a sensor network.

    Per-sensor cleaning/windowing operators are shared by every
    subscriber watching that sensor; subscribers add private threshold
    alarms.  Sensor popularity is Zipf-distributed, so a few sensors are
    heavily shared — the regime where fair-share and total-load
    mechanisms diverge.
    """
    rng = spawn_rng(seed)
    operators: dict[str, float] = {}
    for sensor in range(num_sensors):
        operators[f"clean_s{sensor}"] = 2.0
        operators[f"window_s{sensor}"] = 3.0
    popularity = BoundedZipf(num_sensors, 1.0)
    bid_dist = BoundedZipf(50, 0.5)
    query_specs: dict[str, list[str]] = {}
    bids: dict[str, float] = {}
    for sub in range(num_subscribers):
        sensor = int(popularity.sample(rng)) - 1
        alarm = f"alarm_{sub}"
        operators[alarm] = 1.0
        query_specs[f"sub{sub}"] = [
            f"clean_s{sensor}", f"window_s{sensor}", alarm]
        bids[f"sub{sub}"] = float(bid_dist.sample(rng))
    return AuctionInstance.build(
        operator_loads=operators,
        query_specs=query_specs,
        bids=bids,
        capacity=capacity,
    )


def web_alerts(
    num_users: int = 25,
    capacity: float = 25.0,
    seed: int = 13,
) -> AuctionInstance:
    """Personalized and customized Web alerts (Section I).

    A crawl/diff pipeline is shared by everyone; topic filters are
    shared by interest groups; each user adds a private notification
    operator with negligible load.
    """
    rng = spawn_rng(seed)
    topics = ["sports", "finance", "weather", "politics", "tech"]
    operators: dict[str, float] = {"crawl_diff": 10.0}
    for topic in topics:
        operators[f"filter_{topic}"] = 3.0
    bid_dist = BoundedZipf(30, 0.5)
    query_specs: dict[str, list[str]] = {}
    bids: dict[str, float] = {}
    for user in range(num_users):
        topic = topics[int(rng.integers(0, len(topics)))]
        notify = f"notify_{user}"
        operators[notify] = 0.5
        query_specs[f"user{user}"] = ["crawl_diff", f"filter_{topic}", notify]
        bids[f"user{user}"] = float(bid_dist.sample(rng))
    return AuctionInstance.build(
        operator_loads=operators,
        query_specs=query_specs,
        bids=bids,
        capacity=capacity,
    )


def table2_instance(epsilon: float = 1e-3) -> AuctionInstance:
    """The Table II instance: the sybil attack that defeats CAT+.

    Users 1 and 2 are real (valuations 100 and 89, total loads 1 and
    0.9 on a capacity-1 server); "user 3" is user 2's fake with
    valuation ``100ε + ε`` and load ``ε``.  Without the fake, CAT+
    serves user 1 only; with it, user 2 and the fake win, user 2 pays
    0, and the fake pays ``100ε``.
    """
    operators = {
        "o1": Operator("o1", 1.0),
        "o2": Operator("o2", 0.9),
        "o3": Operator("o3", epsilon),
    }
    queries = (
        Query("u1", ("o1",), bid=100.0, owner="user1"),
        Query("u2", ("o2",), bid=89.0, owner="user2"),
        Query("u3", ("o3",), bid=100.0 * epsilon + epsilon,
              valuation=0.0, owner="user2"),
    )
    return AuctionInstance(operators, queries, capacity=1.0)
