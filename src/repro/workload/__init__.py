"""Workload generation: Table III, sharing sweeps, lying, scenarios."""

from repro.workload.generator import (
    PAPER_CAPACITIES,
    PAPER_SHARING_DEGREES,
    WorkloadConfig,
    WorkloadGenerator,
    workload_sets,
)
from repro.workload.lying import (
    AGGRESSIVE_LYING,
    MODERATE_LYING,
    LyingProfile,
    apply_lying,
    lying_fraction,
)
from repro.workload.scenarios import (
    example1,
    sensor_network,
    stock_monitoring,
    table2_instance,
    web_alerts,
)
from repro.workload.sharing import (
    average_query_total_load,
    sharing_profile,
    split_degree,
    with_max_sharing,
)
from repro.workload.zipf import BoundedZipf

__all__ = [
    "AGGRESSIVE_LYING",
    "BoundedZipf",
    "LyingProfile",
    "MODERATE_LYING",
    "PAPER_CAPACITIES",
    "PAPER_SHARING_DEGREES",
    "WorkloadConfig",
    "WorkloadGenerator",
    "apply_lying",
    "average_query_total_load",
    "example1",
    "lying_fraction",
    "sensor_network",
    "sharing_profile",
    "split_degree",
    "stock_monitoring",
    "table2_instance",
    "web_alerts",
    "with_max_sharing",
    "workload_sets",
]
