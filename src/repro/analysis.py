"""Instance and outcome analysis helpers.

The questions a DSMS-center operator actually asks of this library —
"what does my workload look like?", "how do the mechanisms compare on
*my* instance?", "where does the profit come from?" — packaged as
functions returning plain data plus an ASCII rendering.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.loads import static_fair_share_load, total_load
from repro.core.mechanism import make_mechanism
from repro.core.model import AuctionInstance
from repro.core.result import AuctionOutcome
from repro.utils.tables import format_table


@dataclass(frozen=True)
class InstanceProfile:
    """Structural summary of an auction instance."""

    num_queries: int
    num_operators: int
    capacity: float
    total_demand: float
    overload_factor: float
    max_sharing_degree: int
    mean_sharing_degree: float
    mean_query_total_load: float
    mean_query_fair_share_load: float
    min_bid: float
    max_bid: float
    mean_bid: float

    def render(self) -> str:
        rows = [
            ["queries", self.num_queries],
            ["operators", self.num_operators],
            ["capacity", self.capacity],
            ["total demand", self.total_demand],
            ["overload factor", self.overload_factor],
            ["max sharing degree", self.max_sharing_degree],
            ["mean sharing degree", self.mean_sharing_degree],
            ["mean C^T per query", self.mean_query_total_load],
            ["mean C^SF per query", self.mean_query_fair_share_load],
            ["bids (min / mean / max)",
             f"{self.min_bid:.2f} / {self.mean_bid:.2f} / "
             f"{self.max_bid:.2f}"],
        ]
        return format_table(["property", "value"], rows, precision=2,
                            title="Instance profile")


def describe_instance(instance: AuctionInstance) -> InstanceProfile:
    """Summarize the workload structure the mechanisms will face."""
    used_operators = [op_id for op_id in instance.operators
                      if instance.sharing_degree(op_id) > 0]
    degrees = [instance.sharing_degree(op_id)
               for op_id in used_operators]
    totals = [total_load(instance, q) for q in instance.queries]
    fair_shares = [static_fair_share_load(instance, q)
                   for q in instance.queries]
    bids = [q.bid for q in instance.queries]
    demand = instance.total_demand()
    n = max(instance.num_queries, 1)
    return InstanceProfile(
        num_queries=instance.num_queries,
        num_operators=len(used_operators),
        capacity=instance.capacity,
        total_demand=demand,
        overload_factor=demand / instance.capacity,
        max_sharing_degree=max(degrees, default=0),
        mean_sharing_degree=(sum(degrees) / len(degrees)
                             if degrees else 0.0),
        mean_query_total_load=sum(totals) / n,
        mean_query_fair_share_load=sum(fair_shares) / n,
        min_bid=min(bids, default=0.0),
        max_bid=max(bids, default=0.0),
        mean_bid=sum(bids) / n if bids else 0.0,
    )


@dataclass(frozen=True)
class MechanismComparison:
    """Side-by-side Section VI metrics on one instance."""

    instance: AuctionInstance
    outcomes: dict[str, AuctionOutcome]

    def render(self) -> str:
        rows = []
        for name in sorted(self.outcomes):
            outcome = self.outcomes[name]
            rows.append([
                name,
                len(outcome.winner_ids),
                outcome.profit,
                outcome.total_user_payoff,
                outcome.admission_rate,
                outcome.utilization,
            ])
        return format_table(
            ["mechanism", "winners", "profit", "user payoff",
             "admission", "utilization"],
            rows, precision=3,
            title="Mechanism comparison")

    def best_for(self, metric: str) -> str:
        """Name of the mechanism maximizing *metric* on this instance."""
        return max(self.outcomes,
                   key=lambda name: getattr(self.outcomes[name], metric))


def compare_mechanisms(
    instance: AuctionInstance,
    mechanisms: Sequence[str] = ("CAF", "CAF+", "CAT", "CAT+", "GV",
                                 "Two-price"),
    seed: int = 0,
) -> MechanismComparison:
    """Run several mechanisms on *instance* and collect their metrics."""
    outcomes: dict[str, AuctionOutcome] = {}
    for name in mechanisms:
        kwargs = ({"seed": seed}
                  if name.lower() in ("two-price", "random") else {})
        outcomes[name] = make_mechanism(name, **kwargs).run(instance)
    return MechanismComparison(instance=instance, outcomes=outcomes)


@dataclass(frozen=True)
class ProfitBreakdown:
    """Where an outcome's profit comes from."""

    mechanism: str
    profit: float
    winners: int
    mean_payment: float
    max_payment: float
    top_decile_share: float  # fraction of profit paid by top 10% payers

    def render(self) -> str:
        rows = [
            ["profit", self.profit],
            ["winners", self.winners],
            ["mean payment", self.mean_payment],
            ["max payment", self.max_payment],
            ["top-decile payment share", self.top_decile_share],
        ]
        return format_table(
            ["property", "value"], rows, precision=3,
            title=f"Profit breakdown — {self.mechanism}")


def profit_breakdown(outcome: AuctionOutcome) -> ProfitBreakdown:
    """Decompose an outcome's profit over its paying winners."""
    payments = sorted(
        (outcome.payment(qid) for qid in outcome.winner_ids),
        reverse=True)
    winners = len(payments)
    profit = sum(payments)
    top = max(1, winners // 10) if winners else 0
    top_share = (sum(payments[:top]) / profit
                 if profit > 0 and top else 0.0)
    return ProfitBreakdown(
        mechanism=outcome.mechanism,
        profit=profit,
        winners=winners,
        mean_payment=profit / winners if winners else 0.0,
        max_payment=payments[0] if payments else 0.0,
        top_decile_share=top_share,
    )
