"""Empirical strategyproofness verification.

A mechanism is bid-strategyproof when no user can raise her payoff
``v_i − p_i`` by bidding something other than her true valuation.  This
module searches for profitable misreports: it re-runs a mechanism on
bid-perturbed copies of an instance and compares the manipulating
user's payoff against truthful play.  A returned
:class:`Misreport` is a concrete counterexample (as CAR admits, by
design); ``None`` means the search found nothing (as CAF/CAF+/CAT/CAT+/
GV/Two-price should yield on every instance).

For randomized mechanisms the comparison uses the *expected* payoff
over a configurable number of runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

import numpy as np

from repro.core.mechanism import Mechanism
from repro.core.model import AuctionInstance
from repro.utils.rng import spawn_rng


@dataclass(frozen=True)
class Misreport:
    """Certificate of a profitable deviation from truthful bidding."""

    query_id: str
    truthful_bid: float
    strategic_bid: float
    truthful_payoff: float
    strategic_payoff: float

    @property
    def gain(self) -> float:
        """Payoff improvement obtained by the misreport."""
        return self.strategic_payoff - self.truthful_payoff


def candidate_bids(
    instance: AuctionInstance,
    query_id: str,
    rng: np.random.Generator,
    extra: int = 8,
) -> list[float]:
    """Deviation bids worth probing for *query_id*.

    Mixes structured candidates (fractions and multiples of the true
    value, bids straddling other users' bids) with random draws; all
    are non-negative and differ from the truthful bid.
    """
    truth = instance.query(query_id).true_value
    others = sorted({q.bid for q in instance.queries
                     if q.query_id != query_id})
    candidates = {truth * f for f in
                  (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99,
                   1.01, 1.1, 1.5, 2.0, 4.0)}
    for bid in others[:6] + others[-6:]:
        candidates.add(max(bid - 1e-3, 0.0))
        candidates.add(bid + 1e-3)
    high = max(instance.max_valuation(), truth, 1.0)
    candidates.update(float(b) for b in rng.uniform(0, 2 * high, size=extra))
    return sorted(c for c in candidates if c >= 0 and c != truth)


def expected_payoff(
    mechanism_factory: Callable[[int], Mechanism],
    instance: AuctionInstance,
    query_id: str,
    runs: int,
) -> float:
    """Mean payoff of *query_id* over *runs* mechanism instantiations.

    ``mechanism_factory(seed)`` must build the mechanism with the given
    randomness seed; deterministic mechanisms can ignore it.
    """
    total = 0.0
    for run in range(runs):
        outcome = mechanism_factory(run).run(instance)
        total += outcome.payoff(query_id)
    return total / runs


def find_profitable_misreport(
    mechanism: "Mechanism | Callable[[int], Mechanism]",
    instance: AuctionInstance,
    query_id: str,
    seed: "int | np.random.Generator | None" = 0,
    runs: int = 1,
    tolerance: float = 1e-7,
    bids: Sequence[float] | None = None,
) -> Misreport | None:
    """Search deviation bids for a profitable one.

    *instance* is taken as the truthful profile for *query_id* (the
    query's ``true_value`` is its bid unless a valuation is set).  Pass
    ``runs > 1`` with a factory for randomized mechanisms.
    """
    rng = spawn_rng(seed)
    if isinstance(mechanism, Mechanism):
        factory: Callable[[int], Mechanism] = lambda _run: mechanism
    else:
        factory = mechanism
    truthful_instance = instance.with_bid(
        query_id, instance.query(query_id).true_value)
    truthful = expected_payoff(factory, truthful_instance, query_id, runs)
    probe_bids = (list(bids) if bids is not None
                  else candidate_bids(instance, query_id, rng))
    truth = instance.query(query_id).true_value
    for bid in probe_bids:
        deviated = truthful_instance.with_bid(query_id, bid)
        payoff = expected_payoff(factory, deviated, query_id, runs)
        if payoff > truthful + tolerance:
            return Misreport(
                query_id=query_id,
                truthful_bid=truth,
                strategic_bid=bid,
                truthful_payoff=truthful,
                strategic_payoff=payoff,
            )
    return None


def scan_strategyproofness(
    mechanism: "Mechanism | Callable[[int], Mechanism]",
    instance: AuctionInstance,
    seed: "int | np.random.Generator | None" = 0,
    sample: int | None = None,
    runs: int = 1,
) -> list[Misreport]:
    """Search every (or a sample of) user(s) for profitable misreports."""
    rng = spawn_rng(seed)
    query_ids = [q.query_id for q in instance.queries]
    if sample is not None and sample < len(query_ids):
        picks = rng.choice(len(query_ids), size=sample, replace=False)
        query_ids = [query_ids[int(i)] for i in picks]
    found: list[Misreport] = []
    for query_id in query_ids:
        misreport = find_profitable_misreport(
            mechanism, instance, query_id, seed=rng, runs=runs)
        if misreport is not None:
            found.append(misreport)
    return found
