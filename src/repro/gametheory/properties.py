"""Empirical verification of Table I / Table V property rows.

The paper states each mechanism's game-theoretic properties (Table I)
and its relative experimental standing (Table V).  This module runs the
empirical checks behind Table I — misreport searches for
strategyproofness, attack searches for sybil immunity — over a battery
of seeded workloads, and renders the verdicts next to the paper's
claims.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mechanism import Mechanism, make_mechanism
from repro.gametheory.strategyproof import scan_strategyproofness
from repro.gametheory.sybil import search_sybil_attack
from repro.utils.rng import derive_seed
from repro.utils.tables import format_table
from repro.workload.generator import WorkloadConfig, WorkloadGenerator

#: The claims of Table I (mechanism → (strategyproof, sybil-immune,
#: profit guarantee)).
TABLE_I = {
    "CAF": (True, False, False),
    "CAF+": (True, False, False),
    "CAT": (True, True, False),
    "CAT+": (True, False, False),
    "Two-price": (True, False, True),
}


@dataclass(frozen=True)
class PropertyVerdict:
    """Empirical verdict for one mechanism."""

    mechanism: str
    claimed_strategyproof: bool
    misreports_found: int
    claimed_sybil_immune: bool
    attacks_found: int

    @property
    def consistent(self) -> bool:
        """True if the evidence does not contradict the paper's claims.

        For claimed-true properties, finding a counterexample is a
        contradiction.  For claimed-false properties any outcome is
        consistent (a bounded search may simply miss the attack; the
        constructive attacks in :mod:`repro.gametheory.attacks` cover
        those rows).
        """
        if self.claimed_strategyproof and self.misreports_found:
            return False
        if self.claimed_sybil_immune and self.attacks_found:
            return False
        return True


def _mechanism_factory(name: str):
    def factory(run_seed: int) -> Mechanism:
        if name == "Two-price":
            # Hash partitioning fixes every user's side independently of
            # the bids, making each salt's realization individually
            # bid-strategyproof (the RSOP argument); payoffs can then be
            # compared exactly instead of as noisy sample means.
            return make_mechanism(
                name, seed=run_seed, partition_mode="hash")
        return make_mechanism(name)
    return factory


def verify_properties(
    num_instances: int = 3,
    num_queries: int = 60,
    users_per_instance: int = 8,
    attack_attempts: int = 12,
    seed: int = 0,
    mechanisms: tuple[str, ...] = tuple(TABLE_I),
) -> list[PropertyVerdict]:
    """Run the Table I battery and return one verdict per mechanism.

    Small instances are deliberate: manipulation and attacks are
    easiest to find (and cheapest to search for) when individual
    queries matter; scale adds nothing to a counterexample search.
    """
    config = WorkloadConfig(num_queries=num_queries,
                            max_sharing=min(8, num_queries)).scaled(
                                num_queries)
    verdicts: list[PropertyVerdict] = []
    for name in mechanisms:
        claimed_sp, claimed_immune, _guarantee = TABLE_I[name]
        factory = _mechanism_factory(name)
        randomized = name == "Two-price"
        runs = 5 if randomized else 1  # 5 hash salts, each exactly SP
        misreports = 0
        attacks = 0
        for index in range(num_instances):
            generator = WorkloadGenerator(
                config=config, seed=derive_seed(seed, "prop", index))
            instance = generator.instance(max_sharing=6)
            misreports += len(scan_strategyproofness(
                factory, instance, seed=derive_seed(seed, "sp", index),
                sample=users_per_instance, runs=runs))
            owners = sorted(instance.owners())[:users_per_instance]
            for attacker in owners:
                found = search_sybil_attack(
                    factory, instance, attacker,
                    attempts=attack_attempts,
                    seed=derive_seed(seed, "sybil", index, attacker),
                    runs=runs)
                if found is not None:
                    attacks += 1
        verdicts.append(PropertyVerdict(
            mechanism=name,
            claimed_strategyproof=claimed_sp,
            misreports_found=misreports,
            claimed_sybil_immune=claimed_immune,
            attacks_found=attacks,
        ))
    return verdicts


def render_verdicts(verdicts: list[PropertyVerdict]) -> str:
    """Render the verdicts as the Table I comparison."""
    rows = []
    for verdict in verdicts:
        rows.append([
            verdict.mechanism,
            "yes" if verdict.claimed_strategyproof else "no",
            verdict.misreports_found,
            "yes" if verdict.claimed_sybil_immune else "no",
            verdict.attacks_found,
            "OK" if verdict.consistent else "CONTRADICTED",
        ])
    return format_table(
        ["mechanism", "claim:SP", "misreports", "claim:immune",
         "attacks", "verdict"],
        rows,
        title="Table I — paper claims vs. empirical search",
    )
