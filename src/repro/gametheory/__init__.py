"""Game-theoretic analysis: strategyproofness, critical values, sybil
attacks and the paper's property tables."""

from repro.gametheory.attacks import (
    TableIIScenario,
    TwoPriceCoinScenario,
    cat_plus_table2_attack,
    coin_two_price_factory,
    fair_share_attack,
    two_price_coin_attack,
)
from repro.gametheory.critical_value import critical_value, wins_at_bid
from repro.gametheory.monotonicity import (
    MonotonicityViolation,
    check_bid_monotonicity,
    check_subset_monotonicity,
    scan_monotonicity,
)
from repro.gametheory.properties import (
    TABLE_I,
    PropertyVerdict,
    render_verdicts,
    verify_properties,
)
from repro.gametheory.strategyproof import (
    Misreport,
    find_profitable_misreport,
    scan_strategyproofness,
)
from repro.gametheory.sybil import (
    AttackAssessment,
    ImmunityViolation,
    SybilAttack,
    assess_attack,
    check_immunity_characterization,
    random_attack,
    search_combined_attack,
    search_sybil_attack,
)

__all__ = [
    "AttackAssessment",
    "ImmunityViolation",
    "Misreport",
    "MonotonicityViolation",
    "PropertyVerdict",
    "SybilAttack",
    "TABLE_I",
    "TableIIScenario",
    "TwoPriceCoinScenario",
    "assess_attack",
    "cat_plus_table2_attack",
    "check_bid_monotonicity",
    "check_immunity_characterization",
    "check_subset_monotonicity",
    "coin_two_price_factory",
    "critical_value",
    "fair_share_attack",
    "find_profitable_misreport",
    "random_attack",
    "render_verdicts",
    "scan_monotonicity",
    "scan_strategyproofness",
    "search_combined_attack",
    "search_sybil_attack",
    "two_price_coin_attack",
    "verify_properties",
    "wins_at_bid",
]
