"""Sybil attacks and the sybil-immunity characterizations (Section V).

A *sybil attack* submits additional fake, zero-value queries under
forged identities to manipulate the mechanism.  The attacker is
responsible for her fakes' payments, so her payoff is the aggregate
over all her identities: real queries contribute ``v_i − p_i`` when
admitted; fakes contribute ``−p_i``.

This module provides the attack representation, payoff accounting,
a randomized attack search (used to corroborate CAT's immunity,
Theorem 19), and checks for the paper's two characterizations:

* sybil immunity ⟺ (1) added queries never turn a loser into a winner
  with positive payoff, and (2) any payment reduction ``δ`` that added
  queries cause a winner is covered by at least ``δ`` charged to those
  added queries;
* sybil-strategyproofness ⟺ bid-strategyproof and added users cannot
  decrease anyone's critical value by more than the added users' total
  payments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

import numpy as np

from repro.core.mechanism import Mechanism
from repro.core.model import AuctionInstance, Operator, Query
from repro.utils.rng import spawn_rng
from repro.utils.validation import require


@dataclass(frozen=True)
class SybilAttack:
    """A set of fake queries (and any fresh fake operators) an attacker
    adds to the submitted pool.

    Every fake query must carry the attacker as ``owner`` and a zero
    valuation — the attacker does not value the fakes, she only pays
    for them if they win.
    """

    attacker: str
    fake_queries: tuple[Query, ...]
    fake_operators: tuple[Operator, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        require(len(self.fake_queries) > 0,
                "a sybil attack needs at least one fake query")
        for query in self.fake_queries:
            require(query.owner == self.attacker,
                    f"fake query {query.query_id!r} must be owned by "
                    f"the attacker {self.attacker!r}")
            require(query.true_value == 0.0,
                    f"fake query {query.query_id!r} must have zero "
                    f"valuation (it is worthless to the attacker)")

    def apply(self, instance: AuctionInstance) -> AuctionInstance:
        """The attacked instance: original plus the fake queries."""
        return instance.with_queries(
            self.fake_queries, self.fake_operators)


@dataclass(frozen=True)
class AttackAssessment:
    """Payoff comparison with and without an attack."""

    attacker: str
    baseline_payoff: float
    attacked_payoff: float

    @property
    def gain(self) -> float:
        """Attacker's payoff improvement (positive ⇒ attack profits)."""
        return self.attacked_payoff - self.baseline_payoff

    @property
    def profitable(self) -> bool:
        """True when the attack strictly increases the payoff."""
        return self.gain > 1e-9


def assess_attack(
    mechanism: "Mechanism | Callable[[int], Mechanism]",
    instance: AuctionInstance,
    attack: SybilAttack,
    runs: int = 1,
) -> AttackAssessment:
    """Compare the attacker's payoff with and without *attack*.

    For randomized mechanisms pass a factory and ``runs > 1``; payoffs
    are then averaged over seeds (the paper's notion of profitable
    attacks on Two-price is in expectation).
    """
    if isinstance(mechanism, Mechanism):
        factory: Callable[[int], Mechanism] = lambda _run: mechanism
    else:
        factory = mechanism
    attacked_instance = attack.apply(instance)
    baseline_total = 0.0
    attacked_total = 0.0
    for run in range(runs):
        baseline_total += factory(run).run(
            instance).owner_payoff(attack.attacker)
        attacked_total += factory(run).run(
            attacked_instance).owner_payoff(attack.attacker)
    return AttackAssessment(
        attacker=attack.attacker,
        baseline_payoff=baseline_total / runs,
        attacked_payoff=attacked_total / runs,
    )


def random_attack(
    instance: AuctionInstance,
    attacker: str,
    rng: np.random.Generator,
    index: int,
) -> SybilAttack:
    """One random sybil attack for *attacker*.

    Mixes the known attack shapes: fakes that share the attacker's
    operators with negligible bids (the fair-share attack), fakes with
    tiny fresh operators and high density (the CAT+ attack), and
    arbitrary-bid fakes.
    """
    owned_ops: list[str] = []
    for query in instance.queries:
        if query.owner_id == attacker:
            owned_ops.extend(query.operator_ids)
    num_fakes = int(rng.integers(1, 4))
    fakes: list[Query] = []
    fresh_ops: list[Operator] = []
    for fake_index in range(num_fakes):
        fake_id = f"__sybil_{attacker}_{index}_{fake_index}"
        style = rng.integers(0, 3)
        if style == 0 and owned_ops:
            # Share (a subset of) the attacker's own operators.
            count = int(rng.integers(1, len(owned_ops) + 1))
            picks = rng.choice(len(owned_ops), size=count, replace=False)
            op_ids = tuple(dict.fromkeys(
                owned_ops[int(i)] for i in picks))
            bid = float(rng.uniform(0, 0.01))
        elif style == 1:
            # Tiny fresh operator, bid chosen for high density.
            op = Operator(f"__sybil_op_{attacker}_{index}_{fake_index}",
                          float(rng.uniform(1e-4, 1e-2)))
            fresh_ops.append(op)
            op_ids = (op.op_id,)
            bid = float(rng.uniform(0, instance.max_valuation() * 1.5))
        else:
            # Random existing operators, arbitrary bid.
            all_ops = list(instance.operators)
            count = int(rng.integers(1, min(3, len(all_ops)) + 1))
            picks = rng.choice(len(all_ops), size=count, replace=False)
            op_ids = tuple(all_ops[int(i)] for i in picks)
            bid = float(rng.uniform(0, instance.max_valuation()))
        fakes.append(Query(
            query_id=fake_id,
            operator_ids=op_ids,
            bid=bid,
            valuation=0.0,
            owner=attacker,
        ))
    return SybilAttack(
        attacker=attacker,
        fake_queries=tuple(fakes),
        fake_operators=tuple(fresh_ops),
    )


def search_sybil_attack(
    mechanism: "Mechanism | Callable[[int], Mechanism]",
    instance: AuctionInstance,
    attacker: str,
    attempts: int = 50,
    seed: "int | np.random.Generator | None" = 0,
    runs: int = 1,
) -> tuple[SybilAttack, AttackAssessment] | None:
    """Randomized search for a profitable sybil attack by *attacker*.

    Returns the first profitable ``(attack, assessment)`` pair found,
    or ``None``.  Never finding one (over many instances and attackers)
    is the empirical corroboration of CAT's sybil immunity.
    """
    rng = spawn_rng(seed)
    for index in range(attempts):
        attack = random_attack(instance, attacker, rng, index)
        assessment = assess_attack(mechanism, instance, attack, runs=runs)
        if assessment.profitable:
            return attack, assessment
    return None


# ----------------------------------------------------------------------
# Characterization checks
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ImmunityViolation:
    """Which property of the sybil-immunity characterization failed."""

    property_violated: int  # 1 or 2
    description: str


def check_immunity_characterization(
    mechanism: Mechanism,
    instance: AuctionInstance,
    attack: SybilAttack,
) -> ImmunityViolation | None:
    """Check the two-property characterization against one attack.

    Property 1: the added queries must not turn a loser into a winner
    with positive payoff.  Property 2: if a winner's payment drops by
    ``δ``, the added queries must be charged at least ``δ`` in total.
    Violating either opens the door to a profitable attack.
    """
    before = mechanism.run(instance)
    after = mechanism.run(attack.apply(instance))
    fake_ids = {q.query_id for q in attack.fake_queries}

    for query in instance.queries:
        qid = query.query_id
        if (not before.is_winner(qid) and after.is_winner(qid)
                and query.true_value - after.payment(qid) > 1e-9):
            return ImmunityViolation(
                property_violated=1,
                description=(
                    f"loser {qid!r} became a winner with positive "
                    f"payoff {query.true_value - after.payment(qid):.6g}"),
            )

    fake_charges = sum(after.payment(qid) for qid in fake_ids)
    for query in instance.queries:
        qid = query.query_id
        if before.is_winner(qid) and after.is_winner(qid):
            reduction = before.payment(qid) - after.payment(qid)
            if reduction > fake_charges + 1e-9:
                return ImmunityViolation(
                    property_violated=2,
                    description=(
                        f"winner {qid!r}'s payment fell by "
                        f"{reduction:.6g} while the fakes were charged "
                        f"only {fake_charges:.6g}"),
                )
    return None


# ----------------------------------------------------------------------
# Sybil-strategyproofness (Definition 18)
# ----------------------------------------------------------------------

def search_combined_attack(
    mechanism: "Mechanism | Callable[[int], Mechanism]",
    instance: AuctionInstance,
    attacker: str,
    attempts: int = 30,
    bid_factors: tuple[float, ...] = (0.25, 0.5, 0.75, 0.9, 1.1, 1.5),
    seed: "int | np.random.Generator | None" = 0,
    runs: int = 1,
) -> tuple[SybilAttack, float, AttackAssessment] | None:
    """Search for a *combined* attack: fake queries plus a lie about
    the attacker's own valuation (Definition 18's strategy space).

    Returns ``(attack, lying_bid_factor, assessment)`` for the first
    profitable combination (payoffs always measured against truthful,
    attack-free play), or ``None``.  CAT surviving this search is the
    empirical face of Theorem 19's sybil-strategyproofness.
    """
    rng = spawn_rng(seed)
    if isinstance(mechanism, Mechanism):
        factory: Callable[[int], Mechanism] = lambda _run: mechanism
    else:
        factory = mechanism
    own_queries = [q for q in instance.queries
                   if q.owner_id == attacker]
    if not own_queries:
        return None
    baseline = 0.0
    for run in range(runs):
        baseline += factory(run).run(instance).owner_payoff(attacker)
    baseline /= runs

    for index in range(attempts):
        attack = random_attack(instance, attacker, rng, index)
        for factor in (1.0, *bid_factors):
            manipulated = instance
            if factor != 1.0:
                for query in own_queries:
                    manipulated = manipulated.with_bid(
                        query.query_id, query.true_value * factor)
            attacked_instance = attack.apply(manipulated)
            total = 0.0
            for run in range(runs):
                total += factory(run).run(
                    attacked_instance).owner_payoff(attacker)
            payoff = total / runs
            if payoff > baseline + 1e-9:
                assessment = AttackAssessment(
                    attacker=attacker,
                    baseline_payoff=baseline,
                    attacked_payoff=payoff,
                )
                return attack, factor, assessment
    return None
