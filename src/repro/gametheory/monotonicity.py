"""Monotonicity checks (the allocation half of strategyproofness).

Section III: in a single-parameter setting an allocation rule is
*monotone* if a winning bidder keeps winning when she raises her bid.
For single-minded-bidder (SMB) auctions, Lehmann et al.'s extended
monotonicity also requires that a winner keeps winning when she asks
for a **strict subset** of her query's operators.  Both checks are
implemented empirically: they probe a mechanism on perturbed copies of
an instance and report any violation found (a *certificate*, usable
directly in a failing test).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.core.mechanism import Mechanism
from repro.core.model import AuctionInstance, Query
from repro.utils.rng import spawn_rng


@dataclass(frozen=True)
class MonotonicityViolation:
    """Certificate that an allocation rule is not monotone.

    The user won the auction bidding ``winning_bid`` (with operator set
    ``winning_operators``) but lost bidding ``losing_bid`` (with
    ``losing_operators``) although the latter is at least as favorable
    — a higher bid, or the same bid with a subset of the operators.
    """

    query_id: str
    winning_bid: float
    losing_bid: float
    winning_operators: tuple[str, ...]
    losing_operators: tuple[str, ...]


def check_bid_monotonicity(
    mechanism: Mechanism,
    instance: AuctionInstance,
    query_id: str,
    raises: tuple[float, ...] = (1.01, 1.5, 2.0, 10.0),
) -> MonotonicityViolation | None:
    """If *query_id* currently wins, verify raising the bid keeps it
    winning; returns a violation certificate or ``None``."""
    baseline = mechanism.run(instance)
    query = instance.query(query_id)
    if not baseline.is_winner(query_id):
        return None
    for factor in raises:
        raised = max(query.bid * factor, query.bid + 1e-6)
        outcome = mechanism.run(instance.with_bid(query_id, raised))
        if not outcome.is_winner(query_id):
            return MonotonicityViolation(
                query_id=query_id,
                winning_bid=query.bid,
                losing_bid=raised,
                winning_operators=query.operator_ids,
                losing_operators=query.operator_ids,
            )
    return None


def check_subset_monotonicity(
    mechanism: Mechanism,
    instance: AuctionInstance,
    query_id: str,
    max_subsets: int = 32,
) -> MonotonicityViolation | None:
    """SMB monotonicity: a winner asking for a strict subset of her
    operators (same bid) must still win.

    Only proper non-empty subsets are meaningful; at most *max_subsets*
    are probed (smallest drops first).
    """
    baseline = mechanism.run(instance)
    query = instance.query(query_id)
    if not baseline.is_winner(query_id) or len(query.operator_ids) <= 1:
        return None
    probed = 0
    for drop_count in range(1, len(query.operator_ids)):
        for dropped in combinations(query.operator_ids, drop_count):
            if probed >= max_subsets:
                return None
            probed += 1
            kept = tuple(
                op for op in query.operator_ids if op not in dropped)
            reduced = Query(
                query_id=query.query_id,
                operator_ids=kept,
                bid=query.bid,
                valuation=query.true_value,
                owner=query.owner,
            )
            modified = instance.without_queries(
                [query_id]).with_queries([reduced])
            outcome = mechanism.run(modified)
            if not outcome.is_winner(query_id):
                return MonotonicityViolation(
                    query_id=query_id,
                    winning_bid=query.bid,
                    losing_bid=query.bid,
                    winning_operators=query.operator_ids,
                    losing_operators=kept,
                )
    return None


def scan_monotonicity(
    mechanism: Mechanism,
    instance: AuctionInstance,
    seed: "int | np.random.Generator | None" = 0,
    sample: int | None = None,
    include_subsets: bool = False,
) -> list[MonotonicityViolation]:
    """Probe (a sample of) the instance's winners for violations."""
    rng = spawn_rng(seed)
    baseline = mechanism.run(instance)
    winner_ids = sorted(baseline.winner_ids)
    if sample is not None and sample < len(winner_ids):
        picks = rng.choice(len(winner_ids), size=sample, replace=False)
        winner_ids = [winner_ids[int(i)] for i in picks]
    violations: list[MonotonicityViolation] = []
    for query_id in winner_ids:
        violation = check_bid_monotonicity(mechanism, instance, query_id)
        if violation is not None:
            violations.append(violation)
        if include_subsets:
            violation = check_subset_monotonicity(
                mechanism, instance, query_id)
            if violation is not None:
                violations.append(violation)
    return violations
