"""The paper's constructive sybil attacks (Section V).

Three canned attacks, each matching a theorem:

* :func:`fair_share_attack` — Theorem 15's universal attack on CAF and
  CAF+: fake negligible-value queries sharing the attacker's operators
  deflate her static fair-share load, improving her rank and cutting
  her payment.
* :func:`cat_plus_table2_attack` — the Table II instance defeating
  CAT+ (Theorem 17): a fake with infinitesimal load and high density
  squeezes a competitor out of the remaining capacity.
* :func:`two_price_coin_attack` — Section V-C's instance against the
  coin-flip variant of Two-price, which violates property 2 of the
  sybil-immunity characterization: the attacker's expected *payment*
  drops by more than the fakes' expected charges.  (The payoff-level
  attack proving Theorem 20 for the even-partition mechanism is in the
  companion thesis [18]; :func:`repro.gametheory.sybil.search_sybil_attack`
  provides a randomized search over such instances.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import AuctionInstance, Operator, Query
from repro.core.two_price import TwoPrice
from repro.gametheory.sybil import SybilAttack


def fair_share_attack(
    instance: AuctionInstance,
    query_id: str,
    num_fakes: int = 4,
    fake_bid: float = 1e-6,
) -> SybilAttack:
    """Theorem 15's attack: fakes share *query_id*'s operators.

    Each fake duplicates the target query's operator set and bids a
    negligible amount, so the fakes themselves are never in danger of
    winning (and owing payments) while every shared operator's
    fair-share divisor grows by *num_fakes*.
    """
    target = instance.query(query_id)
    attacker = target.owner_id
    fakes = tuple(
        Query(
            query_id=f"__fs_fake_{query_id}_{index}",
            operator_ids=target.operator_ids,
            bid=fake_bid,
            valuation=0.0,
            owner=attacker,
        )
        for index in range(num_fakes)
    )
    return SybilAttack(attacker=attacker, fake_queries=fakes)


@dataclass(frozen=True)
class TableIIScenario:
    """The ingredients of the paper's Table II attack on CAT+."""

    honest_instance: AuctionInstance
    attack: SybilAttack
    attacker: str
    epsilon: float


def cat_plus_table2_attack(epsilon: float = 1e-3) -> TableIIScenario:
    """Build Table II: user 2 defeats CAT+ with fake "user 3".

    Without the fake: priorities are 100 (user 1) and 98.9 (user 2);
    CAT+ admits user 1, capacity is exhausted, user 2 loses (payoff 0).
    With the fake (valuation ``100ε + ε``, load ``ε``, priority
    ``> 100``): round 1 picks the fake, user 1 no longer fits, user 2
    is picked next.  User 2 pays 0 (nobody ranks below her), the fake
    pays ``100ε``, so user 2's payoff becomes ``89 − 100ε > 0``.
    """
    operators = {
        "o1": Operator("o1", 1.0),
        "o2": Operator("o2", 0.9),
    }
    honest = AuctionInstance(
        operators=operators,
        queries=(
            Query("u1", ("o1",), bid=100.0, owner="user1"),
            Query("u2", ("o2",), bid=89.0, owner="user2"),
        ),
        capacity=1.0,
    )
    fake = Query(
        query_id="u3",
        operator_ids=("o3",),
        bid=100.0 * epsilon + epsilon,
        valuation=0.0,
        owner="user2",
    )
    attack = SybilAttack(
        attacker="user2",
        fake_queries=(fake,),
        fake_operators=(Operator("o3", epsilon),),
    )
    return TableIIScenario(
        honest_instance=honest,
        attack=attack,
        attacker="user2",
        epsilon=epsilon,
    )


@dataclass(frozen=True)
class TwoPriceCoinScenario:
    """Section V-C's instance against coin-partition Two-price."""

    honest_instance: AuctionInstance
    attack: SybilAttack
    attacker: str
    #: Analytic expected payment of the attacker before the attack.
    expected_payment_before: float
    #: Analytic expected total charge (attacker + fake) after.
    expected_payment_after: float


def two_price_coin_attack(
    high_value: float = 100.0,
    low_value: float = 10.0,
    num_low: int = 6,
    epsilon: float = 0.01,
) -> TwoPriceCoinScenario:
    """Build Section V-C's payment-reduction attack instance.

    User 1 (valuation ``b = high_value``) shares ``H`` with ``nc``
    users of valuation ``c = low_value``; loads exactly fill capacity.
    The fake bids ``d = c + ε`` with load equal to the combined load of
    the ``c``-users, kicking them out of ``H``.  Under the coin-flip
    partition the attacker's expected payment falls from
    ``c(1 − (1/2)^nc)`` to ``d/2`` while the fake's expected charge is
    0 — violating property 2 of the immunity characterization.
    """
    if not low_value < high_value:
        raise ValueError("low_value must be below high_value")
    operators = {"op_u1": Operator("op_u1", 1.0)}
    queries = [Query("u1", ("op_u1",), bid=high_value, owner="user1")]
    for index in range(num_low):
        op = Operator(f"op_c{index}", 1.0)
        operators[op.op_id] = op
        queries.append(Query(
            f"c{index}", (op.op_id,), bid=low_value,
            owner=f"lowbidder{index}"))
    honest = AuctionInstance(
        operators=operators,
        queries=tuple(queries),
        capacity=float(1 + num_low),
    )
    fake_value = low_value + epsilon
    attack = SybilAttack(
        attacker="user1",
        fake_queries=(Query(
            "fake", ("op_fake",), bid=fake_value,
            valuation=0.0, owner="user1"),),
        fake_operators=(Operator("op_fake", float(num_low)),),
    )
    miss_probability = 0.5 ** num_low
    return TwoPriceCoinScenario(
        honest_instance=honest,
        attack=attack,
        attacker="user1",
        expected_payment_before=low_value * (1.0 - miss_probability),
        expected_payment_after=fake_value / 2.0,
    )


def coin_two_price_factory(run_seed: int) -> TwoPrice:
    """Factory for coin-partition Two-price (for expectation runs)."""
    return TwoPrice(seed=run_seed, partition_mode="coin")
