"""Critical values — the payment characterization of Section III.

In a single-parameter setting, a monotone allocation rule gives every
user a *critical value* ``c_i``: bidding above it wins, below it loses
(Nisan's characterization, [14] in the paper).  A mechanism is
bid-strategyproof iff it is monotone and charges every winner exactly
her critical value.  This module estimates critical values empirically
by bisection, which the strategyproofness tests compare against the
mechanisms' actual payments.
"""

from __future__ import annotations

from repro.core.mechanism import Mechanism
from repro.core.model import AuctionInstance


def wins_at_bid(
    mechanism: Mechanism,
    instance: AuctionInstance,
    query_id: str,
    bid: float,
) -> bool:
    """Does *query_id* win when it bids *bid* (everything else fixed)?"""
    outcome = mechanism.run(instance.with_bid(query_id, bid))
    return outcome.is_winner(query_id)


def critical_value(
    mechanism: Mechanism,
    instance: AuctionInstance,
    query_id: str,
    upper: float | None = None,
    tolerance: float = 1e-6,
    max_iterations: int = 80,
) -> float | None:
    """Bisection estimate of *query_id*'s critical value.

    Assumes the allocation is monotone in the bid (verified separately
    by :mod:`repro.gametheory.monotonicity`); for a non-monotone rule
    the returned number is just *a* transition point.

    Returns ``None`` when the user loses even at *upper* (no winning
    bid below the probed range exists), and ``0.0`` when she wins even
    at bid 0.
    """
    if upper is None:
        upper = max(2.0 * instance.max_valuation(), 1.0)
    if not wins_at_bid(mechanism, instance, query_id, upper):
        return None
    if wins_at_bid(mechanism, instance, query_id, 0.0):
        return 0.0
    low, high = 0.0, upper
    for _ in range(max_iterations):
        if high - low <= tolerance:
            break
        middle = (low + high) / 2.0
        if wins_at_bid(mechanism, instance, query_id, middle):
            high = middle
        else:
            low = middle
    return high
