"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``        run a mechanism on a JSON instance file
``generate``   generate a Table III workload instance to JSON
``report``     regenerate the paper's tables and figures
``verify``     run the Table I property-verification battery

Examples::

    python -m repro generate --queries 100 --sharing 8 -o wl.json
    python -m repro run CAT wl.json
    python -m repro run Two-price wl.json --seed 7 -o outcome.json
    python -m repro report
    python -m repro verify
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core import make_mechanism
from repro.io import (
    load_instance,
    outcome_to_dict,
    save_instance,
    save_outcome,
)
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


def _cmd_run(args: argparse.Namespace) -> int:
    instance = load_instance(args.instance)
    kwargs = {}
    if args.mechanism.lower() in ("two-price", "random"):
        kwargs["seed"] = args.seed
    mechanism = make_mechanism(args.mechanism, **kwargs)
    outcome = mechanism.run(instance)
    document = outcome_to_dict(outcome)
    if args.output:
        save_outcome(outcome, args.output)
    print(json.dumps(document, indent=2))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    config = WorkloadConfig().scaled(args.queries)
    generator = WorkloadGenerator(config=config, seed=args.seed)
    instance = generator.instance(
        max_sharing=args.sharing,
        capacity=args.capacity,
    )
    save_instance(instance, args.output)
    print(f"wrote {instance.num_queries} queries / "
          f"{len(instance.operators)} operators "
          f"(demand {instance.total_demand():.1f}, capacity "
          f"{instance.capacity:g}) to {args.output}")
    return 0


def _cmd_report(_args: argparse.Namespace) -> int:
    from repro.experiments.report import full_report

    print(full_report().render())
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.gametheory.properties import (
        render_verdicts,
        verify_properties,
    )

    verdicts = verify_properties(seed=args.seed)
    print(render_verdicts(verdicts))
    return 0 if all(v.consistent for v in verdicts) else 1


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Admission-control auctions for continuous queries "
                    "(ICDE 2010 reproduction)")
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser(
        "run", help="run a mechanism on a JSON instance")
    run.add_argument("mechanism",
                     help="CAR, CAF, CAF+, CAT, CAT+, GV, Two-price, "
                          "Random, OPT_C, k-unit, knapsack")
    run.add_argument("instance", help="path to an instance JSON file")
    run.add_argument("--seed", type=int, default=0,
                     help="seed for randomized mechanisms")
    run.add_argument("-o", "--output", default=None,
                     help="also write the outcome JSON here")
    run.set_defaults(handler=_cmd_run)

    generate = commands.add_parser(
        "generate", help="generate a Table III workload instance")
    generate.add_argument("--queries", type=int, default=200)
    generate.add_argument("--sharing", type=int, default=8,
                          help="maximum degree of operator sharing")
    generate.add_argument("--capacity", type=float, default=None,
                          help="server capacity (default: paper ratio)")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("-o", "--output", default="instance.json")
    generate.set_defaults(handler=_cmd_generate)

    report = commands.add_parser(
        "report", help="regenerate the paper's tables and figures")
    report.set_defaults(handler=_cmd_report)

    verify = commands.add_parser(
        "verify", help="run the Table I property battery")
    verify.add_argument("--seed", type=int, default=0)
    verify.set_defaults(handler=_cmd_verify)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
