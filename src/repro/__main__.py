"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``        run a mechanism on one or more JSON instance files
``generate``   generate a Table III workload instance to JSON
``simulate``   run an AdmissionService for several periods (with
               optional checkpoint/resume)
``sim``        run the open-system event-driven simulation (arrival
               processes, subscription lifecycles, latency probe,
               trace record/replay, checkpoints)
``cluster``    run a sharded FederatedAdmissionService (placement
               policies, rebalancing, batch auctions, checkpoints)
``serve``      put an admission host on the network: the HTTP/JSON
               gateway (rate limits, retry budget, /metrics,
               graceful drain)
``report``     regenerate the paper's tables and figures
``verify``     run the Table I property-verification battery

Bad spec strings (``--selection warp``, ``--backend bogus``...) exit
with code 2 and a one-line ``repro: error:`` message naming the flag
and the offending spec — no tracebacks for misuse.

Mechanisms are given as *specs*: a registry name, optionally followed
by validated parameters — ``CAT``, ``two-price:seed=7``,
``two-price:seed=7,partition_mode=hash``.

Examples::

    python -m repro generate --queries 100 --sharing 8 -o wl.json
    python -m repro run CAT wl.json
    python -m repro run two-price:seed=7 wl.json -o outcome.json
    python -m repro run CAT wl1.json wl2.json wl3.json
    python -m repro simulate --mechanism CAT --periods 5
    python -m repro simulate --backend columnar --rate 200 --periods 3
    python -m repro simulate --selection fast --profile --periods 3
    python -m repro simulate --periods 3 --checkpoint svc.ckpt
    python -m repro simulate --periods 2 --resume svc.ckpt
    python -m repro sim --arrivals poisson:rate=2 --periods 10
    python -m repro sim --subscriptions --scheduler fifo --periods 10
    python -m repro sim --periods 5 --record run.trace.json
    python -m repro sim --periods 5 --replay run.trace.json
    python -m repro sim --shards 4 --arrivals poisson:rate=8 --batch
    python -m repro sim --periods 4 --checkpoint sim.ckpt
    python -m repro sim --periods 6 --resume sim.ckpt
    python -m repro cluster --shards 4 --periods 5 --batch
    python -m repro cluster --selection fast --batch --periods 5
    python -m repro run CAT wl.json --selection fast
    python -m repro cluster --backend columnar:batch=2048 --periods 3
    python -m repro cluster --placement least-loaded --periods 3
    python -m repro cluster --periods 2 --checkpoint cl.ckpt
    python -m repro cluster --periods 2 --resume cl.ckpt
    python -m repro report
    python -m repro verify
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core import MechanismSpec
from repro.io import (
    load_instance,
    outcome_to_dict,
    save_instance,
    save_outcome,
)
from repro.utils.validation import ValidationError
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


def _spec_with_seed(text: str, seed: "int | None") -> MechanismSpec:
    """Parse a mechanism spec, defaulting ``seed`` for mechanisms that
    take one (the historical ``--seed`` flag keeps working)."""
    spec = MechanismSpec.parse(text)
    if seed is not None and spec.accepts("seed") and "seed" not in spec.params:
        spec = spec.with_params(seed=seed)
    return spec.validate()


def _parse_spec(flag: str, text: str, parse):
    """Resolve one spec-string flag, naming flag and value on failure.

    Registry lookups raise ``KeyError`` (with the menu of known names)
    and parameter validation raises :class:`ValidationError`; either
    way the user typed a bad spec, so both become one
    :class:`ValidationError` whose message leads with the offending
    flag and spec string — which :func:`main` turns into a one-line
    stderr error and exit code 2, never a traceback.
    """
    try:
        return parse(text)
    except (ValidationError, KeyError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        raise ValidationError(f"{flag} {text!r}: {message}") from exc


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.core.selection import SelectionSpec

    spec = _parse_spec("mechanism", args.mechanism,
                       lambda text: _spec_with_seed(text, args.seed))
    mechanism = spec.create()
    if args.selection:
        mechanism.use_selection(_parse_spec(
            "--selection", args.selection,
            lambda text: SelectionSpec.parse(text).validate()))
    instances = [load_instance(path) for path in args.instance]
    outcomes = mechanism.run_many(instances)
    if len(outcomes) == 1:
        document = outcome_to_dict(outcomes[0])
        if args.output:
            save_outcome(outcomes[0], args.output)
        print(json.dumps(document, indent=2))
        return 0
    documents = [
        {"instance": str(path), **outcome_to_dict(outcome)}
        for path, outcome in zip(args.instance, outcomes)
    ]
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(
            json.dumps(documents, indent=2) + "\n")
    print(json.dumps(documents, indent=2))
    return 0


def _synthetic_submissions(period, count, seed, owner_of):
    """The per-period synthetic workload shared by ``simulate`` and
    ``cluster``: derived per-period rng, so a resumed run draws the
    same bids an uninterrupted run would, instead of replaying period
    1's."""
    import numpy as np

    from repro.dsms.operators import SelectOperator
    from repro.dsms.plan import ContinuousQuery
    from repro.sim.arrivals import pass_all

    rng = np.random.default_rng([seed, period])
    for index in range(count):
        qid = f"p{period}_q{index}"
        op = SelectOperator(
            f"sel_{qid}", "s", pass_all,
            cost_per_tuple=float(np.round(rng.uniform(0.5, 2.0), 2)),
            selectivity_estimate=1.0)
        yield ContinuousQuery(
            qid, (op,), sink_id=op.op_id,
            bid=float(np.round(rng.uniform(5, 100), 2)),
            owner=owner_of(index))


def _profiled_period(service, timings: "list[dict]") -> "object":
    """One service period through the phased API, timing each phase.

    Equivalent to :meth:`AdmissionService.run_period`, with
    ``time.perf_counter`` wrapped around prepare / auction / settle /
    execute; appends the phase record to *timings* and returns the
    period report.
    """
    import time

    t0 = time.perf_counter()
    preparation = service.prepare_period()
    t1 = time.perf_counter()
    outcome = service.mechanism.run(preparation.instance)
    t2 = time.perf_counter()
    settlement = service.settle_period(preparation, outcome)
    t3 = time.perf_counter()
    report = service.execute_period(settlement)
    t4 = time.perf_counter()
    timings.append({
        "period": report.period,
        "prepare": t1 - t0,
        "auction": t2 - t1,
        "settle": t3 - t2,
        "execute": t4 - t3,
    })
    return report


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.dsms.streams import SyntheticStream
    from repro.service import AdmissionService, ServiceBuilder
    from repro.utils.tables import format_table

    if args.resume:
        service = AdmissionService.load_checkpoint(args.resume)
        if args.selection:
            from repro.core.selection import SelectionSpec

            service.mechanism.use_selection(_parse_spec(
                "--selection", args.selection,
                lambda text: SelectionSpec.parse(text).validate()))
        start = service.period
    else:
        from repro.dsms.backend import BackendSpec

        spec = _parse_spec(
            "--mechanism", args.mechanism,
            lambda text: _spec_with_seed(text, args.seed))
        builder = (ServiceBuilder()
                   .with_sources(SyntheticStream(
                       "s", rate=args.rate, seed=args.seed))
                   .with_capacity(args.capacity)
                   .with_mechanism(spec)
                   .with_ticks_per_period(args.ticks)
                   .with_backend(_parse_spec(
                       "--backend", args.backend,
                       lambda text: BackendSpec.parse(text).validate())))
        if args.selection:
            from repro.core.selection import SelectionSpec

            builder.with_selection(_parse_spec(
                "--selection", args.selection,
                lambda text: SelectionSpec.parse(text).validate()))
        service = builder.build()
        start = 0

    rows = []
    timings: list[dict] = []
    for period in range(start + 1, start + args.periods + 1):
        for query in _synthetic_submissions(
                period, args.queries_per_period, args.seed,
                lambda index: f"user_{index}"):
            service.submit(query)
        if args.profile:
            report = _profiled_period(service, timings)
        else:
            report = service.run_period()
        rows.append([
            report.period,
            len(report.admitted),
            len(report.rejected),
            report.revenue,
            (0.0 if report.engine_utilization is None
             else report.engine_utilization),
        ])
        if args.checkpoint:
            service.save_checkpoint(args.checkpoint)
    print(format_table(
        ["period", "admitted", "rejected", "revenue", "engine util"],
        rows, precision=2,
        title=(f"AdmissionService simulation — "
               f"{service.mechanism.name}, capacity "
               f"{service.capacity:g}")))
    print(f"total revenue: {service.total_revenue():.2f}")
    if args.checkpoint:
        print(f"checkpoint written to {args.checkpoint}")
    if args.profile:
        totals = {
            phase: sum(entry[phase] for entry in timings)
            for phase in ("prepare", "auction", "settle", "execute")
        }
        print(json.dumps({
            "profile": "simulate",
            "mechanism": str(service.mechanism.name),
            "periods": timings,
            "totals": totals,
        }, indent=2))
    return 0


def _parse_categories(text: str):
    """``"day=1:0.4,week=7:0.35"`` → SubscriptionCategory tuple."""
    from repro.cloud.subscriptions import (
        SubscriptionCategory,
        validate_categories,
    )
    from repro.utils.validation import ValidationError

    categories = []
    for item in text.split(","):
        name, sep, rest = item.partition("=")
        length, sep2, fraction = rest.partition(":")
        if not (sep and sep2 and name.strip()):
            raise ValidationError(
                f"cannot parse category {item!r}; expected "
                f"name=length:fraction, e.g. day=1:0.4")
        try:
            categories.append(SubscriptionCategory(
                name.strip(), int(length), float(fraction)))
        except ValueError as exc:
            raise ValidationError(
                f"cannot parse category {item!r}; expected "
                f"name=length:fraction with a whole-number length "
                f"and a numeric fraction, e.g. day=1:0.4") from exc
    return validate_categories(categories)


def _cmd_sim(args: argparse.Namespace) -> int:
    import time

    from repro.sim import ArrivalSpec, SimulationDriver
    from repro.utils.tables import format_table

    wal_log = None
    if args.wal and args.resume:
        from repro.utils.validation import ValidationError

        raise ValidationError(
            "--wal recovers from its own log directory and cannot "
            "be combined with --resume")
    if args.wal:
        from repro.wal import wal_exists

        wal_recover = wal_exists(args.wal)
    else:
        wal_recover = False

    if wal_recover:
        from repro.utils.validation import ValidationError
        from repro.wal import recover_sim_driver

        # The WAL directory fixes the simulation's configuration; the
        # workload flags on a recovering invocation are accepted (so
        # the original command line can simply be re-run after a
        # crash) but the recovered state wins.
        driver, wal_log = recover_sim_driver(
            args.wal, fsync=args.wal_fsync,
            compact_every=args.compact_every)
        _apply_auction_tuning(driver.host, args)
        if args.record and driver.recorder is None:
            raise ValidationError(
                f"WAL {args.wal!r} was created without --record, so "
                f"a recovered run cannot produce a complete trace")
        print(f"wal: recovered {args.wal} at period {driver.period} "
              f"(replayed {wal_log.stats.get('replayed', 0)} period "
              f"record(s)"
              + (", torn tail truncated)" if wal_log.stats["torn_tail"]
                 else ")"))
    elif args.resume:
        from repro.utils.validation import ValidationError

        # A checkpoint carries the whole simulation configuration;
        # flags that would change it are rejected rather than
        # silently ignored.
        conflicting = [
            flag for flag, is_set in (
                ("--replay", args.replay is not None),
                ("--arrivals", args.arrivals is not None),
                ("--subscriptions", args.subscriptions),
                ("--categories", args.categories is not None),
                ("--no-renew", args.no_renew),
                ("--max-renewals", args.max_renewals is not None),
                ("--scheduler", args.scheduler is not None),
                ("--shards", args.shards is not None),
                ("--placement", args.placement is not None),
                ("--route", args.route is not None),
                ("--batch", args.batch),
                ("--pump", args.pump),
                ("--mechanism", args.mechanism is not None),
                ("--capacity", args.capacity is not None),
                ("--rate", args.rate is not None),
                ("--ticks", args.ticks is not None),
                ("--backend", args.backend is not None),
                ("--seed", args.seed is not None),
                ("--probe-retention", args.probe_retention is not None),
            ) if is_set
        ]
        if conflicting:
            raise ValidationError(
                f"{', '.join(conflicting)} cannot be combined with "
                f"--resume; the checkpoint already fixes the "
                f"simulation's configuration")
        driver = SimulationDriver.load_checkpoint(args.resume)
        _apply_auction_tuning(driver.host, args)
        if args.record and driver.recorder is None:
            raise ValidationError(
                f"checkpoint {args.resume!r} was not recording, so a "
                f"resumed run cannot produce a complete trace; rerun "
                f"the original simulation with --record")
    else:
        from repro.sim import SubscriptionOptions
        from repro.utils.validation import ValidationError

        _apply_sim_defaults(args)
        if args.batch and args.shards == 1:
            raise ValidationError(
                "--batch dispatches shard auctions on a thread pool "
                "and needs --shards > 1")
        if args.batch and (args.subscriptions or args.categories):
            raise ValidationError(
                "--batch only applies to re-auction boundaries "
                "(run_period_all); subscription boundaries run "
                "per-category auctions shard by shard")
        if args.replay and args.arrivals:
            raise ValidationError(
                "--replay substitutes the recorded trace for the "
                "workload and cannot be combined with --arrivals")
        if args.replay:
            arrivals: "list[object]" = [f"trace:path={args.replay}"]
        else:
            from repro.utils.rng import derive_seed

            texts = args.arrivals or ["poisson:rate=2"]
            arrivals = []
            for index, text in enumerate(texts):
                spec = _parse_spec(
                    "--arrivals", text,
                    lambda t: ArrivalSpec.parse(t).validate())
                # Each process gets its own derived seed and query-id
                # prefix unless the spec pins them, so several
                # --arrivals flags never collide on ids or share an
                # RNG stream.
                if spec.accepts("seed") and "seed" not in spec.params:
                    spec = spec.with_params(seed=(
                        args.seed if len(texts) == 1
                        else derive_seed(args.seed, "arrivals", index)))
                if (len(texts) > 1 and spec.accepts("prefix")
                        and "prefix" not in spec.params):
                    spec = spec.with_params(prefix=f"s{index}a")
                arrivals.append(_parse_spec(
                    "--arrivals", text,
                    lambda _t, spec=spec: spec.validate()))
        subscriptions = None
        if args.subscriptions or args.categories:
            subscriptions = SubscriptionOptions(
                categories=(_parse_categories(args.categories)
                            if args.categories else
                            SubscriptionOptions().categories),
                auto_renew=not args.no_renew,
                max_renewals=args.max_renewals,
                seed=args.seed,
            )
        probe = None
        if args.scheduler:
            from repro.dsms.scheduler import resolve_policy

            probe = _parse_spec("--scheduler", args.scheduler,
                                resolve_policy)
        host = _build_sim_host(args)
        driver = SimulationDriver(
            host,
            arrivals=arrivals,
            subscriptions=subscriptions,
            probe=probe,
            record=bool(args.record),
            route=args.route,
            batch=args.batch,
            probe_retention=args.probe_retention,
            pump=args.pump,
        )
        _apply_auction_tuning(driver.host, args)
        if args.wal:
            from repro.wal import WriteAheadLog

            wal_log = WriteAheadLog.create(
                args.wal, driver.snapshot(), fsync=args.wal_fsync,
                compact_every=args.compact_every)
            driver.attach_wal(wal_log)

    # Under --wal, --periods is the run's total horizon: a recovered
    # invocation runs only the boundaries the crash cut short, so
    # crash + re-run converges to the same final state as one
    # uninterrupted run.
    remaining = (max(0, args.periods - driver.period)
                 if wal_log is not None else args.periods)
    started = time.perf_counter()
    rows = []
    try:
        for _ in range(remaining):
            report = driver.run(1)[0]
            rows.append(_sim_report_row(report))
            if args.checkpoint:
                driver.save_checkpoint(args.checkpoint)
    finally:
        # Shut auction worker processes down cleanly (no-op for the
        # thread path) so the interpreter exits without executor noise.
        close_pool = getattr(
            getattr(driver.host, "cluster", None), "close_pool", None)
        if close_pool is not None:
            close_pool()
    elapsed = time.perf_counter() - started

    mode = "subscriptions" if driver.managers else "re-auction"
    print(format_table(
        ["period", "admitted", "rejected", "expired", "renewed",
         "revenue", "util"],
        rows, precision=2,
        title=(f"Open-system simulation — {mode}, "
               f"{len(driver.host.services)} shard(s), "
               f"{args.periods} boundaries")))
    print(f"total revenue: {driver.total_revenue():.2f}")
    print(f"events processed: {driver.events_processed} "
          f"({driver.events_processed / elapsed:.0f}/s)")
    if driver.probes:
        snapshot = driver.metrics_snapshot()
        latency = snapshot["latency"]
        print(f"probe: mean queue {snapshot['mean_queue']:.1f}, "
              f"max queue {snapshot['max_queue']}, latency "
              f"p50 {latency['p50']:.1f} / p95 {latency['p95']:.1f} / "
              f"p99 {latency['p99']:.1f} ticks")
    if args.record:
        from repro.io import save_sim_trace

        save_sim_trace(driver.trace(), args.record)
        print(f"trace written to {args.record}")
    if args.checkpoint:
        print(f"checkpoint written to {args.checkpoint}")
    if wal_log is not None:
        wal_log.sync()
        final = _write_wal_final_report(driver, args.wal)
        stats = wal_log.stats_snapshot()
        wal_log.close()
        print(f"wal: {stats['records']} record(s), "
              f"{stats['compactions']} compaction(s), "
              f"{stats['fsyncs']} fsync(s), "
              f"final report {final}")
    return 0


def _write_wal_final_report(driver, wal_dir: str) -> str:
    """Write the convergence artifact the kill-matrix diffs.

    Everything durability promises to preserve, in one deterministic
    JSON document: the per-period report rows, the cumulative totals,
    and the complete billing ledger — a crashed-and-recovered run must
    produce this file byte-identical to the uninterrupted run's.
    """
    import json
    from pathlib import Path

    from repro.io import _atomic_write_text

    document = {
        "schema": "repro/wal-final-report",
        "version": 1,
        "periods": driver.period,
        "events_processed": driver.events_processed,
        "total_revenue": driver.total_revenue(),
        "rows": [_sim_report_row(report) for report in driver.reports],
        "invoices": [
            {"shard": index,
             "invoices": [[invoice.period, invoice.query_id,
                           invoice.owner, invoice.amount,
                           invoice.mechanism]
                          for invoice in service.ledger.invoices]}
            for index, service in enumerate(driver.host.services)],
    }
    path = Path(wal_dir) / "final_report.json"
    _atomic_write_text(
        path, json.dumps(document, sort_keys=True, indent=1) + "\n")
    return str(path)


def _apply_auction_tuning(host, args: argparse.Namespace) -> None:
    """Apply the ``--workers``/``--auction-mode`` pool knobs to *host*.

    Runtime tuning, not simulation state — so, unlike the workload
    flags, both compose with ``--resume``.  They only make sense on a
    federated host's batch auction path; setting them on a single
    service is rejected rather than silently ignored.
    """
    from repro.utils.validation import ValidationError

    cluster = getattr(host, "cluster", None)
    auction_columns = getattr(args, "auction_columns", None)
    if cluster is None:
        if (args.workers is not None or args.auction_mode is not None
                or auction_columns is not None):
            raise ValidationError(
                "--workers/--auction-mode/--auction-columns tune the "
                "cluster batch auction pool and need --shards > 1 "
                "(with --batch)")
        return
    if args.workers is not None:
        cluster.auction_workers = args.workers
    if args.auction_mode is not None:
        cluster.auction_mode = args.auction_mode
    if auction_columns is not None:
        cluster.auction_columns = auction_columns


def _apply_sim_defaults(args: argparse.Namespace) -> None:
    """Fill the ``sim`` parser's deferred defaults.

    The parser leaves workload settings as ``None`` so the resume
    branch can tell "explicitly set" (a conflict with the checkpoint)
    from "defaulted"; a fresh build resolves them here.
    """
    defaults = {
        "shards": 1,
        "placement": "consistent-hash",
        "route": "placement",
        "mechanism": "CAT",
        "capacity": 40.0,
        "rate": 5.0,
        "ticks": 20,
        "backend": "scalar",
        "seed": 0,
    }
    for name, value in defaults.items():
        if getattr(args, name) is None:
            setattr(args, name, value)


def _sim_report_row(report) -> list:
    """One boundary report as a table row, whatever the host produced.

    The driver yields :class:`~repro.sim.SimPeriodReport`
    (subscription mode) or the host's own report —
    :class:`~repro.service.PeriodReport` for a service,
    :class:`~repro.cluster.ClusterReport` for a federation.  The first
    two share ``revenue``/``engine_utilization``; the cluster report
    aggregates as ``total_revenue``/``utilization``; only the
    subscription report has expiries and renewals.
    """
    from repro.cluster.reports import ClusterReport

    if isinstance(report, ClusterReport):
        revenue, utilization = report.total_revenue, report.utilization
    else:
        revenue, utilization = report.revenue, report.engine_utilization
    return [
        report.period,
        len(report.admitted),
        len(report.rejected),
        len(getattr(report, "expired", ())),
        len(getattr(report, "renewed", ())),
        revenue,
        0.0 if utilization is None else utilization,
    ]


def _build_sim_host(args: argparse.Namespace):
    from repro.dsms.backend import BackendSpec
    from repro.dsms.streams import SyntheticStream
    from repro.service import ServiceBuilder

    spec = _parse_spec("--mechanism", args.mechanism,
                       lambda text: _spec_with_seed(text, args.seed))
    backend = _parse_spec(
        "--backend", args.backend,
        lambda text: BackendSpec.parse(text).validate())
    if args.shards > 1:
        from repro.cluster import FederatedAdmissionService
        from repro.cluster.placement import resolve_placement

        return FederatedAdmissionService.build(
            num_shards=args.shards,
            sources=[SyntheticStream("s", rate=args.rate,
                                     seed=args.seed)],
            capacity=args.capacity,
            mechanism=spec,
            ticks_per_period=args.ticks,
            backend=backend,
            placement=_parse_spec("--placement", args.placement,
                                  resolve_placement),
        )
    return (ServiceBuilder()
            .with_sources(SyntheticStream("s", rate=args.rate,
                                          seed=args.seed))
            .with_capacity(args.capacity)
            .with_mechanism(spec)
            .with_ticks_per_period(args.ticks)
            .with_backend(backend)
            .build())


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.cluster import FederatedAdmissionService
    from repro.dsms.streams import SyntheticStream
    from repro.utils.tables import format_table

    if args.resume:
        cluster = FederatedAdmissionService.load_checkpoint(args.resume)
        if args.selection:
            from repro.core.selection import SelectionSpec

            spec = _parse_spec(
                "--selection", args.selection,
                lambda text: SelectionSpec.parse(text).validate())
            for shard in cluster.shards:
                shard.mechanism.use_selection(spec)
        if args.auction_workers is not None:
            cluster.auction_workers = args.auction_workers
        cluster.auction_mode = args.auction_mode
        cluster.auction_columns = args.auction_columns
        start = cluster.period
    else:
        from repro.cluster.placement import resolve_placement
        from repro.dsms.backend import BackendSpec

        selection = None
        if args.selection:
            from repro.core.selection import SelectionSpec

            selection = _parse_spec(
                "--selection", args.selection,
                lambda text: SelectionSpec.parse(text).validate())
        spec = _parse_spec("--mechanism", args.mechanism,
                           lambda text: _spec_with_seed(text, args.seed))
        cluster = FederatedAdmissionService.build(
            num_shards=args.shards,
            sources=[SyntheticStream("s", rate=args.rate, seed=args.seed)],
            capacity=args.capacity,
            mechanism=spec,
            ticks_per_period=args.ticks,
            backend=_parse_spec(
                "--backend", args.backend,
                lambda text: BackendSpec.parse(text).validate()),
            selection=selection,
            placement=_parse_spec("--placement", args.placement,
                                  resolve_placement),
            rebalance=not args.no_rebalance,
            auction_workers=args.auction_workers,
            auction_mode=args.auction_mode,
            auction_columns=args.auction_columns,
        )
        start = 0

    rows = []
    try:
        for period in range(start + 1, start + args.periods + 1):
            for query in _synthetic_submissions(
                    period, args.queries_per_period, args.seed,
                    lambda index: f"user_{index % max(1, args.clients)}"):
                cluster.submit(query)
            report = (cluster.run_period_all() if args.batch
                      else cluster.run_period())
            rows.append([
                report.period,
                len(report.admitted),
                len(report.rejected),
                len(report.migrated),
                report.total_revenue,
                (0.0 if report.utilization is None
                 else report.utilization),
            ])
            if args.checkpoint:
                cluster.save_checkpoint(args.checkpoint)
    finally:
        cluster.close_pool()
    print(format_table(
        ["period", "admitted", "rejected", "migrated", "revenue",
         "cluster util"],
        rows, precision=2,
        title=(f"Federated cluster — {cluster.num_shards} shards, "
               f"{cluster.placement.name} placement, "
               f"capacity {cluster.shards[0].capacity:g}/shard")))
    print(f"total revenue: {cluster.total_revenue():.2f}")
    if args.checkpoint:
        print(f"checkpoint written to {args.checkpoint}")
    return 0


def _serve_target_and_config(args: argparse.Namespace):
    """Build the (backend target, gateway config) pair for ``serve``.

    Split from :func:`_cmd_serve` so tests can exercise the wiring
    without binding a socket or entering the event loop.
    """
    from repro.serve import GatewayConfig

    host = _build_sim_host(args)
    target: object = host
    if args.subscriptions or args.categories or args.scheduler:
        from repro.sim import SimulationDriver, SubscriptionOptions

        subscriptions = None
        if args.subscriptions or args.categories:
            subscriptions = SubscriptionOptions(
                categories=(_parse_categories(args.categories)
                            if args.categories else
                            SubscriptionOptions().categories),
                seed=args.seed,
            )
        probe = None
        if args.scheduler:
            from repro.dsms.scheduler import resolve_policy

            probe = _parse_spec("--scheduler", args.scheduler,
                                resolve_policy)
        target = SimulationDriver(
            host, subscriptions=subscriptions, probe=probe)
    config = GatewayConfig(
        host=args.host,
        port=args.port,
        client_rate=args.client_rate,
        client_burst=args.client_burst,
        max_inflight=args.max_inflight,
        fast_timeout=args.fast_timeout,
        slow_timeout=args.slow_timeout,
        allow_pickle_plans=args.allow_pickle,
        tick_interval=args.tick_interval,
        log_path=args.log,
        quiet=args.quiet,
        wal_dir=args.wal,
        wal_fsync=args.wal_fsync,
        compact_every=args.compact_every,
        wal_group_commit=args.wal_group_commit,
        wal_group_window=args.wal_group_window,
    )
    return target, config


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import serve_forever

    if args.workers > 1:
        return _serve_multiprocess(args)
    target, config = _serve_target_and_config(args)
    asyncio.run(serve_forever(target, config))
    return 0


def _serve_multiprocess(args: argparse.Namespace) -> int:
    """The pre-fork front-end: N workers on one port."""
    import signal
    import threading

    from repro.serve import FrontendConfig, GatewaySupervisor

    for flag, wrong in (("--subscriptions", args.subscriptions),
                        ("--categories", args.categories),
                        ("--scheduler", args.scheduler)):
        if wrong:
            raise ValidationError(
                f"{flag} runs through a simulation driver, which is "
                f"single-process; drop it or use --workers 1")
    if args.shards < 2:
        raise ValidationError(
            "--workers > 1 routes by shard affinity and needs a "
            "federated cluster; add --shards 2 (or more)")
    _target, gateway_config = _serve_target_and_config(args)
    config = FrontendConfig(workers=args.workers,
                            gateway=gateway_config)

    def factory():
        return _build_sim_host(args)

    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stop.set())
    supervisor = GatewaySupervisor(factory, config).start()
    try:
        host, port = supervisor.address
        print(f"serving on http://{host}:{port} with "
              f"{args.workers} workers "
              f"({'SO_REUSEPORT' if supervisor.reuseport else 'shared socket'})"
              + (f", striped WAL at {args.wal}" if args.wal else ""))
        stop.wait()
    finally:
        supervisor.stop()
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    config = WorkloadConfig().scaled(args.queries)
    generator = WorkloadGenerator(config=config, seed=args.seed)
    instance = generator.instance(
        max_sharing=args.sharing,
        capacity=args.capacity,
    )
    save_instance(instance, args.output)
    print(f"wrote {instance.num_queries} queries / "
          f"{len(instance.operators)} operators "
          f"(demand {instance.total_demand():.1f}, capacity "
          f"{instance.capacity:g}) to {args.output}")
    return 0


def _cmd_report(_args: argparse.Namespace) -> int:
    from repro.experiments.report import full_report

    print(full_report().render())
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.gametheory.properties import (
        render_verdicts,
        verify_properties,
    )

    verdicts = verify_properties(seed=args.seed)
    print(render_verdicts(verdicts))
    return 0 if all(v.consistent for v in verdicts) else 1


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Admission-control auctions for continuous queries "
                    "(ICDE 2010 reproduction)")
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser(
        "run", help="run a mechanism on one or more JSON instances")
    run.add_argument("mechanism",
                     help="a mechanism spec: CAR, CAF, CAF+, CAT, CAT+, "
                          "GV, Two-price, Random, OPT_C, k-unit, "
                          "knapsack — optionally with parameters, e.g. "
                          "two-price:seed=7")
    run.add_argument("instance", nargs="+",
                     help="path(s) to instance JSON file(s); several "
                          "run as one batch")
    run.add_argument("--seed", type=int, default=0,
                     help="seed for randomized mechanisms (unless the "
                          "spec sets one)")
    run.add_argument("--selection", default=None,
                     help="winner-selection path spec: reference, "
                          "fast, fast:strict=true")
    run.add_argument("-o", "--output", default=None,
                     help="also write the outcome JSON here")
    run.set_defaults(handler=_cmd_run)

    simulate = commands.add_parser(
        "simulate",
        help="run an AdmissionService over synthetic submissions")
    simulate.add_argument("--mechanism", default="CAT",
                          help="mechanism spec (default CAT)")
    simulate.add_argument("--periods", type=int, default=5)
    simulate.add_argument("--queries-per-period", type=int, default=6)
    simulate.add_argument("--capacity", type=float, default=40.0)
    simulate.add_argument("--rate", type=float, default=5.0,
                          help="stream arrival rate (tuples/tick)")
    simulate.add_argument("--ticks", type=int, default=20,
                          help="engine ticks per subscription period")
    simulate.add_argument("--backend", default="scalar",
                          help="execution backend spec: scalar, "
                               "columnar, columnar:batch=1024")
    simulate.add_argument("--selection", default=None,
                          help="winner-selection path spec: reference "
                               "(default), fast")
    simulate.add_argument("--profile", action="store_true",
                          help="dump per-phase (prepare/auction/"
                               "settle/execute) wall-clock timings "
                               "as JSON after the run")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--checkpoint", default=None,
                          help="write a resumable checkpoint here "
                               "after every period")
    simulate.add_argument("--resume", default=None,
                          help="resume from a checkpoint file instead "
                               "of starting fresh")
    simulate.set_defaults(handler=_cmd_simulate)

    sim = commands.add_parser(
        "sim",
        help="run the open-system event-driven simulation (arrival "
             "processes, subscriptions, latency probe, trace replay)")
    sim.add_argument("--arrivals", action="append", default=None,
                     help="arrival-process spec (repeatable; one per "
                          "shard with --route stream): "
                          "poisson:rate=2, burst:size=20,every=10, "
                          "trace:path=run.trace.json "
                          "(default poisson:rate=2)")
    sim.add_argument("--periods", type=int, default=5,
                     help="period boundaries to run")
    sim.add_argument("--subscriptions", action="store_true",
                     help="run Section VII subscription lifecycles "
                          "(per-category auctions, expiry, renewal)")
    sim.add_argument("--categories", default=None,
                     help="subscription category mix as "
                          "name=length:fraction pairs, e.g. "
                          "day=1:0.4,week=7:0.35,month=30:0.25 "
                          "(implies --subscriptions)")
    sim.add_argument("--no-renew", action="store_true",
                     help="expired subscriptions do not resubmit")
    sim.add_argument("--max-renewals", type=int, default=None,
                     help="bound on automatic renewals per query")
    sim.add_argument("--scheduler", default=None,
                     help="attach the latency probe with this "
                          "scheduling-policy spec: fifo, round-robin, "
                          "longest-queue-first, cheapest-first")
    sim.add_argument("--record", default=None,
                     help="write the run's arrival trace (JSON, "
                          "repro/sim-trace) here")
    sim.add_argument("--replay", default=None,
                     help="replay a recorded trace instead of "
                          "generating arrivals")
    sim.add_argument("--shards", type=int, default=None,
                     help="drive a federated cluster with this many "
                          "shards (default 1: a single service)")
    sim.add_argument("--placement", default=None,
                     help="cluster placement spec (with --shards > 1; "
                          "default consistent-hash)")
    sim.add_argument("--route", choices=("placement", "stream"),
                     default=None,
                     help="arrival routing: by placement policy "
                          "(default), or arrival process i pinned to "
                          "shard i")
    sim.add_argument("--batch", action="store_true",
                     help="auction re-auction cluster boundaries on "
                          "the pooled batch path (needs "
                          "--shards > 1)")
    sim.add_argument("--workers", type=int, default=None,
                     help="pool width for --batch auction boundaries "
                          "(default: CPU count)")
    sim.add_argument("--auction-mode", choices=("thread", "process"),
                     default=None,
                     help="pool flavor for --batch boundaries: "
                          "thread (default) or a persistent "
                          "multiprocessing pool")
    sim.add_argument("--auction-columns", choices=("pickle", "shm"),
                     default=None,
                     help="column transport of the --auction-mode "
                          "process pool: pickle (default) or one "
                          "shared-memory segment per boundary")
    sim.add_argument("--pump", action="store_true",
                     help="consume arrivals through the columnar "
                          "pump: numpy row blocks instead of "
                          "per-arrival events (identical results, "
                          "higher throughput)")
    sim.add_argument("--probe-retention", type=int, default=None,
                     help="keep only the most recent N probe tick "
                          "records and latency samples (default: "
                          "unbounded, exact over the whole run)")
    sim.add_argument("--mechanism", default=None,
                     help="mechanism spec (default CAT)")
    sim.add_argument("--capacity", type=float, default=None,
                     help="per-shard capacity (default 40)")
    sim.add_argument("--rate", type=float, default=None,
                     help="stream arrival rate (tuples/tick, "
                          "default 5)")
    sim.add_argument("--ticks", type=int, default=None,
                     help="engine ticks per subscription period "
                          "(default 20)")
    sim.add_argument("--backend", default=None,
                     help="execution backend spec: scalar (default), "
                          "columnar")
    sim.add_argument("--seed", type=int, default=None,
                     help="base seed (default 0)")
    sim.add_argument("--checkpoint", default=None,
                     help="write a resumable simulation checkpoint "
                          "here after every period")
    sim.add_argument("--resume", default=None,
                     help="resume from a simulation checkpoint "
                          "instead of starting fresh")
    sim.add_argument("--wal", default=None, metavar="DIR",
                     help="write-ahead log directory: every settle "
                          "window is logged before the run moves on, "
                          "and re-running the same command after a "
                          "crash recovers and converges to the "
                          "uninterrupted result (--periods is the "
                          "total horizon)")
    sim.add_argument("--wal-fsync", default="batch:256",
                     metavar="POLICY",
                     help="WAL fsync policy: never, always, or "
                          "batch:N (default batch:256)")
    sim.add_argument("--compact-every", type=int, default=64,
                     metavar="PERIODS",
                     help="fold the WAL into a fresh snapshot and "
                          "truncate recovered segments every this "
                          "many periods (default 64; 0 disables)")
    sim.set_defaults(handler=_cmd_sim)

    cluster = commands.add_parser(
        "cluster",
        help="run a sharded FederatedAdmissionService over synthetic "
             "submissions")
    cluster.add_argument("--shards", type=int, default=4,
                         help="number of AdmissionService shards")
    cluster.add_argument("--placement", default="consistent-hash",
                         help="placement spec: consistent-hash, "
                              "least-loaded, round-robin — optionally "
                              "with parameters, e.g. "
                              "consistent-hash:seed=7")
    cluster.add_argument("--mechanism", default="CAT",
                         help="mechanism spec (default CAT)")
    cluster.add_argument("--periods", type=int, default=5)
    cluster.add_argument("--queries-per-period", type=int, default=12)
    cluster.add_argument("--clients", type=int, default=6,
                         help="distinct client owners submitting")
    cluster.add_argument("--capacity", type=float, default=40.0,
                         help="per-shard capacity")
    cluster.add_argument("--rate", type=float, default=5.0,
                         help="stream arrival rate (tuples/tick)")
    cluster.add_argument("--ticks", type=int, default=20,
                         help="engine ticks per subscription period")
    cluster.add_argument("--backend", default="scalar",
                         help="execution backend spec applied to "
                              "every shard: scalar, columnar, "
                              "columnar:batch=1024")
    cluster.add_argument("--selection", default=None,
                         help="winner-selection path spec applied to "
                              "every shard: reference (default), fast")
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument("--batch", action="store_true",
                         help="use the run_period_all batch auction "
                              "path (independent shard auctions run "
                              "on a thread pool)")
    cluster.add_argument("--auction-workers", type=int, default=None,
                         help="pool width for --batch auctions "
                              "(default: CPU count)")
    cluster.add_argument("--auction-mode",
                         choices=("thread", "process"),
                         default="thread",
                         help="pool flavor for --batch auctions: "
                              "thread (default) or a persistent "
                              "multiprocessing pool")
    cluster.add_argument("--auction-columns",
                         choices=("pickle", "shm"),
                         default="pickle",
                         help="column transport of the process pool: "
                              "pickle (default) or one shared-memory "
                              "segment per boundary")
    cluster.add_argument("--no-rebalance", action="store_true",
                         help="disable cross-shard migration of "
                              "rejected queries")
    cluster.add_argument("--checkpoint", default=None,
                         help="write a resumable cluster checkpoint "
                              "here after every period")
    cluster.add_argument("--resume", default=None,
                         help="resume from a cluster checkpoint "
                              "instead of starting fresh")
    cluster.set_defaults(handler=_cmd_cluster)

    serve = commands.add_parser(
        "serve",
        help="serve an admission host over HTTP/JSON (submit, "
             "withdraw, subscribe, period ticks, /metrics)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8080,
                       help="bind port (0 = ephemeral; default 8080)")
    serve.add_argument("--shards", type=int, default=1,
                       help="serve a federated cluster with this many "
                            "shards (default 1: a single service)")
    serve.add_argument("--placement", default="consistent-hash",
                       help="cluster placement spec (with --shards > 1)")
    serve.add_argument("--mechanism", default="CAT",
                       help="mechanism spec (default CAT)")
    serve.add_argument("--capacity", type=float, default=40.0,
                       help="per-shard capacity (default 40)")
    serve.add_argument("--rate", type=float, default=5.0,
                       help="stream arrival rate (tuples/tick)")
    serve.add_argument("--ticks", type=int, default=20,
                       help="engine ticks per subscription period")
    serve.add_argument("--backend", default="scalar",
                       help="execution backend spec: scalar (default), "
                            "columnar")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--subscriptions", action="store_true",
                       help="serve subscription lifecycles "
                            "(/v1/subscribe) through a simulation "
                            "driver")
    serve.add_argument("--categories", default=None,
                       help="subscription category mix, e.g. "
                            "day=1:0.4,week=7:0.35,month=30:0.25 "
                            "(implies --subscriptions)")
    serve.add_argument("--scheduler", default=None,
                       help="attach per-shard latency probes with this "
                            "scheduling-policy spec (surfaces in "
                            "/metrics)")
    serve.add_argument("--tick-interval", type=float, default=None,
                       help="run an auction period automatically every "
                            "this many seconds (default: only on "
                            "POST /v1/tick)")
    serve.add_argument("--client-rate", type=float, default=200.0,
                       help="per-client sustained requests/s before "
                            "429s (default 200)")
    serve.add_argument("--client-burst", type=float, default=50.0,
                       help="per-client burst allowance (default 50)")
    serve.add_argument("--max-inflight", type=int, default=64,
                       help="concurrent in-flight request cap "
                            "(default 64)")
    serve.add_argument("--fast-timeout", type=float, default=2.0,
                       help="data-plane request timeout, seconds")
    serve.add_argument("--slow-timeout", type=float, default=30.0,
                       help="auction-settle request timeout, seconds")
    serve.add_argument("--allow-pickle", action="store_true",
                       help="accept base64-pickle query plans from "
                            "the wire (unpickling runs client-chosen "
                            "code: trusted clients only)")
    serve.add_argument("--log", default=None,
                       help="append structured JSONL request logs here")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress the human-readable stderr log")
    serve.add_argument("--wal", default=None, metavar="DIR",
                       help="write-ahead log directory: acknowledged "
                            "submissions and settles are logged "
                            "before the response goes out, and a "
                            "restarted gateway replays its log tail "
                            "(503 + /healthz recovery=replaying "
                            "until caught up)")
    serve.add_argument("--wal-fsync", default="batch:256",
                       metavar="POLICY",
                       help="WAL fsync policy: never, always, or "
                            "batch:N (default batch:256)")
    serve.add_argument("--compact-every", type=int, default=64,
                       metavar="PERIODS",
                       help="fold the WAL into a fresh snapshot "
                            "every this many settled periods "
                            "(default 64; 0 disables)")
    serve.add_argument("--workers", type=int, default=1,
                       help="pre-fork this many gateway worker "
                            "processes sharing the port, with "
                            "shard-affinity routing and per-worker "
                            "WAL stripes (needs --shards > 1 and "
                            "consistent-hash placement; default 1: "
                            "a single process)")
    serve.add_argument("--wal-group-commit", action="store_true",
                       help="batch concurrent acknowledged mutations "
                            "into one fsync (leader/follower group "
                            "commit; needs --wal)")
    serve.add_argument("--wal-group-window", type=float,
                       default=0.002, metavar="SECONDS",
                       help="how long a group-commit leader waits "
                            "for followers before syncing "
                            "(default 0.002)")
    serve.set_defaults(handler=_cmd_serve)

    generate = commands.add_parser(
        "generate", help="generate a Table III workload instance")
    generate.add_argument("--queries", type=int, default=200)
    generate.add_argument("--sharing", type=int, default=8,
                          help="maximum degree of operator sharing")
    generate.add_argument("--capacity", type=float, default=None,
                          help="server capacity (default: paper ratio)")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("-o", "--output", default="instance.json")
    generate.set_defaults(handler=_cmd_generate)

    report = commands.add_parser(
        "report", help="regenerate the paper's tables and figures")
    report.set_defaults(handler=_cmd_report)

    verify = commands.add_parser(
        "verify", help="run the Table I property battery")
    verify.add_argument("--seed", type=int, default=0)
    verify.set_defaults(handler=_cmd_verify)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code.

    Misuse — a bad spec string, conflicting flags, a malformed
    category list — prints one ``repro: error:`` line to stderr and
    exits 2, argparse-style, instead of dumping a traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ValidationError, KeyError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"repro: error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
