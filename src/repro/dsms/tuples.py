"""Stream tuples — the unit of data flowing through the DSMS engine.

A tuple is an immutable record stamped with its source stream and the
engine tick it entered the system; ``payload`` carries the attribute
values.  Lineage (``origin``) survives operator processing so tests can
assert conservation across the transition phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping


@dataclass(frozen=True)
class StreamTuple:
    """One data item on a stream.

    ``origin`` identifies the source tuple(s) this one derives from —
    a single id for row-level operators, a combined id for joins and
    aggregates.

    The constructor takes ownership of a ``payload`` passed as a plain
    ``dict`` — it is kept as-is, not copied, so callers on the hot path
    (operators construct one payload per emitted tuple) must hand over
    a mapping they will not mutate afterwards.  Any other
    :class:`Mapping` is converted to a ``dict`` once.
    """

    stream: str
    tick: int
    payload: Mapping[str, object] = field(default_factory=dict)
    origin: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if type(self.payload) is not dict:
            object.__setattr__(self, "payload", dict(self.payload))
        if not self.origin:
            object.__setattr__(
                self, "origin", (f"{self.stream}@{self.tick}",))

    def value(self, attribute: str, default: object = None) -> object:
        """Payload attribute lookup with a default."""
        return self.payload.get(attribute, default)

    def derive(
        self,
        payload: Mapping[str, object] | None = None,
        origin: tuple[str, ...] | None = None,
    ) -> "StreamTuple":
        """A derived tuple carrying this one's lineage by default."""
        return StreamTuple(
            stream=self.stream,
            tick=self.tick,
            payload=self.payload if payload is None else payload,
            origin=self.origin if origin is None else origin,
        )
