"""Load estimation — the bridge from running plans to auction inputs.

The admission mechanisms need one number per operator: its *load*, the
fraction of server capacity it consumes per time unit.  The paper
assumes this "can at least be reasonably approximated by the system".
We provide both directions:

* :func:`estimate_operator_loads` — analytic prediction: propagate
  expected tuple rates from the sources through the operator graph
  (scaling by each operator's selectivity estimate) and multiply by
  per-tuple costs;
* :class:`LoadMeter` — measurement: accumulate actual work per
  operator over engine ticks and report the empirical load.

:func:`auction_instance_from_catalog` packages the estimates with the
queries' bids into a :class:`repro.core.model.AuctionInstance`, closing
the loop between the DSMS substrate and the auction layer.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.model import AuctionInstance, Operator, Query
from repro.dsms.plan import QueryPlanCatalog


def estimate_operator_loads(
    catalog: QueryPlanCatalog,
    stream_rates: Mapping[str, float],
) -> dict[str, float]:
    """Predicted load per operator: input rate × cost per tuple.

    Rates propagate through the graph in topological order; an
    operator's output rate is its input rate times its selectivity
    estimate.  Unknown streams default to rate 0.
    """
    rates: dict[str, float] = dict(stream_rates)
    loads: dict[str, float] = {}
    for op in catalog.topological_order():
        input_rate = sum(rates.get(name, 0.0) for name in op.inputs)
        loads[op.op_id] = input_rate * op.cost_per_tuple
        rates[op.op_id] = input_rate * op.selectivity()
    return loads


class LoadMeter:
    """Accumulates measured per-operator work across engine ticks."""

    def __init__(self) -> None:
        self._work: dict[str, float] = {}
        self._ticks = 0

    def record_tick(self, work_by_operator: Mapping[str, float]) -> None:
        """Add one tick's work measurements."""
        for op_id, work in work_by_operator.items():
            self._work[op_id] = self._work.get(op_id, 0.0) + work
        self._ticks += 1

    @property
    def ticks(self) -> int:
        """Number of recorded ticks."""
        return self._ticks

    def measured_loads(self) -> dict[str, float]:
        """Mean work per tick for every operator seen so far."""
        if self._ticks == 0:
            return {}
        return {op_id: work / self._ticks
                for op_id, work in self._work.items()}

    def total_load(self) -> float:
        """Mean aggregate work per tick."""
        return sum(self.measured_loads().values())


def auction_instance_from_catalog(
    catalog: QueryPlanCatalog,
    stream_rates: Mapping[str, float],
    capacity: float,
    loads: Mapping[str, float] | None = None,
) -> AuctionInstance:
    """Build the admission auction's input from registered plans.

    *loads* overrides the analytic estimates (pass
    ``LoadMeter.measured_loads()`` to auction on measured costs).
    """
    if loads is None:
        loads = estimate_operator_loads(catalog, stream_rates)
    operators = {
        op_id: Operator(op_id, loads.get(op_id, 0.0))
        for op_id in catalog.operators
    }
    queries = tuple(
        Query(
            query_id=query.query_id,
            operator_ids=query.operator_ids,
            bid=query.bid,
            valuation=query.valuation,
            owner=query.owner,
        )
        for query in catalog.queries.values()
    )
    return AuctionInstance(operators, queries, capacity)
