"""Common-subexpression detection — the machinery that *creates* sharing.

The paper's premise (Section II): "many CQs are monitoring a few hot
streams, and many of the CQs are similar, but not identical", so the
system shares operator processing between them.  Queries, however,
arrive from independent users who name their operators independently;
somebody has to notice that two SELECTs over the same stream with the
same parameters are the same computation.  This module is that
somebody:

* every operator gets a structural :func:`operator_signature` — its
  type, its (rewritten) inputs, its cost, and a parameter fingerprint
  supplied at construction;
* :func:`canonicalize` rewrites a batch of queries bottom-up, mapping
  equal-signature operators to one canonical id, so the catalog's
  merge-by-id sharing kicks in automatically.

Predicates and functions are compared by their *parameter fingerprint*
(``share_key``), not by Python object identity: two users' "volume >
5000" filters share iff they declare the same key.  Operators without
a ``share_key`` are conservatively treated as private.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.dsms.operators import StreamOperator
from repro.dsms.plan import ContinuousQuery


def operator_signature(
    op: StreamOperator,
    resolved_inputs: Sequence[str],
) -> "str | None":
    """Structural identity of *op*, or ``None`` when unshareable.

    *resolved_inputs* are the operator's inputs after upstream
    canonicalization, so equality is transitive through a pipeline.
    """
    share_key = getattr(op, "share_key", None)
    if share_key is None:
        return None
    return "|".join([
        type(op).__name__,
        ",".join(resolved_inputs),
        f"{op.cost_per_tuple:.12g}",
        str(share_key),
    ])


@dataclass(frozen=True)
class CanonicalizationReport:
    """What the detector rewrote."""

    queries: tuple[ContinuousQuery, ...]
    merged_operators: int
    canonical_ids: dict[str, str]  # original id -> canonical id


def canonicalize(
    queries: Iterable[ContinuousQuery],
) -> CanonicalizationReport:
    """Rewrite *queries* so structurally-equal operators share one id.

    Operators are processed in each query's dependency order; an
    operator whose signature was seen before (in any query) is replaced
    by the first-seen operator object, and downstream inputs are
    rewritten to the canonical id.  Unshareable operators (no
    ``share_key``) keep their original ids, uniquified per query owner
    to avoid accidental collisions.
    """
    signature_to_op: dict[str, StreamOperator] = {}
    canonical_ids: dict[str, str] = {}
    merged = 0
    rewritten_queries: list[ContinuousQuery] = []

    for query in queries:
        by_id = {op.op_id: op for op in query.operators}
        # Resolve in dependency order within the query.
        resolved: dict[str, str] = {}
        new_ops: dict[str, StreamOperator] = {}

        def resolve(op: StreamOperator) -> str:
            if op.op_id in resolved:
                return resolved[op.op_id]
            inputs = [
                resolve(by_id[name]) if name in by_id else name
                for name in op.inputs
            ]
            signature = operator_signature(op, inputs)
            nonlocal merged
            if signature is None:
                # Private operator: keep it, but re-home it onto the
                # canonical upstream ids.
                canonical = op
                if tuple(inputs) != op.inputs:
                    op.inputs = tuple(inputs)
                canonical_id = op.op_id
            elif signature in signature_to_op:
                canonical = signature_to_op[signature]
                canonical_id = canonical.op_id
                if canonical_id != op.op_id:
                    merged += 1
            else:
                # First sighting: re-home the operator onto the
                # resolved inputs if upstream ids changed.
                canonical = op
                if tuple(inputs) != op.inputs:
                    op.inputs = tuple(inputs)
                signature_to_op[signature] = canonical
                canonical_id = canonical.op_id
            resolved[op.op_id] = canonical_id
            canonical_ids[op.op_id] = canonical_id
            new_ops[canonical_id] = canonical
            return canonical_id

        for op in query.operators:
            resolve(op)
        rewritten_queries.append(ContinuousQuery(
            query_id=query.query_id,
            operators=tuple(new_ops.values()),
            sink_id=resolved[query.sink_id],
            bid=query.bid,
            valuation=query.valuation,
            owner=query.owner,
        ))

    return CanonicalizationReport(
        queries=tuple(rewritten_queries),
        merged_operators=merged,
        canonical_ids=canonical_ids,
    )
