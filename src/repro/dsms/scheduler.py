"""Operator scheduling under a per-tick work budget.

The base :class:`~repro.dsms.engine.StreamEngine` executes every
operator fully each tick — fine when the admission auction keeps
aggregate load within capacity, but the Aurora-style systems the paper
builds on (and cites: Sharaf et al.'s operator-scheduling metrics)
process tuples through *bounded* CPU with queues between operators.
:class:`ScheduledEngine` models exactly that:

* each operator owns an input **queue** per input;
* each tick has a **work budget** (the capacity); a pluggable
  :class:`SchedulingPolicy` decides which operator runs next and how
  many queued tuples it may consume;
* unconsumed tuples wait — queue lengths and **tuple latency** (ticks
  from source arrival to sink emission) become measurable.

This gives the library the back-pressure story behind the paper's
admission control: an over-admitted system doesn't crash, it builds
queues and latency without bound — which is why you price admission in
the first place (``tests/dsms/test_scheduler.py`` demonstrates both
regimes).

Policies are *spec-string addressable* through the shared registry
grammar (``"fifo"``, ``"round-robin"``, ``"longest-queue-first"``,
``"cheapest-first"``), the currency of
:meth:`~repro.service.builder.ServiceBuilder.with_scheduler` and the
CLI's ``--scheduler`` flag — direct construction keeps working, but is
no longer the only way in.
"""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass
from collections.abc import Callable, Iterable, Mapping, Sequence
from itertools import repeat

from repro.dsms.operators import StreamOperator
from repro.dsms.plan import ContinuousQuery, QueryPlanCatalog
from repro.dsms.streams import StreamSource
from repro.dsms.tuples import StreamTuple
from repro.utils.registry import RegistrySpec, SpecRegistry
from repro.utils.validation import ValidationError, require


class SchedulingPolicy(abc.ABC):
    """Orders the runnable operators within a tick."""

    name = "policy"

    @abc.abstractmethod
    def order(
        self,
        operators: Sequence[StreamOperator],
        queue_lengths: dict[str, int],
    ) -> list[StreamOperator]:
        """Operators in the order they should be offered work."""


class FifoPolicy(SchedulingPolicy):
    """Keeps the topological (pipeline) order the engine offers.

    Upstream operators are served before their consumers, so tuples
    flow through the network in arrival order — the first-in-first-out
    baseline of the operator-scheduling literature.
    """

    name = "fifo"

    def order(self, operators, queue_lengths):
        return list(operators)


class RoundRobinPolicy(SchedulingPolicy):
    """Cycles through the operators, rotating the head each tick."""

    name = "round-robin"

    def __init__(self) -> None:
        self._offset = 0

    def order(self, operators, queue_lengths):
        if not operators:
            return []
        rotation = self._offset % len(operators)
        self._offset += 1
        return list(operators[rotation:]) + list(operators[:rotation])


class LongestQueueFirstPolicy(SchedulingPolicy):
    """Serves the operator with the most queued input first."""

    name = "longest-queue-first"

    def order(self, operators, queue_lengths):
        return sorted(
            operators,
            key=lambda op: (-queue_lengths.get(op.op_id, 0), op.op_id))


class CheapestFirstPolicy(SchedulingPolicy):
    """Serves cheap operators first (max tuples drained per unit work,
    the throughput-greedy policy)."""

    name = "cheapest-first"

    def order(self, operators, queue_lengths):
        return sorted(operators,
                      key=lambda op: (op.cost_per_tuple, op.op_id))


# ----------------------------------------------------------------------
# Registry and specs (mirrors repro.dsms.backend)
# ----------------------------------------------------------------------

#: The scheduling-policy registry (shared machinery: utils.registry).
_REGISTRY = SpecRegistry("scheduling policy", param_noun="scheduling policy")


def register_policy(
    name: str, factory: Callable[..., SchedulingPolicy]
) -> None:
    """Register a policy *factory* under *name* (case-insensitive)."""
    _REGISTRY.register(name, factory)


def make_policy(name: str, **kwargs: object) -> SchedulingPolicy:
    """Instantiate a registered policy by name, validating kwargs."""
    return _REGISTRY.create(name, **kwargs)


def registered_policies() -> Mapping[str, Callable[..., SchedulingPolicy]]:
    """Read-only view of the registry (name → factory)."""
    return _REGISTRY.as_mapping()


@dataclass(frozen=True)
class PolicySpec(RegistrySpec):
    """A scheduling-policy name plus declared, validated parameters.

    Parseable from the same compact strings every other registry in
    the library uses (shared machinery:
    :class:`~repro.utils.registry.RegistrySpec`):

    >>> PolicySpec.parse("round-robin")
    PolicySpec(name='round-robin', params={})
    """

    _registry = _REGISTRY
    _what = "scheduler spec"


def resolve_policy(
    policy: "SchedulingPolicy | PolicySpec | str",
) -> SchedulingPolicy:
    """Coerce any accepted policy form to a live instance.

    Accepts a live :class:`SchedulingPolicy`, a :class:`PolicySpec`,
    or a spec string like ``"fifo"`` / ``"round-robin"``.  Specs and
    strings produce a fresh instance per resolve (policies may hold
    per-engine cursor state).
    """
    if isinstance(policy, SchedulingPolicy):
        return policy
    if isinstance(policy, PolicySpec):
        return policy.create()
    if isinstance(policy, str):
        return PolicySpec.parse(policy).create()
    raise ValidationError(
        f"cannot resolve a scheduling policy from {policy!r}; pass a "
        f"SchedulingPolicy, a PolicySpec, or a spec string like "
        f"'fifo' or 'round-robin'")


register_policy("fifo", FifoPolicy)
register_policy("round-robin", RoundRobinPolicy)
register_policy("longest-queue-first", LongestQueueFirstPolicy)
register_policy("cheapest-first", CheapestFirstPolicy)


@dataclass
class LatencyStats:
    """Accumulated sink-delivery latency in ticks."""

    total: float = 0.0
    count: int = 0
    maximum: int = 0

    def record(self, latency: int) -> None:
        self.total += latency
        self.count += 1
        self.maximum = max(self.maximum, latency)

    @property
    def mean(self) -> float:
        """Mean latency (0 when nothing was delivered)."""
        return self.total / self.count if self.count else 0.0


class ScheduledEngine:
    """A bounded-work engine with per-operator input queues."""

    def __init__(
        self,
        sources: Iterable[StreamSource],
        capacity: float,
        policy: "SchedulingPolicy | PolicySpec | str | None" = None,
        keep_latency_samples: bool = False,
        max_latency_samples: "int | None" = None,
        count_mode: bool = False,
    ) -> None:
        require(capacity > 0, "capacity must be positive")
        self._sources: dict[str, StreamSource] = {}
        for source in sources:
            if source.name in self._sources:
                raise ValidationError(
                    f"duplicate stream name {source.name!r}")
            self._sources[source.name] = source
        self.capacity = float(capacity)
        self.policy = (RoundRobinPolicy() if policy is None
                       else resolve_policy(policy))
        self.catalog = QueryPlanCatalog()
        self.results: dict[str, list[StreamTuple]] = {}
        self.latency: dict[str, LatencyStats] = {}
        #: Raw per-delivery latencies (ticks), kept only on request —
        #: the SLA percentiles of the open-system simulation need the
        #: distribution, not just the running mean.  A cap turns the
        #: store into a sliding window over the most recent deliveries
        #: (long open-system runs would otherwise grow without bound).
        if max_latency_samples is not None:
            require(int(max_latency_samples) >= 1,
                    "max_latency_samples must be >= 1")
        self.latency_samples: "list[int] | deque | None" = None
        if keep_latency_samples:
            self.latency_samples = (
                [] if max_latency_samples is None
                else deque(maxlen=int(max_latency_samples)))
        # op id -> input name -> queue of (arrival tick, tuple)
        self._queues: dict[str, dict[str, deque]] = {}
        # Count mode (latency accounting only): queues carry
        # ``[birth tick, count]`` runs instead of tuples and result
        # logs stay empty — valid only while every admitted network is
        # a source-fed passthrough select delivering straight to its
        # sink, over sources whose origins embed the emitting tick.
        # The engine drops back to tuple queues (permanently, results
        # still skipped) the moment a non-conforming plan is admitted.
        self._keep_results = not count_mode
        self._counts = bool(count_mode) and all(
            getattr(source, "origin_tick_stamped", False)
            for source in self._sources.values())
        self._run_queues: dict[str, deque] = {}
        #: Running delivery totals across every sink query — O(1)
        #: reads for per-tick metrics (summing the per-query stats
        #: each tick is quadratic over a long run).  Latencies are
        #: integers, so the totals are exact.
        self.delivered_count = 0
        self.delivered_latency = 0
        # Derived routing/accounting state, rebuilt on admit/remove:
        # catalog views copy their dicts, far too slow per tick.
        self._order: list[StreamOperator] = []
        self._consumers: dict[str, list[StreamOperator]] = {}
        self._sinks: dict[str, list[str]] = {}
        self._stream_consumers: dict[str, list[StreamOperator]] = {}
        self._queued: dict[str, int] = {}
        self._nonempty: set[str] = set()
        self._birth_memo: dict[str, int] = {}
        self._tick = 0
        self.work_done = 0.0
        self.ticks_run = 0

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def admit(self, query: ContinuousQuery) -> None:
        """Register *query* and allocate queues for its operators."""
        self.catalog.add(query)
        missing = self.catalog.stream_names() - set(self._sources)
        if missing:
            self.catalog.remove(query.query_id)
            raise ValidationError(
                f"query {query.query_id!r} references unknown "
                f"streams {sorted(missing)}")
        self.results.setdefault(query.query_id, [])
        self.latency.setdefault(query.query_id, LatencyStats())
        for op in self.catalog.operators.values():
            queues = self._queues.setdefault(op.op_id, {})
            for name in op.inputs:
                queues.setdefault(name, deque())
            self._queued.setdefault(op.op_id, 0)
            if self._counts:
                self._run_queues.setdefault(op.op_id, deque())
        self._rebuild_routing()

    def remove(self, query_id: str) -> ContinuousQuery:
        """Deregister *query_id*; orphaned operators drop their queues.

        Tuples queued for operators still shared with other queries
        stay queued; queues of operators no query references anymore
        are discarded with their contents (the subscription expired —
        nobody is paying for those results).
        """
        query = self.catalog.remove(query_id)
        live = self.catalog.operators
        for op_id in list(self._queues):
            if op_id not in live:
                del self._queues[op_id]
                del self._queued[op_id]
                self._nonempty.discard(op_id)
                self._run_queues.pop(op_id, None)
        self._rebuild_routing()
        return query

    def _rebuild_routing(self) -> None:
        """Recompute the per-tick routing maps from the catalog.

        The catalog's ``operators``/``queries`` views copy their dicts
        on every access, and routing by scanning them is quadratic in
        the admitted set — both are fine at admission frequency but
        not inside the tick loop, so the loop reads these instead.
        """
        operators = self.catalog.operators
        self._order = list(self.catalog.topological_order())
        self._consumers = {op_id: [] for op_id in operators}
        self._stream_consumers = {}
        for op in operators.values():
            for name in op.inputs:
                if name in operators:
                    self._consumers[name].append(op)
                if name in self._sources:
                    self._stream_consumers.setdefault(
                        name, []).append(op)
        self._sinks = {}
        for query_id, query in self.catalog.queries.items():
            self._sinks.setdefault(query.sink_id, []).append(query_id)
        if self._counts and not self._counts_supported():
            self._deactivate_counts()

    def _counts_supported(self) -> bool:
        """True while every operator is a source-fed passthrough
        select feeding only sinks (the count-mode contract)."""
        for op in self._order:
            if (len(op.inputs) != 1
                    or op.inputs[0] not in self._sources
                    or not getattr(op, "_passthrough", False)
                    or self._consumers.get(op.op_id)):
                return False
        return True

    def _deactivate_counts(self) -> None:
        """One-way fallback from run-length to tuple queues.

        Queued runs materialize as placeholder tuples whose origins
        embed the recorded birth ticks, so downstream latency
        accounting is unchanged (payloads are never inspected on a
        passthrough network and results are not kept in this mode).
        """
        for op_id, runs in self._run_queues.items():
            queues = self._queues[op_id]
            name = next(iter(queues))
            queue = queues[name]
            serial = 0
            for birth, count in runs:
                for _ in range(count):
                    t = StreamTuple(
                        stream=name, tick=birth, payload={},
                        origin=(f"{name}@{birth}#cnt{serial}",))
                    queue.append((birth, t))
                    serial += 1
        self._run_queues = {}
        self._counts = False

    @property
    def admitted_ids(self) -> set[str]:
        """Ids of the queries currently registered."""
        return set(self.catalog.queries)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def queue_length(self, op_id: str) -> int:
        """Total queued tuples across an operator's inputs."""
        return self._queued.get(op_id, 0)

    def total_queued(self) -> int:
        """Tuples waiting anywhere in the network."""
        return sum(self._queued.values())

    def run(self, ticks: int) -> None:
        """Execute *ticks* budget-bounded ticks."""
        for _ in range(ticks):
            self._execute_tick()

    def _execute_tick(self) -> None:
        if self._counts:
            self._execute_tick_counts()
            return
        self._tick += 1
        self.ticks_run += 1
        self._birth_memo.clear()
        # 1. Source arrivals enter the queues of consuming operators.
        # Every source emits (emission advances its state) even when
        # nothing currently consumes it.
        queued = self._queued
        nonempty = self._nonempty
        for name, source in self._sources.items():
            tuples = source.emit(self._tick)
            if not tuples:
                continue
            for op in self._stream_consumers.get(name, ()):
                queue = self._queues[op.op_id][name]
                for t in tuples:
                    queue.append((self._tick, t))
                queued[op.op_id] += len(tuples)
                nonempty.add(op.op_id)

        # 2. Spend the work budget according to the policy.  Multiple
        # passes let downstream operators consume what upstream ones
        # emitted this same tick, until the budget or the queues run
        # out.
        budget = self.capacity
        progressed = True
        # Fifo keeps the offered (topological) order untouched, so the
        # per-pass queue-length snapshot it ignores is skipped.
        fifo = type(self.policy) is FifoPolicy
        while budget > 1e-12 and progressed and nonempty:
            progressed = False
            operators = [op for op in self._order
                         if op.op_id in nonempty]
            if fifo:
                ordered = operators
            else:
                queue_lengths = {op.op_id: queued[op.op_id]
                                 for op in operators}
                ordered = self.policy.order(operators, queue_lengths)
            for op in ordered:
                if budget <= 1e-12:
                    break
                consumed, emitted = self._run_operator(op, budget)
                if consumed:
                    progressed = True
                    budget -= consumed * op.cost_per_tuple
                    self.work_done += consumed * op.cost_per_tuple
                    self._route(op, emitted)

    def _run_operator(
        self, op: StreamOperator, budget: float
    ) -> tuple[int, list[StreamTuple]]:
        """Drain as much of *op*'s queues as the budget allows."""
        op_id = op.op_id
        if op.cost_per_tuple <= 0:
            affordable = self._queued.get(op_id, 0)
        else:
            affordable = int(budget / op.cost_per_tuple)
        if affordable <= 0:
            return 0, []
        queues = self._queues[op_id]
        if len(queues) == 1 and type(op).execute is StreamOperator.execute:
            # Single-input operator (the dominant shape) with the stock
            # execute: drain the one queue straight into a batch, no
            # per-input dict.  Subclasses overriding ``execute`` keep
            # the reference path.
            name, queue = next(iter(queues.items()))
            take = min(len(queue), affordable)
            if take == 0:
                return 0, []
            if take == len(queue):
                # Full drain — the common under-load case.
                batch = [t for _arrival, t in queue]
                queue.clear()
            else:
                popleft = queue.popleft
                batch = [popleft()[1] for _ in range(take)]
            remaining = self._queued[op_id] - take
            self._queued[op_id] = remaining
            if not remaining:
                self._nonempty.discard(op_id)
            return take, op.execute_drained(batch)
        batches: dict[str, list[StreamTuple]] = {}
        consumed = 0
        for name, queue in queues.items():
            take = min(len(queue), affordable - consumed)
            if take == len(queue):
                batch = [t for _arrival, t in queue]
                queue.clear()
            else:
                batch = []
                for _ in range(take):
                    _arrival, t = queue.popleft()
                    batch.append(t)
            batches[name] = batch
            consumed += take
            if consumed >= affordable:
                break
        if consumed == 0:
            return 0, []
        self._queued[op_id] -= consumed
        if not self._queued[op_id]:
            self._nonempty.discard(op_id)
        emitted = op.execute(batches)
        return consumed, emitted

    def _execute_tick_counts(self) -> None:
        """One budget-bounded tick over run-length queues.

        Mirrors :meth:`_execute_tick` exactly — same budget maths,
        same policy ordering, same latency sequence — but tracks
        ``[birth tick, count]`` runs instead of tuples.
        """
        self._tick += 1
        self.ticks_run += 1
        tick = self._tick
        queued = self._queued
        nonempty = self._nonempty
        fifo = type(self.policy) is FifoPolicy
        if fifo and not nonempty:
            self._tick_counts_fresh(tick)
            return
        for name, source in self._sources.items():
            n = source.emit_count(tick)
            if n is None:
                n = len(source.emit(tick))
            if not n:
                continue
            for op in self._stream_consumers.get(name, ()):
                self._run_queues[op.op_id].append([tick, n])
                queued[op.op_id] += n
                nonempty.add(op.op_id)

        budget = self.capacity
        if fifo:
            # Count mode only runs on source-fed passthroughs feeding
            # sinks (the _counts_supported contract), so draining one
            # operator never refills another's queue, and an operator
            # its pass left partially drained ended it with budget
            # remainder below its own per-tuple cost — the budget only
            # shrinks after that, so a second pass can never consume
            # anything.  The reference multi-pass loop would only
            # rediscover that at ~2x the drain calls; one pass is
            # observation-equivalent.  Stateful policies keep the
            # reference loop below: their per-pass ``order`` calls
            # advance cursors, which *is* observable on later ticks.
            if budget > 1e-12 and nonempty:
                # Inlined _drain_counts (same arithmetic, same order):
                # on a deep backlog this runs tens of times per tick,
                # and the call frame plus per-call attribute lookups
                # are the dominant cost of the drain itself.
                run_queues = self._run_queues
                sinks = self._sinks
                latency_map = self.latency
                samples = self.latency_samples
                for op in [op for op in self._order
                           if op.op_id in nonempty]:
                    if budget <= 1e-12:
                        break
                    op_id = op.op_id
                    backlog = queued[op_id]
                    cost = op.cost_per_tuple
                    affordable = (backlog if cost <= 0
                                  else int(budget / cost))
                    if affordable <= 0 or not backlog:
                        continue
                    take = (backlog if backlog <= affordable
                            else affordable)
                    runs = run_queues[op_id]
                    remaining = take
                    lat_sum = 0
                    lat_max = 0
                    segments: list[tuple[int, int]] = []
                    while remaining:
                        head = runs[0]
                        birth, count = head
                        use = count if count <= remaining else remaining
                        if use == count:
                            runs.popleft()
                        else:
                            head[1] = count - use
                        latency = tick - birth
                        lat_sum += latency * use
                        if latency > lat_max:
                            lat_max = latency
                        segments.append((latency, use))
                        remaining -= use
                    queued[op_id] = backlog - take
                    if backlog == take:
                        nonempty.discard(op_id)
                    op.processed_tuples += take
                    op.emitted_tuples += take
                    for query_id in sinks.get(op_id, ()):
                        stats = latency_map[query_id]
                        stats.total += lat_sum
                        stats.count += take
                        if lat_max > stats.maximum:
                            stats.maximum = lat_max
                        self.delivered_count += take
                        self.delivered_latency += lat_sum
                        if samples is not None:
                            for latency, use in segments:
                                samples.extend(repeat(latency, use))
                    budget -= take * cost
                    self.work_done += take * cost
            return
        progressed = True
        while budget > 1e-12 and progressed and nonempty:
            progressed = False
            operators = [op for op in self._order
                         if op.op_id in nonempty]
            queue_lengths = {op.op_id: queued[op.op_id]
                             for op in operators}
            ordered = self.policy.order(operators, queue_lengths)
            for op in ordered:
                if budget <= 1e-12:
                    break
                consumed = self._drain_counts(op, budget)
                if consumed:
                    progressed = True
                    budget -= consumed * op.cost_per_tuple
                    self.work_done += consumed * op.cost_per_tuple

    def _tick_counts_fresh(self, tick: int) -> None:
        """One fifo count-mode tick starting from all-empty queues.

        The common under-load tick: nothing was carried over, so every
        tuple drained this tick was also born this tick — latency is
        zero by construction and the run queues never need touching
        unless the budget leaves a remainder.  The budget walk below
        runs the exact float sequence of :meth:`_drain_counts` over
        the same operator order, so counters, latency stats and
        ``work_done`` come out bitwise identical to the general path.
        """
        fresh: dict[str, int] = {}
        for name, source in self._sources.items():
            n = source.emit_count(tick)
            if n is None:
                n = len(source.emit(tick))
            if not n:
                continue
            for op in self._stream_consumers.get(name, ()):
                op_id = op.op_id
                fresh[op_id] = fresh.get(op_id, 0) + n
        if not fresh:
            return
        queued = self._queued
        nonempty = self._nonempty
        run_queues = self._run_queues
        sinks = self._sinks
        latency = self.latency
        samples = self.latency_samples
        budget = self.capacity
        for op in self._order:
            op_id = op.op_id
            count = fresh.get(op_id)
            if count is None:
                continue
            cost = op.cost_per_tuple
            if budget <= 1e-12:
                take = 0
            else:
                affordable = count if cost <= 0 else int(budget / cost)
                take = count if count <= affordable else affordable
            left = count - take
            if left:
                run_queues[op_id].append([tick, left])
                queued[op_id] += left
                nonempty.add(op_id)
            if not take:
                continue
            op.processed_tuples += take
            op.emitted_tuples += take
            for query_id in sinks.get(op_id, ()):
                # latency == 0 for every delivered tuple: the float
                # accumulators are unchanged bitwise by adding 0.0, so
                # only the counts move.
                latency[query_id].count += take
                self.delivered_count += take
                if samples is not None:
                    samples.extend(repeat(0, take))
            budget -= take * cost
            self.work_done += take * cost

    def _drain_counts(self, op: StreamOperator, budget: float) -> int:
        """Drain runs under the budget; deliver latencies to sinks."""
        op_id = op.op_id
        queued = self._queued.get(op_id, 0)
        if op.cost_per_tuple <= 0:
            affordable = queued
        else:
            affordable = int(budget / op.cost_per_tuple)
        if affordable <= 0 or not queued:
            return 0
        take = queued if queued <= affordable else affordable
        runs = self._run_queues[op_id]
        tick = self._tick
        remaining = take
        lat_sum = 0
        lat_max = 0
        segments: list[tuple[int, int]] = []
        while remaining:
            head = runs[0]
            birth, count = head
            use = count if count <= remaining else remaining
            if use == count:
                runs.popleft()
            else:
                head[1] = count - use
            latency = tick - birth
            lat_sum += latency * use
            if latency > lat_max:
                lat_max = latency
            segments.append((latency, use))
            remaining -= use
        self._queued[op_id] = queued - take
        if queued == take:
            self._nonempty.discard(op_id)
        op.processed_tuples += take
        op.emitted_tuples += take
        samples = self.latency_samples
        for query_id in self._sinks.get(op_id, ()):
            stats = self.latency[query_id]
            stats.total += lat_sum
            stats.count += take
            if lat_max > stats.maximum:
                stats.maximum = lat_max
            self.delivered_count += take
            self.delivered_latency += lat_sum
            if samples is not None:
                for latency, use in segments:
                    samples.extend(repeat(latency, use))
        return take

    def _birth_tick(self, t: StreamTuple) -> int:
        """Earliest source tick in *t*'s provenance (this tick when
        the tuple carries no source origin)."""
        # Memoized on the ``stream@tick`` prefix: every tuple born the
        # same tick from the same stream shares one entry, whereas the
        # full origin string is unique per tuple.
        memo = self._birth_memo
        birth: "int | None" = None
        for origin in t.origin:
            head = origin.partition("#")[0]
            parsed = memo.get(head)
            if parsed is None:
                if "@" not in head:
                    continue
                parsed = int(head.partition("@")[2])
                memo[head] = parsed
            if birth is None or parsed < birth:
                birth = parsed
        return self._tick if birth is None else birth

    def _route(self, op: StreamOperator,
               emitted: list[StreamTuple]) -> None:
        """Deliver an operator's output to consumers and sinks."""
        if not emitted:
            return
        tick = self._tick
        count = len(emitted)
        for downstream in self._consumers.get(op.op_id, ()):
            queue = self._queues[downstream.op_id][op.op_id]
            queue.extend((tick, t) for t in emitted)
            self._queued[downstream.op_id] += count
            self._nonempty.add(downstream.op_id)
        sinks = self._sinks.get(op.op_id)
        if not sinks:
            return
        birth = self._birth_tick
        latencies = [tick - birth(t) for t in emitted]
        # Latencies are small ints, so the batched sum/max updates stay
        # exact (no float rounding) — identical to per-item record().
        lat_sum = sum(latencies)
        lat_max = max(latencies)
        samples = self.latency_samples
        keep_results = self._keep_results
        for query_id in sinks:
            stats = self.latency[query_id]
            if keep_results:
                self.results[query_id].extend(emitted)
            stats.total += lat_sum
            stats.count += count
            if lat_max > stats.maximum:
                stats.maximum = lat_max
            self.delivered_count += count
            self.delivered_latency += lat_sum
            if samples is not None:
                samples.extend(latencies)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def mean_work_per_tick(self) -> float:
        """Average work actually executed per tick."""
        return self.work_done / self.ticks_run if self.ticks_run else 0.0

    def mean_latency(self, query_id: str) -> float:
        """Mean delivery latency of *query_id*'s results, in ticks."""
        return self.latency[query_id].mean
