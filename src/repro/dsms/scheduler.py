"""Operator scheduling under a per-tick work budget.

The base :class:`~repro.dsms.engine.StreamEngine` executes every
operator fully each tick — fine when the admission auction keeps
aggregate load within capacity, but the Aurora-style systems the paper
builds on (and cites: Sharaf et al.'s operator-scheduling metrics)
process tuples through *bounded* CPU with queues between operators.
:class:`ScheduledEngine` models exactly that:

* each operator owns an input **queue** per input;
* each tick has a **work budget** (the capacity); a pluggable
  :class:`SchedulingPolicy` decides which operator runs next and how
  many queued tuples it may consume;
* unconsumed tuples wait — queue lengths and **tuple latency** (ticks
  from source arrival to sink emission) become measurable.

This gives the library the back-pressure story behind the paper's
admission control: an over-admitted system doesn't crash, it builds
queues and latency without bound — which is why you price admission in
the first place (``tests/dsms/test_scheduler.py`` demonstrates both
regimes).

Policies are *spec-string addressable* through the shared registry
grammar (``"fifo"``, ``"round-robin"``, ``"longest-queue-first"``,
``"cheapest-first"``), the currency of
:meth:`~repro.service.builder.ServiceBuilder.with_scheduler` and the
CLI's ``--scheduler`` flag — direct construction keeps working, but is
no longer the only way in.
"""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass
from collections.abc import Callable, Iterable, Mapping, Sequence

from repro.dsms.operators import StreamOperator
from repro.dsms.plan import ContinuousQuery, QueryPlanCatalog
from repro.dsms.streams import StreamSource
from repro.dsms.tuples import StreamTuple
from repro.utils.registry import RegistrySpec, SpecRegistry
from repro.utils.validation import ValidationError, require


class SchedulingPolicy(abc.ABC):
    """Orders the runnable operators within a tick."""

    name = "policy"

    @abc.abstractmethod
    def order(
        self,
        operators: Sequence[StreamOperator],
        queue_lengths: dict[str, int],
    ) -> list[StreamOperator]:
        """Operators in the order they should be offered work."""


class FifoPolicy(SchedulingPolicy):
    """Keeps the topological (pipeline) order the engine offers.

    Upstream operators are served before their consumers, so tuples
    flow through the network in arrival order — the first-in-first-out
    baseline of the operator-scheduling literature.
    """

    name = "fifo"

    def order(self, operators, queue_lengths):
        return list(operators)


class RoundRobinPolicy(SchedulingPolicy):
    """Cycles through the operators, rotating the head each tick."""

    name = "round-robin"

    def __init__(self) -> None:
        self._offset = 0

    def order(self, operators, queue_lengths):
        if not operators:
            return []
        rotation = self._offset % len(operators)
        self._offset += 1
        return list(operators[rotation:]) + list(operators[:rotation])


class LongestQueueFirstPolicy(SchedulingPolicy):
    """Serves the operator with the most queued input first."""

    name = "longest-queue-first"

    def order(self, operators, queue_lengths):
        return sorted(
            operators,
            key=lambda op: (-queue_lengths.get(op.op_id, 0), op.op_id))


class CheapestFirstPolicy(SchedulingPolicy):
    """Serves cheap operators first (max tuples drained per unit work,
    the throughput-greedy policy)."""

    name = "cheapest-first"

    def order(self, operators, queue_lengths):
        return sorted(operators,
                      key=lambda op: (op.cost_per_tuple, op.op_id))


# ----------------------------------------------------------------------
# Registry and specs (mirrors repro.dsms.backend)
# ----------------------------------------------------------------------

#: The scheduling-policy registry (shared machinery: utils.registry).
_REGISTRY = SpecRegistry("scheduling policy", param_noun="scheduling policy")


def register_policy(
    name: str, factory: Callable[..., SchedulingPolicy]
) -> None:
    """Register a policy *factory* under *name* (case-insensitive)."""
    _REGISTRY.register(name, factory)


def make_policy(name: str, **kwargs: object) -> SchedulingPolicy:
    """Instantiate a registered policy by name, validating kwargs."""
    return _REGISTRY.create(name, **kwargs)


def registered_policies() -> Mapping[str, Callable[..., SchedulingPolicy]]:
    """Read-only view of the registry (name → factory)."""
    return _REGISTRY.as_mapping()


@dataclass(frozen=True)
class PolicySpec(RegistrySpec):
    """A scheduling-policy name plus declared, validated parameters.

    Parseable from the same compact strings every other registry in
    the library uses (shared machinery:
    :class:`~repro.utils.registry.RegistrySpec`):

    >>> PolicySpec.parse("round-robin")
    PolicySpec(name='round-robin', params={})
    """

    _registry = _REGISTRY
    _what = "scheduler spec"


def resolve_policy(
    policy: "SchedulingPolicy | PolicySpec | str",
) -> SchedulingPolicy:
    """Coerce any accepted policy form to a live instance.

    Accepts a live :class:`SchedulingPolicy`, a :class:`PolicySpec`,
    or a spec string like ``"fifo"`` / ``"round-robin"``.  Specs and
    strings produce a fresh instance per resolve (policies may hold
    per-engine cursor state).
    """
    if isinstance(policy, SchedulingPolicy):
        return policy
    if isinstance(policy, PolicySpec):
        return policy.create()
    if isinstance(policy, str):
        return PolicySpec.parse(policy).create()
    raise ValidationError(
        f"cannot resolve a scheduling policy from {policy!r}; pass a "
        f"SchedulingPolicy, a PolicySpec, or a spec string like "
        f"'fifo' or 'round-robin'")


register_policy("fifo", FifoPolicy)
register_policy("round-robin", RoundRobinPolicy)
register_policy("longest-queue-first", LongestQueueFirstPolicy)
register_policy("cheapest-first", CheapestFirstPolicy)


@dataclass
class LatencyStats:
    """Accumulated sink-delivery latency in ticks."""

    total: float = 0.0
    count: int = 0
    maximum: int = 0

    def record(self, latency: int) -> None:
        self.total += latency
        self.count += 1
        self.maximum = max(self.maximum, latency)

    @property
    def mean(self) -> float:
        """Mean latency (0 when nothing was delivered)."""
        return self.total / self.count if self.count else 0.0


class ScheduledEngine:
    """A bounded-work engine with per-operator input queues."""

    def __init__(
        self,
        sources: Iterable[StreamSource],
        capacity: float,
        policy: "SchedulingPolicy | PolicySpec | str | None" = None,
        keep_latency_samples: bool = False,
    ) -> None:
        require(capacity > 0, "capacity must be positive")
        self._sources: dict[str, StreamSource] = {}
        for source in sources:
            if source.name in self._sources:
                raise ValidationError(
                    f"duplicate stream name {source.name!r}")
            self._sources[source.name] = source
        self.capacity = float(capacity)
        self.policy = (RoundRobinPolicy() if policy is None
                       else resolve_policy(policy))
        self.catalog = QueryPlanCatalog()
        self.results: dict[str, list[StreamTuple]] = {}
        self.latency: dict[str, LatencyStats] = {}
        #: Raw per-delivery latencies (ticks), kept only on request —
        #: the SLA percentiles of the open-system simulation need the
        #: distribution, not just the running mean.
        self.latency_samples: "list[int] | None" = (
            [] if keep_latency_samples else None)
        # op id -> input name -> queue of (arrival tick, tuple)
        self._queues: dict[str, dict[str, deque]] = {}
        self._tick = 0
        self.work_done = 0.0
        self.ticks_run = 0

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def admit(self, query: ContinuousQuery) -> None:
        """Register *query* and allocate queues for its operators."""
        self.catalog.add(query)
        missing = self.catalog.stream_names() - set(self._sources)
        if missing:
            self.catalog.remove(query.query_id)
            raise ValidationError(
                f"query {query.query_id!r} references unknown "
                f"streams {sorted(missing)}")
        self.results.setdefault(query.query_id, [])
        self.latency.setdefault(query.query_id, LatencyStats())
        for op in self.catalog.operators.values():
            queues = self._queues.setdefault(op.op_id, {})
            for name in op.inputs:
                queues.setdefault(name, deque())

    def remove(self, query_id: str) -> ContinuousQuery:
        """Deregister *query_id*; orphaned operators drop their queues.

        Tuples queued for operators still shared with other queries
        stay queued; queues of operators no query references anymore
        are discarded with their contents (the subscription expired —
        nobody is paying for those results).
        """
        query = self.catalog.remove(query_id)
        for op_id in list(self._queues):
            if op_id not in self.catalog.operators:
                del self._queues[op_id]
        return query

    @property
    def admitted_ids(self) -> set[str]:
        """Ids of the queries currently registered."""
        return set(self.catalog.queries)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def queue_length(self, op_id: str) -> int:
        """Total queued tuples across an operator's inputs."""
        return sum(len(q) for q in self._queues.get(op_id, {}).values())

    def total_queued(self) -> int:
        """Tuples waiting anywhere in the network."""
        return sum(self.queue_length(op_id) for op_id in self._queues)

    def run(self, ticks: int) -> None:
        """Execute *ticks* budget-bounded ticks."""
        for _ in range(ticks):
            self._execute_tick()

    def _execute_tick(self) -> None:
        self._tick += 1
        self.ticks_run += 1
        # 1. Source arrivals enter the queues of consuming operators.
        arrivals = {name: source.emit(self._tick)
                    for name, source in self._sources.items()}
        for op in self.catalog.operators.values():
            for name in op.inputs:
                if name in arrivals:
                    queue = self._queues[op.op_id][name]
                    for t in arrivals[name]:
                        queue.append((self._tick, t))

        # 2. Spend the work budget according to the policy.  Multiple
        # passes let downstream operators consume what upstream ones
        # emitted this same tick, until the budget or the queues run
        # out.
        budget = self.capacity
        progressed = True
        while budget > 1e-12 and progressed:
            progressed = False
            operators = [op for op in self.catalog.topological_order()
                         if self.queue_length(op.op_id) > 0]
            queue_lengths = {op.op_id: self.queue_length(op.op_id)
                             for op in operators}
            for op in self.policy.order(operators, queue_lengths):
                if budget <= 1e-12:
                    break
                consumed, emitted = self._run_operator(op, budget)
                if consumed:
                    progressed = True
                    budget -= consumed * op.cost_per_tuple
                    self.work_done += consumed * op.cost_per_tuple
                    self._route(op, emitted)

    def _run_operator(
        self, op: StreamOperator, budget: float
    ) -> tuple[int, list[StreamTuple]]:
        """Drain as much of *op*'s queues as the budget allows."""
        if op.cost_per_tuple <= 0:
            affordable = self.queue_length(op.op_id)
        else:
            affordable = int(budget / op.cost_per_tuple)
        if affordable <= 0:
            return 0, []
        batches: dict[str, list[StreamTuple]] = {}
        consumed = 0
        for name, queue in self._queues[op.op_id].items():
            take = min(len(queue), affordable - consumed)
            batch = []
            for _ in range(take):
                _arrival, t = queue.popleft()
                batch.append(t)
            batches[name] = batch
            consumed += take
            if consumed >= affordable:
                break
        if consumed == 0:
            return 0, []
        emitted = op.execute(batches)
        return consumed, emitted

    def _route(self, op: StreamOperator,
               emitted: list[StreamTuple]) -> None:
        """Deliver an operator's output to consumers and sinks."""
        if not emitted:
            return
        for downstream in self.catalog.operators.values():
            if op.op_id in downstream.inputs:
                queue = self._queues[downstream.op_id][op.op_id]
                for t in emitted:
                    queue.append((self._tick, t))
        for query_id, query in self.catalog.queries.items():
            if query.sink_id == op.op_id:
                stats = self.latency[query_id]
                for t in emitted:
                    self.results[query_id].append(t)
                    birth = min(
                        (int(origin.split("@")[1].split("#")[0])
                         for origin in t.origin
                         if "@" in origin),
                        default=self._tick)
                    stats.record(self._tick - birth)
                    if self.latency_samples is not None:
                        self.latency_samples.append(self._tick - birth)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def mean_work_per_tick(self) -> float:
        """Average work actually executed per tick."""
        return self.work_done / self.ticks_run if self.ticks_run else 0.0

    def mean_latency(self, query_id: str) -> float:
        """Mean delivery latency of *query_id*'s results, in ticks."""
        return self.latency[query_id].mean
