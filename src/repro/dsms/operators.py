"""Runtime stream operators (the Aurora-style boxes of Section II).

Each operator consumes per-tick batches from its inputs (stream names
or upstream operator ids) and produces an output batch.  Operators
carry a ``cost_per_tuple`` — the work units spent per *input* tuple —
from which the engine measures load; selective operators additionally
expose an analytic ``selectivity`` estimate so query loads can be
predicted before admission (the paper assumes loads "can at least be
reasonably approximated by the system").

The paper's Example 1 maps directly: two :class:`SelectOperator` boxes
over a quote stream and a news stream, joined by a
:class:`JoinOperator` on the company attribute.
"""

from __future__ import annotations

import abc
from collections.abc import Callable, Mapping, Sequence

from repro.dsms.tuples import StreamTuple
from repro.utils.validation import require, require_non_negative, require_positive

#: Per-tick input batches, keyed by input name (stream or operator id).
Batches = Mapping[str, Sequence[StreamTuple]]


class StreamOperator(abc.ABC):
    """Base class for runtime operators.

    ``inputs`` are the names this operator reads (stream names or
    upstream operator ids).  The engine executes each distinct operator
    **once** per tick, no matter how many queries contain it — that is
    the shared processing the admission mechanisms exploit.
    """

    def __init__(
        self,
        op_id: str,
        inputs: Sequence[str],
        cost_per_tuple: float = 1.0,
        share_key: object = None,
    ) -> None:
        require(bool(op_id), "operator id must be non-empty")
        require(len(inputs) >= 1, f"operator {op_id!r} needs an input")
        require_non_negative(cost_per_tuple,
                             f"cost_per_tuple of {op_id!r}")
        self.op_id = op_id
        self.inputs = tuple(inputs)
        self.cost_per_tuple = float(cost_per_tuple)
        #: Parameter fingerprint for common-subexpression detection
        #: (:mod:`repro.dsms.sharing_detector`).  Two operators of the
        #: same type, inputs and cost share iff their keys are equal;
        #: ``None`` (the default) marks the operator as private.
        self.share_key = share_key
        self.processed_tuples = 0
        self.emitted_tuples = 0

    def _consumed(self, batches: Batches) -> int:
        inputs = self.inputs
        if len(inputs) == 1:
            return len(batches.get(inputs[0], ()))
        return sum(len(batches.get(name, ())) for name in inputs)

    def execute(self, batches: Batches) -> list[StreamTuple]:
        """Process this tick's input batches; returns the output batch."""
        consumed = self._consumed(batches)
        output = self._process(batches)
        self.processed_tuples += consumed
        self.emitted_tuples += len(output)
        return output

    def work(self, batches: Batches) -> float:
        """Work units this tick's input would cost (before execute)."""
        return self._consumed(batches) * self.cost_per_tuple

    def execute_drained(self, batch: Sequence[StreamTuple]) -> list[StreamTuple]:
        """Single-input fast path: like :meth:`execute`, but the caller
        already drained our only input into *batch* (no per-input dict).
        Callers must only use this on operators with one input."""
        output = self._process({self.inputs[0]: batch})
        self.processed_tuples += len(batch)
        self.emitted_tuples += len(output)
        return output

    @abc.abstractmethod
    def _process(self, batches: Batches) -> list[StreamTuple]:
        """Operator semantics (subclass hook)."""

    def selectivity(self) -> float:
        """Analytic output/input rate ratio estimate (default 1)."""
        return 1.0

    def reset(self) -> None:
        """Clear operator state (windows, buffers) and counters."""
        self.processed_tuples = 0
        self.emitted_tuples = 0

    def pending_tuples(self) -> int:
        """Tuples buffered inside the operator (windows/join state)."""
        return 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.op_id!r}>"


class SelectOperator(StreamOperator):
    """Filter: emits input tuples satisfying ``predicate``."""

    def __init__(
        self,
        op_id: str,
        input_name: str,
        predicate: Callable[[StreamTuple], bool],
        cost_per_tuple: float = 1.0,
        selectivity_estimate: float = 0.5,
        share_key: object = None,
    ) -> None:
        super().__init__(op_id, [input_name], cost_per_tuple,
                         share_key=share_key)
        self._predicate = predicate
        # Predicates marked constant-true (``selects_all``) skip the
        # per-tuple call — the dominant select shape of the synthetic
        # open-system workloads.
        self._passthrough = bool(getattr(predicate, "selects_all", False))
        self._selectivity = float(selectivity_estimate)

    def _process(self, batches: Batches) -> list[StreamTuple]:
        batch = batches.get(self.inputs[0], ())
        if self._passthrough:
            return list(batch)
        return [t for t in batch if self._predicate(t)]

    def execute_drained(self, batch: Sequence[StreamTuple]) -> list[StreamTuple]:
        n = len(batch)
        if self._passthrough:
            # The caller hands over a fresh list it no longer owns, so
            # the passthrough can return it without copying.
            output = batch if isinstance(batch, list) else list(batch)
        else:
            output = [t for t in batch if self._predicate(t)]
        self.processed_tuples += n
        self.emitted_tuples += len(output)
        return output

    def selectivity(self) -> float:
        return self._selectivity


class ProjectOperator(StreamOperator):
    """Projection: keeps only the named payload attributes."""

    def __init__(
        self,
        op_id: str,
        input_name: str,
        attributes: Sequence[str],
        cost_per_tuple: float = 0.2,
    ) -> None:
        # A projection is fully determined by its attribute list, so it
        # is always shareable.
        super().__init__(op_id, [input_name], cost_per_tuple,
                         share_key=("project", tuple(attributes)))
        self._attributes = tuple(attributes)

    def _process(self, batches: Batches) -> list[StreamTuple]:
        output = []
        for t in batches.get(self.inputs[0], ()):
            payload = {a: t.payload[a] for a in self._attributes
                       if a in t.payload}
            output.append(t.derive(payload=payload))
        return output


class MapOperator(StreamOperator):
    """Per-tuple transformation of the payload."""

    def __init__(
        self,
        op_id: str,
        input_name: str,
        transform: Callable[[Mapping[str, object]], Mapping[str, object]],
        cost_per_tuple: float = 0.5,
        share_key: object = None,
    ) -> None:
        super().__init__(op_id, [input_name], cost_per_tuple,
                         share_key=share_key)
        self._transform = transform

    def _process(self, batches: Batches) -> list[StreamTuple]:
        return [t.derive(payload=dict(self._transform(t.payload)))
                for t in batches.get(self.inputs[0], ())]


class JoinOperator(StreamOperator):
    """Symmetric hash join over sliding tick windows.

    Tuples from each side are kept for ``window`` ticks; a new tuple
    joins against the other side's current window on equal join keys.
    """

    def __init__(
        self,
        op_id: str,
        left_input: str,
        right_input: str,
        left_key: Callable[[StreamTuple], object],
        right_key: Callable[[StreamTuple], object],
        window: int = 5,
        cost_per_tuple: float = 3.0,
        selectivity_estimate: float = 0.3,
        share_key: object = None,
    ) -> None:
        super().__init__(op_id, [left_input, right_input], cost_per_tuple,
                         share_key=(None if share_key is None
                                    else (share_key, window)))
        require_positive(window, f"window of join {op_id!r}")
        self._left_key = left_key
        self._right_key = right_key
        self._window = int(window)
        self._left_buffer: list[StreamTuple] = []
        self._right_buffer: list[StreamTuple] = []
        self._selectivity = float(selectivity_estimate)

    def _expire(self, buffer: list[StreamTuple], tick: int) -> None:
        buffer[:] = [t for t in buffer if tick - t.tick < self._window]

    def _process(self, batches: Batches) -> list[StreamTuple]:
        left_new = list(batches.get(self.inputs[0], ()))
        right_new = list(batches.get(self.inputs[1], ()))
        tick = max(
            (t.tick for t in left_new + right_new),
            default=max((t.tick for t in
                         self._left_buffer + self._right_buffer),
                        default=0),
        )
        self._expire(self._left_buffer, tick)
        self._expire(self._right_buffer, tick)
        output: list[StreamTuple] = []

        right_index: dict[object, list[StreamTuple]] = {}
        for t in self._right_buffer + right_new:
            right_index.setdefault(self._right_key(t), []).append(t)
        for left in left_new:
            for right in right_index.get(self._left_key(left), ()):
                payload = {**right.payload, **left.payload}
                output.append(StreamTuple(
                    stream=self.op_id, tick=tick, payload=payload,
                    origin=left.origin + right.origin))
        left_index: dict[object, list[StreamTuple]] = {}
        for t in self._left_buffer:  # old left vs new right only
            left_index.setdefault(self._left_key(t), []).append(t)
        for right in right_new:
            for left in left_index.get(self._right_key(right), ()):
                payload = {**right.payload, **left.payload}
                output.append(StreamTuple(
                    stream=self.op_id, tick=tick, payload=payload,
                    origin=left.origin + right.origin))

        self._left_buffer.extend(left_new)
        self._right_buffer.extend(right_new)
        return output

    def selectivity(self) -> float:
        return self._selectivity

    def reset(self) -> None:
        super().reset()
        self._left_buffer.clear()
        self._right_buffer.clear()

    def pending_tuples(self) -> int:
        return len(self._left_buffer) + len(self._right_buffer)


class AggregateOperator(StreamOperator):
    """Tumbling-window aggregate, optionally grouped.

    Buffers ``window`` ticks of input, then emits one tuple per group
    with ``aggregate(values)`` applied to the ``attribute`` values.
    """

    def __init__(
        self,
        op_id: str,
        input_name: str,
        attribute: str,
        aggregate: Callable[[list[object]], object],
        window: int = 5,
        group_by: "Callable[[StreamTuple], object] | None" = None,
        cost_per_tuple: float = 1.5,
        share_key: object = None,
    ) -> None:
        super().__init__(op_id, [input_name], cost_per_tuple,
                         share_key=(None if share_key is None
                                    else (share_key, window, attribute)))
        require_positive(window, f"window of aggregate {op_id!r}")
        self._attribute = attribute
        self._aggregate = aggregate
        self._window = int(window)
        self._group_by = group_by
        self._buffer: list[StreamTuple] = []
        self._window_start: int | None = None

    def _process(self, batches: Batches) -> list[StreamTuple]:
        incoming = list(batches.get(self.inputs[0], ()))
        if incoming and self._window_start is None:
            self._window_start = min(t.tick for t in incoming)
        self._buffer.extend(incoming)
        if self._window_start is None:
            return []
        current_tick = max((t.tick for t in incoming),
                           default=self._window_start)
        if current_tick - self._window_start + 1 < self._window:
            return []
        return self._emit(current_tick, partial=False)

    def _emit(self, tick: int, partial: bool) -> list[StreamTuple]:
        """Group and emit the buffered window, then clear it.

        The single source of truth for aggregate output shape — both
        the window-close path and the drain-phase partial flush go
        through here (the columnar kernel mirrors it).
        """
        groups: dict[object, list[StreamTuple]] = {}
        for t in self._buffer:
            key = self._group_by(t) if self._group_by else None
            groups.setdefault(key, []).append(t)
        output = []
        for key, members in groups.items():
            values = [t.value(self._attribute) for t in members]
            payload: dict[str, object] = {
                "group": key,
                "value": self._aggregate(values),
                "count": len(members),
            }
            if partial:
                payload["partial"] = True
            origin = tuple(o for t in members for o in t.origin)
            output.append(StreamTuple(
                stream=self.op_id, tick=tick, payload=payload,
                origin=origin))
        self._buffer.clear()
        self._window_start = None
        return output

    def flush_partial(self) -> list[StreamTuple]:
        """Force a partial-window emission of the buffered tuples.

        The transition phase drains in-flight state through here: the
        buffered groups are emitted exactly as a window close would
        emit them, except the payload is marked ``"partial": True``.
        The window buffer is cleared; returns the emitted batch (empty
        when nothing was buffered).
        """
        if not self._buffer:
            return []
        tick = max(t.tick for t in self._buffer)
        return self._emit(tick, partial=True)

    def selectivity(self) -> float:
        # One output per window per group; approximate with 1/window.
        return 1.0 / self._window

    def reset(self) -> None:
        super().reset()
        self._buffer.clear()
        self._window_start = None

    def pending_tuples(self) -> int:
        return len(self._buffer)


class UnionOperator(StreamOperator):
    """Merge: forwards the tuples of all inputs."""

    def __init__(
        self,
        op_id: str,
        inputs: Sequence[str],
        cost_per_tuple: float = 0.1,
    ) -> None:
        super().__init__(op_id, inputs, cost_per_tuple)

    def _process(self, batches: Batches) -> list[StreamTuple]:
        output: list[StreamTuple] = []
        for name in self.inputs:
            output.extend(batches.get(name, ()))
        return output
