"""The stream engine: shared execution, connection points, transition.

A discrete-tick simulator of the paper's Aurora-style query network
(Section II).  Each tick:

1. every source emits its arrivals;
2. operators execute **once each** in topological order, regardless of
   how many admitted queries share them (this is the shared processing
   that the admission mechanisms price);
3. each query's sink output is appended to its result log;
4. per-operator work (input tuples × cost) is metered for load
   measurement.

The **transition phase** (end-of-subscription-period replanning)
follows the paper: upstream *connection points* hold arriving tuples,
the in-flight tuples of the subnetworks being modified are drained
through their downstream connection points, the planner applies the
query changes, and the held tuples are input before newly arriving
ones — so continuing queries observe a gap-free stream.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.dsms.backend import BackendSpec, ExecutionBackend, resolve_backend
from repro.dsms.load import LoadMeter
from repro.dsms.metrics import EngineReport
from repro.dsms.operators import AggregateOperator
from repro.dsms.plan import ContinuousQuery, QueryPlanCatalog
from repro.dsms.streams import StreamSource
from repro.dsms.tuples import StreamTuple
from repro.utils.validation import ValidationError, require


class ConnectionPoint:
    """An ingress buffer that can hold tuples during a transition."""

    def __init__(self, stream_name: str) -> None:
        self.stream_name = stream_name
        self._held: list[StreamTuple] = []
        self.holding = False

    def accept(self, batch: Sequence[StreamTuple]) -> list[StreamTuple]:
        """Pass *batch* through, or buffer it while holding."""
        if self.holding:
            self._held.extend(batch)
            return []
        return list(batch)

    def release(self) -> list[StreamTuple]:
        """Stop holding and return everything buffered, in order."""
        self.holding = False
        held, self._held = self._held, []
        return held

    @property
    def held_count(self) -> int:
        """Number of tuples currently held."""
        return len(self._held)


class StreamEngine:
    """Executes admitted continuous queries over the sources.

    ``capacity`` (optional) is the work budget per tick in the same
    units the auction uses; the engine never refuses work — admission
    control is the auction's job — but it meters overload so tests can
    assert that admitted sets respect capacity on average.

    ``backend`` selects the execution backend (see
    :mod:`repro.dsms.backend`): a spec string (``"scalar"``,
    ``"columnar:batch=1024"``), a :class:`BackendSpec`, or a live
    :class:`ExecutionBackend` instance.  Connection points, the
    transition phase, and result delivery are backend-agnostic; only
    the operator execution itself is delegated.
    """

    def __init__(
        self,
        sources: Iterable[StreamSource],
        capacity: float | None = None,
        backend: "ExecutionBackend | BackendSpec | str" = "scalar",
    ) -> None:
        self._sources: dict[str, StreamSource] = {}
        for source in sources:
            if source.name in self._sources:
                raise ValidationError(
                    f"duplicate stream name {source.name!r}")
            self._sources[source.name] = source
        self.capacity = capacity
        self.backend = resolve_backend(backend)
        self.catalog = QueryPlanCatalog()
        self.meter = LoadMeter()
        self.report = EngineReport(capacity=capacity)
        self.results: dict[str, list[StreamTuple]] = {}
        self._connection_points = {
            name: ConnectionPoint(name) for name in self._sources}
        self._tick = 0
        self._in_transition = False

    def __setstate__(self, state: dict) -> None:
        # Checkpoints written before backends existed lack the
        # attribute; they resume on the scalar interpreter, which is
        # exactly how they were executing when saved.
        self.__dict__.update(state)
        if "backend" not in state:
            self.backend = resolve_backend("scalar")

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def validate_streams(self, query: ContinuousQuery) -> None:
        """Reject *query* if its plan reads streams this engine lacks.

        Checked before any state mutates, so callers (and the
        transition phase) can rely on a failed admission leaving the
        engine untouched.
        """
        known = (set(self._sources) | set(self.catalog.operators)
                 | set(query.operator_ids))
        missing = sorted({name for op in query.operators
                          for name in op.inputs if name not in known})
        if missing:
            raise ValidationError(
                f"query {query.query_id!r} references unknown "
                f"streams {missing}")

    def admit(self, query: ContinuousQuery) -> None:
        """Register *query* for execution (validates stream inputs)."""
        self.validate_streams(query)
        self.catalog.add(query)
        self.results.setdefault(query.query_id, [])

    def remove(self, query_id: str) -> ContinuousQuery:
        """Deregister a query (its result log is kept)."""
        return self.catalog.remove(query_id)

    @property
    def admitted_ids(self) -> set[str]:
        """Ids of the currently admitted queries."""
        return set(self.catalog.queries)

    @property
    def current_tick(self) -> int:
        """The index of the last executed tick."""
        return self._tick

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, ticks: int) -> EngineReport:
        """Execute *ticks* ticks; returns the cumulative report."""
        require(not self._in_transition,
                "cannot run while a transition is open")
        for _ in range(ticks):
            self._execute_tick()
        return self.report

    def _execute_tick(self) -> None:
        self._tick += 1
        arrivals: dict[str, list[StreamTuple]] = {}
        source_count = 0
        for name, source in self._sources.items():
            emitted = source.emit(self._tick)
            source_count += len(emitted)
            point = self._connection_points[name]
            arrivals[name] = point.accept(emitted)
        self._process(arrivals, source_count)

    def _process(
        self,
        arrivals: Mapping[str, list[StreamTuple]],
        source_count: int,
    ) -> None:
        generation = self.catalog.generation
        cache = getattr(self, "_sink_cache", None)
        if cache is None or cache[0] != generation:
            sink_ids = {query.sink_id
                        for query in self.catalog.iter_queries()}
            self._sink_cache = cache = (generation, sink_ids)
        sink_ids = cache[1]
        outputs, work_by_op = self.backend.run_operators(
            self.catalog.ordered_operators(), arrivals, sink_ids)
        self.meter.record_tick(work_by_op)
        delivered: dict[str, int] = {}
        for query in self.catalog.iter_queries():
            produced = outputs.get(query.sink_id, [])
            self.results[query.query_id].extend(produced)
            delivered[query.query_id] = len(produced)
        self.report.merge_tick(
            source_count, sum(work_by_op.values()), delivered)

    # ------------------------------------------------------------------
    # Transition phase (Section II)
    # ------------------------------------------------------------------

    def begin_transition(self) -> None:
        """Start holding arriving tuples at the connection points."""
        require(not self._in_transition, "transition already open")
        self._in_transition = True
        for point in self._connection_points.values():
            point.holding = True

    def hold_tick(self) -> None:
        """Let one tick of arrivals accumulate at the connection points.

        Models wall-clock time passing while the planner works: sources
        emit, nothing executes, nothing is lost.
        """
        require(self._in_transition, "no open transition")
        self._tick += 1
        held = 0
        for name, source in self._sources.items():
            emitted = source.emit(self._tick)
            held += len(emitted)
            self._connection_points[name].accept(emitted)

    def drain(
        self, query_ids: Iterable[str] | None = None
    ) -> dict[str, int]:
        """Flush in-flight tuples of the (to-be-modified) subnetworks.

        Stateful operators belonging to *query_ids* (default: all
        admitted queries) emit their buffered partial results to the
        queries' logs, so nothing in their queues is silently dropped
        by the replanning.  Returns drained-tuple counts per query.
        """
        require(self._in_transition, "no open transition")
        targets = (set(self.catalog.queries) if query_ids is None
                   else set(query_ids))
        drained: dict[str, int] = {}
        flushed: dict[str, list[StreamTuple]] = {}
        for op in self.catalog.topological_order():
            if (isinstance(op, AggregateOperator)
                    and self.backend.pending_tuples(op)):
                used_by = set(self.catalog.queries_containing(op.op_id))
                if used_by & targets:
                    flushed[op.op_id] = self.backend.flush_aggregate(op)
        for query_id in targets:
            query = self.catalog.queries[query_id]
            produced = flushed.get(query.sink_id, [])
            self.results[query_id].extend(produced)
            drained[query_id] = len(produced)
        return drained

    def end_transition(
        self,
        add: Sequence[ContinuousQuery] = (),
        remove: Sequence[str] = (),
    ) -> None:
        """Apply the plan changes and replay the held tuples.

        The held tuples are input *before* newly arriving tuples (they
        form the first post-transition tick), preserving stream order
        for continuing queries.
        """
        require(self._in_transition, "no open transition")
        # Validate every incoming plan before anything mutates: a bad
        # query must fail its submitter, not strand the transition
        # half-applied with the connection points holding forever.
        for query in add:
            self.validate_streams(query)
        for query_id in remove:
            self.remove(query_id)
        for query in add:
            self.admit(query)
        released = {
            name: point.release()
            for name, point in self._connection_points.items()
        }
        self._in_transition = False
        held_count = sum(len(batch) for batch in released.values())
        if held_count:
            self._tick += 1
            self._process(released, 0)

    def transition(
        self,
        add: Sequence[ContinuousQuery] = (),
        remove: Sequence[str] = (),
        hold_ticks: int = 1,
    ) -> None:
        """Convenience: the full transition-phase sequence."""
        # Fail fast, before the transition even opens: a bad plan in
        # the add set must leave the engine exactly as it was.
        for query in add:
            self.validate_streams(query)
        self.begin_transition()
        drain_targets = set(remove)
        if drain_targets:
            self.drain(drain_targets)
        for _ in range(hold_ticks):
            self.hold_tick()
        self.end_transition(add=add, remove=remove)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def held_tuples(self) -> int:
        """Tuples currently held across all connection points."""
        return sum(p.held_count
                   for p in self._connection_points.values())

    def measured_loads(self) -> dict[str, float]:
        """Mean measured work per tick for every operator."""
        return self.meter.measured_loads()
