"""Column expressions: one predicate object, two execution modes.

Operators take Python callables (``predicate(t)``, ``key(t)``), which
the columnar backend cannot vectorize in general.  A
:class:`ColumnExpr` closes the gap: it *is* a callable over
:class:`~repro.dsms.tuples.StreamTuple` — so the scalar backend (and
any analytic code) runs it unchanged — and it additionally evaluates
over a :class:`~repro.dsms.columnar.batch.ColumnBatch` in one numpy
operation.  Because both modes are derived from the same expression
tree, the two backends cannot drift apart on predicate semantics.

>>> cheap = col("price").lt(50.0)
>>> cheap(t)                      # scalar: t.value("price") < 50.0
>>> cheap.eval_block(batch)       # columnar: one vectorized mask

Comparisons are spelled as methods (``.gt``, ``.ge``, ``.lt``,
``.le``, ``.eq``, ``.ne``, ``.isin``) rather than operator overloads:
overloading ``__eq__`` on an object that is stored inside operators
and snapshots would silently break identity-based bookkeeping.
Predicates compose with ``&`` and ``|``.

Missing attributes follow SQL NULL semantics: an attribute absent
from a row's payload reads as ``None`` (exactly like
:meth:`StreamTuple.value`), and ``None`` satisfies *no* comparison —
``col("v").gt(x)``, ``.eq(x)``, even ``.eq(None)`` are all false for
it.  Membership (``isin``) uses plain Python ``in``, so ``None`` can
be matched explicitly by listing it.
"""

from __future__ import annotations

import operator
from collections.abc import Sequence

import numpy as np

from repro.dsms.columnar.batch import (
    MISSING,
    ColumnBatch,
    column_array,
    identity_mask,
    object_array,
)
from repro.dsms.tuples import StreamTuple


class ColumnExpr:
    """A named payload attribute, evaluable per row or per block."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __call__(self, t: StreamTuple) -> object:
        return t.value(self.name)

    def eval_block(self, batch: ColumnBatch) -> np.ndarray:
        """The attribute column (``None`` where the row lacks it)."""
        column = batch.columns.get(self.name)
        if column is None:
            return np.full(len(batch), None, dtype=object)
        if column.dtype == object:
            values = column.tolist()
            if any(v is MISSING for v in values):
                return object_array(
                    [None if v is MISSING else v for v in values])
        return column

    # Comparisons build predicates.
    def gt(self, value: object) -> "Comparison":
        return Comparison(self, operator.gt, value, ">")

    def ge(self, value: object) -> "Comparison":
        return Comparison(self, operator.ge, value, ">=")

    def lt(self, value: object) -> "Comparison":
        return Comparison(self, operator.lt, value, "<")

    def le(self, value: object) -> "Comparison":
        return Comparison(self, operator.le, value, "<=")

    def eq(self, value: object) -> "Comparison":
        return Comparison(self, operator.eq, value, "==")

    def ne(self, value: object) -> "Comparison":
        return Comparison(self, operator.ne, value, "!=")

    def isin(self, values: Sequence[object]) -> "IsIn":
        return IsIn(self, values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"col({self.name!r})"


def col(name: str) -> ColumnExpr:
    """The payload attribute *name* as a column expression."""
    return ColumnExpr(name)


class Predicate:
    """Base class for boolean column expressions."""

    __slots__ = ()

    def __call__(self, t: StreamTuple) -> bool:
        raise NotImplementedError

    def eval_block(self, batch: ColumnBatch) -> np.ndarray:
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "BoolCombine":
        return BoolCombine(self, other, all_of=True)

    def __or__(self, other: "Predicate") -> "BoolCombine":
        return BoolCombine(self, other, all_of=False)


def _boxed(value: object) -> object:
    """Container constants as 0-d object scalars, so numpy compares
    them against each row instead of broadcasting their elements."""
    if isinstance(value, (list, tuple, set, dict, np.ndarray)):
        scalar = np.empty((), dtype=object)
        scalar[()] = value
        return scalar
    return value


_EXACT_INT = 2**53


def _needs_exact_path(column: np.ndarray, value: object) -> bool:
    """Whether numpy comparison would coerce the constant inexactly.

    Python compares values *exactly*; numpy coerces — int/float
    upcast to float64 equates values beyond 2**53, and a str constant
    cast to fixed-width U silently loses trailing NULs.  Mirror
    Python whenever a coercion could bite: an int column against a
    float constant (column values are unbounded), any column against
    an int constant too large for float64, or a NUL-bearing string
    constant.
    """
    if type(value) is int and not -_EXACT_INT <= value <= _EXACT_INT:
        return True
    if type(value) is str and "\x00" in value:
        return True
    return column.dtype.kind in "iu" and type(value) is float


class Comparison(Predicate):
    """``col(name) <op> constant``."""

    __slots__ = ("expr", "op", "value", "symbol")

    def __init__(self, expr: ColumnExpr, op, value: object,
                 symbol: str) -> None:
        self.expr = expr
        self.op = op
        self.value = value
        self.symbol = symbol

    def __call__(self, t: StreamTuple) -> bool:
        value = self.expr(t)
        if value is None:
            return False
        return bool(self.op(value, self.value))

    def eval_block(self, batch: ColumnBatch) -> np.ndarray:
        column = self.expr.eval_block(batch)
        if _needs_exact_path(column, self.value):
            # Row-wise with Python semantics, mirroring __call__
            # (None — a missing attribute — satisfies nothing).
            n = len(column)
            return np.fromiter(
                (v is not None and bool(self.op(v, self.value))
                 for v in column.tolist()),
                dtype=bool, count=n)
        value = _boxed(self.value)
        if column.dtype == object:
            none_mask = identity_mask(column, None)
            if none_mask.any():
                filled = column.copy()
                filled[none_mask] = value
                result = np.asarray(
                    self.op(filled, value), dtype=bool)
                if result.ndim == 0:
                    result = np.full(len(batch), bool(result))
                result[none_mask] = False
                return result
        result = np.asarray(self.op(column, value), dtype=bool)
        if result.ndim == 0:
            # Incomparable types collapse to one scalar under numpy;
            # the scalar path yields that same verdict row by row.
            result = np.full(len(batch), bool(result))
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.expr!r} {self.symbol} {self.value!r})"


class IsIn(Predicate):
    """``col(name) in values``."""

    __slots__ = ("expr", "values")

    def __init__(self, expr: ColumnExpr,
                 values: Sequence[object]) -> None:
        self.expr = expr
        self.values = tuple(values)

    def __call__(self, t: StreamTuple) -> bool:
        return self.expr(t) in self.values

    def eval_block(self, batch: ColumnBatch) -> np.ndarray:
        column = self.expr.eval_block(batch)
        values = column_array(list(self.values))
        # np.isin is safe only when no coercion can change the
        # verdict: identical dtype kinds (no int/float upcast past
        # 2**53) and no NaN on either side (np.isin uses ==; Python
        # `in` honors object identity).
        same_family = (
            column.dtype != object and values.dtype != object
            and column.dtype.kind == values.dtype.kind
            and not (column.dtype.kind == "f"
                     and (np.isnan(values).any()
                          or np.isnan(column).any())))
        if same_family:
            return np.isin(column, values)
        # Mixed or object-typed values: element-wise Python membership,
        # exactly what the per-row path computes.
        n = len(column)
        return np.fromiter(
            (v in self.values for v in column.tolist()),
            dtype=bool, count=n)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.expr!r} in {self.values!r})"


class BoolCombine(Predicate):
    """Conjunction/disjunction of two predicates.

    Either side may be a plain Python callable — the block evaluation
    falls back to a row-wise pass for that side, so mixing ``col()``
    expressions with arbitrary predicates keeps working on the
    columnar backend.
    """

    __slots__ = ("left", "right", "all_of")

    def __init__(self, left: Predicate, right: Predicate,
                 all_of: bool) -> None:
        self.left = left
        self.right = right
        self.all_of = all_of

    def __call__(self, t: StreamTuple) -> bool:
        if self.all_of:
            return self.left(t) and self.right(t)
        return self.left(t) or self.right(t)

    @staticmethod
    def _side_mask(side: object, batch: ColumnBatch) -> np.ndarray:
        if supports_block(side):
            return np.asarray(side.eval_block(batch), dtype=bool)
        n = len(batch)
        return np.fromiter(
            (bool(side(t)) for t in batch.tuples()),
            dtype=bool, count=n)

    def eval_block(self, batch: ColumnBatch) -> np.ndarray:
        left = self._side_mask(self.left, batch)
        right = self._side_mask(self.right, batch)
        return left & right if self.all_of else left | right

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        joiner = "&" if self.all_of else "|"
        return f"({self.left!r} {joiner} {self.right!r})"


def supports_block(fn: object) -> bool:
    """Whether *fn* can be evaluated vectorized over a batch."""
    return callable(getattr(fn, "eval_block", None))


def pure_block(fn: object) -> bool:
    """Whether *fn* evaluates from columns alone (no tuple access).

    A :class:`BoolCombine` with a plain-callable side still offers
    ``eval_block`` but needs materialized tuples for that side, so it
    must see full batches, never column-only slice views.
    """
    if isinstance(fn, BoolCombine):
        return pure_block(fn.left) and pure_block(fn.right)
    return supports_block(fn)
