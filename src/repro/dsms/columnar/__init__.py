"""repro.dsms.columnar — vectorized struct-of-arrays execution.

The scalar stream engine interprets every operator one
:class:`~repro.dsms.tuples.StreamTuple` at a time; this subsystem is
the drop-in vectorized alternative, selected per engine with the
backend spec ``"columnar"`` (or ``"columnar:batch=1024"`` to bound
kernel chunk sizes).

ColumnBatch layout
------------------

A tuple batch ``[StreamTuple, ...]`` becomes one
:class:`~repro.dsms.columnar.batch.ColumnBatch` holding parallel
arrays over the rows:

* ``ticks`` — ``int64`` array of per-row engine ticks;
* ``origins`` — object array of lineage tuples (join outputs defer
  the per-pair ``left.origin + right.origin`` concatenation lazily
  until something downstream materializes it);
* ``columns`` — one numpy array per payload attribute, packed as a
  native dtype (bool/int/float/fixed-width string) when the values
  allow and ``object`` otherwise, with the
  :data:`~repro.dsms.columnar.batch.MISSING` sentinel marking rows
  whose payload lacks the attribute;
* ``stream`` — a single string when the batch is stream-uniform (the
  common case), or a per-row object array after unions.

Selects evaluate one boolean mask per batch, joins factorize the key
arrays into dense codes and expand match pairs with
``repeat``/gather arithmetic, and tumbling aggregates reduce
stable-sorted group runs — see :mod:`repro.dsms.columnar.kernels`.
Vectorizable predicates and keys are written with
:func:`~repro.dsms.columnar.expressions.col` (e.g.
``col("price").gt(50.0)``), which the *scalar* backend can execute
too — the same object is a per-row callable and a block kernel, so
plans are backend-portable by construction.

What stays scalar
-----------------

Only operator execution is vectorized.  Engine semantics around it —
connection points holding arrivals, the transition phase
(hold/drain/replay), shedding decisions, and result-log delivery —
operate on materialized tuples exactly as before, whichever backend
runs the operators.  The drain path asks the backend for pending
state, so partial-window flushes come out of the columnar buffers
with the same payloads the scalar flush produces.  Operators outside
the kernel set (sliding windows, top-k, user-defined subclasses) fall
back to their own scalar ``execute`` within the columnar pipeline.

The differential test suite
(``tests/dsms/test_backend_differential.py``) pins scalar ≡ columnar
on engine reports, per-query result logs, and measured per-operator
loads over randomized plans.
"""

from repro.dsms.columnar.backend import ColumnarBackend
from repro.dsms.columnar.batch import (
    MISSING,
    ColumnBatch,
    LazyPairOrigins,
    column_array,
)
from repro.dsms.columnar.expressions import (
    ColumnExpr,
    Comparison,
    IsIn,
    Predicate,
    col,
    supports_block,
)

__all__ = [
    "MISSING",
    "ColumnBatch",
    "ColumnExpr",
    "ColumnarBackend",
    "Comparison",
    "IsIn",
    "LazyPairOrigins",
    "Predicate",
    "col",
    "column_array",
    "supports_block",
]
