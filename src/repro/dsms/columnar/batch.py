"""The struct-of-arrays tuple batch underlying the columnar backend.

A :class:`ColumnBatch` holds one operator batch as parallel arrays:
a ``ticks`` int64 array, an ``origins`` object array of lineage
tuples, per-attribute payload ``columns``, and the stream stamp
(a single string when uniform, a per-row object array after unions).
Attribute values missing from a row's payload are represented by the
:data:`MISSING` sentinel, so a batch round-trips ragged payloads
exactly.

Columns use native numpy dtypes (bool/int/float, fixed-width strings)
whenever the values allow it — that is what makes mask selects and
hash joins vectorizable — and fall back to ``object`` dtype
otherwise.  ``to_tuples``/``tuples`` convert back through
``ndarray.tolist()`` so payload values come out as plain Python
scalars again.

Join outputs carry their lineage lazily (:class:`LazyPairOrigins`):
concatenating two origin tuples per join pair is per-row Python work,
so it is deferred until a downstream operator or sink actually needs
the origins — a post-join filter first shrinks the batch, then pays
for the survivors only.
"""

from __future__ import annotations

import operator
from collections.abc import Iterable, Sequence

import numpy as np

from repro.dsms.tuples import StreamTuple

_get_stream = operator.attrgetter("stream")
_get_tick = operator.attrgetter("tick")
_get_payload = operator.attrgetter("payload")
_get_origin = operator.attrgetter("origin")


class _Missing:
    """Singleton marking an attribute absent from a row's payload.

    Deep copies, copies and pickles all resolve back to the one
    instance, so identity checks (``value is MISSING``) survive engine
    snapshots and checkpoint files.
    """

    _instance: "_Missing | None" = None

    def __new__(cls) -> "_Missing":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __copy__(self) -> "_Missing":
        return self

    def __deepcopy__(self, _memo: dict) -> "_Missing":
        return self

    def __reduce__(self):
        return (_Missing, ())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<missing>"


#: The one missing-value sentinel.
MISSING = _Missing()

_NUMERIC_TYPES = (bool, int, float)


def column_array(values: Sequence[object]) -> np.ndarray:
    """Pack payload *values* into the tightest safe numpy array.

    Values of one exact type — all ``bool``, all ``int``, all
    ``float``, or all ``str`` — become native dtype arrays; anything
    else (mixed types, ``None``, :data:`MISSING`, containers) stays an
    ``object`` array, which numpy still processes element-wise with
    Python semantics.  Mixing numeric types deliberately does *not*
    pack: an int64/float64 upcast would silently rewrite payload
    values (``True`` → ``1``, ``2`` → ``2.0``), and batches must
    round-trip the scalar backend's payloads exactly.
    """
    if not len(values):
        return np.empty(0, dtype=object)
    types = set(map(type, values))
    if len(types) == 1:
        kind = next(iter(types))
        if kind in (bool, int, float):
            try:
                packed = np.asarray(values)
            except (OverflowError, ValueError):  # ints beyond int64
                packed = None
            # NaN payloads stay objects: packing would destroy the
            # object identity that scalar `in`/dict probes honor.
            if packed is not None and not (
                    packed.dtype.kind == "f"
                    and np.isnan(packed).any()):
                return packed
        elif kind is str and not any("\x00" in v for v in values):
            # Fixed-width U arrays silently strip trailing NULs.
            return np.asarray(values)
    array = np.empty(len(values), dtype=object)
    array[:] = values
    return array


def object_array(values: Sequence[object]) -> np.ndarray:
    """An object-dtype array that never coerces (tuples stay tuples)."""
    array = np.empty(len(values), dtype=object)
    if len(values):
        array[:] = values
    return array


def identity_mask(column: np.ndarray, sentinel: object) -> np.ndarray:
    """Boolean mask of rows whose value *is* ``sentinel``.

    Sentinels (:data:`MISSING`, ``None``) are matched by identity, not
    ``==`` — a numpy ``==`` would go element-wise and explode on
    payload values that are themselves arrays.
    """
    n = len(column)
    return np.fromiter(
        (v is sentinel for v in column.tolist()), dtype=bool, count=n)


class LazyPairOrigins:
    """Deferred per-pair lineage concatenation for join outputs.

    Holds the parent origin arrays plus the pair index arrays; the
    concatenated ``left.origin + right.origin`` tuples are only built
    by :meth:`materialize`.  :meth:`take` narrows the pair set without
    materializing, so selective post-join operators never pay for
    dropped pairs.
    """

    __slots__ = ("_left", "_right", "_left_idx", "_right_idx")

    def __init__(
        self,
        left_origins: np.ndarray,
        right_origins: np.ndarray,
        left_idx: np.ndarray,
        right_idx: np.ndarray,
    ) -> None:
        self._left = left_origins
        self._right = right_origins
        self._left_idx = left_idx
        self._right_idx = right_idx

    def __len__(self) -> int:
        return len(self._left_idx)

    def take(self, indices: np.ndarray) -> "LazyPairOrigins":
        return LazyPairOrigins(
            self._left, self._right,
            self._left_idx[indices], self._right_idx[indices])

    def materialize(self) -> np.ndarray:
        lefts = self._left[self._left_idx]
        rights = self._right[self._right_idx]
        return object_array(
            [lo + ro for lo, ro in zip(lefts.tolist(), rights.tolist())])

    def __deepcopy__(self, memo: dict) -> np.ndarray:
        # Buffers/snapshots must not share parent arrays; a deep copy
        # simply materializes.
        import copy as _copy

        return _copy.deepcopy(self.materialize(), memo)

    def __reduce__(self):
        return (_rebuild_origins, (self.materialize(),))


def _rebuild_origins(array: np.ndarray) -> np.ndarray:
    return array


class LazySegmentedOrigins:
    """Concatenation of origin segments, deferred like the segments.

    Produced when batches with lazy origins are concatenated (the two
    probe phases of a join, union inputs).  ``take`` materializes only
    the selected rows, so a filter downstream of a join still never
    pays for dropped pairs.
    """

    __slots__ = ("_parts", "_lengths", "_bounds")

    def __init__(self, parts: "list[object]",
                 lengths: "list[int]") -> None:
        self._parts = parts
        self._lengths = lengths
        self._bounds = np.cumsum(lengths)

    def __len__(self) -> int:
        return int(self._bounds[-1]) if len(self._bounds) else 0

    def take(self, indices: "np.ndarray | slice") -> np.ndarray:
        if isinstance(indices, slice):
            indices = np.arange(*indices.indices(len(self)))
        indices = np.asarray(indices, dtype=np.int64)
        out = np.empty(len(indices), dtype=object)
        segment = np.searchsorted(self._bounds, indices, side="right")
        starts = self._bounds - np.asarray(self._lengths)
        for s, part in enumerate(self._parts):
            mask = segment == s
            if not mask.any():
                continue
            local = indices[mask] - starts[s]
            if isinstance(part, LazyPairOrigins):
                out[mask] = part.take(local).materialize()
            else:
                out[mask] = part[local]
        return out

    def materialize(self) -> np.ndarray:
        parts = [
            part.materialize()
            if isinstance(part, LazyPairOrigins) else part
            for part in self._parts
        ]
        return np.concatenate(parts)

    def __deepcopy__(self, memo: dict) -> np.ndarray:
        import copy as _copy

        return _copy.deepcopy(self.materialize(), memo)

    def __reduce__(self):
        return (_rebuild_origins, (self.materialize(),))


def concat_origins(batches: "list[ColumnBatch]"):
    """Concatenate per-batch origins, keeping laziness if present."""
    lazy = any(isinstance(b._origins, (LazyPairOrigins,
                                       LazySegmentedOrigins))
               for b in batches)
    if not lazy:
        return np.concatenate([b._origins for b in batches])
    parts: list[object] = []
    lengths: list[int] = []
    for b in batches:
        origins = b._origins
        if isinstance(origins, LazySegmentedOrigins):
            parts.extend(origins._parts)
            lengths.extend(origins._lengths)
        else:
            parts.append(origins)
            lengths.append(len(b))
    return LazySegmentedOrigins(parts, lengths)


class ColumnBatch:
    """One batch of stream tuples in struct-of-arrays layout."""

    __slots__ = ("stream", "ticks", "columns", "_origins", "_tuples")

    def __init__(
        self,
        stream: "str | np.ndarray",
        ticks: np.ndarray,
        columns: "dict[str, np.ndarray]",
        origins: "np.ndarray | LazyPairOrigins",
    ) -> None:
        self.stream = stream
        self.ticks = ticks
        self.columns = columns
        self._origins = origins
        self._tuples: "list[StreamTuple] | None" = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls) -> "ColumnBatch":
        return cls("", np.empty(0, dtype=np.int64), {},
                   np.empty(0, dtype=object))

    @classmethod
    def from_tuples(cls, tuples: Sequence[StreamTuple]) -> "ColumnBatch":
        """Convert a tuple batch to columns (exact round-trip)."""
        n = len(tuples)
        if n == 0:
            return cls.empty()
        ticks = np.asarray(list(map(_get_tick, tuples)),
                           dtype=np.int64)
        origins = object_array(list(map(_get_origin, tuples)))
        streams = set(map(_get_stream, tuples))
        if len(streams) == 1:
            stream: "str | np.ndarray" = next(iter(streams))
        else:
            stream = object_array(list(map(_get_stream, tuples)))
        payloads = list(map(_get_payload, tuples))
        first_keys = payloads[0].keys()
        columns: dict[str, np.ndarray] = {}
        uniform = len(set(map(len, payloads))) == 1
        if uniform:
            try:
                for key in first_keys:
                    columns[key] = column_array(
                        [p[key] for p in payloads])
            except KeyError:  # same sizes, different keys
                uniform = False
                columns.clear()
        if not uniform:
            keys: dict[str, None] = {}
            for p in payloads:
                for key in p:
                    keys.setdefault(key)
            for key in keys:
                columns[key] = column_array(
                    [p.get(key, MISSING) for p in payloads])
        batch = cls(stream, ticks, columns, origins)
        batch._tuples = list(tuples)
        return batch

    @classmethod
    def concat(cls, batches: "Iterable[ColumnBatch]") -> "ColumnBatch":
        """Row-wise concatenation, preserving batch order."""
        batches = [b for b in batches]
        batches_nonempty = [b for b in batches if len(b)]
        if not batches_nonempty:
            return cls.empty()
        if len(batches_nonempty) == 1:
            return batches_nonempty[0]
        ticks = np.concatenate([b.ticks for b in batches_nonempty])
        origins = concat_origins(batches_nonempty)
        uniform = all(isinstance(b.stream, str) for b in batches_nonempty)
        streams = ({b.stream for b in batches_nonempty}
                   if uniform else set())
        if uniform and len(streams) == 1:
            stream: "str | np.ndarray" = next(iter(streams))
        else:
            stream = np.concatenate(
                [b.stream_array() for b in batches_nonempty])
        keys: dict[str, None] = {}
        for b in batches_nonempty:
            for key in b.columns:
                keys.setdefault(key)
        columns: dict[str, np.ndarray] = {}
        for key in keys:
            parts = []
            for b in batches_nonempty:
                col = b.columns.get(key)
                if col is None:
                    col = np.full(len(b), MISSING, dtype=object)
                parts.append(col)
            # Same dtype (or same string kind) concatenates natively;
            # any other mix degrades to object so no value is upcast
            # (int64 + float64 would rewrite ints as floats).
            dtypes = {p.dtype for p in parts}
            if len(dtypes) > 1 and not all(
                    p.dtype.kind == "U" for p in parts):
                parts = [p.astype(object) if p.dtype != object else p
                         for p in parts]
            columns[key] = np.concatenate(parts)
        return cls(stream, ticks, columns, origins)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ticks)

    def origin_array(self) -> np.ndarray:
        """The per-row lineage tuples (materializes lazy origins)."""
        if isinstance(self._origins,
                      (LazyPairOrigins, LazySegmentedOrigins)):
            self._origins = self._origins.materialize()
        return self._origins

    def stream_array(self) -> np.ndarray:
        """The per-row stream stamps as an object array."""
        if isinstance(self.stream, str):
            return np.full(len(self), self.stream, dtype=object)
        return self.stream

    def column_values(self, name: str) -> "list[object]":
        """Column *name* as Python values (``None`` where missing).

        Mirrors :meth:`StreamTuple.value`: a missing attribute reads
        as ``None``.
        """
        col = self.columns.get(name)
        if col is None:
            return [None] * len(self)
        values = col.tolist()
        if col.dtype == object:
            values = [None if value is MISSING else value
                      for value in values]
        return values

    # ------------------------------------------------------------------
    # Row selection
    # ------------------------------------------------------------------

    def take(self, indices: np.ndarray) -> "ColumnBatch":
        """The batch restricted to *indices* (in the given order)."""
        origins = self._origins
        if isinstance(origins,
                      (LazyPairOrigins, LazySegmentedOrigins)):
            origins = origins.take(indices)
        else:
            origins = origins[indices]
        stream = self.stream
        if not isinstance(stream, str):
            stream = stream[indices]
        return ColumnBatch(
            stream,
            self.ticks[indices],
            {key: col[indices] for key, col in self.columns.items()},
            origins,
        )

    def mask(self, keep: np.ndarray) -> "ColumnBatch":
        """The batch restricted to rows where *keep* is truthy."""
        return self.take(np.flatnonzero(keep))

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------

    def payload_dicts(self) -> "list[dict[str, object]]":
        """One payload dict per row (missing attributes omitted)."""
        n = len(self)
        lists = {key: col.tolist()
                 for key, col in self.columns.items()}
        ragged = any(
            col.dtype == object
            and any(v is MISSING for v in lists[key])
            for key, col in self.columns.items())
        if not ragged:
            return [
                {key: values[i] for key, values in lists.items()}
                for i in range(n)
            ]
        return [
            {key: values[i] for key, values in lists.items()
             if values[i] is not MISSING}
            for i in range(n)
        ]

    def to_tuples(self) -> "list[StreamTuple]":
        """Materialize the batch back into stream tuples."""
        n = len(self)
        if n == 0:
            return []
        payloads = self.payload_dicts()
        origins = self.origin_array().tolist()
        ticks = self.ticks.tolist()
        if isinstance(self.stream, str):
            stream = self.stream
            return [
                StreamTuple(stream=stream, tick=ticks[i],
                            payload=payloads[i], origin=origins[i])
                for i in range(n)
            ]
        streams = self.stream.tolist()
        return [
            StreamTuple(stream=streams[i], tick=ticks[i],
                        payload=payloads[i], origin=origins[i])
            for i in range(n)
        ]

    def tuples(self) -> "list[StreamTuple]":
        """Cached materialization (for fallback kernels and sinks)."""
        if self._tuples is None:
            self._tuples = self.to_tuples()
        return self._tuples

    # The materialization cache is derived data: dropping it from
    # pickles and deep copies keeps checkpoints and snapshots from
    # carrying every buffered row twice.

    def __getstate__(self):
        return (self.stream, self.ticks, self.columns,
                self.origin_array())

    def __setstate__(self, state) -> None:
        self.stream, self.ticks, self.columns, self._origins = state
        self._tuples = None

    def __deepcopy__(self, memo: dict) -> "ColumnBatch":
        import copy as _copy

        return ColumnBatch(
            _copy.deepcopy(self.stream, memo),
            _copy.deepcopy(self.ticks, memo),
            _copy.deepcopy(self.columns, memo),
            _copy.deepcopy(self._origins, memo),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ColumnBatch rows={len(self)} "
                f"columns={sorted(self.columns)}>")
