"""Vectorized operator kernels over :class:`ColumnBatch`.

Each kernel reproduces one scalar operator's semantics *exactly* —
same outputs, same ordering, same lineage — but in whole-batch numpy
operations:

* **select** — one boolean mask per batch (evaluated in bounded
  chunks), with a per-row fallback for non-vectorizable predicates;
* **join** — the symmetric hash join as array factorization: keys are
  mapped to dense codes, the build side is grouped by a stable sort,
  and the probe side expands into match pairs with ``repeat``/gather
  arithmetic, preserving the scalar probe-order/insertion-order pair
  ordering;
* **aggregate** — tumbling windows buffered as column batches and
  reduced group-by-group after a stable sort on first-occurrence
  group codes.

Stateful kernels (join windows, aggregate buffers) keep their state in
:class:`JoinState`/:class:`AggregateState` objects owned by the
backend — the operator objects stay untouched, which is what lets one
plan run on either backend.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.dsms.columnar.batch import (
    MISSING,
    ColumnBatch,
    LazyPairOrigins,
    column_array,
    identity_mask,
    object_array,
)
from repro.dsms.columnar.expressions import pure_block, supports_block
from repro.dsms.operators import (
    AggregateOperator,
    JoinOperator,
    MapOperator,
    ProjectOperator,
    SelectOperator,
)
from repro.dsms.tuples import StreamTuple

# ----------------------------------------------------------------------
# Key handling
# ----------------------------------------------------------------------


def key_array(key_fn: Callable, batch: ColumnBatch) -> np.ndarray:
    """Per-row key values: vectorized for column expressions, row-wise
    (over materialized tuples) for arbitrary callables."""
    if supports_block(key_fn):
        return key_fn.eval_block(batch)
    return object_array([key_fn(t) for t in batch.tuples()])


def _same_family(a: np.ndarray, b: np.ndarray) -> bool:
    if a.dtype == object or b.dtype == object:
        return False
    return (a.dtype.kind in "US") == (b.dtype.kind in "US")


def factorize_pair(
    a: np.ndarray, b: np.ndarray
) -> tuple[np.ndarray, np.ndarray, int]:
    """Dense codes for two key arrays over their value union.

    Equal keys (under Python ``==``/hash for object keys, value
    equality for packed dtypes) receive equal codes.  Returns
    ``(codes_a, codes_b, num_codes)``.

    The fast ``np.unique`` path requires both sides packed with the
    *same* dtype kind: concatenating int64 with float64 would upcast
    and equate keys beyond 2**53 that the scalar dict probe keeps
    distinct.  Float keys containing NaN also take the dict path
    (defense in depth — ``column_array`` already keeps NaN-holding
    columns as objects so identity semantics survive): ``np.unique``
    equates NaNs, but a scalar hash probe never matches two distinct
    NaN objects.
    """
    if (_same_family(a, b) and a.dtype.kind == b.dtype.kind
            and not (a.dtype.kind == "f"
                     and (np.isnan(a).any() or np.isnan(b).any()))):
        combined = np.concatenate([a, b])
        uniq, codes = np.unique(combined, return_inverse=True)
        return (codes[:len(a)].astype(np.int64),
                codes[len(a):].astype(np.int64), len(uniq))
    mapping: dict[object, int] = {}

    def encode(values: np.ndarray) -> np.ndarray:
        out = np.empty(len(values), dtype=np.int64)
        for i, key in enumerate(values.tolist()):
            code = mapping.get(key)
            if code is None:
                code = len(mapping)
                mapping[key] = code
            out[i] = code
        return out

    codes_a = encode(a)
    codes_b = encode(b)
    return codes_a, codes_b, len(mapping)


def factorize_first_occurrence(
    keys: np.ndarray,
) -> tuple[np.ndarray, list[object]]:
    """Dense codes numbered in order of first appearance.

    Returns ``(codes, key_values)`` where ``key_values[c]`` is the key
    of code ``c`` as a plain Python value — the order scalar group-by
    dicts produce.  NaN keys take the dict path (every NaN its own
    group), mirroring scalar dict grouping of distinct NaN objects.
    """
    n = len(keys)
    if keys.dtype != object and not (
            keys.dtype.kind == "f" and np.isnan(keys).any()):
        uniq, inverse = np.unique(keys, return_inverse=True)
        first_pos = np.full(len(uniq), n, dtype=np.int64)
        np.minimum.at(first_pos, inverse, np.arange(n))
        rank = np.argsort(first_pos, kind="stable")
        recode = np.empty(len(uniq), dtype=np.int64)
        recode[rank] = np.arange(len(uniq))
        return recode[inverse], uniq[rank].tolist()
    mapping: dict[object, int] = {}
    codes = np.empty(n, dtype=np.int64)
    ordered: list[object] = []
    for i, key in enumerate(keys.tolist()):
        code = mapping.get(key)
        if code is None:
            code = len(mapping)
            mapping[key] = code
            ordered.append(key)
        codes[i] = code
    return codes, ordered


def match_pairs(
    probe_codes: np.ndarray,
    build_codes: np.ndarray,
    num_codes: int,
) -> tuple[np.ndarray, np.ndarray]:
    """All (probe, build) index pairs with equal codes.

    Pairs are ordered by probe row, and within one probe row by build
    insertion order — exactly the scalar hash-probe order.
    """
    if not len(probe_codes) or not len(build_codes):
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    order = np.argsort(build_codes, kind="stable")
    counts = np.bincount(build_codes, minlength=num_codes)
    offsets = np.concatenate(
        ([0], np.cumsum(counts)[:-1])).astype(np.int64)
    rep = counts[probe_codes]
    total = int(rep.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    probe_idx = np.repeat(
        np.arange(len(probe_codes), dtype=np.int64), rep)
    starts = np.repeat(offsets[probe_codes], rep)
    run_ends = np.cumsum(rep)
    intra = np.arange(total, dtype=np.int64) - np.repeat(
        run_ends - rep, rep)
    build_idx = order[starts + intra]
    return probe_idx, build_idx


# ----------------------------------------------------------------------
# Stateless kernels
# ----------------------------------------------------------------------


def _column_slice(batch: ColumnBatch, start: int,
                  stop: int) -> ColumnBatch:
    """A columns-and-ticks-only slice view for predicate evaluation.

    Slicing through :meth:`ColumnBatch.take` would drag origins along
    (materializing lazy join lineage row by row); predicates never
    read origins, so the view carries an empty placeholder instead.
    """
    sl = slice(start, stop)
    stream = batch.stream
    if not isinstance(stream, str):
        stream = stream[sl]
    return ColumnBatch(
        stream, batch.ticks[sl],
        {key: col[sl] for key, col in batch.columns.items()},
        np.empty(0, dtype=object))


def select_kernel(
    op: SelectOperator, batch: ColumnBatch, chunk_rows: int
) -> ColumnBatch:
    predicate = op._predicate
    n = len(batch)
    if n == 0:
        return batch
    if supports_block(predicate):
        # Chunking feeds the predicate column-only slice views, so it
        # is reserved for predicates that never touch tuples.
        if n <= chunk_rows or not pure_block(predicate):
            keep = predicate.eval_block(batch)
        else:
            keep = np.concatenate([
                predicate.eval_block(
                    _column_slice(batch, i, min(i + chunk_rows, n)))
                for i in range(0, n, chunk_rows)
            ])
    else:
        keep = np.fromiter(
            (bool(predicate(t)) for t in batch.tuples()),
            dtype=bool, count=n)
    return batch.mask(keep)


def project_kernel(op: ProjectOperator, batch: ColumnBatch) -> ColumnBatch:
    columns = {a: batch.columns[a] for a in op._attributes
               if a in batch.columns}
    return ColumnBatch(batch.stream, batch.ticks, columns,
                       batch._origins)


def map_kernel(op: MapOperator, batch: ColumnBatch) -> ColumnBatch:
    if len(batch) == 0:
        return batch
    payloads = [dict(op._transform(p))
                for p in batch.payload_dicts()]
    keys: dict[str, None] = {}
    for p in payloads:
        for key in p:
            keys.setdefault(key)
    ragged = any(len(p) != len(keys) for p in payloads)
    if ragged:
        columns = {
            key: column_array([p.get(key, MISSING) for p in payloads])
            for key in keys
        }
    else:
        columns = {
            key: column_array([p[key] for p in payloads])
            for key in keys
        }
    return ColumnBatch(batch.stream, batch.ticks, columns,
                       batch._origins)


def union_kernel(inputs: Sequence[ColumnBatch]) -> ColumnBatch:
    return ColumnBatch.concat(inputs)


# ----------------------------------------------------------------------
# Join
# ----------------------------------------------------------------------


class JoinState:
    """The two sliding window buffers of one join operator.

    ``owner`` is the operator object this state belongs to: a fresh
    operator re-admitted under a recycled op id must start with fresh
    windows, exactly like a fresh scalar operator would.
    """

    __slots__ = ("owner", "left", "right")

    def __init__(self, owner: JoinOperator) -> None:
        self.owner = owner
        self.left = ColumnBatch.empty()
        self.right = ColumnBatch.empty()

    def pending(self) -> int:
        return len(self.left) + len(self.right)


def _expire(batch: ColumnBatch, tick: int, window: int) -> ColumnBatch:
    if not len(batch):
        return batch
    keep = (tick - batch.ticks) < window
    if keep.all():
        return batch
    return batch.mask(keep)


def _merge_pairs(
    op_id: str,
    left: ColumnBatch,
    right: ColumnBatch,
    left_idx: np.ndarray,
    right_idx: np.ndarray,
    tick: int,
) -> ColumnBatch:
    """Join-pair payload merge: ``{**right.payload, **left.payload}``."""
    n = len(left_idx)
    columns: dict[str, np.ndarray] = {}
    for key, rcol in right.columns.items():
        rvals = rcol[right_idx]
        lcol = left.columns.get(key)
        if lcol is None:
            columns[key] = rvals
            continue
        lvals = lcol[left_idx]
        if lcol.dtype != object:
            columns[key] = lvals
            continue
        miss = identity_mask(lvals, MISSING)
        if not miss.any():
            columns[key] = lvals
        else:
            columns[key] = np.where(
                miss, rvals.astype(object), lvals)
    for key, lcol in left.columns.items():
        if key not in right.columns:
            columns[key] = lcol[left_idx]
    origins = LazyPairOrigins(
        left.origin_array(), right.origin_array(), left_idx, right_idx)
    return ColumnBatch(
        op_id, np.full(n, tick, dtype=np.int64), columns, origins)


def join_kernel(
    state: JoinState,
    op: JoinOperator,
    left_new: ColumnBatch,
    right_new: ColumnBatch,
) -> ColumnBatch:
    window = op._window
    new_ticks = []
    if len(left_new):
        new_ticks.append(int(left_new.ticks.max()))
    if len(right_new):
        new_ticks.append(int(right_new.ticks.max()))
    if new_ticks:
        tick = max(new_ticks)
    else:
        buffered = [int(state.left.ticks.max())] if len(state.left) else []
        if len(state.right):
            buffered.append(int(state.right.ticks.max()))
        tick = max(buffered, default=0)
    state.left = _expire(state.left, tick, window)
    state.right = _expire(state.right, tick, window)

    # Phase 1: new left tuples probe the full right window (buffered
    # rows first, this tick's arrivals after — insertion order).
    right_all = ColumnBatch.concat([state.right, right_new])
    pieces = []
    if len(left_new) and len(right_all):
        probe, build, n_codes = factorize_pair(
            key_array(op._left_key, left_new),
            key_array(op._right_key, right_all))
        left_idx, right_idx = match_pairs(probe, build, n_codes)
        if len(left_idx):
            pieces.append(_merge_pairs(
                op.op_id, left_new, right_all, left_idx, right_idx,
                tick))

    # Phase 2: new right tuples probe the *old* left window only (new
    # left × new right was covered by phase 1).
    if len(right_new) and len(state.left):
        probe, build, n_codes = factorize_pair(
            key_array(op._right_key, right_new),
            key_array(op._left_key, state.left))
        probe_idx, build_idx = match_pairs(probe, build, n_codes)
        if len(probe_idx):
            pieces.append(_merge_pairs(
                op.op_id, state.left, right_new, build_idx, probe_idx,
                tick))

    state.left = ColumnBatch.concat([state.left, left_new])
    state.right = ColumnBatch.concat([state.right, right_new])
    if not pieces:
        return ColumnBatch.empty()
    if len(pieces) == 1:
        return pieces[0]
    return ColumnBatch.concat(pieces)


# ----------------------------------------------------------------------
# Aggregate
# ----------------------------------------------------------------------


class AggregateState:
    """The tumbling-window buffer of one aggregate operator.

    ``owner`` identifies the operator object, like
    :class:`JoinState` — a recycled op id never inherits a removed
    operator's buffered window.
    """

    __slots__ = ("owner", "buffer", "window_start")

    def __init__(self, owner: AggregateOperator) -> None:
        self.owner = owner
        self.buffer = ColumnBatch.empty()
        self.window_start: "int | None" = None

    def pending(self) -> int:
        return len(self.buffer)


def _emit_groups(
    op: AggregateOperator,
    buffer: ColumnBatch,
    tick: int,
    partial: bool,
) -> list[StreamTuple]:
    n = len(buffer)
    if n == 0:
        return []
    group_by = op._group_by
    if group_by is None:
        codes = np.zeros(n, dtype=np.int64)
        key_values: list[object] = [None]
    else:
        codes, key_values = factorize_first_occurrence(
            key_array(group_by, buffer))
    values = buffer.column_values(op._attribute)
    origins = buffer.origin_array().tolist()
    order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
    groups = np.split(order, boundaries)
    output = []
    for code, rows in enumerate(groups):
        members = rows.tolist()
        payload: dict[str, object] = {
            "group": key_values[code],
            "value": op._aggregate([values[i] for i in members]),
            "count": len(members),
        }
        if partial:
            payload["partial"] = True
        origin = tuple(o for i in members for o in origins[i])
        output.append(StreamTuple(
            stream=op.op_id, tick=tick, payload=payload,
            origin=origin))
    return output


def aggregate_kernel(
    state: AggregateState,
    op: AggregateOperator,
    incoming: ColumnBatch,
) -> ColumnBatch:
    if len(incoming) and state.window_start is None:
        state.window_start = int(incoming.ticks.min())
    state.buffer = ColumnBatch.concat([state.buffer, incoming])
    if state.window_start is None:
        return ColumnBatch.empty()
    current_tick = (int(incoming.ticks.max()) if len(incoming)
                    else state.window_start)
    if current_tick - state.window_start + 1 < op._window:
        return ColumnBatch.empty()
    emitted = _emit_groups(op, state.buffer, current_tick,
                           partial=False)
    state.buffer = ColumnBatch.empty()
    state.window_start = None
    return ColumnBatch.from_tuples(emitted)


def aggregate_flush(
    state: AggregateState, op: AggregateOperator
) -> list[StreamTuple]:
    """The drain phase's partial-window flush (columnar state)."""
    if not len(state.buffer):
        return []
    tick = int(state.buffer.ticks.max())
    emitted = _emit_groups(op, state.buffer, tick, partial=True)
    state.buffer = ColumnBatch.empty()
    state.window_start = None
    return emitted
