"""The vectorized execution backend.

:class:`ColumnarBackend` implements the
:class:`~repro.dsms.backend.ExecutionBackend` contract over
:class:`~repro.dsms.columnar.batch.ColumnBatch` data: per-stream
arrivals are converted to columns once per tick, every operator the
kernels cover (select, project, map, union, join, tumbling aggregate)
runs as whole-batch numpy operations, and tuples are only
materialized where the engine actually needs them — at query sinks
and for operators outside the kernel set, which fall back to their
own scalar :meth:`execute` (preserving their internal state and exact
semantics).

Work metering is computed from batch lengths — the same
``consumed × cost_per_tuple`` numbers the scalar interpreter measures
— so :class:`~repro.dsms.load.LoadMeter` readings are identical
across backends.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.dsms.backend import ExecutionBackend
from repro.dsms.columnar.batch import ColumnBatch
from repro.dsms.columnar.kernels import (
    AggregateState,
    JoinState,
    aggregate_flush,
    aggregate_kernel,
    join_kernel,
    map_kernel,
    project_kernel,
    select_kernel,
    union_kernel,
)
from repro.dsms.operators import (
    AggregateOperator,
    JoinOperator,
    MapOperator,
    ProjectOperator,
    SelectOperator,
    StreamOperator,
    UnionOperator,
)
from repro.dsms.tuples import StreamTuple
from repro.utils.validation import require_positive

#: Default rows per vectorized kernel invocation.
DEFAULT_BATCH_ROWS = 4096


class ColumnarBackend(ExecutionBackend):
    """Struct-of-arrays execution with per-operator columnar state.

    ``batch`` bounds the rows a single vectorized kernel evaluation
    touches (``"columnar:batch=1024"``); larger inputs are processed
    in chunks of that size.  One backend instance belongs to one
    engine: it owns the columnar join windows and aggregate buffers
    of that engine's operators.
    """

    name = "columnar"

    def __init__(self, batch: int = DEFAULT_BATCH_ROWS) -> None:
        require_positive(batch, "columnar batch size")
        self.batch_rows = int(batch)
        self._join_state: dict[str, JoinState] = {}
        self._agg_state: dict[str, AggregateState] = {}

    # ------------------------------------------------------------------
    # ExecutionBackend contract
    # ------------------------------------------------------------------

    def run_operators(
        self,
        operators: Sequence[StreamOperator],
        arrivals: Mapping[str, Sequence[StreamTuple]],
        sink_ids: "set[str]",
    ) -> tuple[dict[str, list[StreamTuple]], dict[str, float]]:
        self._prune({op.op_id for op in operators})
        batches: dict[str, ColumnBatch] = {
            name: ColumnBatch.from_tuples(batch)
            for name, batch in arrivals.items()
        }
        empty = ColumnBatch.empty()
        work_by_op: dict[str, float] = {}
        for op in operators:
            inputs = [batches.get(name, empty) for name in op.inputs]
            consumed = sum(len(b) for b in inputs)
            if type(op).work is StreamOperator.work:
                work_by_op[op.op_id] = consumed * op.cost_per_tuple
            else:
                # A subclass overriding work() meters however it
                # likes; give it real tuple batches so its numbers
                # match the scalar backend exactly.
                work_by_op[op.op_id] = op.work({
                    name: b.tuples()
                    for name, b in zip(op.inputs, inputs)
                })
            produced, counted = self._execute(op, inputs)
            batches[op.op_id] = produced
            if not counted:
                op.processed_tuples += consumed
                op.emitted_tuples += len(produced)
        outputs: dict[str, list[StreamTuple]] = {}
        for name in sink_ids:
            produced = batches.get(name)
            if produced is not None:
                outputs[name] = produced.tuples()
        return outputs, work_by_op

    def pending_tuples(self, op: StreamOperator) -> int:
        state = self._join_state.get(op.op_id)
        if state is not None and state.owner is op:
            return state.pending()
        agg = self._agg_state.get(op.op_id)
        if agg is not None and agg.owner is op:
            return agg.pending()
        return op.pending_tuples()

    def flush_aggregate(self, op: AggregateOperator) -> list[StreamTuple]:
        state = self._agg_state.get(op.op_id)
        if state is not None and state.owner is op:
            return aggregate_flush(state, op)
        return op.flush_partial()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _execute(
        self, op: StreamOperator, inputs: "list[ColumnBatch]"
    ) -> tuple[ColumnBatch, bool]:
        """Run *op*; returns ``(output, counters_already_updated)``.

        Exact operator types dispatch to kernels; subclasses (which
        may override ``_process``) and operator types without a kernel
        run their own scalar ``execute`` over materialized tuples, so
        arbitrary user operators keep working unchanged.
        """
        kind = type(op)
        if kind is SelectOperator:
            return select_kernel(op, inputs[0], self.batch_rows), False
        if kind is ProjectOperator:
            return project_kernel(op, inputs[0]), False
        if kind is MapOperator:
            return map_kernel(op, inputs[0]), False
        if kind is UnionOperator:
            return union_kernel(inputs), False
        if kind is JoinOperator:
            state = self._join_state.get(op.op_id)
            if state is None or state.owner is not op:
                state = JoinState(op)
                self._join_state[op.op_id] = state
            return join_kernel(state, op, inputs[0], inputs[1]), False
        if kind is AggregateOperator:
            agg = self._agg_state.get(op.op_id)
            if agg is None or agg.owner is not op:
                agg = AggregateState(op)
                self._agg_state[op.op_id] = agg
            return aggregate_kernel(agg, op, inputs[0]), False
        tuple_batches = {
            name: batch.tuples()
            for name, batch in zip(op.inputs, inputs)
        }
        produced = op.execute(tuple_batches)
        return ColumnBatch.from_tuples(produced), True

    def _prune(self, live_op_ids: "set[str]") -> None:
        """Drop state of operators no longer in the plan."""
        for table in (self._join_state, self._agg_state):
            stale = [op_id for op_id in table
                     if op_id not in live_op_ids]
            for op_id in stale:
                del table[op_id]
