"""Fluent construction of continuous queries.

Hand-assembling operator DAGs (pick ids, wire inputs, remember the
sink) is mechanical; the builder does it:

>>> query = (QueryBuilder("trader7", bid=42.0, owner="alice")
...          .source("quotes")
...          .where(lambda t: t.value("volume") > 5000,
...                 cost=0.3, selectivity=0.5, share_key="vol>5000")
...          .sliding_aggregate("price", max, window=4,
...                             share_key="max_price")
...          .build())

Operator ids are derived from the query id and step index; pass
``share_key`` on any step to make it eligible for common-subexpression
sharing (:mod:`repro.dsms.sharing_detector`), which rewrites equal
steps across users' queries onto one operator.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.dsms.operators import (
    AggregateOperator,
    JoinOperator,
    MapOperator,
    ProjectOperator,
    SelectOperator,
    StreamOperator,
    UnionOperator,
)
from repro.dsms.plan import ContinuousQuery
from repro.dsms.tuples import StreamTuple
from repro.dsms.windows import (
    DistinctOperator,
    SlidingAggregateOperator,
    TopKOperator,
)
from repro.utils.validation import require


class QueryBuilder:
    """Accumulates a linear (optionally joining) operator pipeline."""

    def __init__(
        self,
        query_id: str,
        bid: float = 0.0,
        valuation: float | None = None,
        owner: str | None = None,
    ) -> None:
        self._query_id = query_id
        self._bid = bid
        self._valuation = valuation
        self._owner = owner
        self._operators: list[StreamOperator] = []
        self._head: str | None = None
        self._step = 0

    # ------------------------------------------------------------------
    # Pipeline steps
    # ------------------------------------------------------------------

    def _next_id(self, kind: str) -> str:
        self._step += 1
        return f"{self._query_id}.{self._step}.{kind}"

    def _require_head(self) -> str:
        require(self._head is not None,
                "call .source(<stream>) before adding operators")
        return self._head

    def _push(self, op: StreamOperator) -> "QueryBuilder":
        self._operators.append(op)
        self._head = op.op_id
        return self

    def source(self, stream_name: str) -> "QueryBuilder":
        """Start the pipeline from a stream."""
        require(self._head is None, "source() must be the first step")
        self._head = stream_name
        return self

    def where(
        self,
        predicate: Callable[[StreamTuple], bool],
        cost: float = 1.0,
        selectivity: float = 0.5,
        share_key: object = None,
    ) -> "QueryBuilder":
        """Filter tuples by *predicate*."""
        return self._push(SelectOperator(
            self._next_id("where"), self._require_head(), predicate,
            cost_per_tuple=cost, selectivity_estimate=selectivity,
            share_key=share_key))

    def project(self, attributes: Sequence[str],
                cost: float = 0.2) -> "QueryBuilder":
        """Keep only the named payload attributes."""
        return self._push(ProjectOperator(
            self._next_id("project"), self._require_head(),
            attributes, cost_per_tuple=cost))

    def map(self, transform, cost: float = 0.5,
            share_key: object = None) -> "QueryBuilder":
        """Transform each payload with *transform*."""
        return self._push(MapOperator(
            self._next_id("map"), self._require_head(), transform,
            cost_per_tuple=cost, share_key=share_key))

    def aggregate(
        self,
        attribute: str,
        aggregate,
        window: int = 5,
        group_by=None,
        cost: float = 1.5,
        share_key: object = None,
    ) -> "QueryBuilder":
        """Tumbling-window aggregate."""
        return self._push(AggregateOperator(
            self._next_id("agg"), self._require_head(), attribute,
            aggregate, window=window, group_by=group_by,
            cost_per_tuple=cost, share_key=share_key))

    def sliding_aggregate(
        self,
        attribute: str,
        aggregate,
        window: int = 5,
        group_by=None,
        cost: float = 2.0,
        share_key: object = None,
    ) -> "QueryBuilder":
        """Sliding-window aggregate (one output per tick)."""
        return self._push(SlidingAggregateOperator(
            self._next_id("slide"), self._require_head(), attribute,
            aggregate, window=window, group_by=group_by,
            cost_per_tuple=cost, share_key=share_key))

    def distinct(self, key, window: int = 10, cost: float = 0.5,
                 share_key: object = None) -> "QueryBuilder":
        """Deduplicate by *key* over a sliding window."""
        return self._push(DistinctOperator(
            self._next_id("distinct"), self._require_head(), key,
            window=window, cost_per_tuple=cost, share_key=share_key))

    def top_k(self, score, k: int = 3, window: int = 5,
              cost: float = 1.0, share_key: object = None) -> "QueryBuilder":
        """Keep the top-k tuples by *score* over a sliding window."""
        return self._push(TopKOperator(
            self._next_id("topk"), self._require_head(), score,
            k=k, window=window, cost_per_tuple=cost,
            share_key=share_key))

    def join(
        self,
        other: "QueryBuilder",
        left_key,
        right_key,
        window: int = 5,
        cost: float = 3.0,
        selectivity: float = 0.3,
        share_key: object = None,
    ) -> "QueryBuilder":
        """Join this pipeline's head with *other*'s head.

        *other* must be a builder whose pipeline is complete up to its
        head; its operators are absorbed into this query.
        """
        left = self._require_head()
        right = other._require_head()
        self._operators.extend(other._operators)
        join_op = JoinOperator(
            self._next_id("join"), left, right,
            left_key=left_key, right_key=right_key,
            window=window, cost_per_tuple=cost,
            selectivity_estimate=selectivity, share_key=share_key)
        return self._push(join_op)

    def union(self, other: "QueryBuilder",
              cost: float = 0.1) -> "QueryBuilder":
        """Merge this pipeline's head with *other*'s head."""
        left = self._require_head()
        right = other._require_head()
        self._operators.extend(other._operators)
        return self._push(UnionOperator(
            self._next_id("union"), [left, right],
            cost_per_tuple=cost))

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------

    def build(self) -> ContinuousQuery:
        """Finalize into a :class:`ContinuousQuery` (sink = head)."""
        head = self._require_head()
        require(self._operators and head == self._operators[-1].op_id
                or any(op.op_id == head for op in self._operators),
                "pipeline has no operators — add at least one step")
        return ContinuousQuery(
            query_id=self._query_id,
            operators=tuple(self._operators),
            sink_id=head,
            bid=self._bid,
            valuation=self._valuation,
            owner=self._owner,
        )
