"""Engine run reports: throughput, work, utilization."""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping


@dataclass
class EngineReport:
    """Accumulated statistics of an engine run.

    ``work_per_tick`` is the mean aggregate work executed per tick —
    the engine-side counterpart of the auction's "used capacity"; with
    a configured capacity, ``utilization`` normalizes it and
    ``overload_ticks`` counts ticks whose work exceeded capacity.
    """

    ticks: int = 0
    source_tuples: int = 0
    delivered_tuples: Mapping[str, int] = field(default_factory=dict)
    total_work: float = 0.0
    capacity: float | None = None
    overload_ticks: int = 0

    @property
    def work_per_tick(self) -> float:
        """Mean work per tick over the run."""
        if self.ticks == 0:
            return 0.0
        return self.total_work / self.ticks

    @property
    def utilization(self) -> float | None:
        """Mean work as a fraction of capacity (None if unlimited)."""
        if self.capacity is None or self.ticks == 0:
            return None
        return self.work_per_tick / self.capacity

    def merge_tick(
        self,
        source_count: int,
        work: float,
        delivered: Mapping[str, int],
    ) -> None:
        """Fold one tick's numbers into the report."""
        self.ticks += 1
        self.source_tuples += source_count
        self.total_work += work
        if self.capacity is not None and work > self.capacity:
            self.overload_ticks += 1
        # Accumulate in place: copying the whole per-query dict every
        # tick is quadratic over a long run.  Instances deserialized
        # from old snapshots may hold a shared mapping, so rebind once.
        counts = self.delivered_tuples
        if type(counts) is not dict:
            self.delivered_tuples = counts = dict(counts)
        for query_id, count in delivered.items():
            counts[query_id] = counts.get(query_id, 0) + count
