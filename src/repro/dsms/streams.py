"""Synthetic stream sources.

The paper's motivating streams (stock quotes, news stories, sensor
readings) are modelled as seeded synthetic generators emitting a batch
of tuples per engine tick.  Rates may be constant or stochastic; every
source is deterministic given its seed, so engine runs are
reproducible.
"""

from __future__ import annotations

import abc
from collections.abc import Callable, Mapping

import numpy as np

from repro.dsms.tuples import StreamTuple
from repro.utils.rng import spawn_rng
from repro.utils.validation import require_non_negative


class StreamSource(abc.ABC):
    """A named source emitting tuples per tick."""

    #: True when every emitted tuple's origin embeds the emitting tick
    #: (``name@tick#index``) — the invariant count-based latency
    #: accounting relies on (:class:`~repro.dsms.scheduler.ScheduledEngine`
    #: count mode).
    origin_tick_stamped = False

    def __init__(self, name: str) -> None:
        self.name = name
        self.emitted = 0

    @abc.abstractmethod
    def _generate(self, tick: int) -> list[StreamTuple]:
        """Produce this tick's tuples (subclass hook)."""

    def emit(self, tick: int) -> list[StreamTuple]:
        """Tuples arriving on this stream during *tick*."""
        batch = self._generate(tick)
        self.emitted += len(batch)
        return batch

    def emit_count(self, tick: int) -> "int | None":
        """Emit, returning only this tick's tuple count — or ``None``
        when the source cannot count without materializing (callers
        then fall back to :meth:`emit`).  Must consume exactly the
        state :meth:`emit` would (RNG draws, counters)."""
        return None

    @abc.abstractmethod
    def expected_rate(self) -> float:
        """Mean tuples per tick (drives analytic load estimation)."""


class SyntheticStream(StreamSource):
    """General synthetic source: Poisson arrivals, generated payloads.

    ``payload_fn(rng, tick, index)`` builds each tuple's payload; the
    default emits an empty record.  ``rate`` is the Poisson mean per
    tick (``poisson=False`` makes it an exact constant batch size).
    """

    origin_tick_stamped = True

    def __init__(
        self,
        name: str,
        rate: float,
        payload_fn: "Callable[[np.random.Generator, int, int], Mapping[str, object]] | None" = None,
        seed: "int | np.random.Generator | None" = 0,
        poisson: bool = True,
    ) -> None:
        super().__init__(name)
        require_non_negative(rate, f"rate of stream {name!r}")
        self._rate = float(rate)
        self._payload_fn = payload_fn
        self._rng = spawn_rng(seed)
        self._poisson = poisson

    def _generate(self, tick: int) -> list[StreamTuple]:
        if self._poisson:
            count = int(self._rng.poisson(self._rate))
        else:
            count = int(round(self._rate))
        batch = []
        for index in range(count):
            payload = ({} if self._payload_fn is None
                       else dict(self._payload_fn(self._rng, tick, index)))
            batch.append(StreamTuple(
                stream=self.name, tick=tick, payload=payload,
                origin=(f"{self.name}@{tick}#{index}",)))
        return batch

    def emit_count(self, tick: int) -> "int | None":
        if self._payload_fn is not None:
            # Payload generation draws from the RNG per tuple; only a
            # real emit keeps the stream state aligned.
            return None
        if self._poisson:
            count = int(self._rng.poisson(self._rate))
        else:
            count = int(round(self._rate))
        self.emitted += count
        return count

    def expected_rate(self) -> float:
        return self._rate


class ReplayStream(StreamSource):
    """Replays pre-built per-tick batches (tick → tuple list).

    Useful for differential tests (two engines must see *identical*
    arrivals without coupled RNG state) and for engine benchmarks,
    where tuple generation cost must not pollute the measured
    execution time.  Ticks beyond the recording emit nothing.
    """

    def __init__(
        self,
        name: str,
        batches: Mapping[int, "list[StreamTuple]"],
    ) -> None:
        super().__init__(name)
        self._batches = {int(tick): list(batch)
                         for tick, batch in batches.items()}

    @classmethod
    def record(
        cls, source: StreamSource, ticks: int, start: int = 1
    ) -> "ReplayStream":
        """Capture *ticks* ticks of *source* into a replayable stream."""
        return cls(source.name, {
            tick: source.emit(tick)
            for tick in range(start, start + ticks)
        })

    def _generate(self, tick: int) -> list[StreamTuple]:
        return list(self._batches.get(tick, ()))

    def expected_rate(self) -> float:
        if not self._batches:
            return 0.0
        return sum(len(b) for b in self._batches.values()) / len(
            self._batches)


def stock_quotes(
    name: str = "quotes",
    rate: float = 20.0,
    symbols: tuple[str, ...] = ("AAA", "BBB", "CCC", "DDD"),
    seed: "int | np.random.Generator | None" = 0,
) -> SyntheticStream:
    """A stock-quote stream: symbol, price, and trade volume."""
    def payload(rng: np.random.Generator, _tick: int, _i: int):
        return {
            "symbol": symbols[int(rng.integers(0, len(symbols)))],
            "price": float(np.round(rng.lognormal(3.0, 0.5), 2)),
            "volume": int(rng.integers(1, 10_000)),
        }
    return SyntheticStream(name, rate, payload, seed=seed)


def news_stories(
    name: str = "news",
    rate: float = 5.0,
    companies: tuple[str, ...] = ("AAA", "BBB", "CCC", "DDD", "EEE"),
    seed: "int | np.random.Generator | None" = 1,
) -> SyntheticStream:
    """A news stream: mentioned company and a public-listing flag."""
    def payload(rng: np.random.Generator, _tick: int, _i: int):
        return {
            "company": companies[int(rng.integers(0, len(companies)))],
            "public": bool(rng.random() < 0.8),
            "sentiment": float(np.round(rng.uniform(-1, 1), 3)),
        }
    return SyntheticStream(name, rate, payload, seed=seed)


def sensor_readings(
    name: str = "sensors",
    rate: float = 10.0,
    num_sensors: int = 8,
    seed: "int | np.random.Generator | None" = 2,
) -> SyntheticStream:
    """An environmental-sensor stream: sensor id and a measurement."""
    def payload(rng: np.random.Generator, tick: int, _i: int):
        sensor = int(rng.integers(0, num_sensors))
        base = 20.0 + 5.0 * np.sin(tick / 10.0 + sensor)
        return {
            "sensor": sensor,
            "temperature": float(np.round(base + rng.normal(0, 1), 2)),
        }
    return SyntheticStream(name, rate, payload, seed=seed)
